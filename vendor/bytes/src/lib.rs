//! Offline stand-in for the `bytes` crate.
//!
//! This workspace builds in environments with no crates.io access, so the
//! handful of external crates it uses are vendored as minimal pure-`std`
//! implementations of exactly the API surface the workspace consumes. This
//! one provides [`Bytes`], [`BytesMut`], [`Buf`] and [`BufMut`] with the
//! same semantics as the real crate for that subset: cheap clones via
//! reference counting, zero-copy `split_to`, and little-endian get/put
//! helpers.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous slice of memory.
#[derive(Clone, Default)]
pub struct Bytes {
    inner: Inner,
    start: usize,
    end: usize,
}

#[derive(Clone)]
enum Inner {
    Static(&'static [u8]),
    Shared(Arc<Vec<u8>>),
}

impl Default for Inner {
    fn default() -> Self {
        Inner::Static(&[])
    }
}

impl Bytes {
    /// New empty `Bytes`.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wrap a static slice without copying.
    pub const fn from_static(b: &'static [u8]) -> Self {
        Bytes {
            inner: Inner::Static(b),
            start: 0,
            end: b.len(),
        }
    }

    /// Copy a slice into new shared storage.
    pub fn copy_from_slice(b: &[u8]) -> Self {
        Bytes::from(b.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn as_slice(&self) -> &[u8] {
        let all: &[u8] = match &self.inner {
            Inner::Static(s) => s,
            Inner::Shared(v) => v.as_slice(),
        };
        &all[self.start..self.end]
    }

    /// Split off and return the first `at` bytes; `self` keeps the rest.
    /// No copying: both halves share the same storage.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            inner: self.inner.clone(),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// A sub-slice sharing the same storage.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len());
        Bytes {
            inner: self.inner.clone(),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Try to reclaim the underlying allocation as an *emptied* `Vec`.
    ///
    /// Succeeds only when this handle is the sole owner of heap storage: the
    /// contents are discarded but the capacity is kept, so a buffer pool can
    /// recycle the allocation. Static-backed or still-shared `Bytes` are
    /// returned unchanged in `Err` (nothing to reclaim / not safe to).
    pub fn try_reclaim(self) -> Result<Vec<u8>, Bytes> {
        match self.inner {
            Inner::Static(s) => Err(Bytes {
                inner: Inner::Static(s),
                start: self.start,
                end: self.end,
            }),
            Inner::Shared(arc) => match Arc::try_unwrap(arc) {
                Ok(mut v) => {
                    v.clear();
                    Ok(v)
                }
                Err(arc) => Err(Bytes {
                    inner: Inner::Shared(arc),
                    start: self.start,
                    end: self.end,
                }),
            },
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            inner: Inner::Shared(Arc::new(v)),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(b: &'static [u8]) -> Self {
        Bytes::from_static(b)
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        b.freeze()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().to_vec().into_iter()
    }
}

/// A growable byte buffer, frozen into [`Bytes`] when complete.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// New empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// New empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Reserved capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Drop the contents, keeping the allocation.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Convert into immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(buf: Vec<u8>) -> Self {
        BytesMut { buf }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

/// Read access to a byte cursor (the subset of `bytes::Buf` this workspace
/// uses). Implemented by [`Bytes`]; all gets are little-endian and advance
/// the cursor.
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;
    /// Advance the cursor by `n` bytes.
    fn advance(&mut self, n: usize);
    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(b)
    }

    /// Read a single byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance out of bounds");
        self.start += n;
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
}

/// Write access to a byte sink (the subset of `bytes::BufMut` this workspace
/// uses). Implemented by [`BytesMut`]; all puts are little-endian appends.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a single byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_split() {
        let mut w = BytesMut::new();
        w.put_u64_le(7);
        w.put_u32_le(9);
        w.put_f64_le(-2.5);
        w.put_slice(b"xyz");
        let mut b = w.freeze();
        assert_eq!(b.len(), 8 + 4 + 8 + 3);
        assert_eq!(b.get_u64_le(), 7);
        assert_eq!(b.get_u32_le(), 9);
        assert_eq!(b.get_f64_le(), -2.5);
        let tail = b.split_to(3);
        assert_eq!(&tail[..], b"xyz");
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from(vec![1, 2, 3, 4]);
        let mut b = a.clone();
        let head = b.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&b[..], &[3, 4]);
        assert_eq!(&a[..], &[1, 2, 3, 4]);
    }

    #[test]
    fn static_and_eq() {
        let s = Bytes::from_static(b"abc");
        assert_eq!(s, Bytes::copy_from_slice(b"abc"));
        assert_eq!(format!("{s:?}"), "b\"abc\"");
    }

    #[test]
    fn try_reclaim_sole_owner_keeps_capacity() {
        let mut v = Vec::with_capacity(128);
        v.extend_from_slice(b"payload");
        let b = Bytes::from(v);
        let got = b.try_reclaim().expect("sole owner must reclaim");
        assert!(got.is_empty());
        assert!(got.capacity() >= 128);
    }

    #[test]
    fn try_reclaim_shared_or_static_fails_without_losing_data() {
        let a = Bytes::from(vec![1, 2, 3]);
        let clone = a.clone();
        let back = a
            .try_reclaim()
            .expect_err("shared storage must not reclaim");
        assert_eq!(&back[..], &[1, 2, 3]);
        drop(clone);
        let s = Bytes::from_static(b"abc");
        let back = s
            .try_reclaim()
            .expect_err("static storage has no allocation");
        assert_eq!(&back[..], b"abc");
    }

    #[test]
    fn bytes_mut_capacity_and_clear() {
        let mut m = BytesMut::from(Vec::with_capacity(64));
        m.put_slice(b"xy");
        assert_eq!(m.len(), 2);
        assert!(m.capacity() >= 64);
        m.clear();
        assert!(m.is_empty());
        assert!(m.capacity() >= 64);
    }
}
