//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng as _;
use std::ops::Range;

/// A length range for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    /// Minimum length, inclusive.
    pub min: usize,
    /// Maximum length, exclusive.
    pub max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

/// Strategy for `Vec<S::Value>` with length drawn from `size`.
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.inner().gen_range(self.size.min..self.size.max);
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}

/// Generate vectors whose elements come from `elem` and whose length comes
/// from `size`.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn lengths_respect_size_range() {
        let mut rng = TestRng::for_case("veclen", 0);
        let s = vec(any::<u8>(), 2..7);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..7).contains(&v.len()), "{}", v.len());
        }
    }

    #[test]
    fn nested_vectors() {
        let mut rng = TestRng::for_case("vecnest", 0);
        let s = vec(vec(0u32..5, 0..3), 1..4);
        let v = s.generate(&mut rng);
        assert!(!v.is_empty() && v.len() < 4);
        for inner in v {
            assert!(inner.len() < 3);
            assert!(inner.iter().all(|&x| x < 5));
        }
    }
}
