//! Test configuration and the deterministic per-case RNG.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Configuration for one `proptest!` block.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic RNG for one test case.
///
/// Seeded from a hash of the test's fully qualified name and the case index,
/// so any reported failing case reruns identically. Set `PROPTEST_RNG_SEED`
/// to explore a different universe of cases.
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// RNG for case `case` of test `test_name`.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let base: u64 = std::env::var("PROPTEST_RNG_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x5EED_CAFE_F00D_D00D);
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ base;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^= (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        TestRng {
            rng: StdRng::seed_from_u64(h),
        }
    }

    /// 64 raw uniform bits.
    pub fn next_raw(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// The underlying generator, for `rand`-based sampling.
    pub fn inner(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_case_rngs_are_deterministic_and_distinct() {
        let mut a = TestRng::for_case("x::y", 3);
        let mut b = TestRng::for_case("x::y", 3);
        let mut c = TestRng::for_case("x::y", 4);
        let mut d = TestRng::for_case("x::z", 3);
        let va: Vec<u64> = (0..8).map(|_| a.next_raw()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_raw()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_raw()).collect();
        let vd: Vec<u64> = (0..8).map(|_| d.next_raw()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
        assert_ne!(va, vd);
    }
}
