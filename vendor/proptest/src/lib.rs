//! Offline stand-in for the `proptest` crate (see `vendor/bytes` for the
//! rationale). Implements the subset this workspace's property tests use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(...)]`),
//! * [`strategy::Strategy`] with `prop_map` / `prop_filter`, range and tuple
//!   strategies, `any::<T>()`, `Just`, [`prop_oneof!`],
//! * [`collection::vec`],
//! * `prop_assert!` / `prop_assert_eq!`.
//!
//! Differences from real proptest, deliberately accepted: cases are generated
//! from a deterministic per-test seed (derived from the test's module path
//! and name, overridable via `PROPTEST_RNG_SEED`), and failing inputs are
//! reported but **not shrunk**. Each failure message includes the case index
//! and every generated input, which the deterministic seeding makes exactly
//! reproducible.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Common imports for property tests.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests. Each `fn name(input in strategy, ...) { body }`
/// expands to a `#[test]` running `body` over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            #[allow(unused_imports)]
            use $crate::strategy::Strategy as _;
            let __pt_cfg: $crate::test_runner::ProptestConfig = $cfg;
            let __pt_test = concat!(module_path!(), "::", stringify!($name));
            for __pt_case in 0..__pt_cfg.cases {
                let mut __pt_rng =
                    $crate::test_runner::TestRng::for_case(__pt_test, __pt_case);
                let mut __pt_inputs = ::std::string::String::new();
                $(
                    let __pt_v =
                        $crate::strategy::Strategy::generate(&($strat), &mut __pt_rng);
                    __pt_inputs.push_str(
                        &format!("\n    {} = {:?}", stringify!($pat), &__pt_v));
                    let $pat = __pt_v;
                )+
                let __pt_result: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(__pt_msg) = __pt_result {
                    panic!(
                        "proptest {} failed at case {} of {}:\n  {}\n  inputs:{}",
                        __pt_test, __pt_case, __pt_cfg.cases, __pt_msg, __pt_inputs
                    );
                }
            }
        }
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Assert a condition inside a proptest body; on failure the current case's
/// inputs are reported.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {}\n    left: {:?}\n   right: {:?}",
                stringify!($a),
                stringify!($b),
                a,
                b
            ));
        }
    }};
}

/// Assert inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($a),
                stringify!($b),
                a
            ));
        }
    }};
}

/// Choose uniformly among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Union::arm($arm) ),+
        ])
    };
}
