//! Value-generation strategies.

use crate::test_runner::TestRng;
use rand::Rng as _;
use std::marker::PhantomData;
use std::ops::Range;

/// A recipe for generating values of one type.
///
/// Object-safe core (`generate`) plus sized combinators, so strategies can be
/// boxed for [`Union`] (`prop_oneof!`).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `keep` (regenerating otherwise).
    fn prop_filter<F>(self, reason: &'static str, keep: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            keep,
        }
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Strategies can be passed by reference.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    keep: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.keep)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({:?}) rejected 10000 consecutive values",
            self.reason
        );
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Build from non-empty arms.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }

    /// Box one arm (used by `prop_oneof!` so inference unifies arm types).
    pub fn arm<S>(s: S) -> BoxedStrategy<V>
    where
        S: Strategy<Value = V> + 'static,
    {
        Box::new(s)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.inner().gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.inner().gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.inner().gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Full-range generation for primitive types (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generate one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_raw() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_raw() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Full bit-pattern coverage: infinities and NaNs included, exactly
        // like real proptest's `any::<f64>()`; tests filter what they need.
        f64::from_bits(rng.next_raw())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f32::from_bits(rng.next_raw() as u32)
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// An arbitrary value of `T` drawn from its full range.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..500 {
            let v = (3u32..17).generate(&mut rng);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn map_filter_compose() {
        let mut rng = TestRng::for_case("mapfilter", 0);
        let s = (0u32..100)
            .prop_filter("even", |v| v % 2 == 0)
            .prop_map(|v| v + 1);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 1 && v < 101);
        }
    }

    #[test]
    fn union_uses_every_arm() {
        let mut rng = TestRng::for_case("union", 0);
        let u = Union::new(vec![
            Union::arm(Just(1u32)),
            Union::arm(Just(2u32)),
            Union::arm((10u32..20).prop_map(|v| v)),
        ]);
        let mut seen = [false; 3];
        for _ in 0..300 {
            match u.generate(&mut rng) {
                1 => seen[0] = true,
                2 => seen[1] = true,
                10..=19 => seen[2] = true,
                other => panic!("unexpected {other}"),
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut rng = TestRng::for_case("tuple", 0);
        let (a, b, c) = (0u8..4, 100u64..200, any::<bool>()).generate(&mut rng);
        assert!(a < 4);
        assert!((100..200).contains(&b));
        let _ = c;
    }
}
