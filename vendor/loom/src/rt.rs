//! The schedule explorer and token scheduler.

use std::cell::RefCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};

/// Why a thread cannot currently run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum BlockOn {
    /// Waiting for the mutex with this resource id to be released.
    Mutex(usize),
    /// Waiting for the thread with this id to finish.
    Join(usize),
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Runnable,
    Blocked(BlockOn),
    Finished,
}

/// One scheduling decision: how many threads were runnable, which was chosen.
#[derive(Clone, Copy, Debug)]
struct Decision {
    enabled: usize,
    chosen: usize, // index into the enabled set, not a thread id
}

struct SchedState {
    statuses: Vec<Status>,
    active: usize,
    script: Vec<usize>,
    trace: Vec<Decision>,
    /// Thread ids chosen at each decision, for failure reports.
    trace_tids: Vec<usize>,
    abort: bool,
    failure: Option<String>,
    next_resource: usize,
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

/// Token scheduler for one exploration run.
pub(crate) struct Scheduler {
    state: Mutex<SchedState>,
    cv: Condvar,
    max_branches: usize,
}

/// Sentinel panic payload used to unwind loom threads after an abort
/// (deadlock or failure elsewhere); not itself a model failure.
pub(crate) struct LoomAbort;

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Scheduler>, usize)>> = const { RefCell::new(None) };
}

/// The scheduler and loom-thread id of the calling thread, if it is running
/// under [`model`].
pub(crate) fn current() -> Option<(Arc<Scheduler>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

impl Scheduler {
    fn new(script: Vec<usize>, max_branches: usize) -> Self {
        Scheduler {
            state: Mutex::new(SchedState {
                statuses: Vec::new(),
                active: 0,
                script,
                trace: Vec::new(),
                trace_tids: Vec::new(),
                abort: false,
                failure: None,
                next_resource: 0,
                os_handles: Vec::new(),
            }),
            cv: Condvar::new(),
            max_branches,
        }
    }

    fn lock(&self) -> MutexGuard<'_, SchedState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Fresh id for a mutex or other blockable resource.
    pub(crate) fn new_resource(&self) -> usize {
        let mut st = self.lock();
        st.next_resource += 1;
        st.next_resource - 1
    }

    fn runnable(st: &SchedState) -> Vec<usize> {
        st.statuses
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == Status::Runnable)
            .map(|(i, _)| i)
            .collect()
    }

    /// Pick the next thread to hold the token, recording a decision when
    /// more than one is runnable. Panics the model on nondeterminism.
    fn pick(&self, st: &mut SchedState) -> usize {
        let enabled = Self::runnable(st);
        assert!(!enabled.is_empty(), "pick() with no runnable thread");
        if enabled.len() == 1 {
            return enabled[0];
        }
        let d = st.trace.len();
        if d >= self.max_branches {
            st.abort = true;
            st.failure = Some(format!(
                "model exceeded {} scheduling decisions in one execution; \
                 bound the model or raise LOOM_MAX_BRANCHES",
                self.max_branches
            ));
            self.cv.notify_all();
            panic::panic_any(LoomAbort);
        }
        let chosen = st.script.get(d).copied().unwrap_or(0);
        assert!(
            chosen < enabled.len(),
            "loom: model is nondeterministic (replay found {} enabled threads, \
             script expected > {})",
            enabled.len(),
            chosen
        );
        st.trace.push(Decision {
            enabled: enabled.len(),
            chosen,
        });
        let tid = enabled[chosen];
        st.trace_tids.push(tid);
        tid
    }

    fn wait_for_token(&self, mut st: MutexGuard<'_, SchedState>, me: usize) {
        loop {
            if st.abort {
                drop(st);
                panic::panic_any(LoomAbort);
            }
            if st.active == me && st.statuses[me] == Status::Runnable {
                return;
            }
            st = self.cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// A plain scheduling point: every interleaving choice happens here.
    pub(crate) fn yield_point(&self, me: usize) {
        let mut st = self.lock();
        if st.abort {
            drop(st);
            panic::panic_any(LoomAbort);
        }
        let next = self.pick(&mut st);
        st.active = next;
        self.cv.notify_all();
        self.wait_for_token(st, me);
    }

    /// Block the calling thread on `why` and hand the token to someone else.
    /// Returns when a [`Scheduler::wake`] made the caller runnable *and* the
    /// scheduler chose it again. Detects deadlock.
    pub(crate) fn block(&self, me: usize, why: BlockOn) {
        let mut st = self.lock();
        if st.abort {
            drop(st);
            panic::panic_any(LoomAbort);
        }
        st.statuses[me] = Status::Blocked(why);
        let enabled = Self::runnable(&st);
        if enabled.is_empty() {
            let blocked: Vec<String> = st
                .statuses
                .iter()
                .enumerate()
                .filter_map(|(i, s)| match s {
                    Status::Blocked(b) => Some(format!("thread {i} on {b:?}")),
                    _ => None,
                })
                .collect();
            st.abort = true;
            st.failure = Some(format!("deadlock: [{}]", blocked.join(", ")));
            self.cv.notify_all();
            drop(st);
            panic::panic_any(LoomAbort);
        }
        let next = self.pick(&mut st);
        st.active = next;
        self.cv.notify_all();
        self.wait_for_token(st, me);
    }

    /// Make every thread blocked on `why` runnable again (they still must be
    /// chosen at a later decision before running).
    pub(crate) fn wake(&self, why: BlockOn) {
        let mut st = self.lock();
        for s in st.statuses.iter_mut() {
            if *s == Status::Blocked(why) {
                *s = Status::Runnable;
            }
        }
        // No token transfer here; the caller still holds it.
    }

    /// Register a new loom thread; returns its id. Caller must subsequently
    /// schedule a yield point so the child can actually be chosen.
    pub(crate) fn register_thread(&self) -> usize {
        let mut st = self.lock();
        st.statuses.push(Status::Runnable);
        st.statuses.len() - 1
    }

    pub(crate) fn add_os_handle(&self, h: std::thread::JoinHandle<()>) {
        self.lock().os_handles.push(h);
    }

    pub(crate) fn is_finished(&self, tid: usize) -> bool {
        self.lock().statuses[tid] == Status::Finished
    }

    /// Record a model failure (first wins) — assertion panics in loom
    /// threads land here.
    pub(crate) fn record_failure(&self, msg: String) {
        let mut st = self.lock();
        if st.failure.is_none() {
            st.failure = Some(msg);
        }
        st.abort = true;
        self.cv.notify_all();
    }

    /// Called by a loom thread's wrapper as its last act.
    pub(crate) fn finish_thread(&self, me: usize) {
        let mut st = self.lock();
        st.statuses[me] = Status::Finished;
        // Wake joiners.
        for s in st.statuses.iter_mut() {
            if *s == Status::Blocked(BlockOn::Join(me)) {
                *s = Status::Runnable;
            }
        }
        if st.statuses.iter().all(|s| *s == Status::Finished) {
            self.cv.notify_all(); // the explorer is waiting on this
            return;
        }
        let enabled = Self::runnable(&st);
        if enabled.is_empty() {
            if !st.abort {
                let blocked: Vec<String> = st
                    .statuses
                    .iter()
                    .enumerate()
                    .filter_map(|(i, s)| match s {
                        Status::Blocked(b) => Some(format!("thread {i} on {b:?}")),
                        _ => None,
                    })
                    .collect();
                st.abort = true;
                st.failure = Some(format!(
                    "deadlock after thread {me} finished: [{}]",
                    blocked.join(", ")
                ));
            }
            self.cv.notify_all();
            return;
        }
        let next = self.pick(&mut st);
        st.active = next;
        self.cv.notify_all();
    }
}

/// Install (once) a panic hook that silences the [`LoomAbort`] sentinel.
fn install_quiet_abort_hook() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().is::<LoomAbort>() {
                return;
            }
            prev(info);
        }));
    });
}

/// Run the wrapped body as loom thread `tid` of `sched`: set the TLS
/// scheduler, wait for the first token grant, catch panics, finish.
pub(crate) fn run_as_loom_thread(
    sched: Arc<Scheduler>,
    tid: usize,
    body: impl FnOnce() + std::panic::UnwindSafe,
) {
    CURRENT.with(|c| *c.borrow_mut() = Some((sched.clone(), tid)));
    {
        let st = sched.lock();
        sched.wait_for_token(st, tid);
    }
    let result = panic::catch_unwind(body);
    if let Err(payload) = result {
        if !payload.is::<LoomAbort>() {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "loom thread panicked".to_string());
            sched.record_failure(format!("thread {tid} panicked: {msg}"));
        }
    }
    sched.finish_thread(tid);
    CURRENT.with(|c| *c.borrow_mut() = None);
}

/// Explore every schedule of `f`'s loom threads. Panics — with the failing
/// schedule — if any interleaving panics or deadlocks.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    install_quiet_abort_hook();
    let f = Arc::new(f);
    let max_branches = env_usize("LOOM_MAX_BRANCHES", 50_000);
    let max_iterations = env_usize("LOOM_MAX_ITERATIONS", 500_000);

    let mut script: Vec<usize> = Vec::new();
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        assert!(
            iterations <= max_iterations,
            "loom: exceeded {max_iterations} schedules without exhausting the \
             state space; shrink the model or raise LOOM_MAX_ITERATIONS"
        );
        let sched = Arc::new(Scheduler::new(script.clone(), max_branches));
        let tid0 = sched.register_thread();
        debug_assert_eq!(tid0, 0);
        {
            // Grant the initial token to thread 0.
            let mut st = sched.lock();
            st.active = 0;
        }
        let body = f.clone();
        let s2 = sched.clone();
        let h0 = std::thread::spawn(move || {
            run_as_loom_thread(s2, 0, AssertUnwindSafe(move || body()));
        });
        // Wait for every loom thread to finish.
        {
            let mut st = sched.lock();
            while !st.statuses.iter().all(|s| *s == Status::Finished) {
                st = sched.cv.wait(st).unwrap_or_else(|p| p.into_inner());
            }
        }
        h0.join().ok();
        let handles = std::mem::take(&mut sched.lock().os_handles);
        for h in handles {
            h.join().ok();
        }

        let st = sched.lock();
        if let Some(failure) = &st.failure {
            let schedule: Vec<String> = st
                .trace
                .iter()
                .zip(&st.trace_tids)
                .map(|(d, tid)| format!("{tid}({}/{})", d.chosen, d.enabled))
                .collect();
            panic!(
                "loom model failed after {iterations} schedule(s): {failure}\n  \
                 failing schedule [thread(choice/enabled), ...]: [{}]",
                schedule.join(", ")
            );
        }

        // Advance DFS: bump the deepest non-exhausted decision.
        let trace = st.trace.clone();
        drop(st);
        let mut next_script: Option<Vec<usize>> = None;
        for i in (0..trace.len()).rev() {
            if trace[i].chosen + 1 < trace[i].enabled {
                let mut s: Vec<usize> = trace[..i].iter().map(|d| d.chosen).collect();
                s.push(trace[i].chosen + 1);
                next_script = Some(s);
                break;
            }
        }
        match next_script {
            Some(s) => script = s,
            None => break, // exhausted: every schedule explored
        }
    }
}
