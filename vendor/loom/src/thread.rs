//! Instrumented thread spawn/join. Outside [`crate::model`] these fall back
//! to plain `std::thread`.

use crate::rt::{current, run_as_loom_thread, BlockOn};
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Mutex};

/// Handle to a spawned loom thread.
pub struct JoinHandle<T> {
    inner: Inner<T>,
}

enum Inner<T> {
    Loom {
        tid: usize,
        result: Arc<Mutex<Option<std::thread::Result<T>>>>,
    },
    Os(std::thread::JoinHandle<T>),
}

/// Spawn a thread participating in the current model (or a real thread if no
/// model is running).
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match current() {
        Some((sched, me)) => {
            let tid = sched.register_thread();
            let result: Arc<Mutex<Option<std::thread::Result<T>>>> = Arc::new(Mutex::new(None));
            let slot = result.clone();
            let s2 = sched.clone();
            let os = std::thread::spawn(move || {
                run_as_loom_thread(
                    s2,
                    tid,
                    AssertUnwindSafe(move || {
                        // Run the body; success is recorded for join(). A
                        // panic unwinds past this closure and is recorded as
                        // a model failure by run_as_loom_thread.
                        let v = f();
                        *slot.lock().unwrap_or_else(|p| p.into_inner()) = Some(Ok(v));
                    }),
                );
            });
            sched.add_os_handle(os);
            // Give the scheduler a chance to switch to the child right away.
            sched.yield_point(me);
            JoinHandle {
                inner: Inner::Loom { tid, result },
            }
        }
        None => JoinHandle {
            inner: Inner::Os(std::thread::spawn(f)),
        },
    }
}

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish and return its result. A loom thread
    /// that panicked reports `Err` (and the model records the failure).
    pub fn join(self) -> std::thread::Result<T> {
        match self.inner {
            Inner::Loom { tid, result } => {
                let (sched, me) =
                    current().expect("loom JoinHandle joined outside the owning model");
                while !sched.is_finished(tid) {
                    sched.block(me, BlockOn::Join(tid));
                }
                let taken = result.lock().unwrap_or_else(|p| p.into_inner()).take();
                match taken {
                    Some(r) => r,
                    // Body never stored a value: it panicked before finishing.
                    None => Err(Box::new("loom thread panicked")),
                }
            }
            Inner::Os(h) => h.join(),
        }
    }
}

/// A pure scheduling point.
pub fn yield_now() {
    if let Some((sched, me)) = current() {
        sched.yield_point(me);
    } else {
        std::thread::yield_now();
    }
}
