//! Instrumented synchronization primitives. Outside [`crate::model`] they
//! degrade to direct std operations, so code compiled with `--cfg loom` can
//! still run its non-model unit tests.

pub use std::sync::Arc;

use crate::rt::{current, BlockOn};
use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::Ordering as StdOrdering;

/// Scheduling point before every instrumented synchronization access.
fn yield_point() {
    if let Some((sched, me)) = current() {
        sched.yield_point(me);
    }
}

/// Instrumented mutex with a parking_lot-style non-poisoning API
/// (`lock()` returns the guard directly).
pub struct Mutex<T> {
    id: UnsafeCell<Option<usize>>,
    locked: std::sync::atomic::AtomicBool,
    data: UnsafeCell<T>,
}

unsafe impl<T: Send> Send for Mutex<T> {}
unsafe impl<T: Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    pub fn new(data: T) -> Self {
        Mutex {
            id: UnsafeCell::new(None),
            locked: std::sync::atomic::AtomicBool::new(false),
            data: UnsafeCell::new(data),
        }
    }

    /// Lazily-assigned scheduler resource id (mutexes are created before the
    /// model may be running, e.g. in statics).
    fn resource_id(&self) -> usize {
        // Safe: only called while holding the scheduler token, so loom
        // threads never race here; outside the model it is unused.
        unsafe {
            let slot = &mut *self.id.get();
            if let Some(id) = *slot {
                return id;
            }
            let id = match current() {
                Some((sched, _)) => sched.new_resource(),
                None => usize::MAX,
            };
            *slot = Some(id);
            id
        }
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        match current() {
            Some((sched, me)) => {
                loop {
                    sched.yield_point(me);
                    if self
                        .locked
                        .compare_exchange(false, true, StdOrdering::SeqCst, StdOrdering::SeqCst)
                        .is_ok()
                    {
                        break;
                    }
                    let id = self.resource_id();
                    sched.block(me, BlockOn::Mutex(id));
                }
                MutexGuard { lock: self }
            }
            None => {
                while self
                    .locked
                    .compare_exchange(false, true, StdOrdering::SeqCst, StdOrdering::SeqCst)
                    .is_err()
                {
                    std::thread::yield_now();
                }
                MutexGuard { lock: self }
            }
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        yield_point();
        if self
            .locked
            .compare_exchange(false, true, StdOrdering::SeqCst, StdOrdering::SeqCst)
            .is_ok()
        {
            Some(MutexGuard { lock: self })
        } else {
            None
        }
    }
}

pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.locked.store(false, StdOrdering::SeqCst);
        if let Some((sched, me)) = current() {
            let id = self.lock.resource_id();
            sched.wake(BlockOn::Mutex(id));
            // yield_point can panic (abort sentinel); never from a Drop that
            // may itself run during unwinding — that would be a double panic.
            if !std::thread::panicking() {
                sched.yield_point(me);
            }
        }
    }
}

/// Instrumented atomics: each access is a scheduling point. `Ordering` is
/// accepted for API parity but exploration is sequentially consistent (see
/// crate docs).
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    macro_rules! atomic_type {
        ($name:ident, $std:ty, $prim:ty) => {
            pub struct $name {
                inner: $std,
            }

            impl std::fmt::Debug for $name {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    self.inner.fmt(f)
                }
            }

            impl Default for $name {
                fn default() -> Self {
                    Self::new(<$prim>::default())
                }
            }

            impl $name {
                pub const fn new(v: $prim) -> Self {
                    Self {
                        inner: <$std>::new(v),
                    }
                }

                pub fn load(&self, _o: Ordering) -> $prim {
                    super::yield_point();
                    self.inner.load(Ordering::SeqCst)
                }

                pub fn store(&self, v: $prim, _o: Ordering) {
                    super::yield_point();
                    self.inner.store(v, Ordering::SeqCst)
                }

                pub fn swap(&self, v: $prim, _o: Ordering) -> $prim {
                    super::yield_point();
                    self.inner.swap(v, Ordering::SeqCst)
                }

                pub fn compare_exchange(
                    &self,
                    cur: $prim,
                    new: $prim,
                    _s: Ordering,
                    _f: Ordering,
                ) -> Result<$prim, $prim> {
                    super::yield_point();
                    self.inner
                        .compare_exchange(cur, new, Ordering::SeqCst, Ordering::SeqCst)
                }
            }
        };
    }

    atomic_type!(AtomicBool, std::sync::atomic::AtomicBool, bool);
    atomic_type!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
    atomic_type!(AtomicU64, std::sync::atomic::AtomicU64, u64);

    impl AtomicUsize {
        pub fn fetch_add(&self, v: usize, _o: Ordering) -> usize {
            super::yield_point();
            self.inner.fetch_add(v, Ordering::SeqCst)
        }
    }

    impl AtomicU64 {
        pub fn fetch_add(&self, v: u64, _o: Ordering) -> u64 {
            super::yield_point();
            self.inner.fetch_add(v, Ordering::SeqCst)
        }
    }

    impl AtomicBool {
        pub fn fetch_or(&self, v: bool, _o: Ordering) -> bool {
            super::yield_point();
            self.inner.fetch_or(v, Ordering::SeqCst)
        }
    }
}
