//! Offline stand-in for the `loom` model checker (see `vendor/bytes` for the
//! vendoring rationale).
//!
//! [`model`] runs a closure under **every schedule** of its loom-threads'
//! synchronization operations, via depth-first exploration of the decision
//! tree: each atomic access, mutex acquire/release, spawn, join, and yield is
//! a scheduling point; wherever more than one thread is runnable, the
//! explorer branches. A run fails — with the full schedule trace — if any
//! interleaving panics (assertion failure) or deadlocks (no thread runnable,
//! not all finished).
//!
//! **Scope relative to real loom:** exploration is *sequentially consistent*.
//! Memory `Ordering` arguments are accepted for API parity but all accesses
//! are modeled as SeqCst, so this checker proves schedule-interleaving
//! properties (lost signals, check-then-act races, deadlock, liveness of
//! shutdown) and does **not** prove the absence of relaxed-memory bugs.
//! Ordering discipline is enforced separately by `cargo xtask lint`'s
//! `relaxed-ordering` lint, which forbids `Ordering::Relaxed` outside an
//! audited allowlist.
//!
//! Execution model: loom threads are real OS threads, but a token scheduler
//! ensures exactly one runs at a time; every instrumented operation re-enters
//! the scheduler, which replays a choice script (DFS prefix) and then takes
//! first-runnable defaults, recording each decision. After each run the
//! deepest non-exhausted decision is advanced — standard iterative DFS over
//! schedules.

pub mod rt;
pub mod sync;
pub mod thread;

pub use rt::model;

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use super::sync::{Arc, Mutex};

    #[test]
    fn counter_is_exact_under_all_interleavings() {
        super::model(|| {
            let n = Arc::new(Mutex::new(0u32));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = n.clone();
                    super::thread::spawn(move || {
                        let mut g = n.lock();
                        *g += 1;
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(*n.lock(), 2);
        });
    }

    #[test]
    fn check_then_act_race_is_caught() {
        // Non-atomic increment via load;store — some schedule must lose an
        // update, and the explorer must find it.
        let caught = std::panic::catch_unwind(|| {
            super::model(|| {
                let n = Arc::new(AtomicUsize::new(0));
                let handles: Vec<_> = (0..2)
                    .map(|_| {
                        let n = n.clone();
                        super::thread::spawn(move || {
                            let v = n.load(Ordering::SeqCst);
                            n.store(v + 1, Ordering::SeqCst);
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().unwrap();
                }
                assert_eq!(n.load(Ordering::SeqCst), 2);
            });
        });
        assert!(caught.is_err(), "explorer missed the lost-update schedule");
    }

    #[test]
    fn abba_deadlock_is_detected() {
        let caught = std::panic::catch_unwind(|| {
            super::model(|| {
                let a = Arc::new(Mutex::new(()));
                let b = Arc::new(Mutex::new(()));
                let (a2, b2) = (a.clone(), b.clone());
                let t = super::thread::spawn(move || {
                    let _ga = a2.lock();
                    let _gb = b2.lock();
                });
                let _gb = b.lock();
                let _ga = a.lock();
                drop(_ga);
                drop(_gb);
                t.join().unwrap();
            });
        });
        let msg = match caught {
            Err(p) => p
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_else(|| "non-string panic".into()),
            Ok(()) => panic!("explorer missed the ABBA deadlock"),
        };
        assert!(msg.contains("deadlock"), "unexpected failure: {msg}");
    }

    #[test]
    fn stop_flag_with_seqcst_is_live() {
        // Shape of the runtime shutdown protocol: a poller loops until the
        // stop flag is set; the main thread sets it and joins.
        super::model(|| {
            let stop = Arc::new(AtomicBool::new(false));
            let s2 = stop.clone();
            let poller = super::thread::spawn(move || {
                // Bounded poll loop: an unbounded spin would give the DFS an
                // infinite schedule tree (models must be finite).
                for _ in 0..3 {
                    if s2.load(Ordering::Acquire) {
                        break;
                    }
                }
            });
            stop.store(true, Ordering::Release);
            poller.join().unwrap();
            assert!(stop.load(Ordering::Acquire));
        });
    }

    #[test]
    fn primitives_work_outside_model() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        let h = super::thread::spawn(|| 7);
        assert_eq!(h.join().unwrap(), 7);
    }
}
