//! Offline stand-in for the `criterion` crate (see `vendor/bytes` for the
//! rationale). Provides the group/bench-function API surface the workspace's
//! benches use, measuring wall-clock time with a fixed warm-up iteration and
//! reporting min/mean per benchmark. No statistics beyond that — the point
//! is that `cargo bench` compiles, runs, and prints comparable numbers
//! offline.
//!
//! Two harness extensions the workspace relies on:
//!
//! * **`--test` mode** (`cargo bench -- --test`, mirroring real criterion):
//!   each benchmark runs exactly one un-timed iteration. CI uses this as a
//!   compile-and-smoke job that cannot be flaky on timing.
//! * **JSON emission**: when `PREMA_BENCH_JSON` names a file, every finished
//!   benchmark appends one JSON line `{"id", "min_ns", "mean_ns", "samples"}`
//!   to it. `cargo xtask bench-json` aggregates these into the checked-in
//!   `BENCH_*.json` baselines.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbench group: {name}");
        let test_mode = self.test_mode;
        BenchmarkGroup {
            _c: self,
            name,
            sample_size: 20,
            test_mode,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        run_bench(&id, 20, self.test_mode, f);
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
    test_mode: bool,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Target measurement time; accepted for API parity, ignored (sampling
    /// here is count-based).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        run_bench(&id, self.sample_size, self.test_mode, f);
        self
    }

    /// Finish the group.
    pub fn finish(self) {}
}

fn run_bench(id: &str, samples: usize, test_mode: bool, mut f: impl FnMut(&mut Bencher)) {
    if test_mode {
        // Smoke mode: prove the benchmark runs, measure nothing.
        let mut b = Bencher {
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("  {id:<48} test ok (1 iteration)");
        return;
    }
    // Warm-up sample (discarded), then timed samples.
    let mut b = Bencher {
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        times.push(b.elapsed);
    }
    let min = times.iter().min().copied().unwrap_or_default();
    let total: Duration = times.iter().sum();
    let mean = total / samples as u32;
    println!("  {id:<48} min {min:>12.3?}  mean {mean:>12.3?}  ({samples} samples)");
    emit_json(id, min, mean, samples);
}

/// Append one JSON line per finished benchmark to `$PREMA_BENCH_JSON`.
fn emit_json(id: &str, min: Duration, mean: Duration, samples: usize) {
    let Ok(path) = std::env::var("PREMA_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    use std::io::Write;
    let escaped: String = id
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            _ => vec![c],
        })
        .collect();
    let line = format!(
        "{{\"id\":\"{}\",\"min_ns\":{},\"mean_ns\":{},\"samples\":{}}}",
        escaped,
        min.as_nanos(),
        mean.as_nanos(),
        samples
    );
    match std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        Ok(mut file) => {
            let _ = writeln!(file, "{line}");
        }
        Err(err) => eprintln!("PREMA_BENCH_JSON: cannot append to {path}: {err}"),
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the hot loop.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Time one execution of `f` (the sample loop is driven by the harness).
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        black_box(f());
        self.elapsed += start.elapsed();
    }
}

/// Group several benchmark functions under one name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_harness_runs() {
        let mut c = Criterion {
            test_mode: false, // pin: the test binary's own args must not leak in
        };
        let mut group = c.benchmark_group("t");
        group.sample_size(3);
        let mut count = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        group.finish();
        // warm-up + 3 samples
        assert_eq!(count, 4);
    }

    #[test]
    fn test_mode_runs_exactly_once() {
        let mut c = Criterion { test_mode: true };
        let mut count = 0u32;
        c.bench_function("once", |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        assert_eq!(count, 1);
    }

    #[test]
    fn json_lines_append_with_escaping() {
        let dir = std::env::temp_dir().join(format!("criterion-json-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.jsonl");
        std::env::set_var("PREMA_BENCH_JSON", &path);
        emit_json(
            "group/na\"me",
            Duration::from_nanos(5),
            Duration::from_nanos(9),
            3,
        );
        std::env::remove_var("PREMA_BENCH_JSON");
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            text,
            "{\"id\":\"group/na\\\"me\",\"min_ns\":5,\"mean_ns\":9,\"samples\":3}\n"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
