//! Offline stand-in for the `criterion` crate (see `vendor/bytes` for the
//! rationale). Provides the group/bench-function API surface the workspace's
//! benches use, measuring wall-clock time with a fixed warm-up iteration and
//! reporting min/mean per benchmark. No statistics beyond that — the point
//! is that `cargo bench` compiles, runs, and prints comparable numbers
//! offline.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbench group: {name}");
        BenchmarkGroup {
            _c: self,
            name,
            sample_size: 20,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        run_bench(&id, 20, f);
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Target measurement time; accepted for API parity, ignored (sampling
    /// here is count-based).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        run_bench(&id, self.sample_size, f);
        self
    }

    /// Finish the group.
    pub fn finish(self) {}
}

fn run_bench(id: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    // Warm-up sample (discarded), then timed samples.
    let mut b = Bencher {
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        times.push(b.elapsed);
    }
    let min = times.iter().min().copied().unwrap_or_default();
    let total: Duration = times.iter().sum();
    let mean = total / samples as u32;
    println!("  {id:<48} min {min:>12.3?}  mean {mean:>12.3?}  ({samples} samples)");
}

/// Passed to benchmark closures; [`Bencher::iter`] times the hot loop.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Time one execution of `f` (the sample loop is driven by the harness).
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        black_box(f());
        self.elapsed += start.elapsed();
    }
}

/// Group several benchmark functions under one name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_harness_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(3);
        let mut count = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        group.finish();
        // warm-up + 3 samples
        assert_eq!(count, 4);
    }
}
