//! Unbounded MPMC channels and a homogeneous `Select`.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct Chan<T> {
    queue: Mutex<VecDeque<T>>,
    cv: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

/// Create an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        queue: Mutex::new(VecDeque::new()),
        cv: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (Sender { chan: chan.clone() }, Receiver { chan })
}

/// Error returned by [`Sender::send`] when every receiver is gone.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and all senders dropped.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with no message.
    Timeout,
    /// The channel is empty and all senders dropped.
    Disconnected,
}

/// Error returned by [`Receiver::recv`] and [`SelectedOperation::recv`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub struct RecvError;

/// Sending half of an unbounded channel.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan.senders.fetch_add(1, Ordering::Relaxed);
        Sender {
            chan: self.chan.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.chan.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender gone: wake blocked receivers so they can observe
            // the disconnect.
            self.chan.cv.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> Sender<T> {
    /// Enqueue a message (never blocks). Fails only if every receiver has
    /// been dropped.
    pub fn send(&self, t: T) -> Result<(), SendError<T>> {
        if self.chan.receivers.load(Ordering::Acquire) == 0 {
            return Err(SendError(t));
        }
        let mut q = self.chan.queue.lock().unwrap_or_else(|p| p.into_inner());
        q.push_back(t);
        drop(q);
        self.chan.cv.notify_one();
        Ok(())
    }
}

/// Receiving half of an unbounded channel.
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.chan.receivers.fetch_add(1, Ordering::Relaxed);
        Receiver {
            chan: self.chan.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.chan.receivers.fetch_sub(1, Ordering::AcqRel);
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

impl<T> Receiver<T> {
    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut q = self.chan.queue.lock().unwrap_or_else(|p| p.into_inner());
        match q.pop_front() {
            Some(t) => Ok(t),
            None => {
                if self.chan.senders.load(Ordering::Acquire) == 0 {
                    Err(TryRecvError::Disconnected)
                } else {
                    Err(TryRecvError::Empty)
                }
            }
        }
    }

    /// Blocking receive.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut q = self.chan.queue.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(t) = q.pop_front() {
                return Ok(t);
            }
            if self.chan.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvError);
            }
            q = self.chan.cv.wait(q).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Blocking receive with a deadline.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut q = self.chan.queue.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(t) = q.pop_front() {
                return Ok(t);
            }
            if self.chan.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _res) = self
                .chan
                .cv
                .wait_timeout(q, deadline - now)
                .unwrap_or_else(|p| p.into_inner());
            q = guard;
        }
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.chan
            .queue
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Error returned by [`Select::select_timeout`] when the deadline passes.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub struct SelectTimeoutError;

/// Waits on several receivers of the same element type at once.
///
/// The real crossbeam `Select` is heterogeneous; this stand-in supports the
/// homogeneous case, which is how the workspace uses it (one inbox per peer
/// rank, all carrying the same envelope type). The wait strategy polls the
/// registered receivers with a micro-sleep backoff — adequate for the short
/// timeouts the runtime's polling loops use.
pub struct Select<'a, T> {
    rxs: Vec<&'a Receiver<T>>,
}

impl<'a, T> Default for Select<'a, T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'a, T> Select<'a, T> {
    /// Empty selector.
    pub fn new() -> Self {
        Select { rxs: Vec::new() }
    }

    /// Register a receive operation; returns its index.
    pub fn recv(&mut self, rx: &'a Receiver<T>) -> usize {
        self.rxs.push(rx);
        self.rxs.len() - 1
    }

    /// Wait until any registered receiver has a message, or the timeout
    /// elapses.
    pub fn select_timeout(
        &mut self,
        timeout: Duration,
    ) -> Result<SelectedOperation<T>, SelectTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut pause = Duration::from_micros(10);
        loop {
            for (index, rx) in self.rxs.iter().enumerate() {
                if let Ok(value) = rx.try_recv() {
                    return Ok(SelectedOperation { index, value });
                }
            }
            if Instant::now() >= deadline {
                return Err(SelectTimeoutError);
            }
            std::thread::sleep(pause.min(deadline.saturating_duration_since(Instant::now())));
            pause = (pause * 2).min(Duration::from_millis(1));
        }
    }
}

/// A completed receive operation produced by [`Select::select_timeout`].
///
/// Unlike real crossbeam (which returns a token you redeem against the
/// receiver), the message is already dequeued; [`SelectedOperation::recv`]
/// hands it over.
pub struct SelectedOperation<T> {
    index: usize,
    value: T,
}

impl<T> SelectedOperation<T> {
    /// Index of the receiver that fired (registration order).
    pub fn index(&self) -> usize {
        self.index
    }

    /// Complete the operation, returning the received message. The receiver
    /// argument exists for crossbeam API parity.
    #[allow(clippy::result_unit_err)]
    pub fn recv(self, _rx: &Receiver<T>) -> Result<T, RecvError> {
        Ok(self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(rx.try_recv(), Ok(i));
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_detected() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));

        let (tx2, rx2) = unbounded::<u32>();
        drop(rx2);
        assert!(tx2.send(5).is_err());
    }

    #[test]
    fn recv_timeout_wakes_on_send() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            tx.send(42u32).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(2)), Ok(42));
        h.join().unwrap();
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = unbounded::<u32>();
        let start = Instant::now();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(25)),
            Err(RecvTimeoutError::Timeout)
        );
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn select_over_multiple_receivers() {
        let (tx_a, rx_a) = unbounded::<u32>();
        let (_tx_b, rx_b) = unbounded::<u32>();
        tx_a.send(7).unwrap();
        let mut sel = Select::new();
        sel.recv(&rx_b);
        sel.recv(&rx_a);
        let op = sel.select_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(op.index(), 1);
        assert_eq!(op.recv(&rx_a), Ok(7));
    }

    #[test]
    fn select_timeout_elapses() {
        let (_tx, rx) = unbounded::<u32>();
        let mut sel = Select::new();
        sel.recv(&rx);
        let start = Instant::now();
        assert!(sel.select_timeout(Duration::from_millis(20)).is_err());
        assert!(start.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn concurrent_senders_all_arrive() {
        let (tx, rx) = unbounded::<u32>();
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..250 {
                        tx.send(t * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        drop(tx);
        let mut n = 0;
        while rx.try_recv().is_ok() {
            n += 1;
        }
        assert_eq!(n, 1000);
    }
}
