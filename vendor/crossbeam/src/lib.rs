//! Offline stand-in for the `crossbeam` crate (see `vendor/bytes` for the
//! rationale). Provides `crossbeam::channel` with unbounded MPMC channels
//! and a `Select` restricted to receivers of one element type — which is the
//! only way this workspace uses it (waiting on a rank's N inboxes).

pub mod channel;
