//! Offline stand-in for the `parking_lot` crate (see `vendor/bytes` for the
//! rationale). Wraps `std::sync` primitives with `parking_lot`'s
//! non-poisoning API: `lock()` returns the guard directly.

use std::sync;

/// A mutex whose `lock` never returns a poison error.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// New mutex holding `t`.
    pub const fn new(t: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(t),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(t) => t,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking. A panic in another critical section does
    /// not poison the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(t) => t,
            Err(p) => p.into_inner(),
        }
    }
}

/// A reader–writer lock with non-poisoning guards.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// New lock holding `t`.
    pub const fn new(t: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(t),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

/// A condition variable (identical to `std`'s, re-exported for parity).
pub type Condvar = sync::Condvar;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
