//! Offline stand-in for the `rand` crate (see `vendor/bytes` for the
//! rationale). Deterministic xoshiro256++ generator behind the `rand 0.8`
//! API subset the workspace uses: `StdRng::seed_from_u64`, `Rng::gen_range`
//! over integer/float ranges, and `SliceRandom::shuffle`.
//!
//! Streams differ from the real `rand` crate (which is version-licensed to
//! change them anyway); everything in this workspace treats seeds as opaque
//! reproducibility handles, not as cross-crate contracts.

use std::ops::Range;

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (splitmix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range, e.g. `rng.gen_range(0..n)`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A uniformly random value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
        uniform_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types a uniform sample can be drawn from directly.
pub trait Standard: Sized {
    /// Draw one value.
    fn from_rng<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        uniform_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        uniform_f64(rng.next_u64()) as f32
    }
}

/// Map 64 random bits to `[0, 1)` with 53-bit precision.
fn uniform_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Debiased multiply-shift (Lemire); span is far below 2^63
                // in every use here, so a simple rejection loop suffices.
                let zone = u64::MAX - (u64::MAX % span);
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return self.start + (v % span) as $t;
                    }
                }
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let zone = u64::MAX - (u64::MAX % span);
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return (self.start as i128 + (v % span) as i128) as $t;
                    }
                }
            }
        }
    )*};
}
impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + uniform_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (uniform_f64(rng.next_u64()) as f32) * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// splitmix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
        for _ in 0..100 {
            let v: u64 = rng.gen_range(700..1300);
            assert!((700..1300).contains(&v));
        }
        for _ in 0..100 {
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left input intact");
    }

    #[test]
    fn gen_bool_rate_reasonable() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "{hits}");
    }
}
