//! The PREMA lint rules. Each lint is a pure function over [`SourceFile`]s
//! (plus explicit configuration), so fixtures in the tests below exercise
//! exactly the code `cargo xtask lint` runs.

use crate::source::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

/// One lint finding.
#[derive(Debug, PartialEq, Eq)]
pub struct Violation {
    pub path: String,
    pub line: usize,
    pub lint: &'static str,
    pub message: String,
}

impl Violation {
    pub(crate) fn new(path: &str, line: usize, lint: &'static str, message: String) -> Self {
        Violation {
            path: path.to_string(),
            line,
            lint,
            message,
        }
    }
}

/// One parsed allowlist entry: the 1-based line it sits on in the allowlist
/// file (so stale-entry diagnostics point at the exact line to delete) and
/// its mandatory justification.
pub struct AllowEntry {
    pub line: usize,
    pub why: String,
}

/// Parsed allowlist: key -> entry, where a key is either a
/// workspace-relative `path` or a `path:line` pair.
///
/// File format: one `path: justification` or `path:line: justification` per
/// line; `#` starts a comment. A justification is mandatory — an allowlist
/// entry without a reason is itself a violation (reported against the
/// allowlist file). Line-keyed lists ([`Allowlist::parse_line_keyed`])
/// additionally reject plain-path keys, so a single entry can never
/// blanket-allow a whole file.
pub struct Allowlist {
    pub file: String,
    pub entries: BTreeMap<String, AllowEntry>,
    pub parse_errors: Vec<Violation>,
}

impl Allowlist {
    pub fn parse(file: &str, text: &str) -> Allowlist {
        Self::parse_with(file, text, false)
    }

    /// Parse an allowlist whose entries must all be `path:line: reason` —
    /// used by lints that refuse file-granular allowances.
    pub fn parse_line_keyed(file: &str, text: &str) -> Allowlist {
        Self::parse_with(file, text, true)
    }

    fn parse_with(file: &str, text: &str, line_keyed: bool) -> Allowlist {
        let mut entries = BTreeMap::new();
        let mut parse_errors = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let parsed = line.split_once(':').map(|(path, rest)| {
                // `path:line: reason` when the text between the first two
                // colons is an integer; `path: reason` otherwise.
                match rest.split_once(':') {
                    Some((num, why)) if num.trim().parse::<usize>().is_ok() => (
                        format!("{}:{}", path.trim(), num.trim()),
                        why.trim().to_string(),
                        true,
                    ),
                    _ => (path.trim().to_string(), rest.trim().to_string(), false),
                }
            });
            match parsed {
                Some((key, why, has_line)) if !why.is_empty() => {
                    if line_keyed && !has_line {
                        parse_errors.push(Violation::new(
                            file,
                            i + 1,
                            "allowlist",
                            format!(
                                "entry `{key}` allows a whole file; this \
                                 allowlist requires `path:line: justification`"
                            ),
                        ));
                        continue;
                    }
                    entries.insert(key, AllowEntry { line: i + 1, why });
                }
                _ => parse_errors.push(Violation::new(
                    file,
                    i + 1,
                    "allowlist",
                    format!("entry must be `path[:line]: justification`, got `{line}`"),
                )),
            }
        }
        Allowlist {
            file: file.to_string(),
            entries,
            parse_errors,
        }
    }

    pub fn allows(&self, key: &str) -> bool {
        self.entries.contains_key(key)
    }

    /// Entries that never matched a finding: stale allowances are violations
    /// too, so the allowlist can only shrink. Reported at the entry's own
    /// line in the allowlist file.
    pub fn unused(&self, used: &BTreeSet<String>) -> Vec<Violation> {
        self.entries
            .iter()
            .filter(|(k, _)| !used.contains(*k))
            .map(|(k, e)| {
                Violation::new(
                    &self.file,
                    e.line,
                    "allowlist",
                    format!("stale entry `{k}`: no finding at that key any more"),
                )
            })
            .collect()
    }
}

/// Forbid `Ordering::Relaxed` outside the allowlist.
///
/// Rationale: the vendored loom explorer verifies schedules under sequential
/// consistency only, so every relaxed access is unverified by tooling and
/// must carry a written justification. The allowlist is line-granular
/// (`path:line` keys): each individual relaxed access needs its own
/// justified entry, so a whole file can never be blanket-allowed.
pub fn lint_relaxed_ordering(
    file: &SourceFile,
    allow: &Allowlist,
    used: &mut BTreeSet<String>,
) -> Vec<Violation> {
    let mut out = Vec::new();
    for (ln, stripped, _orig) in file.all_lines() {
        if !stripped.contains("Ordering::Relaxed") {
            continue;
        }
        let key = format!("{}:{ln}", file.path);
        if allow.allows(&key) {
            used.insert(key);
            continue;
        }
        out.push(Violation::new(
            &file.path,
            ln,
            "relaxed-ordering",
            "Ordering::Relaxed outside the audited allowlist; use \
             Acquire/Release (or SeqCst) or add a `path:line:` allowlist \
             entry with a justification"
                .to_string(),
        ));
    }
    out
}

/// Forbid blocking calls — `std::thread::sleep` and bare `.recv()` — in
/// non-test runtime code of the message-driven crates. Handlers run on the
/// polling thread; a blocked handler stalls every object on the node.
pub fn lint_blocking_calls(
    file: &SourceFile,
    allow: &Allowlist,
    used: &mut BTreeSet<String>,
) -> Vec<Violation> {
    let mut out = Vec::new();
    for (ln, stripped, _orig) in file.non_test_lines() {
        let sleep = stripped.contains("thread::sleep(");
        // `.recv()` blocks forever; `.recv_timeout(..)` / `.try_recv()` are
        // the sanctioned forms.
        let recv = stripped.contains(".recv()");
        if !sleep && !recv {
            continue;
        }
        if allow.allows(&file.path) {
            used.insert(file.path.clone());
            continue;
        }
        let what = if sleep { "thread::sleep" } else { ".recv()" };
        out.push(Violation::new(
            &file.path,
            ln,
            "blocking-call",
            format!(
                "{what} in message-driven runtime code blocks the polling \
                 thread; use recv_timeout/try_recv or move the wait off the \
                 handler path (or allowlist with a justification)"
            ),
        ));
    }
    out
}

/// Files allowed to read the wall clock directly: the trace crate owns the
/// epoch every live `Tracer` stamps against, and the simulator's time module
/// defines the virtual clock. Everything else must stamp via those.
const TRACE_CLOCK_OWNERS: &[&str] = &["crates/trace/src/", "crates/sim/src/time.rs"];

/// Forbid raw `Instant::now()` / `SystemTime::now()` outside the clock
/// owners (and the allowlist). A timestamp taken off any other clock cannot
/// be correlated with trace records, so figures derived from a trace would
/// silently disagree with ad-hoc wall-clock measurements.
pub fn lint_trace_hygiene(
    file: &SourceFile,
    allow: &Allowlist,
    used: &mut BTreeSet<String>,
) -> Vec<Violation> {
    if TRACE_CLOCK_OWNERS
        .iter()
        .any(|p| file.path.starts_with(p) || file.path == *p)
    {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (ln, stripped, _orig) in file.non_test_lines() {
        let instant = stripped.contains("Instant::now(");
        let system = stripped.contains("SystemTime::now(");
        if !instant && !system {
            continue;
        }
        if allow.allows(&file.path) {
            used.insert(file.path.clone());
            continue;
        }
        let what = if instant {
            "Instant::now()"
        } else {
            "SystemTime::now()"
        };
        out.push(Violation::new(
            &file.path,
            ln,
            "trace-hygiene",
            format!(
                "{what} outside the trace/sim clock owners: stamp time via a \
                 prema_trace::Tracer (wall nanos since the sink epoch) or \
                 simulated SimTime so traces stay correlatable (or allowlist \
                 with a justification)"
            ),
        ));
    }
    out
}

/// Crates whose send/receive paths must build payloads through the buffer
/// pool, and the one module allowed to construct `Bytes` from raw vectors
/// (it *is* the pool).
const BATCH_HOT_CRATES: &[&str] = &["crates/dcs/src/", "crates/mol/src/"];
const BATCH_POOL_OWNER: &str = "crates/dcs/src/pool.rs";

/// Forbid raw `Bytes::from(..)` / `Bytes::copy_from_slice(..)` payload
/// construction in the dcs/mol hot paths outside the pool module (and the
/// allowlist). Every such call is a fresh heap allocation the pool exists to
/// avoid; hot paths must take buffers via `pool::take` / `WireWriter::pooled`
/// or freeze them via `pool::build`.
pub fn lint_batch_hygiene(
    file: &SourceFile,
    allow: &Allowlist,
    used: &mut BTreeSet<String>,
) -> Vec<Violation> {
    if !BATCH_HOT_CRATES.iter().any(|p| file.path.starts_with(p)) || file.path == BATCH_POOL_OWNER {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (ln, stripped, _orig) in file.non_test_lines() {
        // `Bytes::from_static` is allocation-free and stays legal; the `(`
        // in the needle keeps it from matching here.
        let from = stripped.contains("Bytes::from(");
        let copy = stripped.contains("Bytes::copy_from_slice(");
        if !from && !copy {
            continue;
        }
        if allow.allows(&file.path) {
            used.insert(file.path.clone());
            continue;
        }
        let what = if from {
            "Bytes::from(..)"
        } else {
            "Bytes::copy_from_slice(..)"
        };
        out.push(Violation::new(
            &file.path,
            ln,
            "batch-hygiene",
            format!(
                "{what} allocates a fresh payload on a dcs/mol hot path; \
                 build through the buffer pool (pool::take / \
                 WireWriter::pooled / pool::build) or allowlist with a \
                 justification"
            ),
        ));
    }
    out
}

/// The transport files whose steady-state functions carry the ring mesh's
/// zero-allocation guarantee (asserted at runtime by `benches/ring.rs`; this
/// lint catches the regression at review time, before a bench ever runs).
const RING_HOT_FILES: &[&str] = &[
    "crates/dcs/src/transport.rs",
    "crates/dcs/src/ring.rs",
    "crates/dcs/src/udp.rs",
];

/// The steady-state function names within those files. Construction-time
/// code (`new`, `with_capacity`, `spsc`, fabric building) may allocate
/// freely; everything a message crosses per send/receive may not.
const RING_HOT_FNS: &[&str] = &[
    "send",
    "send_batch",
    "try_recv",
    "try_recv_batch",
    "recv_timeout",
    "sweep",
    "pop_pair",
    "push",
    "pop",
    "mark",
    "clear",
    "is_marked",
    "any",
    "prepare",
    "cancel",
    "park",
    "unpark",
    "is_empty",
    // udp.rs steady state: the syscall batchers reuse preallocated
    // scatter/gather scaffolding and pool-backed datagram buffers.
    "flush_tx",
    "drain_rx",
];

/// Tokens that put a heap allocation on the line that carries them.
const RING_ALLOC_TOKENS: &[&str] = &[
    "Box::new(",
    "Vec::new(",
    "Vec::with_capacity(",
    "vec![",
    "VecDeque::new(",
    "String::new(",
    "String::from(",
    ".to_vec(",
    ".to_string(",
    "format!(",
    "BTreeMap::new(",
    "HashMap::new(",
];

/// Forbid allocation tokens in the ring transport's steady-state functions
/// (outside the line-keyed allowlist). The attribution is lexical: a line
/// belongs to the most recently declared function, so cold constructors stay
/// free while every line of `send`/`try_recv`/`sweep`/… is policed.
pub fn lint_ring_hygiene(
    file: &SourceFile,
    allow: &Allowlist,
    used: &mut BTreeSet<String>,
) -> Vec<Violation> {
    if !RING_HOT_FILES.contains(&file.path.as_str()) {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut in_hot_fn = false;
    for (ln, stripped, _orig) in file.non_test_lines() {
        if let Some(name) = fn_decl_name(stripped) {
            in_hot_fn = RING_HOT_FNS.contains(&name.as_str());
        }
        if !in_hot_fn {
            continue;
        }
        let Some(token) = RING_ALLOC_TOKENS.iter().find(|t| stripped.contains(*t)) else {
            continue;
        };
        let key = format!("{}:{ln}", file.path);
        if allow.allows(&key) {
            used.insert(key);
            continue;
        }
        out.push(Violation::new(
            &file.path,
            ln,
            "ring-hygiene",
            format!(
                "`{token}` allocates inside a steady-state transport \
                 function; the ring fast path must be allocation-free (move \
                 the allocation to construction, or add a `path:line:` \
                 allowlist entry with a justification)"
            ),
        ));
    }
    out
}

/// `[pub[(..)]] [unsafe] fn NAME` on one line -> NAME (the token after a
/// whole-word `fn`, trimmed at its generics/argument list).
fn fn_decl_name(stripped: &str) -> Option<String> {
    let mut toks = stripped.split_whitespace().peekable();
    while let Some(t) = toks.next() {
        if t == "fn" {
            let name: String = toks
                .next()?
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if name.is_empty() {
                return None;
            }
            return Some(name);
        }
    }
    None
}

/// Minimum words for an `.expect("...")` message to count as stating an
/// invariant rather than restating the operation.
const EXPECT_MIN_WORDS: usize = 3;

/// Forbid `.unwrap()` and short `.expect(..)` messages in non-test code.
pub fn lint_unwrap(file: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    for (ln, stripped, orig) in file.non_test_lines() {
        if stripped.contains(".unwrap()") {
            out.push(Violation::new(
                &file.path,
                ln,
                "unwrap",
                "`.unwrap()` in non-test code; propagate the error or use \
                 `.expect(\"<invariant that makes this infallible>\")`"
                    .to_string(),
            ));
        }
        // Judge `.expect(` messages. Occurrences are located in the stripped
        // line (so comments/strings cannot fake one) but the message text
        // lives in the original line; byte offsets may differ between the
        // two (multi-byte chars blank to single spaces), so only proceed
        // when the occurrence counts agree and walk the original.
        let in_stripped = stripped.matches(".expect(").count();
        if in_stripped > 0 && orig.matches(".expect(").count() == in_stripped {
            let mut from = 0usize;
            while let Some(pos) = orig[from..].find(".expect(") {
                from += pos + ".expect(".len();
                if let Some(msg) = expect_message(&orig[from..]) {
                    let words = msg.split_whitespace().count();
                    if words < EXPECT_MIN_WORDS {
                        out.push(Violation::new(
                            &file.path,
                            ln,
                            "unwrap",
                            format!(
                                "`.expect(\"{msg}\")` message is not an \
                                 invariant (needs >= {EXPECT_MIN_WORDS} words \
                                 saying why this cannot fail)"
                            ),
                        ));
                    }
                }
                // Non-literal argument (format!, variable, multi-line
                // literal): cannot judge the message textually; let it pass.
            }
        }
    }
    out
}

/// Extract a string literal starting at (or right after whitespace at) the
/// head of `rest`, handling escaped quotes. Returns `None` when the
/// argument is not a same-line string literal.
fn expect_message(rest: &str) -> Option<String> {
    let rest = rest.trim_start();
    let inner = rest.strip_prefix('"')?;
    let mut msg = String::new();
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => {
                if let Some(e) = chars.next() {
                    msg.push(e);
                }
            }
            '"' => return Some(msg),
            _ => msg.push(c),
        }
    }
    None
}

/// Runtime crates whose `check-invariants` oracles must stay OFF in bench
/// builds: the benches measure the fast path, and a benchmark silently
/// compiled with oracle bookkeeping would publish numbers for a build nobody
/// ships (see DESIGN.md on the bench oracle policy).
const ORACLE_CRATES: &[&str] = &["prema", "prema-mol", "prema-ilb"];

/// Check the bench crate's manifest: every oracle-bearing dependency must
/// resolve to `default-features = false` (stated inline, or inherited from a
/// workspace dependency table that states it), and the manifest must not
/// re-enable `check-invariants` through a feature list.
pub fn lint_bench_manifest(
    bench_path: &str,
    bench_toml: &str,
    workspace_toml: &str,
) -> Vec<Violation> {
    let mut out = Vec::new();
    for dep in ORACLE_CRATES {
        let Some((line_no, entry)) = dep_entry(bench_toml, dep) else {
            continue; // not a dependency at all: nothing to police
        };
        let inline_off = entry.contains("default-features = false");
        let inherited_off = entry.contains("workspace = true")
            && dep_entry(workspace_toml, dep)
                .is_some_and(|(_, ws)| ws.contains("default-features = false"));
        if !(inline_off || inherited_off) {
            out.push(Violation::new(
                bench_path,
                line_no,
                "bench-invariants",
                format!(
                    "bench dependency `{dep}` pulls in default features \
                     (including `check-invariants` oracles); add \
                     `default-features = false` so benches measure the real \
                     fast path"
                ),
            ));
        }
    }
    for (i, line) in bench_toml.lines().enumerate() {
        let code = line.split('#').next().unwrap_or("");
        if code.contains("check-invariants") {
            out.push(Violation::new(
                bench_path,
                i + 1,
                "bench-invariants",
                "bench manifest must not enable `check-invariants`: published \
                 numbers must describe the oracle-free build"
                    .to_string(),
            ));
        }
    }
    out
}

/// Find dependency `dep`'s entry in a manifest: the 1-based line number and
/// the entry text (`dep = { ... }` inline tables and `dep.workspace = true`
/// dotted keys both live on one line in this workspace's manifests).
fn dep_entry(toml: &str, dep: &str) -> Option<(usize, String)> {
    for (i, line) in toml.lines().enumerate() {
        let code = line.split('#').next().unwrap_or("").trim();
        let after = code
            .strip_prefix(dep)
            .and_then(|r| r.trim_start().strip_prefix(['=', '.']).map(|_| ()));
        if after.is_some() {
            return Some((i + 1, code.to_string()));
        }
    }
    None
}

/// Every `const NAME: HandlerId` must be referenced by name somewhere other
/// than its declaration — a handler id that is never registered or
/// dispatched is dead protocol surface (or worse, a typo split across
/// declaration and registration).
pub fn lint_handler_ids(files: &[SourceFile]) -> Vec<Violation> {
    // name -> (path, line) of declaration
    let mut decls: BTreeMap<String, (String, usize)> = BTreeMap::new();
    for f in files {
        for (ln, stripped, _orig) in f.all_lines() {
            if let Some(name) = handler_decl_name(stripped) {
                decls.insert(name, (f.path.clone(), ln));
            }
        }
    }
    let mut out = Vec::new();
    'decl: for (name, (path, line)) in &decls {
        for f in files {
            for (ln, stripped, _orig) in f.all_lines() {
                if (&f.path, ln) == (path, *line) {
                    continue; // the declaration itself
                }
                if mentions_ident(stripped, name) {
                    continue 'decl;
                }
            }
        }
        out.push(Violation::new(
            path,
            *line,
            "handler-id",
            format!(
                "HandlerId constant `{name}` is declared but never referenced \
                 (no registration or dispatch site)"
            ),
        ));
    }
    out
}

/// `[pub] const NAME: HandlerId` on one line -> NAME.
fn handler_decl_name(stripped: &str) -> Option<String> {
    let t = stripped.trim_start();
    let t = t.strip_prefix("pub ").unwrap_or(t);
    let t = t.strip_prefix("const ")?;
    let (name, rest) = t.split_once(':')?;
    if rest.trim_start().starts_with("HandlerId") {
        let name = name.trim();
        if !name.is_empty() && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Some(name.to_string());
        }
    }
    None
}

/// Whole-identifier match (so `H_MOL_MSG` does not count as a reference to
/// `H_MOL`).
fn mentions_ident(line: &str, ident: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = line[from..].find(ident) {
        let at = from + pos;
        let before_ok = at == 0
            || !line[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_');
        let end = at + ident.len();
        let after_ok = end >= line.len()
            || !line[end..]
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        from = at + ident.len();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, src: &str) -> SourceFile {
        SourceFile::parse(path, src)
    }

    fn empty_allow() -> Allowlist {
        Allowlist::parse("allow.txt", "")
    }

    // ---- relaxed-ordering ----

    #[test]
    fn relaxed_outside_allowlist_fires() {
        let f = file(
            "crates/core/src/runtime.rs",
            "fn f(s: &AtomicBool) { s.store(true, Ordering::Relaxed); }\n",
        );
        let mut used = BTreeSet::new();
        let v = lint_relaxed_ordering(&f, &empty_allow(), &mut used);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, "relaxed-ordering");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn relaxed_on_allowlisted_line_passes_and_is_marked_used() {
        let allow = Allowlist::parse_line_keyed(
            "allow.txt",
            "crates/core/src/stats.rs:1: monotone counter, read only for reporting\n",
        );
        assert!(allow.parse_errors.is_empty());
        let f = file(
            "crates/core/src/stats.rs",
            "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n",
        );
        let mut used = BTreeSet::new();
        assert!(lint_relaxed_ordering(&f, &allow, &mut used).is_empty());
        assert!(used.contains("crates/core/src/stats.rs:1"));
        assert!(allow.unused(&used).is_empty());
    }

    #[test]
    fn relaxed_allowance_does_not_cover_other_lines_of_the_file() {
        let allow = Allowlist::parse_line_keyed(
            "allow.txt",
            "crates/core/src/stats.rs:1: monotone counter, read only for reporting\n",
        );
        let f = file(
            "crates/core/src/stats.rs",
            "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\nfn g(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n",
        );
        let mut used = BTreeSet::new();
        let v = lint_relaxed_ordering(&f, &allow, &mut used);
        assert_eq!(v.len(), 1, "only the un-allowlisted line fires");
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn line_keyed_allowlist_rejects_whole_file_entries() {
        let allow = Allowlist::parse_line_keyed(
            "allow.txt",
            "crates/core/src/stats.rs: would blanket-allow the file\n",
        );
        assert!(allow.entries.is_empty());
        assert_eq!(allow.parse_errors.len(), 1);
        assert!(allow.parse_errors[0].message.contains("whole file"));
    }

    #[test]
    fn relaxed_in_comment_or_string_is_ignored() {
        let f = file(
            "crates/core/src/doc.rs",
            "// Ordering::Relaxed is forbidden\nconst S: &str = \"Ordering::Relaxed\";\n",
        );
        let mut used = BTreeSet::new();
        assert!(lint_relaxed_ordering(&f, &empty_allow(), &mut used).is_empty());
    }

    #[test]
    fn stale_allowlist_entry_is_reported_at_its_own_line() {
        let allow = Allowlist::parse(
            "allow.txt",
            "# header comment\ncrates/core/src/kept.rs: still matches\ncrates/core/src/gone.rs: was needed once\n",
        );
        let mut used = BTreeSet::new();
        used.insert("crates/core/src/kept.rs".to_string());
        let v = allow.unused(&used);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("stale"));
        assert!(v[0].message.contains("gone.rs"));
        assert_eq!(v[0].line, 3, "points at the entry's line in the allowlist");
        assert_eq!(v[0].path, "allow.txt");
    }

    #[test]
    fn allowlist_entry_without_justification_is_an_error() {
        let allow = Allowlist::parse("allow.txt", "crates/core/src/runtime.rs\n");
        assert_eq!(allow.parse_errors.len(), 1);
    }

    #[test]
    fn path_line_keys_parse_in_either_mode() {
        let allow = Allowlist::parse(
            "allow.txt",
            "crates/dcs/src/chaos.rs:42: counter only read in stats()\n",
        );
        assert!(allow.parse_errors.is_empty());
        assert!(allow.allows("crates/dcs/src/chaos.rs:42"));
        assert!(!allow.allows("crates/dcs/src/chaos.rs"));
    }

    // ---- blocking calls ----

    #[test]
    fn sleep_in_handler_code_fires() {
        let f = file(
            "crates/mol/src/node.rs",
            "fn on_message() { std::thread::sleep(d); }\n",
        );
        let mut used = BTreeSet::new();
        let v = lint_blocking_calls(&f, &empty_allow(), &mut used);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, "blocking-call");
    }

    #[test]
    fn bare_recv_fires_but_recv_timeout_passes() {
        let f = file(
            "crates/dcs/src/comm.rs",
            "fn a(rx: &Receiver<u8>) { let _ = rx.recv(); }\nfn b(rx: &Receiver<u8>) { let _ = rx.recv_timeout(t); let _ = rx.try_recv(); }\n",
        );
        let mut used = BTreeSet::new();
        let v = lint_blocking_calls(&f, &empty_allow(), &mut used);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn sleep_in_cfg_test_block_passes() {
        let f = file(
            "crates/dcs/src/delay.rs",
            "fn prod() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { std::thread::sleep(d); }\n}\n",
        );
        let mut used = BTreeSet::new();
        assert!(lint_blocking_calls(&f, &empty_allow(), &mut used).is_empty());
    }

    // ---- trace hygiene ----

    #[test]
    fn raw_instant_now_in_runtime_code_fires() {
        let f = file(
            "crates/ilb/src/scheduler.rs",
            "fn f() { let t = Instant::now(); }\n",
        );
        let mut used = BTreeSet::new();
        let v = lint_trace_hygiene(&f, &empty_allow(), &mut used);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, "trace-hygiene");
        assert!(v[0].message.contains("Instant::now()"));
    }

    #[test]
    fn system_time_now_fires_too() {
        let f = file(
            "crates/harness/src/report.rs",
            "fn f() { let t = std::time::SystemTime::now(); }\n",
        );
        let mut used = BTreeSet::new();
        let v = lint_trace_hygiene(&f, &empty_allow(), &mut used);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("SystemTime::now()"));
    }

    #[test]
    fn clock_owners_and_tests_are_exempt() {
        let owner = file(
            "crates/trace/src/lib.rs",
            "fn epoch() -> Instant { Instant::now() }\n",
        );
        let sim_clock = file("crates/sim/src/time.rs", "fn f() { Instant::now(); }\n");
        let test_code = file(
            "crates/dcs/src/transport.rs",
            "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() { Instant::now(); }\n}\n",
        );
        let mut used = BTreeSet::new();
        for f in [owner, sim_clock, test_code] {
            assert!(lint_trace_hygiene(&f, &empty_allow(), &mut used).is_empty());
        }
    }

    #[test]
    fn allowlisted_wall_clock_passes_and_is_marked_used() {
        let allow = Allowlist::parse(
            "allow.txt",
            "crates/dcs/src/delay.rs: latency simulation needs a real deadline clock\n",
        );
        let f = file(
            "crates/dcs/src/delay.rs",
            "fn f() { let d = Instant::now() + self.latency; }\n",
        );
        let mut used = BTreeSet::new();
        assert!(lint_trace_hygiene(&f, &allow, &mut used).is_empty());
        assert!(used.contains("crates/dcs/src/delay.rs"));
    }

    // ---- batch hygiene ----

    #[test]
    fn raw_bytes_from_on_hot_path_fires() {
        let f = file(
            "crates/mol/src/node.rs",
            "fn f(v: Vec<u8>) -> Bytes { Bytes::from(v) }\n",
        );
        let mut used = BTreeSet::new();
        let v = lint_batch_hygiene(&f, &empty_allow(), &mut used);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, "batch-hygiene");
        assert!(v[0].message.contains("pool"));
    }

    #[test]
    fn copy_from_slice_fires_but_from_static_passes() {
        let f = file(
            "crates/dcs/src/comm.rs",
            "fn a(s: &[u8]) -> Bytes { Bytes::copy_from_slice(s) }\nfn b() -> Bytes { Bytes::from_static(b\"x\") }\n",
        );
        let mut used = BTreeSet::new();
        let v = lint_batch_hygiene(&f, &empty_allow(), &mut used);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn pool_module_other_crates_and_tests_are_exempt() {
        let pool = file(
            "crates/dcs/src/pool.rs",
            "fn f(v: Vec<u8>) -> Bytes { Bytes::from(v) }\n",
        );
        let elsewhere = file(
            "crates/harness/src/report.rs",
            "fn f(v: Vec<u8>) -> Bytes { Bytes::from(v) }\n",
        );
        let test_code = file(
            "crates/dcs/src/comm.rs",
            "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t(v: Vec<u8>) -> Bytes { Bytes::from(v) }\n}\n",
        );
        let mut used = BTreeSet::new();
        for f in [pool, elsewhere, test_code] {
            assert!(lint_batch_hygiene(&f, &empty_allow(), &mut used).is_empty());
        }
    }

    #[test]
    fn allowlisted_bytes_construction_passes_and_is_marked_used() {
        let allow = Allowlist::parse(
            "allow.txt",
            "crates/dcs/src/collective.rs: collectives are cold-path setup traffic\n",
        );
        let f = file(
            "crates/dcs/src/collective.rs",
            "fn f(s: &[u8]) -> Bytes { Bytes::copy_from_slice(s) }\n",
        );
        let mut used = BTreeSet::new();
        assert!(lint_batch_hygiene(&f, &allow, &mut used).is_empty());
        assert!(used.contains("crates/dcs/src/collective.rs"));
    }

    // ---- ring hygiene ----

    #[test]
    fn allocation_in_steady_state_fn_fires() {
        let f = file(
            "crates/dcs/src/transport.rs",
            "impl T {\n    fn send(&self, env: Envelope) {\n        let b = Box::new(env);\n    }\n}\n",
        );
        let mut used = BTreeSet::new();
        let v = lint_ring_hygiene(&f, &empty_allow(), &mut used);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, "ring-hygiene");
        assert_eq!(v[0].line, 3);
        assert!(v[0].message.contains("Box::new("));
    }

    #[test]
    fn allocation_in_constructor_passes() {
        let f = file(
            "crates/dcs/src/ring.rs",
            "impl T {\n    pub fn with_capacity(n: usize) -> Self {\n        let v = Vec::with_capacity(n);\n        T { v }\n    }\n}\n",
        );
        let mut used = BTreeSet::new();
        assert!(lint_ring_hygiene(&f, &empty_allow(), &mut used).is_empty());
    }

    #[test]
    fn hot_fn_after_cold_fn_is_still_policed() {
        let f = file(
            "crates/dcs/src/ring.rs",
            "impl T {\n    fn new() -> Self {\n        T { v: Vec::new() }\n    }\n    fn pop(&self) {\n        let s = format!(\"x\");\n    }\n}\n",
        );
        let mut used = BTreeSet::new();
        let v = lint_ring_hygiene(&f, &empty_allow(), &mut used);
        assert_eq!(v.len(), 1, "only the hot fn's allocation fires");
        assert_eq!(v[0].line, 6);
    }

    #[test]
    fn other_files_and_tests_are_exempt() {
        let elsewhere = file(
            "crates/dcs/src/comm.rs",
            "fn send(&self) { let b = Box::new(1); }\n",
        );
        let test_code = file(
            "crates/dcs/src/transport.rs",
            "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn send() { let b = Box::new(1); }\n}\n",
        );
        let mut used = BTreeSet::new();
        for f in [elsewhere, test_code] {
            assert!(lint_ring_hygiene(&f, &empty_allow(), &mut used).is_empty());
        }
    }

    #[test]
    fn allowlisted_hot_allocation_passes_and_is_marked_used() {
        let allow = Allowlist::parse_line_keyed(
            "allow.txt",
            "crates/dcs/src/transport.rs:2: one-time lazy init, not per-message\n",
        );
        let f = file(
            "crates/dcs/src/transport.rs",
            "fn try_recv(&self) {\n    let v = Vec::new();\n}\n",
        );
        let mut used = BTreeSet::new();
        assert!(lint_ring_hygiene(&f, &allow, &mut used).is_empty());
        assert!(used.contains("crates/dcs/src/transport.rs:2"));
        assert!(allow.unused(&used).is_empty());
    }

    // ---- unwrap/expect ----

    #[test]
    fn unwrap_fires_but_unwrap_or_variants_pass() {
        let f = file(
            "crates/ilb/src/scheduler.rs",
            "fn f(x: Option<u8>) -> u8 { x.unwrap() }\nfn g(x: Option<u8>) -> u8 { x.unwrap_or(0) }\nfn h(x: Option<u8>) -> u8 { x.unwrap_or_else(|| 0) }\nfn i(x: Option<u8>) -> u8 { x.unwrap_or_default() }\n",
        );
        let v = lint_unwrap(&f);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn short_expect_fires_invariant_expect_passes() {
        let f = file(
            "crates/mol/src/node.rs",
            "fn f(x: Option<u8>) { x.expect(\"failed\"); }\nfn g(x: Option<u8>) { x.expect(\"directory entry exists: inserted on accept\"); }\n",
        );
        let v = lint_unwrap(&f);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 1);
        assert!(v[0].message.contains("invariant"));
    }

    #[test]
    fn unwrap_in_test_mod_passes() {
        let f = file(
            "crates/dcs/src/transport.rs",
            "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t(x: Option<u8>) { x.unwrap(); }\n}\n",
        );
        assert!(lint_unwrap(&f).is_empty());
    }

    #[test]
    fn unwrap_in_comment_passes() {
        let f = file(
            "crates/core/src/runtime.rs",
            "// do not .unwrap() here\nfn f() {}\n",
        );
        assert!(lint_unwrap(&f).is_empty());
    }

    // ---- handler ids ----

    #[test]
    fn unregistered_handler_id_fires() {
        let decl = file(
            "crates/mol/src/proto.rs",
            "pub const H_MOL_ORPHAN: HandlerId = HandlerId(SYSTEM_BASE + 40);\n",
        );
        let other = file("crates/mol/src/node.rs", "fn f() {}\n");
        let v = lint_handler_ids(&[decl, other]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, "handler-id");
        assert!(v[0].message.contains("H_MOL_ORPHAN"));
    }

    #[test]
    fn registered_handler_id_passes() {
        let decl = file(
            "crates/mol/src/proto.rs",
            "pub const H_MOL_MSG: HandlerId = HandlerId(SYSTEM_BASE + 16);\n",
        );
        let reg = file(
            "crates/mol/src/node.rs",
            "fn wire(r: &mut Registry) { r.register(H_MOL_MSG, on_msg); }\n",
        );
        assert!(lint_handler_ids(&[decl, reg]).is_empty());
    }

    #[test]
    fn prefix_name_is_not_a_reference() {
        let decl = file(
            "crates/mol/src/proto.rs",
            "pub const H_MOL: HandlerId = HandlerId(SYSTEM_BASE + 30);\n",
        );
        let near_miss = file(
            "crates/mol/src/node.rs",
            "fn wire(r: &mut Registry) { r.register(H_MOL_MSG, on_msg); }\n",
        );
        let v = lint_handler_ids(&[decl, near_miss]);
        assert_eq!(v.len(), 1, "H_MOL_MSG must not count as a use of H_MOL");
    }

    // ---- bench manifest ----

    const WS_TOML: &str = "[workspace.dependencies]\n\
        prema = { path = \"crates/core\" }\n\
        prema-mol = { path = \"crates/mol\", default-features = false }\n\
        prema-ilb = { path = \"crates/ilb\", default-features = false }\n";

    #[test]
    fn bench_inline_default_features_off_passes() {
        let bench = "[dev-dependencies]\n\
            prema = { workspace = true, default-features = false }\n\
            prema-mol.workspace = true\n\
            prema-ilb.workspace = true\n";
        assert!(lint_bench_manifest("crates/bench/Cargo.toml", bench, WS_TOML).is_empty());
    }

    #[test]
    fn bench_default_featured_prema_fires() {
        // `prema` is default-featured in the workspace table, so plain
        // inheritance drags `check-invariants` into the bench build.
        let bench = "[dev-dependencies]\nprema.workspace = true\n";
        let v = lint_bench_manifest("crates/bench/Cargo.toml", bench, WS_TOML);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, "bench-invariants");
        assert_eq!(v[0].line, 2);
        assert!(v[0].message.contains("`prema`"));
    }

    #[test]
    fn bench_explicit_check_invariants_fires() {
        let bench = "[dev-dependencies]\n\
            prema = { workspace = true, default-features = false, features = [\"check-invariants\"] }\n";
        let v = lint_bench_manifest("crates/bench/Cargo.toml", bench, WS_TOML);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("oracle-free"));
    }

    #[test]
    fn bench_check_invariants_in_comment_passes() {
        let bench = "[dev-dependencies]\n\
            # keep check-invariants out of benches\n\
            prema = { workspace = true, default-features = false }\n";
        assert!(lint_bench_manifest("crates/bench/Cargo.toml", bench, WS_TOML).is_empty());
    }

    #[test]
    fn bench_without_oracle_deps_passes() {
        let bench = "[dev-dependencies]\nbytes.workspace = true\n";
        assert!(lint_bench_manifest("crates/bench/Cargo.toml", bench, WS_TOML).is_empty());
    }
}
