//! A lint-ready model of a Rust source file, built on the token lexer.
//!
//! [`SourceFile`] keeps three synchronized views of one file: the original
//! lines, a "stripped" rendering (comments and literal contents blanked,
//! line structure preserved — see [`crate::lex::strip_with`]), and the token
//! stream itself. Line-oriented lints read the stripped lines; the protocol
//! and concurrency analyses in [`crate::analyze`] walk the tokens. Both
//! views agree on line numbers by construction because they come from the
//! same lex.

use crate::lex::{self, Token};

/// A lint-ready view of one source file.
pub struct SourceFile {
    /// Path as reported in diagnostics (workspace-relative).
    pub path: String,
    /// Original lines, 0-indexed.
    pub lines: Vec<String>,
    /// Same lines with comments and string/char literal *contents* blanked.
    pub stripped: Vec<String>,
    /// `true` for lines inside `#[cfg(test)]` items or `#[test]` functions.
    pub is_test: Vec<bool>,
    /// The full token stream (comments included; analyses filter).
    pub tokens: Vec<Token>,
}

impl SourceFile {
    pub fn parse(path: &str, text: &str) -> SourceFile {
        let tokens = lex::lex(text);
        let stripped_text = lex::strip_with(&tokens, text);
        let lines: Vec<String> = text.lines().map(|l| l.to_string()).collect();
        let stripped: Vec<String> = stripped_text.lines().map(|l| l.to_string()).collect();
        let is_test = mark_test_lines(&stripped);
        SourceFile {
            path: path.to_string(),
            lines,
            stripped,
            is_test,
            tokens,
        }
    }

    /// Iterate (1-based line number, stripped line, original line) over
    /// non-test lines.
    pub fn non_test_lines(&self) -> impl Iterator<Item = (usize, &str, &str)> {
        self.stripped
            .iter()
            .zip(&self.lines)
            .enumerate()
            .filter(move |(i, _)| !self.is_test.get(*i).copied().unwrap_or(false))
            .map(|(i, (s, o))| (i + 1, s.as_str(), o.as_str()))
    }

    /// Iterate (1-based line number, stripped line, original line) over all
    /// lines.
    pub fn all_lines(&self) -> impl Iterator<Item = (usize, &str, &str)> {
        self.stripped
            .iter()
            .zip(&self.lines)
            .enumerate()
            .map(|(i, (s, o))| (i + 1, s.as_str(), o.as_str()))
    }

    /// Whether a 1-based line is inside test-gated code.
    pub fn line_is_test(&self, line: usize) -> bool {
        line >= 1 && self.is_test.get(line - 1).copied().unwrap_or(false)
    }
}

/// Mark lines belonging to `#[cfg(test)]` items and `#[test]` functions.
///
/// Strategy: when a `#[cfg(test)]` or `#[test]`/`#[bench]` attribute line is
/// seen, everything from the attribute to the close of the next brace block
/// is test code. Works on stripped source so braces in strings/comments
/// don't confuse the depth count.
fn mark_test_lines(stripped: &[String]) -> Vec<bool> {
    let mut is_test = vec![false; stripped.len()];
    let mut i = 0;
    while i < stripped.len() {
        let t = stripped[i].trim();
        let is_attr = t.starts_with("#[cfg(test)]")
            || t.starts_with("#[cfg(all(test")
            || t.starts_with("#[cfg(any(test")
            || t.starts_with("#[test]")
            || t.starts_with("#[bench]");
        if !is_attr {
            i += 1;
            continue;
        }
        // Mark from the attribute through the end of the item's brace block.
        let mut depth = 0i32;
        let mut seen_open = false;
        let mut j = i;
        while j < stripped.len() {
            is_test[j] = true;
            for c in stripped[j].chars() {
                match c {
                    '{' => {
                        depth += 1;
                        seen_open = true;
                    }
                    '}' => depth -= 1,
                    // An attribute can gate a brace-less item (`use`, const);
                    // a `;` at depth 0 before any `{` ends it.
                    ';' if !seen_open && depth == 0 => {
                        seen_open = true; // terminate outer loop below
                        depth = 0;
                    }
                    _ => {}
                }
            }
            if seen_open && depth <= 0 {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
    is_test
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_comments_and_strings() {
        let src = "let x = 1; // unwrap() in comment\nlet s = \".unwrap()\";\n/* .unwrap() */ let y = 2;\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(!f.stripped[0].contains("unwrap"));
        assert!(!f.stripped[1].contains("unwrap"));
        assert!(!f.stripped[2].contains("unwrap"));
        assert!(f.stripped[2].contains("let y = 2;"));
        // Original text retained for message extraction.
        assert!(f.lines[1].contains(".unwrap()"));
    }

    #[test]
    fn strips_raw_strings_and_char_literals() {
        let src = "let r = r#\"sleep(\"#; let c = '\\n'; let lt: &'static str = \"x\";\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(!f.stripped[0].contains("sleep"));
        assert!(f.stripped[0].contains("&'static str"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ code();\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(!f.stripped[0].contains("still"));
        assert!(f.stripped[0].contains("code();"));
    }

    // The old char-by-char stripper's edge cases, pinned against the lexer
    // rebase. Each of these desynced (or risked desyncing) the literal state
    // machine and thereby blanked or mis-attributed real code.

    #[test]
    fn loop_labels_and_lifetime_bounds_stay_code() {
        let src =
            "'outer: for x in 0..n {\n    break 'outer;\n}\nfn f<'a, T: Send + 'a>(v: &'a T) {}\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(f.stripped[0].contains("'outer: for x in 0..n {"));
        assert!(f.stripped[1].contains("break 'outer;"));
        assert!(f.stripped[3].contains("fn f<'a, T: Send + 'a>(v: &'a T) {}"));
    }

    #[test]
    fn escaped_quote_and_backslash_char_literals_do_not_desync() {
        // After '\'' and '\\' the stripper must be back in code state:
        // the trailing call must survive, the literal contents must not.
        let src = "let q = '\\''; let b = '\\\\'; keep_me();\nlet s = \"after\";\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(f.stripped[0].contains("keep_me();"));
        assert!(!f.stripped[1].contains("after"));
        assert!(f.stripped[1].contains("let s ="));
    }

    #[test]
    fn escaped_newline_in_string_keeps_line_numbers() {
        // A string continuation ("a\<newline>b") used to blank the newline,
        // shifting every later line up by one — so lints reported wrong
        // lines and test spans covered the wrong code.
        let src = "let s = \"a\\\nb\";\nafter_the_string();\n";
        let f = SourceFile::parse("t.rs", src);
        assert_eq!(f.stripped.len(), f.lines.len(), "line structure preserved");
        assert!(f.stripped[2].contains("after_the_string();"));
        assert!(
            !f.stripped[1].contains('b'),
            "continuation contents blanked"
        );
    }

    #[test]
    fn unicode_escape_char_literal_stays_one_literal() {
        let src = "let u = '\\u{1F600}'; tail();\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(f.stripped[0].contains("tail();"));
        assert!(!f.stripped[0].contains("1F600"));
    }

    #[test]
    fn byte_literals_are_blanked() {
        let src = "let b = b'}'; let s = b\"}}\"; if depth == 0 { x(); }\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(
            !f.stripped[0].contains('}') || f.stripped[0].rfind('}') > f.stripped[0].find("x()"),
            "brace inside byte literals must be blanked: {}",
            f.stripped[0]
        );
        assert!(f.stripped[0].contains("if depth == 0 { x(); }"));
    }

    #[test]
    fn marks_cfg_test_mod() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn helper() { x.unwrap(); }\n}\nfn prod2() {}\n";
        let f = SourceFile::parse("t.rs", src);
        assert_eq!(
            f.is_test,
            vec![false, true, true, true, true, false],
            "test-mod span"
        );
    }

    #[test]
    fn marks_test_fn_outside_mod() {
        let src = "fn a() {}\n#[test]\nfn t() {\n    b.unwrap();\n}\nfn c() {}\n";
        let f = SourceFile::parse("t.rs", src);
        assert_eq!(f.is_test, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn braces_in_strings_do_not_confuse_spans() {
        let src = "#[cfg(test)]\nmod tests {\n    const S: &str = \"}\";\n    fn t() {}\n}\nfn prod() {}\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(!f.is_test[5], "prod fn wrongly marked as test");
        assert!(f.is_test[2] && f.is_test[4]);
    }

    #[test]
    fn tokens_carry_lines_matching_the_line_views() {
        let src = "fn a() {}\n// comment\nfn b() {}\n";
        let f = SourceFile::parse("t.rs", src);
        let b = f
            .tokens
            .iter()
            .find(|t| t.is_ident("b"))
            .expect("token for fn b");
        assert_eq!(b.line, 3);
        assert!(f.lines[b.line - 1].contains("fn b"));
    }
}
