//! A deliberately simple model of a Rust source file for line/token lints.
//!
//! No parser: we strip comments and string/char literals (preserving line
//! structure so reported line numbers match the file), and mark the line
//! spans of `#[cfg(test)]`-gated items and `#[test]` functions so lints can
//! skip test code. This is a lint pass, not a compiler — the goal is zero
//! false positives on idiomatic code, not full fidelity.

/// A lint-ready view of one source file.
pub struct SourceFile {
    /// Path as reported in diagnostics (workspace-relative).
    pub path: String,
    /// Original lines, 0-indexed.
    pub lines: Vec<String>,
    /// Same lines with comments and string/char literal *contents* blanked.
    pub stripped: Vec<String>,
    /// `true` for lines inside `#[cfg(test)]` items or `#[test]` functions.
    pub is_test: Vec<bool>,
}

impl SourceFile {
    pub fn parse(path: &str, text: &str) -> SourceFile {
        let stripped_text = strip(text);
        let lines: Vec<String> = text.lines().map(|l| l.to_string()).collect();
        let stripped: Vec<String> = stripped_text.lines().map(|l| l.to_string()).collect();
        let is_test = mark_test_lines(&stripped);
        SourceFile {
            path: path.to_string(),
            lines,
            stripped,
            is_test,
        }
    }

    /// Iterate (1-based line number, stripped line, original line) over
    /// non-test lines.
    pub fn non_test_lines(&self) -> impl Iterator<Item = (usize, &str, &str)> {
        self.stripped
            .iter()
            .zip(&self.lines)
            .enumerate()
            .filter(move |(i, _)| !self.is_test.get(*i).copied().unwrap_or(false))
            .map(|(i, (s, o))| (i + 1, s.as_str(), o.as_str()))
    }

    /// Iterate (1-based line number, stripped line, original line) over all
    /// lines.
    pub fn all_lines(&self) -> impl Iterator<Item = (usize, &str, &str)> {
        self.stripped
            .iter()
            .zip(&self.lines)
            .enumerate()
            .map(|(i, (s, o))| (i + 1, s.as_str(), o.as_str()))
    }
}

/// Replace comment bodies and string/char literal contents with spaces,
/// keeping newlines so line/column positions survive.
fn strip(text: &str) -> String {
    #[derive(PartialEq)]
    enum St {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
        Char,
    }
    let b: Vec<char> = text.chars().collect();
    let mut out = String::with_capacity(text.len());
    let mut st = St::Code;
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        let next = b.get(i + 1).copied();
        match st {
            St::Code => match c {
                '/' if next == Some('/') => {
                    st = St::LineComment;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                '/' if next == Some('*') => {
                    st = St::BlockComment(1);
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                '"' => {
                    st = St::Str;
                    out.push('"');
                }
                'r' if next == Some('"') || next == Some('#') => {
                    // Possible raw string r"..." or r#"..."#.
                    let mut j = i + 1;
                    let mut hashes = 0u32;
                    while b.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if b.get(j) == Some(&'"') {
                        st = St::RawStr(hashes);
                        for _ in i..=j {
                            out.push(' ');
                        }
                        out.pop();
                        out.push('"');
                        i = j + 1;
                        continue;
                    }
                    out.push(c);
                }
                '\'' => {
                    // Char literal vs lifetime: 'x' / '\n' are literals;
                    // 'a (no closing quote nearby) is a lifetime.
                    let is_char = match next {
                        Some('\\') => true,
                        Some(_) => b.get(i + 2) == Some(&'\''),
                        None => false,
                    };
                    if is_char {
                        st = St::Char;
                        out.push('\'');
                    } else {
                        out.push('\'');
                    }
                }
                _ => out.push(c),
            },
            St::LineComment => {
                if c == '\n' {
                    st = St::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            St::BlockComment(depth) => {
                if c == '\n' {
                    out.push('\n');
                } else if c == '/' && next == Some('*') {
                    st = St::BlockComment(depth + 1);
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                } else if c == '*' && next == Some('/') {
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::BlockComment(depth - 1)
                    };
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                } else {
                    out.push(' ');
                }
            }
            St::Str => match c {
                '\\' => {
                    out.push(' ');
                    if next.is_some() {
                        out.push(' ');
                        i += 2;
                        continue;
                    }
                }
                '"' => {
                    st = St::Code;
                    out.push('"');
                }
                '\n' => out.push('\n'),
                _ => out.push(' '),
            },
            St::RawStr(hashes) => {
                if c == '"' {
                    // Closing only if followed by `hashes` #s.
                    let mut ok = true;
                    for k in 0..hashes as usize {
                        if b.get(i + 1 + k) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        st = St::Code;
                        out.push('"');
                        for _ in 0..hashes {
                            out.push(' ');
                        }
                        i += 1 + hashes as usize;
                        continue;
                    }
                    out.push(' ');
                } else if c == '\n' {
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            St::Char => match c {
                '\\' => {
                    out.push(' ');
                    if next.is_some() {
                        out.push(' ');
                        i += 2;
                        continue;
                    }
                }
                '\'' => {
                    st = St::Code;
                    out.push('\'');
                }
                _ => out.push(' '),
            },
        }
        i += 1;
    }
    out
}

/// Mark lines belonging to `#[cfg(test)]` items and `#[test]` functions.
///
/// Strategy: when a `#[cfg(test)]` or `#[test]`/`#[bench]` attribute line is
/// seen, everything from the attribute to the close of the next brace block
/// is test code. Works on stripped source so braces in strings/comments
/// don't confuse the depth count.
fn mark_test_lines(stripped: &[String]) -> Vec<bool> {
    let mut is_test = vec![false; stripped.len()];
    let mut i = 0;
    while i < stripped.len() {
        let t = stripped[i].trim();
        let is_attr = t.starts_with("#[cfg(test)]")
            || t.starts_with("#[cfg(all(test")
            || t.starts_with("#[cfg(any(test")
            || t.starts_with("#[test]")
            || t.starts_with("#[bench]");
        if !is_attr {
            i += 1;
            continue;
        }
        // Mark from the attribute through the end of the item's brace block.
        let mut depth = 0i32;
        let mut seen_open = false;
        let mut j = i;
        while j < stripped.len() {
            is_test[j] = true;
            for c in stripped[j].chars() {
                match c {
                    '{' => {
                        depth += 1;
                        seen_open = true;
                    }
                    '}' => depth -= 1,
                    // An attribute can gate a brace-less item (`use`, const);
                    // a `;` at depth 0 before any `{` ends it.
                    ';' if !seen_open && depth == 0 => {
                        seen_open = true; // terminate outer loop below
                        depth = 0;
                    }
                    _ => {}
                }
            }
            if seen_open && depth <= 0 {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
    is_test
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_comments_and_strings() {
        let src = "let x = 1; // unwrap() in comment\nlet s = \".unwrap()\";\n/* .unwrap() */ let y = 2;\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(!f.stripped[0].contains("unwrap"));
        assert!(!f.stripped[1].contains("unwrap"));
        assert!(!f.stripped[2].contains("unwrap"));
        assert!(f.stripped[2].contains("let y = 2;"));
        // Original text retained for message extraction.
        assert!(f.lines[1].contains(".unwrap()"));
    }

    #[test]
    fn strips_raw_strings_and_char_literals() {
        let src = "let r = r#\"sleep(\"#; let c = '\\n'; let lt: &'static str = \"x\";\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(!f.stripped[0].contains("sleep"));
        assert!(f.stripped[0].contains("&'static str"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ code();\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(!f.stripped[0].contains("still"));
        assert!(f.stripped[0].contains("code();"));
    }

    #[test]
    fn marks_cfg_test_mod() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn helper() { x.unwrap(); }\n}\nfn prod2() {}\n";
        let f = SourceFile::parse("t.rs", src);
        assert_eq!(
            f.is_test,
            vec![false, true, true, true, true, false],
            "test-mod span"
        );
    }

    #[test]
    fn marks_test_fn_outside_mod() {
        let src = "fn a() {}\n#[test]\nfn t() {\n    b.unwrap();\n}\nfn c() {}\n";
        let f = SourceFile::parse("t.rs", src);
        assert_eq!(f.is_test, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn braces_in_strings_do_not_confuse_spans() {
        let src = "#[cfg(test)]\nmod tests {\n    const S: &str = \"}\";\n    fn t() {}\n}\nfn prod() {}\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(!f.is_test[5], "prod fn wrongly marked as test");
        assert!(f.is_test[2] && f.is_test[4]);
    }
}
