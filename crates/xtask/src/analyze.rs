//! Token-level protocol and concurrency analyses (`cargo xtask analyze`).
//!
//! Four analyses, each a pure function over [`SourceFile`] token streams:
//!
//! 1. [`handler_graph`] — extracts every `HandlerId`/node-plane handler
//!    constant with its numeric value, then classifies each use site as a
//!    *send* (`am_send`/`node_message` argument, `handler:` field init) or a
//!    *receive* (`register`/`on_node_message`/`await_handler` argument,
//!    `==`/`!=` comparison, match arm). Flags value collisions within a
//!    plane, ids outside the reserved system range, ids that are sent but
//!    never received, and ids that are registered but never sent.
//! 2. [`wire_pairing`] — recovers the push/pull op sequence (`u64`, `u32`,
//!    `f64`, `bytes`) of every named `encode_*`/`decode_*` (and
//!    `write_*`/`read_*`, `encode`/`decode`) function, inlining same-file
//!    helper calls, and fails when a writer/reader pair drifts in field
//!    count or type order — the static shadow of a wire-format mismatch.
//! 3. [`atomics_audit`] — inventories every atomic field/static declaration
//!    with the orderings used to access it, and requires each to be covered
//!    by a loom model (the container type named in a loom test) or carry a
//!    `path:line` entry in `crates/xtask/allow/atomics.txt`.
//! 4. [`trace_coverage`] — every `TraceEvent` variant must have a `name()`
//!    string, be emitted from non-test runtime code, and be consumed by the
//!    `trace-report` replayer; dead or invisible telemetry is a violation.
//!
//! All four work on the same lexed token stream as the line lints, so line
//! numbers in diagnostics agree with the editor. None of them parse Rust
//! fully — they rely on the workspace's own conventions (documented in
//! DESIGN.md §12) and are tested against seeded-violation fixtures below.

use std::collections::{BTreeMap, BTreeSet};

use crate::lex::{Kind, Token};
use crate::lints::{Allowlist, Violation};
use crate::source::SourceFile;

/// `HandlerId::SYSTEM_BASE`: system handler ids live at or above this.
const SYSTEM_BASE: u64 = 0xFFFF_0000;
/// `NODE_HANDLER_LIMIT`: node-plane LB ids sit above, core ids just below.
const NODE_HANDLER_LIMIT: u64 = 0xFFFF_F000;

/// Crates whose `src/` trees declare message handlers.
const HANDLER_CRATES: [&str; 4] = ["core", "dcs", "mol", "ilb"];

/// Functions whose argument position makes a handler constant a *send*.
const SEND_FNS: [&str; 2] = ["am_send", "node_message"];
/// Functions whose argument position makes a handler constant a *receive*.
const RECV_FNS: [&str; 3] = ["register", "on_node_message", "await_handler"];

// ---------------------------------------------------------------------------
// Shared token helpers
// ---------------------------------------------------------------------------

/// The file's tokens with comments dropped (analyses never look at them).
fn code_tokens(f: &SourceFile) -> Vec<&Token> {
    f.tokens
        .iter()
        .filter(|t| t.kind != Kind::Comment)
        .collect()
}

/// Parse a Rust integer literal (`42`, `0xFFFF_0000`) to a value.
fn parse_int(text: &str) -> Option<u64> {
    let t = text.replace('_', "");
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        t.parse().ok()
    }
}

/// Evaluate a handler-id initializer expression from tokens.
///
/// Understands integer literals, the two named anchors
/// (`HandlerId::SYSTEM_BASE`, `NODE_HANDLER_LIMIT`), `+`/`-`, and ignores
/// grouping (`HandlerId(...)`, parens, `::` paths). Any other identifier
/// makes the value unknown.
fn eval_handler_expr(toks: &[&Token]) -> Option<u64> {
    let mut value: Option<u64> = None;
    let mut op: char = '+';
    for (i, t) in toks.iter().enumerate() {
        match t.kind {
            Kind::Num => {
                let term = parse_int(&t.text)?;
                value = Some(apply(value.unwrap_or(0), op, term)?);
            }
            Kind::Ident => {
                let term = match t.text.as_str() {
                    "SYSTEM_BASE" => SYSTEM_BASE,
                    "NODE_HANDLER_LIMIT" => NODE_HANDLER_LIMIT,
                    // Wrapper/paths: `HandlerId(...)`, `ilb::scheduler::...`.
                    _ if matches!(toks.get(i + 1), Some(n) if n.is_punct("(") || n.is_punct("::")) =>
                    {
                        continue;
                    }
                    _ => return None,
                };
                value = Some(apply(value.unwrap_or(0), op, term)?);
            }
            Kind::Punct => match t.text.as_str() {
                "+" => op = '+',
                "-" => op = '-',
                "(" | ")" | "::" => {}
                _ => return None,
            },
            _ => return None,
        }
    }
    return value;

    fn apply(acc: u64, op: char, term: u64) -> Option<u64> {
        match op {
            '+' => acc.checked_add(term),
            '-' => acc.checked_sub(term),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Analysis 1: handler graph
// ---------------------------------------------------------------------------

/// Which message plane a handler constant belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Plane {
    /// `HandlerId` — the DCS envelope plane.
    Envelope,
    /// Bare `u32` node-message ids (`on_node_message` plane).
    Node,
}

impl Plane {
    pub fn label(self) -> &'static str {
        match self {
            Plane::Envelope => "envelope",
            Plane::Node => "node",
        }
    }
}

/// One handler constant with its routing degree.
#[derive(Debug)]
pub struct HandlerInfo {
    pub name: String,
    pub plane: Plane,
    /// Numeric id when the initializer is statically evaluable.
    pub value: Option<u64>,
    pub path: String,
    pub line: usize,
    /// Send sites in non-test `src/` code.
    pub sends: usize,
    /// Receive sites (registration/comparison/match) in non-test `src/` code.
    pub recvs: usize,
}

fn is_handler_decl_path(path: &str) -> bool {
    path.contains("/src/")
        && HANDLER_CRATES
            .iter()
            .any(|c| path.starts_with(&format!("crates/{c}/")))
}

/// Extract handler constants and classify every use site; see module docs.
pub fn handler_graph(files: &[SourceFile]) -> (Vec<HandlerInfo>, Vec<Violation>) {
    let mut handlers: Vec<HandlerInfo> = Vec::new();

    // Pass 1: declarations, only in the message-driven crates' src trees.
    for f in files.iter().filter(|f| is_handler_decl_path(&f.path)) {
        let toks = code_tokens(f);
        for i in 0..toks.len() {
            if !toks[i].is_ident("const") || f.line_is_test(toks[i].line) {
                continue;
            }
            let (name_t, colon, ty) = match (toks.get(i + 1), toks.get(i + 2), toks.get(i + 3)) {
                (Some(n), Some(c), Some(t)) if n.kind == Kind::Ident && c.is_punct(":") => {
                    (*n, c, *t)
                }
                _ => continue,
            };
            let _ = colon;
            let plane = if ty.is_ident("HandlerId") {
                Plane::Envelope
            } else if ty.is_ident("u32") {
                Plane::Node
            } else {
                continue;
            };
            // `SYSTEM_BASE` / `NODE_HANDLER_LIMIT` are range anchors, not
            // routable handlers.
            if name_t.text.ends_with("_BASE") || name_t.text.ends_with("_LIMIT") {
                continue;
            }
            // Initializer: tokens between `=` and `;`.
            let mut j = i + 4;
            while j < toks.len() && !toks[j].is_punct("=") {
                j += 1;
            }
            let start = j + 1;
            let mut end = start;
            while end < toks.len() && !toks[end].is_punct(";") {
                end += 1;
            }
            let value = eval_handler_expr(&toks[start..end]);
            if plane == Plane::Node {
                // A bare u32 const is only a handler id if it provably lives
                // in the reserved node-id space.
                let referes_limit = toks[start..end]
                    .iter()
                    .any(|t| t.is_ident("NODE_HANDLER_LIMIT"));
                if !referes_limit && !matches!(value, Some(v) if v >= SYSTEM_BASE) {
                    continue;
                }
            }
            handlers.push(HandlerInfo {
                name: name_t.text.clone(),
                plane,
                value,
                path: f.path.clone(),
                line: name_t.line,
                sends: 0,
                recvs: 0,
            });
        }
    }

    let by_name: BTreeMap<String, Vec<usize>> = {
        let mut m: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (idx, h) in handlers.iter().enumerate() {
            m.entry(h.name.clone()).or_default().push(idx);
        }
        m
    };

    // Pass 2: classify use sites in non-test src code across the workspace.
    for f in files.iter().filter(|f| f.path.contains("/src/")) {
        let toks = code_tokens(f);
        let mut call_stack: Vec<String> = Vec::new();
        let mut in_use = false;
        for i in 0..toks.len() {
            let t = toks[i];
            if t.is_ident("use") {
                in_use = true;
            } else if t.is_punct(";") {
                in_use = false;
            } else if t.is_punct("(") {
                let callee = match i.checked_sub(1).and_then(|p| toks.get(p)) {
                    Some(p) if p.kind == Kind::Ident => p.text.clone(),
                    _ => String::new(),
                };
                call_stack.push(callee);
            } else if t.is_punct(")") {
                call_stack.pop();
            }
            if t.kind != Kind::Ident || f.line_is_test(t.line) || in_use {
                continue;
            }
            let Some(decl_idxs) = by_name.get(&t.text) else {
                continue;
            };
            // Skip the declaration itself.
            if decl_idxs
                .iter()
                .any(|&d| handlers[d].path == f.path && handlers[d].line == t.line)
            {
                continue;
            }
            let prev = i.checked_sub(1).and_then(|p| toks.get(p).copied());
            let prev2 = i.checked_sub(2).and_then(|p| toks.get(p).copied());
            let next = toks.get(i + 1).copied();
            let innermost = call_stack.last().map(String::as_str).unwrap_or("");
            let cmp =
                |t: Option<&Token>| matches!(t, Some(t) if t.is_punct("==") || t.is_punct("!="));
            let is_recv = cmp(prev)
                || cmp(next)
                || matches!(next, Some(n) if n.is_punct("=>"))
                || RECV_FNS.contains(&innermost);
            let is_send = !is_recv
                && (SEND_FNS.contains(&innermost)
                    || (matches!(prev, Some(p) if p.is_punct(":"))
                        && matches!(prev2, Some(p) if p.is_ident("handler"))));
            for &d in decl_idxs {
                if is_recv {
                    handlers[d].recvs += 1;
                } else if is_send {
                    handlers[d].sends += 1;
                }
            }
        }
    }

    // Violations.
    let mut violations = Vec::new();
    let mut by_value: BTreeMap<(Plane, u64), Vec<usize>> = BTreeMap::new();
    for (idx, h) in handlers.iter().enumerate() {
        if let Some(v) = h.value {
            by_value.entry((h.plane, v)).or_default().push(idx);
        }
    }
    for ((plane, v), idxs) in &by_value {
        if idxs.len() > 1 {
            let first = &handlers[idxs[0]];
            for &d in &idxs[1..] {
                let h = &handlers[d];
                violations.push(Violation::new(
                    &h.path,
                    h.line,
                    "handler-collision",
                    format!(
                        "{} id {:#010x} of `{}` collides with `{}` ({}:{})",
                        plane.label(),
                        v,
                        h.name,
                        first.name,
                        first.path,
                        first.line
                    ),
                ));
            }
        }
    }
    for h in &handlers {
        if let Some(v) = h.value {
            if v < SYSTEM_BASE {
                violations.push(Violation::new(
                    &h.path,
                    h.line,
                    "handler-range",
                    format!(
                        "`{}` = {:#010x} is below HandlerId::SYSTEM_BASE ({:#010x}): \
                         runtime handlers must not squat on application id space",
                        h.name, v, SYSTEM_BASE
                    ),
                ));
            }
        }
        match (h.sends, h.recvs) {
            (0, 0) => violations.push(Violation::new(
                &h.path,
                h.line,
                "handler-unrouted",
                format!("`{}` is declared but never sent to nor received", h.name),
            )),
            (_, 0) => violations.push(Violation::new(
                &h.path,
                h.line,
                "handler-unrouted",
                format!(
                    "`{}` is sent ({} site{}) but never registered/received: \
                     those messages land in the undeliverable count",
                    h.name,
                    h.sends,
                    if h.sends == 1 { "" } else { "s" }
                ),
            )),
            (0, _) => violations.push(Violation::new(
                &h.path,
                h.line,
                "handler-unreachable",
                format!(
                    "`{}` is registered ({} site{}) but nothing sends it: dead handler",
                    h.name,
                    h.recvs,
                    if h.recvs == 1 { "" } else { "s" }
                ),
            )),
            _ => {}
        }
    }
    (handlers, violations)
}

// ---------------------------------------------------------------------------
// Analysis 2: wire-schema pairing
// ---------------------------------------------------------------------------

/// A named encode/decode function and its wire-op sequence.
#[derive(Debug)]
pub struct WireFn {
    pub name: String,
    /// Enclosing `impl` type, or empty for free functions.
    pub ctx: String,
    pub path: String,
    pub line: usize,
    /// Normalized op sequence: `try_u64` → `u64`, `usize` → `u64`.
    pub ops: Vec<String>,
}

#[derive(Debug, Clone)]
enum OpOrCall {
    Op(String),
    Call(String),
}

/// Writer-side push ops and reader-side pull ops, normalized to one name.
fn normalize_op(name: &str) -> Option<String> {
    let base = name.strip_prefix("try_").unwrap_or(name);
    match base {
        "u64" | "u32" | "f64" | "bytes" => Some(base.to_string()),
        "usize" => Some("u64".to_string()),
        _ => None,
    }
}

/// `encode_snapshot` ↔ `decode_snapshot`, `write_env` ↔ `read_env`,
/// `encode` ↔ `decode`. Returns (is_writer, pair-suffix).
fn pair_role(name: &str) -> Option<(bool, String)> {
    if name == "encode" || name == "decode" {
        return Some((name == "encode", String::new()));
    }
    for (w, r) in [("encode_", "decode_"), ("write_", "read_")] {
        if let Some(rest) = name.strip_prefix(w) {
            return Some((true, rest.to_string()));
        }
        if let Some(rest) = name.strip_prefix(r) {
            return Some((false, rest.to_string()));
        }
    }
    None
}

struct RawFn {
    name: String,
    ctx: String,
    line: usize,
    body: Vec<OpOrCall>,
    is_test: bool,
}

/// Parse every fn in the file into (name, impl ctx, wire ops + helper calls).
fn parse_wire_fns(f: &SourceFile) -> Vec<RawFn> {
    let toks = code_tokens(f);
    let mut fns = Vec::new();
    let mut impl_stack: Vec<(String, i32)> = Vec::new();
    let mut depth: i32 = 0;
    let mut i = 0;
    while i < toks.len() {
        let t = toks[i];
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            if let Some((_, d)) = impl_stack.last() {
                if depth < *d {
                    impl_stack.pop();
                }
            }
        } else if t.is_ident("impl") {
            // Find the implemented type: first ident at angle-depth 0 after
            // the generics, or after `for` when a trait is implemented.
            let mut angle = 0i32;
            let mut ctx = String::new();
            let mut after_for = false;
            let mut saw_for = false;
            let mut j = i + 1;
            while j < toks.len() && !toks[j].is_punct("{") && !toks[j].is_punct(";") {
                let u = toks[j];
                match u.text.as_str() {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    ">>" => angle -= 2,
                    "for" if u.kind == Kind::Ident => saw_for = true,
                    _ => {}
                }
                if u.kind == Kind::Ident && angle == 0 && u.text != "for" {
                    if !saw_for && ctx.is_empty() {
                        ctx = u.text.clone();
                    } else if saw_for && !after_for {
                        ctx = u.text.clone();
                        after_for = true;
                    }
                }
                j += 1;
            }
            if j < toks.len() && toks[j].is_punct("{") {
                impl_stack.push((ctx, depth + 1));
                depth += 1;
                i = j + 1;
                continue;
            }
        } else if t.is_ident("fn") {
            let Some(name_t) = toks.get(i + 1).filter(|n| n.kind == Kind::Ident) else {
                i += 1;
                continue;
            };
            // Skip the signature (which contains no braces in this
            // workspace's style) to the body's opening brace.
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct("{") && !toks[j].is_punct(";") {
                j += 1;
            }
            if j >= toks.len() || toks[j].is_punct(";") {
                i = j + 1;
                continue;
            }
            let mut body = Vec::new();
            let mut d = 1i32;
            let mut k = j + 1;
            while k < toks.len() && d > 0 {
                let u = toks[k];
                if u.is_punct("{") {
                    d += 1;
                } else if u.is_punct("}") {
                    d -= 1;
                } else if u.kind == Kind::Ident
                    && matches!(toks.get(k + 1), Some(n) if n.is_punct("("))
                {
                    let prev = k.checked_sub(1).and_then(|p| toks.get(p));
                    let is_method = matches!(prev, Some(p) if p.is_punct("."));
                    let is_assoc = matches!(prev, Some(p) if p.is_punct("::"));
                    if is_method {
                        if let Some(op) = normalize_op(&u.text) {
                            body.push(OpOrCall::Op(op));
                        }
                    } else if !is_assoc {
                        body.push(OpOrCall::Call(u.text.clone()));
                    }
                }
                k += 1;
            }
            fns.push(RawFn {
                name: name_t.text.clone(),
                ctx: impl_stack
                    .last()
                    .map(|(c, _)| c.clone())
                    .unwrap_or_default(),
                line: name_t.line,
                body,
                is_test: f.line_is_test(name_t.line),
            });
            i = k;
            depth += 0; // body fully consumed; depth unchanged net
            continue;
        }
        i += 1;
    }
    fns
}

/// Splice same-file helper calls into a fn's op sequence.
fn resolve_ops(name: &str, fns: &[RawFn], visited: &mut BTreeSet<String>) -> Vec<String> {
    let mut out = Vec::new();
    let Some(f) = fns.iter().find(|f| f.name == name) else {
        return out;
    };
    if !visited.insert(name.to_string()) {
        return out;
    }
    for item in &f.body {
        match item {
            OpOrCall::Op(op) => out.push(op.clone()),
            OpOrCall::Call(callee) => {
                if fns.iter().any(|g| g.name == *callee) {
                    out.extend(resolve_ops(callee, fns, visited));
                }
            }
        }
    }
    visited.remove(name);
    out
}

/// Pair writer/reader functions per file and flag schema drift; see module
/// docs. Only files that mention the wire vocabulary are examined, and the
/// vocabulary's own definition (`crates/dcs/src/wire.rs`) is exempt.
pub fn wire_pairing(files: &[SourceFile]) -> (Vec<WireFn>, Vec<Violation>) {
    let mut all = Vec::new();
    let mut violations = Vec::new();
    for f in files {
        if !f.path.contains("/src/") || f.path.ends_with("dcs/src/wire.rs") {
            continue;
        }
        if !f
            .tokens
            .iter()
            .any(|t| t.is_ident("WireWriter") || t.is_ident("WireReader"))
        {
            continue;
        }
        let raw = parse_wire_fns(f);
        // (ctx, suffix) -> (writers, readers)
        #[allow(clippy::type_complexity)]
        let mut groups: BTreeMap<(String, String), (Vec<usize>, Vec<usize>)> = BTreeMap::new();
        let mut resolved: Vec<WireFn> = Vec::new();
        for rf in &raw {
            if rf.is_test {
                continue;
            }
            let Some((is_writer, suffix)) = pair_role(&rf.name) else {
                continue;
            };
            let ops = resolve_ops(&rf.name, &raw, &mut BTreeSet::new());
            let idx = resolved.len();
            resolved.push(WireFn {
                name: rf.name.clone(),
                ctx: rf.ctx.clone(),
                path: f.path.clone(),
                line: rf.line,
                ops,
            });
            let slot = groups.entry((rf.ctx.clone(), suffix)).or_default();
            if is_writer {
                slot.0.push(idx);
            } else {
                slot.1.push(idx);
            }
        }
        for ((ctx, suffix), (writers, readers)) in &groups {
            let describe = |idxs: &[usize]| -> String {
                idxs.iter()
                    .map(|&i| resolved[i].name.clone())
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            match (writers.as_slice(), readers.as_slice()) {
                (&[w], &[r]) => {
                    let (wf, rf) = (&resolved[w], &resolved[r]);
                    if wf.ops != rf.ops {
                        violations.push(Violation::new(
                            &rf.path,
                            rf.line,
                            "wire-drift",
                            format!(
                                "`{}` reads [{}] but `{}` ({}:{}) writes [{}]: \
                                 wire schema drift",
                                rf.name,
                                rf.ops.join(" "),
                                wf.name,
                                wf.path,
                                wf.line,
                                wf.ops.join(" ")
                            ),
                        ));
                    }
                }
                (ws, &[]) if ws.iter().any(|&i| !resolved[i].ops.is_empty()) => {
                    let i = ws[0];
                    violations.push(Violation::new(
                        &resolved[i].path,
                        resolved[i].line,
                        "wire-orphan",
                        format!(
                            "writer{} `{}` (pair key `{}{}{}`) has no matching reader",
                            if ws.len() == 1 { "" } else { "s" },
                            describe(ws),
                            ctx,
                            if ctx.is_empty() { "" } else { "::" },
                            if suffix.is_empty() {
                                "encode/decode"
                            } else {
                                suffix
                            }
                        ),
                    ));
                }
                (&[], rs) if rs.iter().any(|&i| !resolved[i].ops.is_empty()) => {
                    let i = rs[0];
                    violations.push(Violation::new(
                        &resolved[i].path,
                        resolved[i].line,
                        "wire-orphan",
                        format!(
                            "reader{} `{}` (pair key `{}{}{}`) has no matching writer",
                            if rs.len() == 1 { "" } else { "s" },
                            describe(rs),
                            ctx,
                            if ctx.is_empty() { "" } else { "::" },
                            if suffix.is_empty() {
                                "encode/decode"
                            } else {
                                suffix
                            }
                        ),
                    ));
                }
                _ => {}
            }
        }
        all.extend(resolved);
    }
    (all, violations)
}

// ---------------------------------------------------------------------------
// Analysis 3: atomics audit
// ---------------------------------------------------------------------------

/// How an atomic declaration's ordering discipline is verified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Coverage {
    /// Container type is modeled in a loom test.
    Loom,
    /// Justified `path:line` entry in `allow/atomics.txt`.
    Allowed,
    /// Neither — a violation.
    Unverified,
}

impl Coverage {
    pub fn label(self) -> &'static str {
        match self {
            Coverage::Loom => "loom",
            Coverage::Allowed => "allowlist",
            Coverage::Unverified => "UNVERIFIED",
        }
    }
}

/// One atomic field or static, with every ordering used to access it.
#[derive(Debug)]
pub struct AtomicDecl {
    pub path: String,
    pub line: usize,
    /// Enclosing struct name, or `static` for file-scope atomics.
    pub container: String,
    pub name: String,
    pub ty: String,
    pub orderings: BTreeSet<String>,
    pub coverage: Coverage,
}

const ATOMIC_TYPES: [&str; 6] = [
    "AtomicBool",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "AtomicI64",
    "AtomicIsize",
];

const ATOMIC_METHODS: [&str; 14] = [
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
    "compare_and_swap",
];

/// Inventory atomic declarations and require loom or allowlist coverage.
///
/// `used` collects the allowlist keys that matched, for the shrink-only
/// staleness check.
pub fn atomics_audit(
    files: &[SourceFile],
    allow: &Allowlist,
    used: &mut BTreeSet<String>,
) -> (Vec<AtomicDecl>, Vec<Violation>) {
    let mut decls: Vec<AtomicDecl> = Vec::new();

    // Pass 1: declarations — struct fields and statics in non-test src code.
    for f in files
        .iter()
        .filter(|f| f.path.starts_with("crates/") && f.path.contains("/src/"))
    {
        let toks = code_tokens(f);
        let mut depth: i32 = 0;
        let mut paren: i32 = 0;
        let mut struct_stack: Vec<(String, i32)> = Vec::new();
        let mut i = 0;
        while i < toks.len() {
            let t = toks[i];
            match t.text.as_str() {
                "{" if t.kind == Kind::Punct => depth += 1,
                "}" if t.kind == Kind::Punct => {
                    depth -= 1;
                    if let Some((_, d)) = struct_stack.last() {
                        if depth < *d {
                            struct_stack.pop();
                        }
                    }
                }
                "(" if t.kind == Kind::Punct => paren += 1,
                ")" if t.kind == Kind::Punct => paren -= 1,
                _ => {}
            }
            if t.is_ident("struct") {
                if let Some(name_t) = toks.get(i + 1).filter(|n| n.kind == Kind::Ident) {
                    // Find the field block `{`; `;` or `(` first means a
                    // unit/tuple struct — no named fields to scan. On `(`/`;`
                    // resume the main loop AT that token so the paren counter
                    // stays in sync.
                    let mut j = i + 2;
                    let mut angle = 0i32;
                    let mut opened = false;
                    while j < toks.len() {
                        let u = toks[j];
                        match u.text.as_str() {
                            "<" => angle += 1,
                            ">" => angle -= 1,
                            ">>" => angle -= 2,
                            "{" if angle == 0 => {
                                struct_stack.push((name_t.text.clone(), depth + 1));
                                depth += 1;
                                opened = true;
                                break;
                            }
                            ";" | "(" if angle == 0 => break,
                            _ => {}
                        }
                        j += 1;
                    }
                    i = if opened { j + 1 } else { j };
                    continue;
                }
            }
            let is_atomic_ty = t.kind == Kind::Ident && ATOMIC_TYPES.contains(&t.text.as_str());
            let constructor = matches!(toks.get(i + 1), Some(n) if n.is_punct("::"));
            if is_atomic_ty && !constructor && paren == 0 && !f.line_is_test(t.line) {
                // Walk back over type-wrapper tokens (`Arc<`, `sync::`) to
                // the `name :` that introduces the declaration.
                let mut j = i;
                let mut field: Option<(&Token, &Token)> = None;
                while let Some(p) = j.checked_sub(1) {
                    let u = toks[p];
                    let wrapper = u.kind == Kind::Ident
                        || u.is_punct("<")
                        || u.is_punct("::")
                        || u.is_punct("&");
                    if u.is_punct(":") {
                        if let Some(n) = p.checked_sub(1).and_then(|q| toks.get(q)) {
                            if n.kind == Kind::Ident {
                                field = Some((n, u));
                            }
                        }
                        break;
                    }
                    if !wrapper {
                        break;
                    }
                    j = p;
                }
                if let Some((name_t, _)) = field {
                    let before = toks
                        [..toks.iter().position(|x| std::ptr::eq(*x, name_t)).unwrap()]
                        .last()
                        .copied();
                    let is_static = matches!(before, Some(b) if b.is_ident("static"));
                    let in_struct = struct_stack
                        .last()
                        .map(|(_, d)| *d == depth)
                        .unwrap_or(false);
                    if is_static || in_struct {
                        decls.push(AtomicDecl {
                            path: f.path.clone(),
                            line: name_t.line,
                            container: if is_static {
                                "static".to_string()
                            } else {
                                struct_stack.last().unwrap().0.clone()
                            },
                            name: name_t.text.clone(),
                            ty: t.text.clone(),
                            orderings: BTreeSet::new(),
                            coverage: Coverage::Unverified,
                        });
                    }
                }
            }
            i += 1;
        }
    }

    // Pass 2: accesses — attribute orderings to declarations by receiver
    // name, preferring a same-file declaration when names collide.
    for f in files.iter().filter(|f| f.path.contains("/src/")) {
        let toks = code_tokens(f);
        for i in 0..toks.len() {
            let t = toks[i];
            if t.kind != Kind::Ident
                || !ATOMIC_METHODS.contains(&t.text.as_str())
                || !matches!(toks.get(i + 1), Some(n) if n.is_punct("("))
                || !matches!(i.checked_sub(1).and_then(|p| toks.get(p)), Some(p) if p.is_punct("."))
            {
                continue;
            }
            let Some(recv) = i
                .checked_sub(2)
                .and_then(|p| toks.get(p))
                .filter(|r| r.kind == Kind::Ident)
            else {
                continue;
            };
            // Collect `Ordering::X` arguments inside the call.
            let mut ords = Vec::new();
            let mut d = 0i32;
            for u in &toks[i + 1..] {
                if u.is_punct("(") {
                    d += 1;
                } else if u.is_punct(")") {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                if u.kind == Kind::Ident
                    && matches!(
                        u.text.as_str(),
                        "Relaxed" | "Acquire" | "Release" | "AcqRel" | "SeqCst"
                    )
                {
                    ords.push(u.text.clone());
                }
            }
            if ords.is_empty() {
                continue;
            }
            let matching: Vec<usize> = decls
                .iter()
                .enumerate()
                .filter(|(_, dcl)| dcl.name == recv.text)
                .map(|(idx, _)| idx)
                .collect();
            let same_file: Vec<usize> = matching
                .iter()
                .copied()
                .filter(|&idx| decls[idx].path == f.path)
                .collect();
            let targets = if same_file.is_empty() {
                matching
            } else {
                same_file
            };
            for idx in targets {
                decls[idx].orderings.extend(ords.iter().cloned());
            }
        }
    }

    // Pass 3: coverage. A decl is loom-covered when its container (or the
    // static's own name) appears as a whole identifier in a loom test file.
    let loom_idents: BTreeSet<String> = files
        .iter()
        .filter(|f| f.path.contains("/tests/") && f.tokens.iter().any(|t| t.is_ident("loom")))
        .flat_map(|f| {
            f.tokens
                .iter()
                .filter(|t| t.kind == Kind::Ident)
                .map(|t| t.text.clone())
        })
        .collect();

    let mut violations = Vec::new();
    for d in &mut decls {
        let probe = if d.container == "static" {
            &d.name
        } else {
            &d.container
        };
        let key = format!("{}:{}", d.path, d.line);
        if loom_idents.contains(probe) {
            d.coverage = Coverage::Loom;
        } else if allow.allows(&key) {
            d.coverage = Coverage::Allowed;
            used.insert(key);
        } else {
            d.coverage = Coverage::Unverified;
            violations.push(Violation::new(
                &d.path,
                d.line,
                "atomic-unverified",
                format!(
                    "`{}.{}` ({}, orderings: {}) has no loom model naming `{}` and no \
                     entry in allow/atomics.txt — model it or justify it",
                    d.container,
                    d.name,
                    d.ty,
                    if d.orderings.is_empty() {
                        "never accessed".to_string()
                    } else {
                        d.orderings.iter().cloned().collect::<Vec<_>>().join("/")
                    },
                    probe
                ),
            ));
        }
    }
    (decls, violations)
}

// ---------------------------------------------------------------------------
// Analysis 4: trace-event coverage
// ---------------------------------------------------------------------------

/// One `TraceEvent` variant's lifecycle coverage.
#[derive(Debug)]
pub struct TraceEventInfo {
    pub variant: String,
    /// The `name()` string, when an arm maps the variant to one.
    pub name: Option<String>,
    pub line: usize,
    /// Construction sites in non-test runtime code outside the trace crate.
    pub emitted: usize,
    /// Whether the replayer (`trace_report.rs`) consumes the name.
    pub consumed: bool,
}

/// Check that every `TraceEvent` variant is named, emitted, and replayed.
pub fn trace_coverage(files: &[SourceFile]) -> (Vec<TraceEventInfo>, Vec<Violation>) {
    let Some(lib) = files.iter().find(|f| f.path.ends_with("trace/src/lib.rs")) else {
        return (Vec::new(), Vec::new());
    };
    let toks = code_tokens(lib);

    // Variants: idents at the top level of `enum TraceEvent { ... }`.
    let mut events: Vec<TraceEventInfo> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("enum")
            && matches!(toks.get(i + 1), Some(n) if n.is_ident("TraceEvent"))
        {
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct("{") {
                j += 1;
            }
            let mut d = 1i32;
            let mut expecting = true;
            let mut k = j + 1;
            while k < toks.len() && d > 0 {
                let u = toks[k];
                if u.is_punct("{") || u.is_punct("(") || u.is_punct("[") {
                    d += 1;
                } else if u.is_punct("}") || u.is_punct(")") || u.is_punct("]") {
                    d -= 1;
                } else if d == 1 {
                    if u.is_punct(",") {
                        expecting = true;
                    } else if u.is_punct("#") {
                        // attribute: skip the `[...]` group
                    } else if expecting && u.kind == Kind::Ident {
                        events.push(TraceEventInfo {
                            variant: u.text.clone(),
                            name: None,
                            line: u.line,
                            emitted: 0,
                            consumed: false,
                        });
                        expecting = false;
                    }
                }
                k += 1;
            }
            break;
        }
        i += 1;
    }

    // name() arms: `TraceEvent::V { .. } => "v"`.
    for i in 0..toks.len() {
        if !toks[i].is_ident("TraceEvent")
            || !matches!(toks.get(i + 1), Some(n) if n.is_punct("::"))
        {
            continue;
        }
        let Some(var_t) = toks.get(i + 2).filter(|v| v.kind == Kind::Ident) else {
            continue;
        };
        // Skip an optional `{ .. }` pattern, then require `=> "str"`.
        let mut j = i + 3;
        if matches!(toks.get(j), Some(u) if u.is_punct("{")) {
            let mut d = 1i32;
            j += 1;
            while j < toks.len() && d > 0 {
                if toks[j].is_punct("{") {
                    d += 1;
                } else if toks[j].is_punct("}") {
                    d -= 1;
                }
                j += 1;
            }
        }
        if matches!(toks.get(j), Some(u) if u.is_punct("=>")) {
            if let Some(s) = toks.get(j + 1).and_then(|u| u.str_content()) {
                if let Some(ev) = events.iter_mut().find(|e| e.variant == var_t.text) {
                    ev.name = Some(s.to_string());
                }
            }
        }
    }

    // Emission sites: `TraceEvent::V` in non-test src code outside trace.
    for f in files.iter().filter(|f| {
        f.path.starts_with("crates/")
            && f.path.contains("/src/")
            && !f.path.starts_with("crates/trace/")
    }) {
        let ftoks = code_tokens(f);
        for i in 0..ftoks.len() {
            if ftoks[i].is_ident("TraceEvent")
                && matches!(ftoks.get(i + 1), Some(n) if n.is_punct("::"))
                && !f.line_is_test(ftoks[i].line)
            {
                if let Some(v) = ftoks.get(i + 2) {
                    if let Some(ev) = events.iter_mut().find(|e| e.variant == v.text) {
                        ev.emitted += 1;
                    }
                }
            }
        }
    }

    // Consumption: the replayer mentions the name as a string literal.
    if let Some(report) = files
        .iter()
        .find(|f| f.path.ends_with("xtask/src/trace_report.rs"))
    {
        let names: BTreeSet<&str> = report
            .tokens
            .iter()
            .filter_map(|t| t.str_content())
            .collect();
        for ev in &mut events {
            if let Some(n) = &ev.name {
                ev.consumed = names.contains(n.as_str());
            }
        }
    }

    let mut violations = Vec::new();
    for ev in &events {
        match &ev.name {
            None => violations.push(Violation::new(
                &lib.path,
                ev.line,
                "trace-unnamed",
                format!(
                    "TraceEvent::{} has no name() arm: it cannot be serialized",
                    ev.variant
                ),
            )),
            Some(n) => {
                if ev.emitted == 0 {
                    violations.push(Violation::new(
                        &lib.path,
                        ev.line,
                        "trace-unemitted",
                        format!(
                            "TraceEvent::{} (`{}`) is never emitted from runtime code: \
                             dead telemetry",
                            ev.variant, n
                        ),
                    ));
                }
                if !ev.consumed {
                    violations.push(Violation::new(
                        &lib.path,
                        ev.line,
                        "trace-unconsumed",
                        format!(
                            "TraceEvent::{} (`{}`) is not consumed by the trace-report \
                             replayer: invisible telemetry",
                            ev.variant, n
                        ),
                    ));
                }
            }
        }
    }
    (events, violations)
}

// ---------------------------------------------------------------------------
// Seeded-violation fixtures: each analysis must prove it can fire.
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    fn sf(path: &str, text: &str) -> SourceFile {
        SourceFile::parse(path, text)
    }

    fn kinds(v: &[Violation]) -> Vec<(&str, usize, &'static str)> {
        v.iter()
            .map(|x| (x.path.as_str(), x.line, x.lint))
            .collect()
    }

    // -- handler graph ------------------------------------------------------

    const HANDLER_OK: &str = "\
pub const H_GOOD: HandlerId = HandlerId(HandlerId::SYSTEM_BASE + 64);
fn wire(t: &T) {
    t.am_send(1, H_GOOD, payload);
    rt.register(H_GOOD, |env| {});
}
";

    #[test]
    fn handler_graph_clean_fixture_passes() {
        let files = [sf("crates/dcs/src/h.rs", HANDLER_OK)];
        let (handlers, v) = handler_graph(&files);
        assert_eq!(handlers.len(), 1);
        assert_eq!(handlers[0].value, Some(0xFFFF_0040));
        assert_eq!((handlers[0].sends, handlers[0].recvs), (1, 1));
        assert!(v.is_empty(), "unexpected: {v:?}");
    }

    #[test]
    fn handler_collision_and_range_are_flagged() {
        let a = sf(
            "crates/dcs/src/a.rs",
            "pub const H_ONE: HandlerId = HandlerId(HandlerId::SYSTEM_BASE + 7);\n\
             fn f(t: &T) { t.am_send(0, H_ONE, p); r.register(H_ONE, h); }\n",
        );
        let b = sf(
            "crates/mol/src/b.rs",
            "pub const H_TWO: HandlerId = HandlerId(HandlerId::SYSTEM_BASE + 7);\n\
             pub const H_LOW: HandlerId = HandlerId(42);\n\
             fn g(t: &T) { t.am_send(0, H_TWO, p); r.register(H_TWO, h);\n\
                 t.am_send(0, H_LOW, p); r.register(H_LOW, h); }\n",
        );
        let files = [a, b];
        let (_, v) = handler_graph(&files);
        assert_eq!(
            kinds(&v),
            vec![
                ("crates/mol/src/b.rs", 1, "handler-collision"),
                ("crates/mol/src/b.rs", 2, "handler-range"),
            ],
            "exactly one collision (at the later decl) and one range violation: {v:?}"
        );
    }

    #[test]
    fn send_without_recv_and_recv_without_send_are_flagged() {
        let src = sf(
            "crates/core/src/x.rs",
            "const H_SENT: u32 = NODE_HANDLER_LIMIT - 9;\n\
             const H_DEAD: u32 = NODE_HANDLER_LIMIT - 10;\n\
             fn f(rt: &Rt) {\n\
                 rt.node_message(1, H_SENT, bytes);\n\
                 rt.on_node_message(H_DEAD, |ctx, src, p| {});\n\
             }\n",
        );
        let files = [src];
        let (_, v) = handler_graph(&files);
        assert_eq!(
            kinds(&v),
            vec![
                ("crates/core/src/x.rs", 1, "handler-unrouted"),
                ("crates/core/src/x.rs", 2, "handler-unreachable"),
            ],
            "{v:?}"
        );
    }

    #[test]
    fn match_arms_field_inits_and_use_statements_classify_correctly() {
        let src = sf(
            "crates/ilb/src/y.rs",
            "use crate::other::H_ARM;\n\
             pub const H_ARM: HandlerId = HandlerId(HandlerId::SYSTEM_BASE + 80);\n\
             fn f(env: &Envelope) -> Envelope {\n\
                 match env.handler {\n\
                     H_ARM => {}\n\
                     _ => {}\n\
                 }\n\
                 Envelope { handler: H_ARM, payload }\n\
             }\n",
        );
        let files = [src];
        let (handlers, v) = handler_graph(&files);
        assert_eq!((handlers[0].sends, handlers[0].recvs), (1, 1));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn test_code_and_foreign_crates_do_not_declare_handlers() {
        let src = sf(
            "crates/harness/src/z.rs",
            "pub const H_NOT_TRACKED: HandlerId = HandlerId(HandlerId::SYSTEM_BASE + 5);\n",
        );
        let test_decl = sf(
            "crates/dcs/src/t.rs",
            "#[cfg(test)]\nmod tests {\n    const H_TEST_ONLY: HandlerId = HandlerId(HandlerId::SYSTEM_BASE + 6);\n}\n",
        );
        let files = [src, test_decl];
        let (handlers, _) = handler_graph(&files);
        assert!(handlers.is_empty(), "{handlers:?}");
    }

    // -- wire pairing -------------------------------------------------------

    const WIRE_OK: &str = "\
use crate::wire::{WireWriter, WireReader};
fn encode_ping(seq: u64, body: &[u8]) -> Bytes {
    WireWriter::new().u64(seq).bytes(body).finish()
}
fn decode_ping(payload: &[u8]) -> Option<(u64, Bytes)> {
    let mut r = WireReader::new(payload);
    Some((r.try_u64()?, r.try_bytes()?))
}
";

    #[test]
    fn wire_pairing_clean_fixture_passes() {
        let files = [sf("crates/dcs/src/p.rs", WIRE_OK)];
        let (fns, v) = wire_pairing(&files);
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].ops, vec!["u64", "bytes"]);
        assert_eq!(fns[0].ops, fns[1].ops);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn wire_drift_is_flagged_with_both_sequences() {
        let src = sf(
            "crates/dcs/src/q.rs",
            "use crate::wire::{WireWriter, WireReader};\n\
             fn encode_req(u: u64, w: f64) -> Bytes { WireWriter::new().u64(u).f64(w).finish() }\n\
             fn decode_req(p: &[u8]) -> Option<u64> { let mut r = WireReader::new(p); r.try_u64() }\n",
        );
        let files = [src];
        let (_, v) = wire_pairing(&files);
        assert_eq!(kinds(&v), vec![("crates/dcs/src/q.rs", 3, "wire-drift")]);
        assert!(
            v[0].message.contains("[u64]") && v[0].message.contains("[u64 f64]"),
            "message must show both sequences: {}",
            v[0].message
        );
    }

    #[test]
    fn helper_inlining_follows_same_file_calls() {
        let src = sf(
            "crates/mol/src/r.rs",
            "use crate::wire::{WireWriter, WireReader};\n\
             fn put_header(w: WireWriter) -> WireWriter { w.u64(0).u32(1) }\n\
             fn encode_pkt(w: WireWriter) -> Bytes { put_header(w).bytes(b).finish() }\n\
             fn decode_pkt(p: &[u8]) -> X { let mut r = WireReader::new(p);\n\
                 (r.try_u64(), r.try_u32(), r.try_bytes()) }\n",
        );
        let files = [src];
        let (fns, v) = wire_pairing(&files);
        let enc = fns.iter().find(|f| f.name == "encode_pkt").unwrap();
        assert_eq!(
            enc.ops,
            vec!["u64", "u32", "bytes"],
            "helper ops spliced in"
        );
        assert!(v.is_empty(), "{v:?}");
    }

    /// The UDP wire schema (crates/dcs/src/udp.rs) must stay under this
    /// analysis: both the fixed header pair and the DATA-fields pair are
    /// discovered from the real source and checked drift-free. Guards
    /// against a refactor renaming the fns out of the `encode_`/`decode_`
    /// convention and silently losing coverage.
    #[test]
    fn udp_wire_schema_is_discovered_and_paired() {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let path = root.join("crates/dcs/src/udp.rs");
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        let files = [sf("crates/dcs/src/udp.rs", &text)];
        let (fns, v) = wire_pairing(&files);
        assert!(v.is_empty(), "udp.rs wire schema drifted: {v:?}");
        let ops_of = |name: &str| -> &[String] {
            &fns.iter()
                .find(|f| f.name == name && f.ctx.is_empty())
                .unwrap_or_else(|| panic!("`{name}` not discovered as a wire fn"))
                .ops
        };
        assert_eq!(
            ops_of("encode_header"),
            ["u32", "u32", "u32", "u32", "u64"],
            "header layout changed — bump PROTO_VERSION and update this test"
        );
        assert_eq!(ops_of("encode_header"), ops_of("decode_header"));
        assert_eq!(
            ops_of("encode_dgram"),
            ["u32", "u32", "u32", "bytes"],
            "DATA layout changed — bump PROTO_VERSION and update this test"
        );
        assert_eq!(ops_of("encode_dgram"), ops_of("decode_dgram"));
    }

    #[test]
    fn orphan_writer_is_flagged() {
        let src = sf(
            "crates/ilb/src/s.rs",
            "use crate::wire::WireWriter;\n\
             fn encode_lost(u: u64) -> Bytes { WireWriter::new().u64(u).finish() }\n",
        );
        let files = [src];
        let (_, v) = wire_pairing(&files);
        assert_eq!(kinds(&v), vec![("crates/ilb/src/s.rs", 2, "wire-orphan")]);
    }

    #[test]
    fn try_usize_normalizes_to_u64() {
        let src = sf(
            "crates/ilb/src/t.rs",
            "use crate::wire::{WireWriter, WireReader};\n\
             fn encode_n(n: usize) -> Bytes { WireWriter::new().u64(n as u64).finish() }\n\
             fn decode_n(p: &[u8]) -> Option<usize> { WireReader::new(p).try_usize() }\n",
        );
        let files = [src];
        let (_, v) = wire_pairing(&files);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn impl_context_separates_same_named_methods() {
        let src = sf(
            "crates/mol/src/u.rs",
            "use crate::wire::{WireWriter, WireReader};\n\
             impl Ping { fn encode(&self) -> Bytes { WireWriter::new().u64(self.a).finish() }\n\
                 fn decode(p: &[u8]) -> Self { let mut r = WireReader::new(p); Ping { a: r.u64() } } }\n\
             impl Pong { fn encode(&self) -> Bytes { WireWriter::new().u32(self.b).finish() }\n\
                 fn decode(p: &[u8]) -> Self { let mut r = WireReader::new(p); Pong { b: r.u32() } } }\n",
        );
        let files = [src];
        let (fns, v) = wire_pairing(&files);
        assert_eq!(fns.len(), 4);
        assert!(v.is_empty(), "Ping and Pong must pair independently: {v:?}");
    }

    // -- atomics audit ------------------------------------------------------

    const ATOMIC_SRC: &str = "\
pub struct Flag {
    stop: AtomicBool,
}
impl Flag {
    fn set(&self) { self.stop.store(true, Ordering::Release); }
    fn get(&self) -> bool { self.stop.load(Ordering::Acquire) }
}
";

    #[test]
    fn unverified_atomic_is_flagged_with_orderings() {
        let files = [sf("crates/core/src/f.rs", ATOMIC_SRC)];
        let allow = Allowlist::parse_line_keyed("allow/atomics.txt", "");
        let mut used = BTreeSet::new();
        let (decls, v) = atomics_audit(&files, &allow, &mut used);
        assert_eq!(decls.len(), 1);
        assert_eq!(decls[0].container, "Flag");
        assert_eq!(
            decls[0].orderings.iter().cloned().collect::<Vec<_>>(),
            vec!["Acquire", "Release"]
        );
        assert_eq!(
            kinds(&v),
            vec![("crates/core/src/f.rs", 2, "atomic-unverified")]
        );
    }

    #[test]
    fn loom_coverage_clears_the_violation() {
        let files = [
            sf("crates/core/src/f.rs", ATOMIC_SRC),
            sf(
                "crates/core/tests/loom_f.rs",
                "#![cfg(loom)]\nuse loom::model;\n#[test]\nfn m() { let f = Flag::new(); }\n",
            ),
        ];
        let allow = Allowlist::parse_line_keyed("allow/atomics.txt", "");
        let mut used = BTreeSet::new();
        let (decls, v) = atomics_audit(&files, &allow, &mut used);
        assert_eq!(decls[0].coverage, Coverage::Loom);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn allowlist_entry_clears_and_is_marked_used() {
        let files = [sf("crates/core/src/f.rs", ATOMIC_SRC)];
        let allow = Allowlist::parse_line_keyed(
            "allow/atomics.txt",
            "crates/core/src/f.rs:2: store/load pair is a plain latch\n",
        );
        let mut used = BTreeSet::new();
        let (decls, v) = atomics_audit(&files, &allow, &mut used);
        assert_eq!(decls[0].coverage, Coverage::Allowed);
        assert!(v.is_empty(), "{v:?}");
        assert!(used.contains("crates/core/src/f.rs:2"));
    }

    #[test]
    fn locals_and_constructor_calls_are_not_declarations() {
        let src = "\
fn f() {
    let x: AtomicU64 = AtomicU64::new(0);
    g(AtomicBool::new(false));
}
fn g(side: AtomicBool) {}
";
        let files = [sf("crates/core/src/g.rs", src)];
        let allow = Allowlist::parse_line_keyed("allow/atomics.txt", "");
        let mut used = BTreeSet::new();
        let (decls, _) = atomics_audit(&files, &allow, &mut used);
        assert!(
            decls.is_empty(),
            "locals/params/ctors are not decls: {decls:?}"
        );
    }

    #[test]
    fn static_atomics_are_inventoried() {
        let src = "static HITS: AtomicU64 = AtomicU64::new(0);\n\
                   fn bump() { HITS.fetch_add(1, Ordering::SeqCst); }\n";
        let files = [sf("crates/dcs/src/h.rs", src)];
        let allow = Allowlist::parse_line_keyed("allow/atomics.txt", "");
        let mut used = BTreeSet::new();
        let (decls, v) = atomics_audit(&files, &allow, &mut used);
        assert_eq!(decls.len(), 1);
        assert_eq!(decls[0].container, "static");
        assert!(decls[0].orderings.contains("SeqCst"));
        assert_eq!(v.len(), 1);
    }

    // -- trace coverage -----------------------------------------------------

    const TRACE_LIB: &str = "\
pub enum TraceEvent {
    Send { dst: u32 },
    Orphan { n: u64 },
}
impl TraceEvent {
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::Send { .. } => \"send\",
            TraceEvent::Orphan { .. } => \"orphan\",
        }
    }
}
";

    #[test]
    fn unemitted_and_unconsumed_variants_are_flagged() {
        let files = [
            sf("crates/trace/src/lib.rs", TRACE_LIB),
            sf(
                "crates/dcs/src/e.rs",
                "fn f(tr: &Tracer) { tr.emit(|| TraceEvent::Send { dst: 1 }); }\n",
            ),
            sf(
                "crates/xtask/src/trace_report.rs",
                "fn consume(ev: &str) { if ev == \"send\" {} }\n",
            ),
        ];
        let (events, v) = trace_coverage(&files);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name.as_deref(), Some("send"));
        assert!(events[0].consumed && events[0].emitted == 1);
        assert_eq!(
            kinds(&v),
            vec![
                ("crates/trace/src/lib.rs", 3, "trace-unemitted"),
                ("crates/trace/src/lib.rs", 3, "trace-unconsumed"),
            ],
            "{v:?}"
        );
    }

    #[test]
    fn unnamed_variant_is_flagged() {
        let lib = "pub enum TraceEvent { Ghost { x: u64 } }\n\
                   impl TraceEvent { pub fn name(&self) -> &'static str { \"?\" } }\n";
        let files = [sf("crates/trace/src/lib.rs", lib)];
        let (_, v) = trace_coverage(&files);
        assert_eq!(
            kinds(&v),
            vec![("crates/trace/src/lib.rs", 1, "trace-unnamed")]
        );
    }

    #[test]
    fn test_gated_emission_does_not_count() {
        let files = [
            sf("crates/trace/src/lib.rs", TRACE_LIB),
            sf(
                "crates/dcs/src/e.rs",
                "#[cfg(test)]\nmod tests {\n    fn f(t: &Tracer) { t.emit(|| TraceEvent::Send { dst: 1 }); }\n}\n",
            ),
        ];
        let (events, _) = trace_coverage(&files);
        assert_eq!(
            events[0].emitted, 0,
            "test-gated construction must not count"
        );
    }
}
