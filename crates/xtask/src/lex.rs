//! A token-level lexer for Rust source, shared by every lint and analysis.
//!
//! This replaces the old char-by-char line stripper as the single place that
//! understands Rust's lexical grammar: comments (line, nested block), string
//! literals (cooked, raw, byte), char literals vs lifetimes, numbers, and
//! multi-char operators. It is deliberately *not* a full lexer — raw
//! identifiers (`r#type`) and exotic suffixes degrade gracefully into
//! adjacent tokens — but it is exact for everything this workspace writes,
//! and every token carries its line number and byte span so diagnostics and
//! the line-oriented [`crate::source::SourceFile`] view stay in sync.

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword.
    Ident,
    /// `'a`, `'static`, `'_` — a quote followed by an identifier with no
    /// closing quote.
    Lifetime,
    /// Cooked string literal, including byte strings (`"..."`, `b"..."`).
    Str,
    /// Raw string literal (`r"..."`, `r#"..."#`, `br#"..."#`).
    RawStr,
    /// Char or byte-char literal (`'x'`, `'\n'`, `b'x'`).
    Char,
    /// Numeric literal (lexed loosely: `0xFFFF_0000`, `1.5`, `1e9`).
    Num,
    /// Operator or delimiter, maximal-munch joined (`::`, `=>`, `==`, ...).
    Punct,
    /// Line or block comment (blanked by [`strip_with`], skipped by
    /// analyses).
    Comment,
}

/// One lexed token: classification, 1-based start line, byte span, and the
/// source text of the span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: Kind,
    pub line: usize,
    pub start: usize,
    pub end: usize,
    pub text: String,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == Kind::Ident && self.text == s
    }

    /// Whether this token is the operator/delimiter `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == Kind::Punct && self.text == s
    }

    /// The contents of a string literal (delimiters and prefixes removed),
    /// or `None` for non-string tokens.
    pub fn str_content(&self) -> Option<&str> {
        match self.kind {
            Kind::Str => {
                let t = self.text.strip_prefix('b').unwrap_or(&self.text);
                let t = t.strip_prefix('"').unwrap_or(t);
                Some(t.strip_suffix('"').unwrap_or(t))
            }
            Kind::RawStr => {
                let t = self.text.strip_prefix('b').unwrap_or(&self.text);
                let t = t.strip_prefix('r').unwrap_or(t);
                let hashes = t.chars().take_while(|&c| c == '#').count();
                let t = &t[hashes..];
                let t = t.strip_prefix('"').unwrap_or(t);
                let t = t.strip_suffix(&"#".repeat(hashes)).unwrap_or(t);
                Some(t.strip_suffix('"').unwrap_or(t))
            }
            _ => None,
        }
    }
}

/// Multi-char operators, tried longest-first (maximal munch).
const OPS3: &[&str] = &["<<=", ">>=", "..=", "..."];
const OPS2: &[&str] = &[
    "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "..", "<<", ">>", "+=", "-=", "*=", "/=",
    "%=", "^=", "&=", "|=",
];

fn is_id_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_id_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `text` into tokens. Whitespace is skipped; comments are kept (as
/// [`Kind::Comment`]) so [`strip_with`] can blank them. The lexer never
/// fails: malformed input degrades into `Punct`/`Ident` tokens.
pub fn lex(text: &str) -> Vec<Token> {
    let chars: Vec<(usize, char)> = text.char_indices().collect();
    let n = chars.len();
    let at = |j: usize| chars.get(j).map(|&(_, c)| c);
    let off = |j: usize| chars.get(j).map(|&(o, _)| o).unwrap_or(text.len());
    let mut toks: Vec<Token> = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    while i < n {
        let c = chars[i].1;
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        let start = off(i);
        let start_line = line;
        let mut push = |kind: Kind, end_idx: usize, toks: &mut Vec<Token>| {
            let end = off(end_idx);
            toks.push(Token {
                kind,
                line: start_line,
                start,
                end,
                text: text[start..end].to_string(),
            });
        };

        // Comments.
        if c == '/' && at(i + 1) == Some('/') {
            let mut j = i;
            while j < n && chars[j].1 != '\n' {
                j += 1;
            }
            push(Kind::Comment, j, &mut toks);
            i = j; // newline handled at loop top
            continue;
        }
        if c == '/' && at(i + 1) == Some('*') {
            let mut depth = 1u32;
            let mut j = i + 2;
            while j < n && depth > 0 {
                match (chars[j].1, at(j + 1)) {
                    ('/', Some('*')) => {
                        depth += 1;
                        j += 2;
                    }
                    ('*', Some('/')) => {
                        depth -= 1;
                        j += 2;
                    }
                    ('\n', _) => {
                        line += 1;
                        j += 1;
                    }
                    _ => j += 1,
                }
            }
            push(Kind::Comment, j, &mut toks);
            i = j;
            continue;
        }

        // String/char prefixes: b'..', b".." , r".."/r#".."#, br".."/br#".."#.
        let (raw_at, cooked_at, char_at) = match (c, at(i + 1), at(i + 2)) {
            ('b', Some('\''), _) => (None, None, Some(i + 1)),
            ('b', Some('"'), _) => (None, Some(i + 1), None),
            ('b', Some('r'), Some(q)) if q == '"' || q == '#' => (Some(i + 2), None, None),
            ('r', Some(q), _) if q == '"' || q == '#' => (Some(i + 1), None, None),
            ('"', _, _) => (None, Some(i), None),
            _ => (None, None, None),
        };
        if let Some(h0) = raw_at {
            // Count hashes, then require an opening quote (else: not a raw
            // string — fall through to ident lexing below).
            let mut h = h0;
            while at(h) == Some('#') {
                h += 1;
            }
            if at(h) == Some('"') {
                let hashes = h - h0;
                let mut j = h + 1;
                loop {
                    match at(j) {
                        None => break,
                        Some('\n') => {
                            line += 1;
                            j += 1;
                        }
                        Some('"') => {
                            let closed = (1..=hashes).all(|k| at(j + k) == Some('#'));
                            j += 1;
                            if closed {
                                j += hashes;
                                break;
                            }
                        }
                        Some(_) => j += 1,
                    }
                }
                push(Kind::RawStr, j, &mut toks);
                i = j;
                continue;
            }
            // `r` / `b` not introducing a literal: lex as an identifier.
        } else if let Some(q0) = cooked_at {
            let mut j = q0 + 1;
            loop {
                match at(j) {
                    None => break,
                    Some('\\') => {
                        // An escape consumes the next char — which may be a
                        // newline (string continuation); count it so line
                        // numbers of later tokens stay right.
                        if at(j + 1) == Some('\n') {
                            line += 1;
                        }
                        j += 2;
                    }
                    Some('"') => {
                        j += 1;
                        break;
                    }
                    Some('\n') => {
                        line += 1;
                        j += 1;
                    }
                    Some(_) => j += 1,
                }
            }
            push(Kind::Str, j, &mut toks);
            i = j;
            continue;
        } else if let Some(q0) = char_at {
            i = lex_char_body(&mut push, &mut toks, &at, q0);
            continue;
        }

        // Bare quote: char literal or lifetime.
        if c == '\'' {
            let c1 = at(i + 1);
            let c2 = at(i + 2);
            let is_lifetime = match c1 {
                Some('\\') => false,
                Some(ch) if is_id_start(ch) => c2 != Some('\''),
                _ => false,
            };
            if is_lifetime {
                let mut j = i + 1;
                while at(j).is_some_and(is_id_continue) {
                    j += 1;
                }
                push(Kind::Lifetime, j, &mut toks);
                i = j;
                continue;
            }
            i = lex_char_body(&mut push, &mut toks, &at, i);
            continue;
        }

        // Identifiers and keywords (including a lone `r`/`b`).
        if is_id_start(c) {
            let mut j = i + 1;
            while at(j).is_some_and(is_id_continue) {
                j += 1;
            }
            push(Kind::Ident, j, &mut toks);
            i = j;
            continue;
        }

        // Numbers: digits, then alnum/underscore, one dot if digit-led.
        if c.is_ascii_digit() {
            let mut j = i + 1;
            let mut seen_dot = false;
            loop {
                match at(j) {
                    Some(ch) if ch.is_ascii_alphanumeric() || ch == '_' => j += 1,
                    Some('.') if !seen_dot && at(j + 1).is_some_and(|d| d.is_ascii_digit()) => {
                        seen_dot = true;
                        j += 1;
                    }
                    _ => break,
                }
            }
            push(Kind::Num, j, &mut toks);
            i = j;
            continue;
        }

        // Punct: maximal munch over the known multi-char operators.
        let rest = &text[start..];
        let op3 = OPS3.iter().find(|op| rest.starts_with(**op));
        let op2 = OPS2.iter().find(|op| rest.starts_with(**op));
        let len = if op3.is_some() {
            3
        } else if op2.is_some() {
            2
        } else {
            1
        };
        push(Kind::Punct, i + len, &mut toks);
        i += len;
        continue;
    }
    toks
}

/// Lex a char/byte-char literal whose opening quote is at char index `q0`;
/// returns the index one past the closing quote. The token spans from the
/// pending `start` (which may include a `b` prefix) via the `push` closure.
fn lex_char_body(
    push: &mut impl FnMut(Kind, usize, &mut Vec<Token>),
    toks: &mut Vec<Token>,
    at: &impl Fn(usize) -> Option<char>,
    q0: usize,
) -> usize {
    let mut j = q0 + 1;
    loop {
        match at(j) {
            None => break,
            Some('\\') => j += 2,
            Some('\'') => {
                j += 1;
                break;
            }
            Some(_) => j += 1,
        }
    }
    push(Kind::Char, j, toks);
    j
}

/// Rebuild the "stripped" view of `text` from its tokens: comment bodies and
/// string/char literal contents become spaces, newlines survive (so line
/// numbers and line counts are unchanged), and literal delimiters are kept
/// (`"` / `'`) so downstream heuristics still see where a literal sat.
pub fn strip_with(tokens: &[Token], text: &str) -> String {
    // (start, end, last-char start, replacement quote or None for comments)
    let mut regions: Vec<(usize, usize, usize, Option<char>)> = Vec::new();
    for t in tokens {
        let quote = match t.kind {
            Kind::Comment => None,
            Kind::Str | Kind::RawStr => Some('"'),
            Kind::Char => Some('\''),
            _ => continue,
        };
        let last = t
            .text
            .chars()
            .next_back()
            .map(|c| t.end - c.len_utf8())
            .unwrap_or(t.start);
        regions.push((t.start, t.end, last, quote));
    }
    let mut out = String::with_capacity(text.len());
    let mut r = 0usize;
    for (off, c) in text.char_indices() {
        while r < regions.len() && off >= regions[r].1 {
            r += 1;
        }
        match regions.get(r) {
            Some(&(s, _, last, quote)) if off >= s => match quote {
                Some(q) if off == s || off == last => out.push(q),
                _ if c == '\n' => out.push('\n'),
                _ => out.push(' '),
            },
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(Kind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_puncts_and_numbers() {
        let toks = kinds("const H: HandlerId = HandlerId(SYSTEM_BASE + 0xFFFF_0000);");
        assert_eq!(toks[0], (Kind::Ident, "const".to_string()));
        assert_eq!(toks[1], (Kind::Ident, "H".to_string()));
        assert_eq!(toks[2], (Kind::Punct, ":".to_string()));
        assert!(toks.contains(&(Kind::Num, "0xFFFF_0000".to_string())));
    }

    #[test]
    fn multi_char_operators_are_joined() {
        let toks = kinds("a == b != c => d :: e .. f ..= g");
        let ops: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == Kind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(ops, vec!["==", "!=", "=>", "::", "..", "..="]);
    }

    #[test]
    fn lifetime_vs_char_literal() {
        let toks = kinds("&'static str; 'outer: loop {}; let c = 'x'; let e = '\\n'; let u = '\\u{41}'; let b = b'z'; let underscore: &'_ str;");
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == Kind::Lifetime)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["'static", "'outer", "'_"]);
        let chars: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == Kind::Char)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(chars, vec!["'x'", "'\\n'", "'\\u{41}'", "b'z'"]);
    }

    #[test]
    fn escaped_quote_char_literal() {
        let toks = kinds(r"let q = '\''; let bs = '\\'; done();");
        let chars: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == Kind::Char)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(chars, vec![r"'\''", r"'\\'"]);
        assert!(toks.iter().any(|(k, t)| *k == Kind::Ident && t == "done"));
    }

    #[test]
    fn string_kinds_and_content() {
        let src = r####"let a = "plain"; let b = b"bytes"; let c = r"raw"; let d = r#"ra"w"#;"####;
        let toks = lex(src);
        let strings: Vec<(Kind, &str)> = toks
            .iter()
            .filter_map(|t| t.str_content().map(|s| (t.kind, s)))
            .collect();
        assert_eq!(
            strings,
            vec![
                (Kind::Str, "plain"),
                (Kind::Str, "bytes"),
                (Kind::RawStr, "raw"),
                (Kind::RawStr, "ra\"w"),
            ]
        );
    }

    #[test]
    fn line_numbers_across_multiline_tokens() {
        let src = "fn a() {}\n/* two\nlines */\nlet s = \"x\ny\";\nfn b() {}\n";
        let toks = lex(src);
        let b = toks.iter().find(|t| t.is_ident("b")).expect("fn b lexed");
        assert_eq!(b.line, 6);
        let s = toks
            .iter()
            .find(|t| t.kind == Kind::Str)
            .expect("str lexed");
        assert_eq!(s.line, 4);
    }

    #[test]
    fn escaped_newline_in_string_keeps_line_count() {
        let src = "let s = \"a\\\nb\";\nfn after() {}\n";
        let toks = lex(src);
        let after = toks
            .iter()
            .find(|t| t.is_ident("after"))
            .expect("fn after lexed");
        assert_eq!(after.line, 3);
        let stripped = strip_with(&lex(src), src);
        assert_eq!(stripped.lines().count(), src.lines().count());
        assert!(stripped
            .lines()
            .nth(2)
            .expect("line 3 exists")
            .contains("fn after"));
    }

    #[test]
    fn nested_block_comment_is_one_token() {
        let toks = kinds("/* a /* b */ c */ after");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].0, Kind::Comment);
        assert_eq!(toks[1], (Kind::Ident, "after".to_string()));
    }

    #[test]
    fn strip_blanks_contents_keeps_structure() {
        let src = "let r = r#\"sleep(\"#; let c = '\\n'; // tail\n";
        let s = strip_with(&lex(src), src);
        assert!(!s.contains("sleep"));
        assert!(!s.contains("tail"));
        assert!(s.contains("let r ="));
        assert_eq!(s.len(), src.len());
    }
}
