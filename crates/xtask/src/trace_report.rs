//! `cargo xtask trace-report` — replay a JSONL event trace (written by the
//! harness under `PREMA_TRACE_OUT`, or by any [`prema_trace::TraceSink`])
//! into the paper's per-processor time-breakdown table plus derived views
//! the aggregate figures cannot show: the forwarding-chain length histogram,
//! begging-round latencies, and a migration timeline.
//!
//! Pure std, like the rest of xtask: the dump format is flat JSON (one
//! object of scalar fields per line, guaranteed by
//! `prema_trace::Record::to_jsonl`), so a hand-rolled splitter is all the
//! parsing this needs.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Cost-category labels, indexed by the `"cat"` field of `span` records
/// (`prema_sim::Category::ALL` order).
const CATEGORY_LABELS: [&str; 8] = [
    "compute",
    "idle",
    "messaging",
    "scheduling",
    "callback",
    "poll-thread",
    "partition",
    "sync",
];
const CAT_COMPUTE: usize = 0;
const CAT_IDLE: usize = 1;
const CAT_PARTITION: usize = 6;
const CAT_SYNC: usize = 7;

/// One parsed trace record: the common stamp plus the event-specific scalar
/// fields, kept as strings until a view asks for them.
#[derive(Debug)]
struct Rec {
    rank: usize,
    t: u64,
    ev: String,
    fields: BTreeMap<String, String>,
}

impl Rec {
    fn u64(&self, key: &str) -> Option<u64> {
        self.fields.get(key).and_then(|v| v.parse().ok())
    }
}

/// Parse one flat-JSON line (`{"k":v,...}`, values are unsigned integers,
/// booleans, or quoted strings without escapes — everything
/// `Record::to_jsonl` emits). Returns `None` on anything else.
fn parse_line(line: &str) -> Option<Rec> {
    let inner = line.trim().strip_prefix('{')?.strip_suffix('}')?;
    let mut fields = BTreeMap::new();
    for pair in split_top_level(inner) {
        let (k, v) = pair.split_once(':')?;
        let k = k.trim().strip_prefix('"')?.strip_suffix('"')?;
        let v = v.trim();
        let v = v
            .strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .unwrap_or(v);
        fields.insert(k.to_string(), v.to_string());
    }
    let rank: usize = fields.remove("rank")?.parse().ok()?;
    let t: u64 = fields.remove("t")?.parse().ok()?;
    let ev = fields.remove("ev")?;
    fields.remove("seq");
    Some(Rec {
        rank,
        t,
        ev,
        fields,
    })
}

/// Split `a:1,b:"x",c:true` on commas outside string quotes.
fn split_top_level(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let (mut start, mut in_str) = (0usize, false);
    for (i, c) in s.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ',' if !in_str => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < s.len() {
        out.push(&s[start..]);
    }
    out
}

/// Parse a whole dump; reports (line number, content) of the first few
/// malformed lines via the error.
fn parse_dump(text: &str) -> Result<Vec<Rec>, String> {
    let mut recs = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_line(line) {
            Some(r) => recs.push(r),
            None => return Err(format!("line {}: not a trace record: {line}", i + 1)),
        }
    }
    Ok(recs)
}

/// Everything the breakdown table needs, folded from the records.
struct Breakdown {
    /// `[proc][category] -> nanoseconds` from `span` records.
    per_proc: Vec<[u64; 8]>,
    /// Per-processor finish time (ns) from `proc_finish` records.
    finish: Vec<u64>,
    /// Max finish (ns).
    makespan: u64,
}

fn fold_breakdown(recs: &[Rec]) -> Breakdown {
    let nprocs = recs.iter().map(|r| r.rank + 1).max().unwrap_or(0);
    let mut per_proc = vec![[0u64; 8]; nprocs];
    let mut finish = vec![0u64; nprocs];
    for r in recs {
        match r.ev.as_str() {
            "span" => {
                let cat = r.u64("cat").unwrap_or(u64::MAX) as usize;
                if cat < 8 {
                    per_proc[r.rank][cat] += r.u64("dur").unwrap_or(0);
                }
            }
            "proc_finish" => finish[r.rank] = finish[r.rank].max(r.t),
            _ => {}
        }
    }
    let makespan = finish.iter().copied().max().unwrap_or(0);
    Breakdown {
        per_proc,
        finish,
        makespan,
    }
}

const NANOS: f64 = 1e9;

/// The per-processor table, formatted exactly like the harness figure tables
/// (`SimReport::render_table`): idle padded to the makespan, empty categories
/// omitted, then the makespan / quality / overhead summary line.
fn render_breakdown(b: &Breakdown, stride: usize) -> String {
    let stride = stride.max(1);
    // Idle-normalize: pad every processor's idle up to the makespan.
    let mut norm = b.per_proc.clone();
    for (row, &f) in norm.iter_mut().zip(&b.finish) {
        row[CAT_IDLE] += b.makespan.saturating_sub(f);
    }
    let used: Vec<usize> = (0..8)
        .filter(|&c| norm.iter().map(|row| row[c]).sum::<u64>() > 0)
        .collect();
    let mut s = String::new();
    let _ = writeln!(s, "== Trace: per-processor time breakdown ==");
    let _ = write!(s, "{:>5}", "proc");
    for &c in &used {
        let _ = write!(s, " {:>11}", CATEGORY_LABELS[c]);
    }
    let _ = writeln!(s, " {:>11}", "finish");
    for p in (0..norm.len()).step_by(stride) {
        let _ = write!(s, "{p:>5}");
        for &c in &used {
            let _ = write!(s, " {:>11.3}", norm[p][c] as f64 / NANOS);
        }
        let _ = writeln!(s, " {:>11.3}", b.finish[p] as f64 / NANOS);
    }
    // Summary line: population stddev of compute; overhead = busy-but-not-
    // compute over compute; sync = (sync + partition) over compute.
    let n = b.per_proc.len().max(1) as f64;
    let compute: f64 = b.per_proc.iter().map(|r| r[CAT_COMPUTE] as f64).sum();
    let mean = compute / n / NANOS;
    let var = b
        .per_proc
        .iter()
        .map(|r| {
            let d = r[CAT_COMPUTE] as f64 / NANOS - mean;
            d * d
        })
        .sum::<f64>()
        / n;
    let busy_overhead: f64 = b
        .per_proc
        .iter()
        .map(|r| {
            (0..8)
                .filter(|&c| c != CAT_COMPUTE && c != CAT_IDLE)
                .map(|c| r[c] as f64)
                .sum::<f64>()
        })
        .sum();
    let sync: f64 = b
        .per_proc
        .iter()
        .map(|r| (r[CAT_SYNC] + r[CAT_PARTITION]) as f64)
        .sum();
    let pct = |x: f64| {
        if compute > 0.0 {
            x / compute * 100.0
        } else {
            0.0
        }
    };
    let _ = writeln!(
        s,
        "makespan {:.3}s  compute-stddev {:.3}s  overhead {:.4}%  sync {:.3}%",
        b.makespan as f64 / NANOS,
        var.sqrt(),
        pct(busy_overhead),
        pct(sync)
    );
    s
}

/// Forwarding-chain length histogram. Each migration leaves a forwarding
/// pointer; a message that chases a chain of length `L` emits `forward_hop`
/// records with `hops = 1..=L`. So `count[L] - count[L+1]` messages ended
/// their chase after exactly `L` hops.
fn render_forward_histogram(recs: &[Rec]) -> String {
    let mut count: BTreeMap<u64, u64> = BTreeMap::new();
    for r in recs.iter().filter(|r| r.ev == "forward_hop") {
        if let Some(h) = r.u64("hops") {
            *count.entry(h).or_insert(0) += 1;
        }
    }
    let mut s = String::from("== Forwarding-chain length histogram ==\n");
    if count.is_empty() {
        s.push_str("(no forwarded messages)\n");
        return s;
    }
    let _ = writeln!(s, "{:>6} {:>10}", "length", "messages");
    let max = *count
        .keys()
        .last()
        .expect("count map checked non-empty above");
    for len in 1..=max {
        let at = count.get(&len).copied().unwrap_or(0);
        let beyond = count.get(&(len + 1)).copied().unwrap_or(0);
        let exact = at.saturating_sub(beyond);
        if at > 0 {
            let _ = writeln!(s, "{len:>6} {exact:>10}");
        }
    }
    let total: u64 = count.get(&1).copied().unwrap_or(0);
    let hops: u64 = count.values().sum();
    let _ = writeln!(
        s,
        "{total} forwarded messages, {hops} hops total, mean chain {:.2}",
        if total > 0 {
            hops as f64 / total as f64
        } else {
            0.0
        }
    );
    // Percentiles over per-message chain lengths: a message that stopped
    // after L hops contributes one sample of value L.
    let percentile = |q: f64| -> u64 {
        let want = ((total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for len in 1..=max {
            let at = count.get(&len).copied().unwrap_or(0);
            let beyond = count.get(&(len + 1)).copied().unwrap_or(0);
            seen += at.saturating_sub(beyond);
            if seen >= want {
                return len;
            }
        }
        max
    };
    let _ = writeln!(
        s,
        "chain p50 {}  p99 {}  max {max}",
        percentile(0.50),
        percentile(0.99)
    );
    s
}

/// Directory and sender location-cache counters, folded from the four
/// directory events: `loc_cache_hit` (a send answered by local knowledge),
/// `loc_cache_miss` (no knowledge — routed via the home shard or birth
/// rank), `loc_cache_stale` (a forwarder or shard corrected a stale guess),
/// and `home_lookup` (explicit `DirLookup` queries). The closing line is the
/// aggregate hit rate the README's directory quickstart reads off.
fn render_directory(recs: &[Rec], stride: usize) -> String {
    let stride = stride.max(1);
    let nprocs = recs.iter().map(|r| r.rank + 1).max().unwrap_or(0);
    let mut rows = vec![[0u64; 4]; nprocs];
    for r in recs {
        let col = match r.ev.as_str() {
            "loc_cache_hit" => 0,
            "loc_cache_miss" => 1,
            "loc_cache_stale" => 2,
            "home_lookup" => 3,
            _ => continue,
        };
        rows[r.rank][col] += 1;
    }
    let mut s = String::from("== Directory location caches ==\n");
    if rows.iter().flatten().copied().sum::<u64>() == 0 {
        s.push_str("(no directory events)\n");
        return s;
    }
    let _ = writeln!(
        s,
        "{:>5} {:>8} {:>8} {:>8} {:>8}",
        "proc", "hits", "misses", "stale", "lookups"
    );
    for (p, row) in rows.iter().enumerate().step_by(stride) {
        if row.iter().sum::<u64>() > 0 {
            let _ = writeln!(
                s,
                "{p:>5} {:>8} {:>8} {:>8} {:>8}",
                row[0], row[1], row[2], row[3]
            );
        }
    }
    let tot = |c: usize| rows.iter().map(|r| r[c]).sum::<u64>();
    let (hits, misses) = (tot(0), tot(1));
    let rate = if hits + misses > 0 {
        hits as f64 / (hits + misses) as f64 * 100.0
    } else {
        100.0
    };
    let _ = writeln!(
        s,
        "cache hit rate {rate:.1}% ({hits} hits / {misses} misses), {} stale corrections, {} home lookups",
        tot(2),
        tot(3)
    );
    s
}

/// Begging-round latency: on each rank, the time from an `lb_request` to the
/// next grant or NACK arriving back on that rank. Stale NACKs are ignored —
/// they answer an older, already-cancelled round.
fn render_begging_latency(recs: &[Rec]) -> String {
    // Per rank, walk records in time order.
    let nprocs = recs.iter().map(|r| r.rank + 1).max().unwrap_or(0);
    let mut s = String::from("== Begging-round latency ==\n");
    let mut any = false;
    let _ = writeln!(
        s,
        "{:>5} {:>7} {:>8} {:>8} {:>10} {:>10}",
        "proc", "rounds", "granted", "refused", "mean(ms)", "max(ms)"
    );
    for p in 0..nprocs {
        let mut open: Option<u64> = None;
        let (mut rounds, mut granted, mut refused) = (0u64, 0u64, 0u64);
        let (mut sum_ns, mut max_ns) = (0u64, 0u64);
        for r in recs.iter().filter(|r| r.rank == p) {
            match r.ev.as_str() {
                "lb_request" => open = Some(r.t),
                "lb_grant_recv" | "lb_nack_recv" => {
                    if r.ev == "lb_nack_recv"
                        && r.fields.get("stale").map(String::as_str) == Some("true")
                    {
                        continue;
                    }
                    if let Some(t0) = open.take() {
                        let dt = r.t.saturating_sub(t0);
                        rounds += 1;
                        sum_ns += dt;
                        max_ns = max_ns.max(dt);
                        if r.ev == "lb_grant_recv" {
                            granted += 1;
                        } else {
                            refused += 1;
                        }
                    }
                }
                _ => {}
            }
        }
        if rounds > 0 {
            any = true;
            let _ = writeln!(
                s,
                "{p:>5} {rounds:>7} {granted:>8} {refused:>8} {:>10.3} {:>10.3}",
                sum_ns as f64 / rounds as f64 / 1e6,
                max_ns as f64 / 1e6
            );
        }
    }
    if !any {
        s.push_str("(no completed begging rounds)\n");
    }
    s
}

/// Per-rank activity counters folded from the event stream. Together with
/// the views above this consumes every `TraceEvent` variant — a property
/// `cargo xtask analyze` enforces (trace-event coverage), so telemetry can
/// not silently become write-only.
#[derive(Default, Clone)]
struct Activity {
    /// `send` / `recv`: envelopes crossing this rank's transport.
    sent: u64,
    recvd: u64,
    /// `exec_begin` / `exec_finish`: work units started and completed.
    exec_begin: u64,
    exec_finish: u64,
    /// `poll` / `poll_system` / `poll_wake`: scheduler loop activity.
    polls: u64,
    sys_polls: u64,
    wakes: u64,
    /// `lb_request_recv` / `lb_grant` / `lb_nack_sent`: the victim side of
    /// the begging protocol (the beggar side is in the latency view).
    req_in: u64,
    grants: u64,
    nacks_out: u64,
    /// `dcs_batch_flush` (+ coalesced message count) and the loss/recovery
    /// counters `dcs_dropped` / `dcs_retry` / `dcs_duplicate`.
    flushes: u64,
    flush_msgs: u64,
    dropped: u64,
    retries: u64,
    dups: u64,
}

fn fold_activity(recs: &[Rec]) -> Vec<Activity> {
    let nprocs = recs.iter().map(|r| r.rank + 1).max().unwrap_or(0);
    let mut acts = vec![Activity::default(); nprocs];
    for r in recs {
        let a = &mut acts[r.rank];
        match r.ev.as_str() {
            "send" => a.sent += 1,
            "recv" => a.recvd += 1,
            "exec_begin" => a.exec_begin += 1,
            "exec_finish" => a.exec_finish += 1,
            "poll" => a.polls += 1,
            "poll_system" => a.sys_polls += 1,
            "poll_wake" => a.wakes += 1,
            "lb_request_recv" => a.req_in += 1,
            "lb_grant" => a.grants += 1,
            "lb_nack_sent" => a.nacks_out += 1,
            "dcs_batch_flush" => {
                a.flushes += 1;
                a.flush_msgs += r.u64("msgs").unwrap_or(0);
            }
            "dcs_dropped" => a.dropped += 1,
            "dcs_retry" => a.retries += 1,
            "dcs_duplicate" => a.dups += 1,
            _ => {}
        }
    }
    acts
}

/// Activity-counter tables: messaging/scheduling per rank, then the LB
/// victim side and substrate health. Rows that are entirely zero are
/// skipped, like the empty-category columns of the breakdown table.
fn render_activity(recs: &[Rec], stride: usize) -> String {
    let stride = stride.max(1);
    let acts = fold_activity(recs);
    let mut s = String::from("== Activity counters ==\n");
    let any = |f: fn(&Activity) -> u64| acts.iter().map(f).sum::<u64>() > 0;
    if !any(|a| {
        a.sent
            + a.recvd
            + a.exec_begin
            + a.exec_finish
            + a.polls
            + a.sys_polls
            + a.wakes
            + a.req_in
            + a.grants
            + a.nacks_out
            + a.flushes
            + a.dropped
            + a.retries
            + a.dups
    }) {
        s.push_str("(no activity events in this trace)\n");
        return s;
    }
    let _ = writeln!(
        s,
        "{:>5} {:>8} {:>8} {:>8} {:>8} {:>9} {:>7}",
        "proc", "sent", "recvd", "execs", "polls", "sys-polls", "wakes"
    );
    for (p, a) in acts.iter().enumerate().step_by(stride) {
        let _ = writeln!(
            s,
            "{p:>5} {:>8} {:>8} {:>8} {:>8} {:>9} {:>7}",
            a.sent, a.recvd, a.exec_finish, a.polls, a.sys_polls, a.wakes
        );
    }
    let begun: u64 = acts.iter().map(|a| a.exec_begin).sum();
    let finished: u64 = acts.iter().map(|a| a.exec_finish).sum();
    if begun != finished {
        let _ = writeln!(
            s,
            "warning: {begun} exec_begin vs {finished} exec_finish (units cut off mid-run?)"
        );
    }
    let _ = writeln!(
        s,
        "{:>5} {:>8} {:>8} {:>9} {:>8} {:>10} {:>8} {:>8} {:>5}",
        "proc",
        "req-in",
        "grants",
        "nacks-out",
        "flushes",
        "flush-msgs",
        "dropped",
        "retries",
        "dups"
    );
    for (p, a) in acts.iter().enumerate().step_by(stride) {
        let _ = writeln!(
            s,
            "{p:>5} {:>8} {:>8} {:>9} {:>8} {:>10} {:>8} {:>8} {:>5}",
            a.req_in, a.grants, a.nacks_out, a.flushes, a.flush_msgs, a.dropped, a.retries, a.dups
        );
    }
    let tot = |f: fn(&Activity) -> u64| acts.iter().map(f).sum::<u64>();
    let _ = writeln!(
        s,
        "totals: {} sent, {} recvd, {} executed, {} flushed frames ({} msgs), \
         {} dropped, {} retries, {} duplicates",
        tot(|a| a.sent),
        tot(|a| a.recvd),
        tot(|a| a.exec_finish),
        tot(|a| a.flushes),
        tot(|a| a.flush_msgs),
        tot(|a| a.dropped),
        tot(|a| a.retries),
        tot(|a| a.dups)
    );
    s
}

/// How many timeline rows to print before eliding the rest.
const TIMELINE_LIMIT: usize = 20;

/// Migration timeline: `migrate` (source side) and `install` (destination
/// side) records merged in time order, first [`TIMELINE_LIMIT`] shown.
fn render_migration_timeline(recs: &[Rec]) -> String {
    let mut rows: Vec<&Rec> = recs
        .iter()
        .filter(|r| r.ev == "migrate" || r.ev == "install")
        .collect();
    rows.sort_by_key(|r| (r.t, r.rank));
    let mut s = String::from("== Migration timeline ==\n");
    if rows.is_empty() {
        s.push_str("(no migrations)\n");
        return s;
    }
    for r in rows.iter().take(TIMELINE_LIMIT) {
        let obj = format!(
            "{}:{}",
            r.u64("home").unwrap_or(0),
            r.u64("index").unwrap_or(0)
        );
        let line = if r.ev == "migrate" {
            format!(
                "{:>12.6}s  proc {:>3}  migrate  {obj} -> proc {}",
                r.t as f64 / NANOS,
                r.rank,
                r.u64("dst").unwrap_or(0)
            )
        } else {
            format!(
                "{:>12.6}s  proc {:>3}  install  {obj} <- proc {}",
                r.t as f64 / NANOS,
                r.rank,
                r.u64("from").unwrap_or(0)
            )
        };
        s.push_str(&line);
        s.push('\n');
    }
    if rows.len() > TIMELINE_LIMIT {
        let _ = writeln!(s, "... {} more", rows.len() - TIMELINE_LIMIT);
    }
    let migrations = rows.iter().filter(|r| r.ev == "migrate").count();
    let _ = writeln!(s, "{migrations} migrations total");
    s
}

/// Veto-kind labels, indexed by the `"kind"` field of `lb_veto` records
/// (`prema_trace::TraceEvent::LbVeto` order).
const VETO_LABELS: [&str; 3] = ["hysteresis", "residency", "rate-cap"];

/// Migration churn: how often each object moved, and what the stability
/// governor did about it. Folds three streams:
///
/// * `migrate` — per-object move counts, presented as a histogram (how many
///   objects moved exactly k times) so thrash shows up as a long tail;
/// * `lb_veto` — migrations the governor refused, by kind; kind 1 is a
///   residency violation averted (the object had not yet served its
///   minimum residency when a policy tried to move it again);
/// * `lb_forecast` — the anticipatory sampler's periodic load predictions.
fn render_migration_churn(recs: &[Rec]) -> String {
    let mut s = String::from("== Migration churn ==\n");
    let mut per_obj: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    for r in recs.iter().filter(|r| r.ev == "migrate") {
        *per_obj
            .entry((r.u64("home").unwrap_or(0), r.u64("index").unwrap_or(0)))
            .or_insert(0) += 1;
    }
    if per_obj.is_empty() {
        s.push_str("(no migrations)\n");
    } else {
        let mut hist: BTreeMap<u64, u64> = BTreeMap::new();
        for &c in per_obj.values() {
            *hist.entry(c).or_insert(0) += 1;
        }
        let _ = writeln!(s, "{:>6} {:>8}", "moves", "objects");
        for (moves, objects) in &hist {
            let _ = writeln!(s, "{moves:>6} {objects:>8}");
        }
        let moves: u64 = per_obj.values().sum();
        let ((home, index), worst) = per_obj
            .iter()
            .max_by_key(|&(_, &c)| c)
            .map(|(k, &c)| (*k, c))
            .expect("per_obj checked non-empty above");
        let _ = writeln!(
            s,
            "{moves} moves across {} objects, busiest {home}:{index} with {worst}",
            per_obj.len()
        );
    }
    let nprocs = recs.iter().map(|r| r.rank + 1).max().unwrap_or(0);
    let mut vetoes = vec![[0u64; 3]; nprocs];
    for r in recs.iter().filter(|r| r.ev == "lb_veto") {
        let kind = r.u64("kind").unwrap_or(u64::MAX) as usize;
        if kind < 3 {
            vetoes[r.rank][kind] += 1;
        }
    }
    if vetoes.iter().flatten().copied().sum::<u64>() == 0 {
        s.push_str("(no governor vetoes)\n");
    } else {
        let _ = writeln!(
            s,
            "{:>5} {:>11} {:>10} {:>9}",
            "proc", VETO_LABELS[0], VETO_LABELS[1], VETO_LABELS[2]
        );
        for (p, v) in vetoes.iter().enumerate() {
            if v.iter().sum::<u64>() > 0 {
                let _ = writeln!(s, "{p:>5} {:>11} {:>10} {:>9}", v[0], v[1], v[2]);
            }
        }
    }
    // Forecast stream: per-rank sample count, how often the trend pointed
    // up, and the last weight -> prediction pair (in load units).
    let mut fc = vec![(0u64, 0u64, 0u64, 0u64); nprocs];
    for r in recs.iter().filter(|r| r.ev == "lb_forecast") {
        let f = &mut fc[r.rank];
        f.0 += 1;
        if r.fields.get("rising").map(String::as_str) == Some("true") {
            f.1 += 1;
        }
        f.2 = r.u64("weight_milli").unwrap_or(0);
        f.3 = r.u64("predicted_milli").unwrap_or(0);
    }
    if fc.iter().map(|f| f.0).sum::<u64>() == 0 {
        s.push_str("(no forecasts)\n");
    } else {
        let _ = writeln!(
            s,
            "{:>5} {:>9} {:>7} {:>11} {:>11}",
            "proc", "forecasts", "rising", "last-load", "last-pred"
        );
        for (p, f) in fc.iter().enumerate() {
            if f.0 > 0 {
                let _ = writeln!(
                    s,
                    "{p:>5} {:>9} {:>7} {:>11.3} {:>11.3}",
                    f.0,
                    f.1,
                    f.2 as f64 / 1e3,
                    f.3 as f64 / 1e3
                );
            }
        }
    }
    s
}

/// Entry point for the subcommand: render every view of one dump.
pub fn report(text: &str, stride: usize) -> Result<String, String> {
    let recs = parse_dump(text)?;
    if recs.is_empty() {
        return Err("trace is empty".to_string());
    }
    let mut s = String::new();
    s.push_str(&render_breakdown(&fold_breakdown(&recs), stride));
    s.push('\n');
    s.push_str(&render_forward_histogram(&recs));
    s.push('\n');
    s.push_str(&render_directory(&recs, stride));
    s.push('\n');
    s.push_str(&render_begging_latency(&recs));
    s.push('\n');
    s.push_str(&render_migration_timeline(&recs));
    s.push('\n');
    s.push_str(&render_migration_churn(&recs));
    s.push('\n');
    s.push_str(&render_activity(&recs, stride));
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    const DUMP: &str = r#"{"rank":0,"seq":0,"t":0,"ev":"span","cat":0,"dur":2000000000}
{"rank":0,"seq":1,"t":2000000000,"ev":"span","cat":2,"dur":500000000}
{"rank":0,"seq":2,"t":2500000000,"ev":"proc_finish"}
{"rank":1,"seq":0,"t":0,"ev":"span","cat":0,"dur":1000000000}
{"rank":1,"seq":1,"t":1000000000,"ev":"proc_finish"}
{"rank":1,"seq":2,"t":100,"ev":"lb_request","victim":0,"attempt":0}
{"rank":1,"seq":3,"t":3000100,"ev":"lb_nack_recv","src":0,"stale":false}
{"rank":1,"seq":4,"t":4000000,"ev":"lb_request","victim":0,"attempt":1}
{"rank":1,"seq":5,"t":5000000,"ev":"lb_grant_recv","src":0,"units":2}
{"rank":0,"seq":3,"t":10,"ev":"migrate","home":0,"index":7,"dst":1}
{"rank":1,"seq":6,"t":20,"ev":"install","home":0,"index":7,"from":0}
{"rank":1,"seq":7,"t":30,"ev":"forward_hop","home":0,"index":7,"next":1,"hops":1}
{"rank":1,"seq":8,"t":40,"ev":"forward_hop","home":0,"index":7,"next":1,"hops":1}
{"rank":1,"seq":9,"t":50,"ev":"forward_hop","home":0,"index":7,"next":1,"hops":2}
{"rank":0,"seq":4,"t":60,"ev":"send","dst":1,"bytes":64}
{"rank":1,"seq":10,"t":70,"ev":"recv","src":0,"bytes":64}
{"rank":1,"seq":11,"t":80,"ev":"exec_begin","home":0,"index":7}
{"rank":1,"seq":12,"t":90,"ev":"exec_finish","home":0,"index":7}
{"rank":1,"seq":13,"t":95,"ev":"poll","events":3}
{"rank":1,"seq":14,"t":96,"ev":"poll_system","events":1}
{"rank":1,"seq":15,"t":97,"ev":"poll_wake","events":1}
{"rank":0,"seq":5,"t":98,"ev":"lb_request_recv","src":1}
{"rank":0,"seq":6,"t":99,"ev":"lb_grant","dst":1,"units":2}
{"rank":0,"seq":7,"t":100,"ev":"lb_nack_sent","dst":1}
{"rank":0,"seq":8,"t":101,"ev":"dcs_batch_flush","reason":"size","msgs":5,"bytes":320}
{"rank":0,"seq":9,"t":102,"ev":"dcs_dropped","peer":1,"handler":7}
{"rank":0,"seq":10,"t":103,"ev":"dcs_retry","peer":1,"frame":4,"attempt":1}
{"rank":0,"seq":11,"t":104,"ev":"dcs_duplicate","peer":1,"handler":7}
{"rank":0,"seq":12,"t":105,"ev":"lb_veto","peer":1,"kind":0}
{"rank":0,"seq":13,"t":106,"ev":"lb_veto","peer":1,"kind":1}
{"rank":0,"seq":14,"t":107,"ev":"lb_veto","peer":1,"kind":1}
{"rank":0,"seq":15,"t":108,"ev":"lb_veto","peer":1,"kind":2}
{"rank":1,"seq":16,"t":109,"ev":"lb_forecast","weight_milli":1500,"predicted_milli":2750,"rising":true}
{"rank":1,"seq":17,"t":110,"ev":"lb_forecast","weight_milli":2750,"predicted_milli":2600,"rising":false}
{"rank":0,"seq":16,"t":111,"ev":"loc_cache_hit","home":0,"index":7,"owner":1}
{"rank":0,"seq":17,"t":112,"ev":"loc_cache_hit","home":0,"index":7,"owner":1}
{"rank":0,"seq":18,"t":113,"ev":"loc_cache_miss","home":0,"index":8,"shard":2}
{"rank":1,"seq":18,"t":114,"ev":"loc_cache_stale","home":0,"index":7,"owner":2,"epoch":3}
{"rank":1,"seq":19,"t":115,"ev":"home_lookup","home":0,"index":7,"shard":2}
"#;

    #[test]
    fn parses_every_line_of_a_real_dump() {
        let recs = parse_dump(DUMP).expect("dump parses");
        assert_eq!(recs.len(), 39);
        assert_eq!(recs[0].ev, "span");
        assert_eq!(recs[0].u64("dur"), Some(2_000_000_000));
    }

    #[test]
    fn malformed_line_is_an_error_with_its_line_number() {
        let err = parse_dump("{\"rank\":0,\"seq\":0,\"t\":0,\"ev\":\"span\"}\nnot json\n")
            .expect_err("must fail");
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn breakdown_table_pads_idle_and_sums_categories() {
        let recs = parse_dump(DUMP).expect("dump parses");
        let out = render_breakdown(&fold_breakdown(&recs), 1);
        // Proc 1 finished at 1s, makespan 2.5s: 1.5s idle padding.
        assert!(out.contains("compute"), "{out}");
        assert!(out.contains("idle"), "{out}");
        assert!(out.contains("1.500"), "{out}");
        assert!(out.contains("makespan 2.500s"), "{out}");
        // overhead = 0.5s messaging / 3.0s compute.
        assert!(out.contains("overhead 16.6667%"), "{out}");
    }

    #[test]
    fn forward_histogram_counts_exact_chain_lengths() {
        let recs = parse_dump(DUMP).expect("dump parses");
        let out = render_forward_histogram(&recs);
        // hops=1 seen twice, hops=2 once: one chain of length 1, one of 2.
        assert!(out.contains("     1          1"), "{out}");
        assert!(out.contains("     2          1"), "{out}");
        assert!(out.contains("2 forwarded messages, 3 hops total"), "{out}");
        // Two messages with chains of 1 and 2: p50 is 1, p99 and max are 2.
        assert!(out.contains("chain p50 1  p99 2  max 2"), "{out}");
    }

    #[test]
    fn directory_section_folds_cache_counters() {
        let recs = parse_dump(DUMP).expect("dump parses");
        let out = render_directory(&recs, 1);
        // Rank 0: 2 hits, 1 miss; rank 1: 1 stale, 1 lookup.
        assert!(
            out.contains("    0        2        1        0        0"),
            "{out}"
        );
        assert!(
            out.contains("    1        0        0        1        1"),
            "{out}"
        );
        assert!(
            out.contains(
                "cache hit rate 66.7% (2 hits / 1 misses), 1 stale corrections, 1 home lookups"
            ),
            "{out}"
        );
    }

    #[test]
    fn directory_section_handles_a_quiet_trace() {
        let dump = "{\"rank\":0,\"seq\":0,\"t\":0,\"ev\":\"span\",\"cat\":0,\"dur\":5}\n";
        let recs = parse_dump(dump).expect("dump parses");
        let out = render_directory(&recs, 1);
        assert!(out.contains("(no directory events)"), "{out}");
    }

    #[test]
    fn begging_latency_pairs_requests_with_replies() {
        let recs = parse_dump(DUMP).expect("dump parses");
        let out = render_begging_latency(&recs);
        // Two rounds on proc 1: 3ms NACK and 1ms grant -> mean 2ms, max 3ms.
        assert!(
            out.contains("    1       2        1        1      2.000      3.000"),
            "{out}"
        );
    }

    #[test]
    fn stale_nacks_do_not_close_a_round() {
        let dump = "{\"rank\":0,\"seq\":0,\"t\":100,\"ev\":\"lb_request\",\"victim\":1,\"attempt\":0}\n\
            {\"rank\":0,\"seq\":1,\"t\":200,\"ev\":\"lb_nack_recv\",\"src\":2,\"stale\":true}\n\
            {\"rank\":0,\"seq\":2,\"t\":1000100,\"ev\":\"lb_nack_recv\",\"src\":1,\"stale\":false}\n";
        let recs = parse_dump(dump).expect("dump parses");
        let out = render_begging_latency(&recs);
        // One round, closed by the genuine NACK at +1ms (not the stale one).
        assert!(
            out.contains("    0       1        0        1      1.000      1.000"),
            "{out}"
        );
    }

    #[test]
    fn migration_timeline_merges_both_sides_in_time_order() {
        let recs = parse_dump(DUMP).expect("dump parses");
        let out = render_migration_timeline(&recs);
        let migrate_at = out.find("migrate").expect("has migrate row");
        let install_at = out.find("install").expect("has install row");
        assert!(migrate_at < install_at, "{out}");
        assert!(out.contains("1 migrations total"), "{out}");
    }

    #[test]
    fn activity_counters_fold_per_rank() {
        let recs = parse_dump(DUMP).expect("dump parses");
        let out = render_activity(&recs, 1);
        // Rank 0: 1 sent, victim-side LB (1 req-in, 1 grant, 1 nack-out),
        // substrate (1 flush of 5 msgs, 1 dropped, 1 retry, 1 dup).
        assert!(
            out.contains(
                "    0        1        1         1        1          5        1        1     1"
            ),
            "{out}"
        );
        // Rank 1: 1 recvd, 1 exec, 1 poll, 1 sys-poll, 1 wake.
        assert!(
            out.contains("    1        0        1        1        1         1       1"),
            "{out}"
        );
        assert!(
            out.contains("totals: 1 sent, 1 recvd, 1 executed, 1 flushed frames (5 msgs), 1 dropped, 1 retries, 1 duplicates"),
            "{out}"
        );
    }

    #[test]
    fn exec_imbalance_is_warned_about() {
        let dump = "{\"rank\":0,\"seq\":0,\"t\":1,\"ev\":\"exec_begin\",\"home\":0,\"index\":1}\n";
        let recs = parse_dump(dump).expect("dump parses");
        let out = render_activity(&recs, 1);
        assert!(
            out.contains("warning: 1 exec_begin vs 0 exec_finish"),
            "{out}"
        );
    }

    #[test]
    fn migration_churn_folds_moves_vetoes_and_forecasts() {
        let recs = parse_dump(DUMP).expect("dump parses");
        let out = render_migration_churn(&recs);
        // One object (0:7) moved once.
        assert!(out.contains("     1        1"), "{out}");
        assert!(
            out.contains("1 moves across 1 objects, busiest 0:7 with 1"),
            "{out}"
        );
        // Rank 0 vetoes: 1 hysteresis, 2 residency, 1 rate-cap.
        assert!(out.contains("residency"), "{out}");
        assert!(
            out.contains("    0           1          2         1"),
            "{out}"
        );
        // Rank 1 forecasts: 2 samples, 1 rising, last pair 2.75 -> 2.60.
        assert!(
            out.contains("    1         2       1       2.750       2.600"),
            "{out}"
        );
    }

    #[test]
    fn migration_churn_handles_a_quiet_trace() {
        let dump = "{\"rank\":0,\"seq\":0,\"t\":0,\"ev\":\"span\",\"cat\":0,\"dur\":5}\n";
        let recs = parse_dump(dump).expect("dump parses");
        let out = render_migration_churn(&recs);
        assert!(out.contains("(no migrations)"), "{out}");
        assert!(out.contains("(no governor vetoes)"), "{out}");
        assert!(out.contains("(no forecasts)"), "{out}");
    }

    #[test]
    fn report_renders_all_sections() {
        let out = report(DUMP, 1).expect("report renders");
        for heading in [
            "per-processor time breakdown",
            "Forwarding-chain length histogram",
            "Directory location caches",
            "Begging-round latency",
            "Migration timeline",
            "Migration churn",
            "Activity counters",
        ] {
            assert!(out.contains(heading), "missing {heading}:\n{out}");
        }
    }

    #[test]
    fn empty_trace_is_an_error() {
        assert!(report("", 1).is_err());
    }
}
