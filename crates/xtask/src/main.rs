//! `cargo xtask lint` — the PREMA static lint pass.
//!
//! Pure std, no dependencies: it must build and run offline in seconds.
//! Rules (see `lints.rs` for rationale and fixtures):
//!
//! * `relaxed-ordering` — no `Ordering::Relaxed` outside
//!   `allow/relaxed-ordering.txt` (workspace `crates/*/src`).
//! * `blocking-call`    — no `thread::sleep` / bare `.recv()` in non-test
//!   code of the message-driven crates (`core`, `dcs`, `mol`, `ilb`)
//!   outside `allow/blocking-calls.txt`.
//! * `unwrap`           — no `.unwrap()` and no non-invariant `.expect()`
//!   messages in non-test code of those crates.
//! * `handler-id`       — every `const NAME: HandlerId` is referenced by a
//!   registration or dispatch site somewhere in the workspace.
//! * `bench-invariants` — the bench crate's manifest must not compile the
//!   `check-invariants` oracles into measured code.
//! * `trace-hygiene`    — no raw `Instant::now()` / `SystemTime::now()`
//!   outside the trace/sim clock owners (workspace `crates/*/src`),
//!   outside `allow/trace-hygiene.txt`.
//! * `batch-hygiene`    — no raw `Bytes::from(..)` /
//!   `Bytes::copy_from_slice(..)` payload construction in dcs/mol hot paths
//!   outside the pool module, outside `allow/batch-hygiene.txt`.
//!
//! `cargo xtask bench-json` runs the substrate and figure benchmarks and
//! aggregates their per-benchmark JSON lines into the checked-in
//! `BENCH_substrate.json` / `BENCH_figures.json` baselines.
//!
//! `cargo xtask trace-report <trace.jsonl> [stride]` replays a JSONL event
//! trace (harness `PREMA_TRACE_OUT`) into the per-processor breakdown table
//! plus forwarding-chain, begging-latency, and migration views.

mod lints;
mod source;
mod trace_report;

use lints::{Allowlist, Violation};
use source::SourceFile;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Crates whose non-test code must be free of blocking calls and unwraps.
const MESSAGE_DRIVEN_CRATES: &[&str] = &["core", "dcs", "mol", "ilb"];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        Some("bench-json") => bench_json(),
        Some("trace-report") => trace_report_cmd(&args[1..]),
        Some(other) => {
            eprintln!("unknown xtask `{other}`\n");
            usage();
            ExitCode::FAILURE
        }
        None => {
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!("usage: cargo xtask <lint | bench-json | trace-report <trace.jsonl> [stride]>");
}

/// `cargo xtask trace-report <trace.jsonl> [stride]`.
fn trace_report_cmd(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        usage();
        return ExitCode::FAILURE;
    };
    let stride: usize = match args.get(1).map(|s| s.parse()) {
        None => 1,
        Some(Ok(n)) => n,
        Some(Err(_)) => {
            eprintln!("xtask: stride must be a positive integer");
            return ExitCode::FAILURE;
        }
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("xtask: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match trace_report::report(&text, stride) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("xtask trace-report: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Workspace root, derived from this crate's location (`crates/xtask`).
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask lives two levels below the workspace root")
        .to_path_buf()
}

fn lint() -> ExitCode {
    let root = workspace_root();
    let allow_dir = root.join("crates/xtask/allow");
    let relaxed_allow = load_allowlist(&allow_dir.join("relaxed-ordering.txt"));
    let blocking_allow = load_allowlist(&allow_dir.join("blocking-calls.txt"));
    let hygiene_allow = load_allowlist(&allow_dir.join("trace-hygiene.txt"));
    let batch_allow = load_allowlist(&allow_dir.join("batch-hygiene.txt"));

    // Everything under crates/*/src, plus tests/ and examples/ for the
    // handler-id cross-reference (a registration in an integration test or
    // example is a real dispatch site).
    let mut src_files: Vec<SourceFile> = Vec::new();
    let mut all_files: Vec<SourceFile> = Vec::new();
    for path in rust_files(&root.join("crates"))
        .into_iter()
        .chain(rust_files(&root.join("examples")))
    {
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("xtask: cannot read {rel}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let f = SourceFile::parse(&rel, &text);
        if rel.contains("/src/") {
            src_files.push(f);
        } else {
            all_files.push(f);
        }
    }

    let mut violations: Vec<Violation> = Vec::new();
    violations.extend(relaxed_allow.parse_errors.iter().map(clone_violation));
    violations.extend(blocking_allow.parse_errors.iter().map(clone_violation));
    violations.extend(hygiene_allow.parse_errors.iter().map(clone_violation));
    violations.extend(batch_allow.parse_errors.iter().map(clone_violation));

    let mut relaxed_used = BTreeSet::new();
    let mut blocking_used = BTreeSet::new();
    let mut hygiene_used = BTreeSet::new();
    let mut batch_used = BTreeSet::new();
    for f in &src_files {
        violations.extend(lints::lint_relaxed_ordering(
            f,
            &relaxed_allow,
            &mut relaxed_used,
        ));
        violations.extend(lints::lint_trace_hygiene(
            f,
            &hygiene_allow,
            &mut hygiene_used,
        ));
        violations.extend(lints::lint_batch_hygiene(f, &batch_allow, &mut batch_used));
        let crate_name = f
            .path
            .strip_prefix("crates/")
            .and_then(|p| p.split('/').next());
        if crate_name.is_some_and(|c| MESSAGE_DRIVEN_CRATES.contains(&c)) {
            violations.extend(lints::lint_blocking_calls(
                f,
                &blocking_allow,
                &mut blocking_used,
            ));
            violations.extend(lints::lint_unwrap(f));
        }
    }
    violations.extend(relaxed_allow.unused(&relaxed_used));
    violations.extend(blocking_allow.unused(&blocking_used));
    violations.extend(hygiene_allow.unused(&hygiene_used));
    violations.extend(batch_allow.unused(&batch_used));

    // handler-id sees every file (src + tests + examples).
    let mut everything = src_files;
    everything.extend(all_files);
    violations.extend(lints::lint_handler_ids(&everything));

    // bench-invariants reads manifests, not .rs files: the bench crate must
    // measure the oracle-free build (`default-features = false` end to end).
    let bench_manifest = root.join("crates/bench/Cargo.toml");
    let workspace_manifest = root.join("Cargo.toml");
    match (
        std::fs::read_to_string(&bench_manifest),
        std::fs::read_to_string(&workspace_manifest),
    ) {
        (Ok(bench), Ok(workspace)) => {
            violations.extend(lints::lint_bench_manifest(
                "crates/bench/Cargo.toml",
                &bench,
                &workspace,
            ));
        }
        (bench, workspace) => {
            for (path, res) in [(&bench_manifest, bench), (&workspace_manifest, workspace)] {
                if let Err(e) = res {
                    eprintln!("xtask: cannot read {}: {e}", path.display());
                }
            }
            return ExitCode::FAILURE;
        }
    }

    violations.sort_by(|a, b| (&a.path, a.line, a.lint).cmp(&(&b.path, b.line, b.lint)));
    for v in &violations {
        println!("{}:{}: [{}] {}", v.path, v.line, v.lint, v.message);
    }
    if violations.is_empty() {
        println!(
            "xtask lint: OK ({} files, 7 lints, 0 violations)",
            everything.len()
        );
        ExitCode::SUCCESS
    } else {
        println!("xtask lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

/// Benchmark targets feeding each checked-in baseline file: the substrate
/// baseline carries both the microbenchmarks and the fast-path
/// before/after comparison; the figure baseline carries the paper's
/// experiment reproductions.
const BENCH_BASELINES: &[(&str, &[&str])] = &[
    ("BENCH_substrate.json", &["substrates", "fastpath"]),
    ("BENCH_figures.json", &["figures"]),
];

/// Run the baseline benchmarks and aggregate their JSON lines (emitted by
/// the harness via `PREMA_BENCH_JSON`) into pretty-printed `BENCH_*.json`
/// files at the workspace root.
fn bench_json() -> ExitCode {
    let root = workspace_root();
    let scratch = root.join("target/bench-json");
    if let Err(e) = std::fs::create_dir_all(&scratch) {
        eprintln!("xtask: cannot create {}: {e}", scratch.display());
        return ExitCode::FAILURE;
    }

    for (out_name, benches) in BENCH_BASELINES {
        let jsonl = scratch.join(format!("{out_name}l"));
        let _ = std::fs::remove_file(&jsonl); // the harness appends; start clean
        for bench in *benches {
            println!("xtask bench-json: running `cargo bench -p prema-bench --bench {bench}`");
            let status = std::process::Command::new(env!("CARGO"))
                .args(["bench", "-p", "prema-bench", "--bench", bench])
                .env("PREMA_BENCH_JSON", &jsonl)
                .current_dir(&root)
                .status();
            match status {
                Ok(s) if s.success() => {}
                Ok(s) => {
                    eprintln!("xtask: bench `{bench}` failed with {s}");
                    return ExitCode::FAILURE;
                }
                Err(e) => {
                    eprintln!("xtask: cannot spawn cargo bench: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        let lines = match std::fs::read_to_string(&jsonl) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("xtask: no benchmark output at {}: {e}", jsonl.display());
                return ExitCode::FAILURE;
            }
        };
        let out_path = root.join(out_name);
        if let Err(e) = std::fs::write(&out_path, aggregate_json(&lines)) {
            eprintln!("xtask: cannot write {}: {e}", out_path.display());
            return ExitCode::FAILURE;
        }
        println!("xtask bench-json: wrote {}", out_path.display());
    }
    ExitCode::SUCCESS
}

/// Wrap harness JSON lines (one flat object per benchmark) into a single
/// pretty-enough JSON document without needing a JSON parser.
fn aggregate_json(jsonl: &str) -> String {
    let lines: Vec<&str> = jsonl.lines().filter(|l| !l.trim().is_empty()).collect();
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, line) in lines.iter().enumerate() {
        out.push_str("    ");
        out.push_str(line.trim());
        if i + 1 < lines.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

fn clone_violation(v: &Violation) -> Violation {
    Violation {
        path: v.path.clone(),
        line: v.line,
        lint: v.lint,
        message: v.message.clone(),
    }
}

fn load_allowlist(path: &Path) -> Allowlist {
    let rel = path
        .strip_prefix(workspace_root())
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/");
    let text = std::fs::read_to_string(path).unwrap_or_default();
    Allowlist::parse(&rel, &text)
}

/// All `.rs` files under `dir`, skipping build output.
fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let entries = match std::fs::read_dir(&d) {
            Ok(e) => e,
            Err(_) => continue,
        };
        for entry in entries.flatten() {
            let p = entry.path();
            if p.is_dir() {
                let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
                if name != "target" && !name.starts_with('.') {
                    stack.push(p);
                }
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}
