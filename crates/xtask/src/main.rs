//! `cargo xtask lint` — the PREMA static lint pass.
//!
//! Pure std, no dependencies: it must build and run offline in seconds.
//! Rules (see `lints.rs` for rationale and fixtures):
//!
//! * `relaxed-ordering` — no `Ordering::Relaxed` outside
//!   `allow/relaxed-ordering.txt` (workspace `crates/*/src`).
//! * `blocking-call`    — no `thread::sleep` / bare `.recv()` in non-test
//!   code of the message-driven crates (`core`, `dcs`, `mol`, `ilb`)
//!   outside `allow/blocking-calls.txt`.
//! * `unwrap`           — no `.unwrap()` and no non-invariant `.expect()`
//!   messages in non-test code of those crates.
//! * `handler-id`       — every `const NAME: HandlerId` is referenced by a
//!   registration or dispatch site somewhere in the workspace.

mod lints;
mod source;

use lints::{Allowlist, Violation};
use source::SourceFile;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Crates whose non-test code must be free of blocking calls and unwraps.
const MESSAGE_DRIVEN_CRATES: &[&str] = &["core", "dcs", "mol", "ilb"];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        Some(other) => {
            eprintln!("unknown xtask `{other}`\n");
            usage();
            ExitCode::FAILURE
        }
        None => {
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!("usage: cargo xtask lint");
}

/// Workspace root, derived from this crate's location (`crates/xtask`).
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask lives two levels below the workspace root")
        .to_path_buf()
}

fn lint() -> ExitCode {
    let root = workspace_root();
    let allow_dir = root.join("crates/xtask/allow");
    let relaxed_allow = load_allowlist(&allow_dir.join("relaxed-ordering.txt"));
    let blocking_allow = load_allowlist(&allow_dir.join("blocking-calls.txt"));

    // Everything under crates/*/src, plus tests/ and examples/ for the
    // handler-id cross-reference (a registration in an integration test or
    // example is a real dispatch site).
    let mut src_files: Vec<SourceFile> = Vec::new();
    let mut all_files: Vec<SourceFile> = Vec::new();
    for path in rust_files(&root.join("crates"))
        .into_iter()
        .chain(rust_files(&root.join("examples")))
    {
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("xtask: cannot read {rel}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let f = SourceFile::parse(&rel, &text);
        if rel.contains("/src/") {
            src_files.push(f);
        } else {
            all_files.push(f);
        }
    }

    let mut violations: Vec<Violation> = Vec::new();
    violations.extend(relaxed_allow.parse_errors.iter().map(clone_violation));
    violations.extend(blocking_allow.parse_errors.iter().map(clone_violation));

    let mut relaxed_used = BTreeSet::new();
    let mut blocking_used = BTreeSet::new();
    for f in &src_files {
        violations.extend(lints::lint_relaxed_ordering(
            f,
            &relaxed_allow,
            &mut relaxed_used,
        ));
        let crate_name = f
            .path
            .strip_prefix("crates/")
            .and_then(|p| p.split('/').next());
        if crate_name.is_some_and(|c| MESSAGE_DRIVEN_CRATES.contains(&c)) {
            violations.extend(lints::lint_blocking_calls(
                f,
                &blocking_allow,
                &mut blocking_used,
            ));
            violations.extend(lints::lint_unwrap(f));
        }
    }
    violations.extend(relaxed_allow.unused(&relaxed_used));
    violations.extend(blocking_allow.unused(&blocking_used));

    // handler-id sees every file (src + tests + examples).
    let mut everything = src_files;
    everything.extend(all_files);
    violations.extend(lints::lint_handler_ids(&everything));

    violations.sort_by(|a, b| (&a.path, a.line, a.lint).cmp(&(&b.path, b.line, b.lint)));
    for v in &violations {
        println!("{}:{}: [{}] {}", v.path, v.line, v.lint, v.message);
    }
    if violations.is_empty() {
        println!(
            "xtask lint: OK ({} files, 4 lints, 0 violations)",
            everything.len()
        );
        ExitCode::SUCCESS
    } else {
        println!("xtask lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

fn clone_violation(v: &Violation) -> Violation {
    Violation {
        path: v.path.clone(),
        line: v.line,
        lint: v.lint,
        message: v.message.clone(),
    }
}

fn load_allowlist(path: &Path) -> Allowlist {
    let rel = path
        .strip_prefix(workspace_root())
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/");
    let text = std::fs::read_to_string(path).unwrap_or_default();
    Allowlist::parse(&rel, &text)
}

/// All `.rs` files under `dir`, skipping build output.
fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let entries = match std::fs::read_dir(&d) {
            Ok(e) => e,
            Err(_) => continue,
        };
        for entry in entries.flatten() {
            let p = entry.path();
            if p.is_dir() {
                let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
                if name != "target" && !name.starts_with('.') {
                    stack.push(p);
                }
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}
