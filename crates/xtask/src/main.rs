//! `cargo xtask lint` — the PREMA static lint pass.
//!
//! Pure std, no dependencies: it must build and run offline in seconds.
//! Rules (see `lints.rs` for rationale and fixtures):
//!
//! * `relaxed-ordering` — no `Ordering::Relaxed` outside
//!   `allow/relaxed-ordering.txt` (workspace `crates/*/src`).
//! * `blocking-call`    — no `thread::sleep` / bare `.recv()` in non-test
//!   code of the message-driven crates (`core`, `dcs`, `mol`, `ilb`)
//!   outside `allow/blocking-calls.txt`.
//! * `unwrap`           — no `.unwrap()` and no non-invariant `.expect()`
//!   messages in non-test code of those crates.
//! * `handler-id`       — every `const NAME: HandlerId` is referenced by a
//!   registration or dispatch site somewhere in the workspace.
//! * `bench-invariants` — the bench crate's manifest must not compile the
//!   `check-invariants` oracles into measured code.
//! * `trace-hygiene`    — no raw `Instant::now()` / `SystemTime::now()`
//!   outside the trace/sim clock owners (workspace `crates/*/src`),
//!   outside `allow/trace-hygiene.txt`.
//! * `batch-hygiene`    — no raw `Bytes::from(..)` /
//!   `Bytes::copy_from_slice(..)` payload construction in dcs/mol hot paths
//!   outside the pool module, outside `allow/batch-hygiene.txt`.
//! * `ring-hygiene`     — no allocation tokens (`Box::new`, `Vec::new`,
//!   `format!`, …) inside the ring transport's steady-state functions
//!   (`crates/dcs/src/{transport,ring}.rs`), outside
//!   `allow/ring-hygiene.txt`.
//!
//! `cargo xtask bench-json` runs the substrate and figure benchmarks and
//! aggregates their per-benchmark JSON lines into the checked-in
//! `BENCH_substrate.json` / `BENCH_figures.json` baselines.
//!
//! `cargo xtask trace-report <trace.jsonl> [stride]` replays a JSONL event
//! trace (harness `PREMA_TRACE_OUT`) into the per-processor breakdown table
//! plus forwarding-chain, begging-latency, and migration views.

mod analyze;
mod lex;
mod lints;
mod source;
mod trace_report;

use lints::{Allowlist, Violation};
use source::SourceFile;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Crates whose non-test code must be free of blocking calls and unwraps.
const MESSAGE_DRIVEN_CRATES: &[&str] = &["core", "dcs", "mol", "ilb"];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        Some("analyze") => analyze_cmd(&args[1..]),
        Some("bench-json") => bench_json(),
        Some("trace-report") => trace_report_cmd(&args[1..]),
        Some(other) => {
            eprintln!("unknown xtask `{other}`\n");
            usage();
            ExitCode::FAILURE
        }
        None => {
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!(
        "usage: cargo xtask <lint | analyze [--json] | bench-json | trace-report <trace.jsonl> [stride]>"
    );
}

/// `cargo xtask trace-report <trace.jsonl> [stride]`.
fn trace_report_cmd(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        usage();
        return ExitCode::FAILURE;
    };
    let stride: usize = match args.get(1).map(|s| s.parse()) {
        None => 1,
        Some(Ok(n)) => n,
        Some(Err(_)) => {
            eprintln!("xtask: stride must be a positive integer");
            return ExitCode::FAILURE;
        }
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("xtask: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match trace_report::report(&text, stride) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("xtask trace-report: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Workspace root, derived from this crate's location (`crates/xtask`).
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask lives two levels below the workspace root")
        .to_path_buf()
}

/// Parse every workspace `.rs` file (crates + examples) into `SourceFile`s.
fn load_workspace_files(root: &Path) -> Result<Vec<SourceFile>, ExitCode> {
    let mut files = Vec::new();
    for path in rust_files(&root.join("crates"))
        .into_iter()
        .chain(rust_files(&root.join("examples")))
    {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("xtask: cannot read {rel}: {e}");
                return Err(ExitCode::FAILURE);
            }
        };
        files.push(SourceFile::parse(&rel, &text));
    }
    Ok(files)
}

fn lint() -> ExitCode {
    let root = workspace_root();
    let allow_dir = root.join("crates/xtask/allow");
    // relaxed-ordering is line-granular: one justified entry per access.
    let relaxed_allow = load_allowlist(&allow_dir.join("relaxed-ordering.txt"), true);
    let blocking_allow = load_allowlist(&allow_dir.join("blocking-calls.txt"), false);
    let hygiene_allow = load_allowlist(&allow_dir.join("trace-hygiene.txt"), false);
    let batch_allow = load_allowlist(&allow_dir.join("batch-hygiene.txt"), false);
    // ring-hygiene is line-granular: one justified entry per allocation.
    let ring_allow = load_allowlist(&allow_dir.join("ring-hygiene.txt"), true);

    // Everything under crates/*/src, plus tests/ and examples/ for the
    // handler-id cross-reference (a registration in an integration test or
    // example is a real dispatch site).
    let mut src_files: Vec<SourceFile> = Vec::new();
    let mut all_files: Vec<SourceFile> = Vec::new();
    match load_workspace_files(&root) {
        Ok(files) => {
            for f in files {
                if f.path.contains("/src/") {
                    src_files.push(f);
                } else {
                    all_files.push(f);
                }
            }
        }
        Err(code) => return code,
    }

    let mut violations: Vec<Violation> = Vec::new();
    violations.extend(relaxed_allow.parse_errors.iter().map(clone_violation));
    violations.extend(blocking_allow.parse_errors.iter().map(clone_violation));
    violations.extend(hygiene_allow.parse_errors.iter().map(clone_violation));
    violations.extend(batch_allow.parse_errors.iter().map(clone_violation));
    violations.extend(ring_allow.parse_errors.iter().map(clone_violation));

    let mut relaxed_used = BTreeSet::new();
    let mut blocking_used = BTreeSet::new();
    let mut hygiene_used = BTreeSet::new();
    let mut batch_used = BTreeSet::new();
    let mut ring_used = BTreeSet::new();
    for f in &src_files {
        violations.extend(lints::lint_relaxed_ordering(
            f,
            &relaxed_allow,
            &mut relaxed_used,
        ));
        violations.extend(lints::lint_trace_hygiene(
            f,
            &hygiene_allow,
            &mut hygiene_used,
        ));
        violations.extend(lints::lint_batch_hygiene(f, &batch_allow, &mut batch_used));
        violations.extend(lints::lint_ring_hygiene(f, &ring_allow, &mut ring_used));
        let crate_name = f
            .path
            .strip_prefix("crates/")
            .and_then(|p| p.split('/').next());
        if crate_name.is_some_and(|c| MESSAGE_DRIVEN_CRATES.contains(&c)) {
            violations.extend(lints::lint_blocking_calls(
                f,
                &blocking_allow,
                &mut blocking_used,
            ));
            violations.extend(lints::lint_unwrap(f));
        }
    }
    violations.extend(relaxed_allow.unused(&relaxed_used));
    violations.extend(blocking_allow.unused(&blocking_used));
    violations.extend(hygiene_allow.unused(&hygiene_used));
    violations.extend(batch_allow.unused(&batch_used));
    violations.extend(ring_allow.unused(&ring_used));

    // handler-id sees every file (src + tests + examples).
    let mut everything = src_files;
    everything.extend(all_files);
    violations.extend(lints::lint_handler_ids(&everything));

    // bench-invariants reads manifests, not .rs files: the bench crate must
    // measure the oracle-free build (`default-features = false` end to end).
    let bench_manifest = root.join("crates/bench/Cargo.toml");
    let workspace_manifest = root.join("Cargo.toml");
    match (
        std::fs::read_to_string(&bench_manifest),
        std::fs::read_to_string(&workspace_manifest),
    ) {
        (Ok(bench), Ok(workspace)) => {
            violations.extend(lints::lint_bench_manifest(
                "crates/bench/Cargo.toml",
                &bench,
                &workspace,
            ));
        }
        (bench, workspace) => {
            for (path, res) in [(&bench_manifest, bench), (&workspace_manifest, workspace)] {
                if let Err(e) = res {
                    eprintln!("xtask: cannot read {}: {e}", path.display());
                }
            }
            return ExitCode::FAILURE;
        }
    }

    violations.sort_by(|a, b| (&a.path, a.line, a.lint).cmp(&(&b.path, b.line, b.lint)));
    for v in &violations {
        println!("{}:{}: [{}] {}", v.path, v.line, v.lint, v.message);
    }
    if violations.is_empty() {
        println!(
            "xtask lint: OK ({} files, 8 lints, 0 violations)",
            everything.len()
        );
        ExitCode::SUCCESS
    } else {
        println!("xtask lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

/// `cargo xtask analyze [--json]` — the four token-level protocol and
/// concurrency analyses (see `analyze.rs`): handler graph, wire-schema
/// pairing, atomics audit, trace-event coverage. Exit code gates on zero
/// violations; `--json` emits a machine-readable report on stdout instead
/// of the human tables.
fn analyze_cmd(args: &[String]) -> ExitCode {
    let json = args.iter().any(|a| a == "--json");
    let root = workspace_root();
    let files = match load_workspace_files(&root) {
        Ok(f) => f,
        Err(code) => return code,
    };

    let atomics_allow = load_allowlist(
        &root.join("crates/xtask/allow/atomics.txt"),
        true, // line-granular, like relaxed-ordering
    );
    let mut atomics_used = BTreeSet::new();

    let (handlers, hv) = analyze::handler_graph(&files);
    let (wire_fns, wv) = analyze::wire_pairing(&files);
    let (atomics, av) = analyze::atomics_audit(&files, &atomics_allow, &mut atomics_used);
    let (events, tv) = analyze::trace_coverage(&files);

    let mut violations: Vec<Violation> = Vec::new();
    violations.extend(atomics_allow.parse_errors.iter().map(clone_violation));
    violations.extend(hv);
    violations.extend(wv);
    violations.extend(av);
    violations.extend(tv);
    violations.extend(atomics_allow.unused(&atomics_used));
    violations.sort_by(|a, b| (&a.path, a.line, a.lint).cmp(&(&b.path, b.line, b.lint)));

    if json {
        print!(
            "{}",
            analyze_json(&files, &handlers, &wire_fns, &atomics, &events, &violations)
        );
        return if violations.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    for v in &violations {
        println!("{}:{}: [{}] {}", v.path, v.line, v.lint, v.message);
    }

    // Audit table: every atomic with its orderings and how it is verified
    // (allowlisted entries show their recorded justification).
    println!("atomics audit ({} declarations):", atomics.len());
    for d in &atomics {
        let why = atomics_allow
            .entries
            .get(&format!("{}:{}", d.path, d.line))
            .map(|e| format!(" — {}", e.why))
            .unwrap_or_default();
        println!(
            "  {}:{}: {}.{} ({}) orderings=[{}] coverage={}{}",
            d.path,
            d.line,
            d.container,
            d.name,
            d.ty,
            d.orderings.iter().cloned().collect::<Vec<_>>().join("/"),
            d.coverage.label(),
            why
        );
    }
    println!(
        "handler graph: {} handlers ({} envelope-plane, {} node-plane), all routed",
        handlers.len(),
        handlers
            .iter()
            .filter(|h| h.plane == analyze::Plane::Envelope)
            .count(),
        handlers
            .iter()
            .filter(|h| h.plane == analyze::Plane::Node)
            .count(),
    );
    println!(
        "wire pairing: {} encode/decode fns checked; trace coverage: {} events",
        wire_fns.len(),
        events.len()
    );
    if violations.is_empty() {
        println!(
            "xtask analyze: OK ({} files, 4 analyses, 0 violations)",
            files.len()
        );
        ExitCode::SUCCESS
    } else {
        println!("xtask analyze: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

/// Escape a string for inclusion in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Hand-rolled `--json` report (xtask is pure std by design).
fn analyze_json(
    files: &[SourceFile],
    handlers: &[analyze::HandlerInfo],
    wire_fns: &[analyze::WireFn],
    atomics: &[analyze::AtomicDecl],
    events: &[analyze::TraceEventInfo],
    violations: &[Violation],
) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!(
        "  \"summary\": {{\"files\": {}, \"handlers\": {}, \"wire_fns\": {}, \
         \"atomics\": {}, \"trace_events\": {}, \"violations\": {}}},\n",
        files.len(),
        handlers.len(),
        wire_fns.len(),
        atomics.len(),
        events.len(),
        violations.len()
    ));
    s.push_str("  \"violations\": [\n");
    for (i, v) in violations.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"path\": \"{}\", \"line\": {}, \"lint\": \"{}\", \"message\": \"{}\"}}{}\n",
            json_escape(&v.path),
            v.line,
            v.lint,
            json_escape(&v.message),
            if i + 1 < violations.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n  \"handlers\": [\n");
    for (i, h) in handlers.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"plane\": \"{}\", \"value\": {}, \"path\": \"{}\", \
             \"line\": {}, \"sends\": {}, \"recvs\": {}}}{}\n",
            json_escape(&h.name),
            h.plane.label(),
            h.value.map_or("null".to_string(), |v| v.to_string()),
            json_escape(&h.path),
            h.line,
            h.sends,
            h.recvs,
            if i + 1 < handlers.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n  \"wire_fns\": [\n");
    for (i, w) in wire_fns.iter().enumerate() {
        let ops: Vec<String> = w.ops.iter().map(|o| format!("\"{o}\"")).collect();
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"ctx\": \"{}\", \"path\": \"{}\", \"line\": {}, \
             \"ops\": [{}]}}{}\n",
            json_escape(&w.name),
            json_escape(&w.ctx),
            json_escape(&w.path),
            w.line,
            ops.join(", "),
            if i + 1 < wire_fns.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n  \"atomics\": [\n");
    for (i, d) in atomics.iter().enumerate() {
        let ords: Vec<String> = d.orderings.iter().map(|o| format!("\"{o}\"")).collect();
        s.push_str(&format!(
            "    {{\"path\": \"{}\", \"line\": {}, \"container\": \"{}\", \"name\": \"{}\", \
             \"type\": \"{}\", \"orderings\": [{}], \"coverage\": \"{}\"}}{}\n",
            json_escape(&d.path),
            d.line,
            json_escape(&d.container),
            json_escape(&d.name),
            json_escape(&d.ty),
            ords.join(", "),
            d.coverage.label(),
            if i + 1 < atomics.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n  \"trace_events\": [\n");
    for (i, e) in events.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"variant\": \"{}\", \"name\": {}, \"emitted\": {}, \"consumed\": {}}}{}\n",
            json_escape(&e.variant),
            e.name
                .as_ref()
                .map_or("null".to_string(), |n| format!("\"{}\"", json_escape(n))),
            e.emitted,
            e.consumed,
            if i + 1 < events.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Benchmark targets feeding each checked-in baseline file: the substrate
/// baseline carries both the microbenchmarks and the fast-path
/// before/after comparison; the figure baseline carries the paper's
/// experiment reproductions.
const BENCH_BASELINES: &[(&str, &[&str])] = &[
    (
        "BENCH_substrate.json",
        &["substrates", "fastpath", "mol_directory", "ring", "udp"],
    ),
    ("BENCH_figures.json", &["figures"]),
];

/// Run the baseline benchmarks and aggregate their JSON lines (emitted by
/// the harness via `PREMA_BENCH_JSON`) into pretty-printed `BENCH_*.json`
/// files at the workspace root.
fn bench_json() -> ExitCode {
    let root = workspace_root();
    let scratch = root.join("target/bench-json");
    if let Err(e) = std::fs::create_dir_all(&scratch) {
        eprintln!("xtask: cannot create {}: {e}", scratch.display());
        return ExitCode::FAILURE;
    }

    for (out_name, benches) in BENCH_BASELINES {
        let jsonl = scratch.join(format!("{out_name}l"));
        let _ = std::fs::remove_file(&jsonl); // the harness appends; start clean
        for bench in *benches {
            println!("xtask bench-json: running `cargo bench -p prema-bench --bench {bench}`");
            let status = std::process::Command::new(env!("CARGO"))
                .args(["bench", "-p", "prema-bench", "--bench", bench])
                .env("PREMA_BENCH_JSON", &jsonl)
                .current_dir(&root)
                .status();
            match status {
                Ok(s) if s.success() => {}
                Ok(s) => {
                    eprintln!("xtask: bench `{bench}` failed with {s}");
                    return ExitCode::FAILURE;
                }
                Err(e) => {
                    eprintln!("xtask: cannot spawn cargo bench: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        let lines = match std::fs::read_to_string(&jsonl) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("xtask: no benchmark output at {}: {e}", jsonl.display());
                return ExitCode::FAILURE;
            }
        };
        let out_path = root.join(out_name);
        if let Err(e) = std::fs::write(&out_path, aggregate_json(&lines)) {
            eprintln!("xtask: cannot write {}: {e}", out_path.display());
            return ExitCode::FAILURE;
        }
        println!("xtask bench-json: wrote {}", out_path.display());
    }
    ExitCode::SUCCESS
}

/// Wrap harness JSON lines (one flat object per benchmark) into a single
/// pretty-enough JSON document without needing a JSON parser.
fn aggregate_json(jsonl: &str) -> String {
    let lines: Vec<&str> = jsonl.lines().filter(|l| !l.trim().is_empty()).collect();
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, line) in lines.iter().enumerate() {
        out.push_str("    ");
        out.push_str(line.trim());
        if i + 1 < lines.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

fn clone_violation(v: &Violation) -> Violation {
    Violation {
        path: v.path.clone(),
        line: v.line,
        lint: v.lint,
        message: v.message.clone(),
    }
}

fn load_allowlist(path: &Path, line_keyed: bool) -> Allowlist {
    let rel = path
        .strip_prefix(workspace_root())
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/");
    let text = std::fs::read_to_string(path).unwrap_or_default();
    if line_keyed {
        Allowlist::parse_line_keyed(&rel, &text)
    } else {
        Allowlist::parse(&rel, &text)
    }
}

/// All `.rs` files under `dir`, skipping build output.
fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let entries = match std::fs::read_dir(&d) {
            Ok(e) => e,
            Err(_) => continue,
        };
        for entry in entries.flatten() {
            let p = entry.path();
            if p.is_dir() {
                let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
                if name != "target" && !name.starts_with('.') {
                    stack.push(p);
                }
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}
