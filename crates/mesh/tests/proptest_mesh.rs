//! Property-based tests for the mesher: serialization roundtrips of
//! arbitrarily meshed subdomains, front invariants, and sizing monotonicity.

use prema_mesh::{Front, Point3, Subdomain, Uniform};
use prema_mol::Migratable;
use proptest::prelude::*;

fn arb_box() -> impl Strategy<Value = (Point3, Point3)> {
    (
        (-2.0f64..2.0, -2.0f64..2.0, -2.0f64..2.0),
        (0.3f64..1.5, 0.3f64..1.5, 0.3f64..1.5),
    )
        .prop_map(|((x, y, z), (dx, dy, dz))| {
            (Point3::new(x, y, z), Point3::new(x + dx, y + dy, z + dz))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn pack_unpack_identity_mid_mesh((lo, hi) in arb_box(), h in 0.25f64..0.8, steps in 0usize..120) {
        let mut s = Subdomain::seed_box(1, lo, hi, 0.05);
        let _ = s.advance(&Uniform(h), steps);
        let mut buf = Vec::new();
        s.pack(&mut buf);
        let r = Subdomain::unpack(&buf);
        prop_assert_eq!(r.vertices.len(), s.vertices.len());
        prop_assert_eq!(&r.tets, &s.tets);
        prop_assert_eq!(r.front.len(), s.front.len());
        prop_assert_eq!(r.front.faces_in_order(), s.front.faces_in_order());
        // Re-pack must be byte-identical (stable wire format).
        let mut buf2 = Vec::new();
        r.pack(&mut buf2);
        prop_assert_eq!(buf, buf2);
    }

    #[test]
    fn meshing_is_valid_for_any_box((lo, hi) in arb_box(), h in 0.25f64..0.9) {
        let mut s = Subdomain::seed_box(3, lo, hi, 0.05);
        let stats = s.mesh_all(&Uniform(h));
        s.validate();
        // The fill must produce something for any reasonable sizing.
        prop_assert!(stats.tets_created > 0);
        // Every vertex stays inside the (slightly padded) box.
        for v in &s.vertices {
            prop_assert!(v.x >= lo.x - 1e-9 && v.x <= hi.x + 1e-9);
            prop_assert!(v.y >= lo.y - 1e-9 && v.y <= hi.y + 1e-9);
            prop_assert!(v.z >= lo.z - 1e-9 && v.z <= hi.z + 1e-9);
        }
    }

    #[test]
    fn finer_sizing_never_creates_fewer_tets((lo, hi) in arb_box()) {
        let run = |h: f64| {
            let mut s = Subdomain::seed_box(4, lo, hi, 0.05);
            s.mesh_all(&Uniform(h)).tets_created
        };
        let coarse = run(0.8);
        let fine = run(0.4);
        prop_assert!(fine >= coarse, "fine {} < coarse {}", fine, coarse);
    }

    #[test]
    fn front_cancellation_is_an_involution(faces in proptest::collection::vec((0u32..12, 0u32..12, 0u32..12), 1..60)) {
        let mut front = Front::new();
        let mut parity = std::collections::HashMap::new();
        for (a, b, c) in faces {
            // Make vertices distinct by offsetting collisions.
            let (a, b, c) = (a, 12 + b, 24 + c);
            front.add([a, b, c]);
            let mut key = [a, b, c];
            key.sort_unstable();
            *parity.entry(key).or_insert(0u32) += 1;
        }
        // A face is live iff it was added an odd number of times.
        let live = parity.values().filter(|&&n| n % 2 == 1).count();
        prop_assert_eq!(front.len(), live);
    }
}
