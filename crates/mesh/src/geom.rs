//! Minimal 3-D geometry for tetrahedral meshing.

use std::ops::{Add, Div, Mul, Sub};

/// A point (or vector) in 3-space.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Point3 {
    /// x coordinate.
    pub x: f64,
    /// y coordinate.
    pub y: f64,
    /// z coordinate.
    pub z: f64,
}

impl Point3 {
    /// Construct from components.
    pub fn new(x: f64, y: f64, z: f64) -> Self {
        Point3 { x, y, z }
    }

    /// Dot product.
    pub fn dot(self, o: Point3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product.
    pub fn cross(self, o: Point3) -> Point3 {
        Point3 {
            x: self.y * o.z - self.z * o.y,
            y: self.z * o.x - self.x * o.z,
            z: self.x * o.y - self.y * o.x,
        }
    }

    /// Euclidean norm.
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Distance to another point.
    pub fn dist(self, o: Point3) -> f64 {
        (self - o).norm()
    }

    /// Unit vector in this direction (zero vector stays zero).
    pub fn normalized(self) -> Point3 {
        let n = self.norm();
        if n == 0.0 {
            self
        } else {
            self / n
        }
    }
}

impl Add for Point3 {
    type Output = Point3;
    fn add(self, o: Point3) -> Point3 {
        Point3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}
impl Sub for Point3 {
    type Output = Point3;
    fn sub(self, o: Point3) -> Point3 {
        Point3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}
impl Mul<f64> for Point3 {
    type Output = Point3;
    fn mul(self, s: f64) -> Point3 {
        Point3::new(self.x * s, self.y * s, self.z * s)
    }
}
impl Div<f64> for Point3 {
    type Output = Point3;
    fn div(self, s: f64) -> Point3 {
        Point3::new(self.x / s, self.y / s, self.z / s)
    }
}

/// Signed volume of tetrahedron (a, b, c, d): positive when `d` lies on the
/// side of plane (a,b,c) that the right-hand normal (b−a)×(c−a) points to.
pub fn tet_volume(a: Point3, b: Point3, c: Point3, d: Point3) -> f64 {
    (b - a).cross(c - a).dot(d - a) / 6.0
}

/// Area of triangle (a, b, c).
pub fn tri_area(a: Point3, b: Point3, c: Point3) -> f64 {
    (b - a).cross(c - a).norm() / 2.0
}

/// Unit normal of triangle (a, b, c) by the right-hand rule.
pub fn tri_normal(a: Point3, b: Point3, c: Point3) -> Point3 {
    (b - a).cross(c - a).normalized()
}

/// Centroid of a triangle.
pub fn tri_centroid(a: Point3, b: Point3, c: Point3) -> Point3 {
    (a + b + c) / 3.0
}

/// Radius–edge quality ratio of a tetrahedron: circumradius over shortest
/// edge. Lower is better; a regular tet scores ≈ 0.612. Returns `f64::MAX`
/// for degenerate tets.
pub fn radius_edge_ratio(a: Point3, b: Point3, c: Point3, d: Point3) -> f64 {
    let vol = tet_volume(a, b, c, d).abs();
    if vol < 1e-300 {
        return f64::MAX;
    }
    // Circumradius via the standard determinant-free formula:
    // R = |α| where α solves the perpendicular bisector system.
    let ba = b - a;
    let ca = c - a;
    let da = d - a;
    let ba2 = ba.dot(ba);
    let ca2 = ca.dot(ca);
    let da2 = da.dot(da);
    let num = ca.cross(da) * ba2 + da.cross(ba) * ca2 + ba.cross(ca) * da2;
    let denom = 2.0 * ba.cross(ca).dot(da);
    if denom.abs() < 1e-300 {
        return f64::MAX;
    }
    let circumcenter_offset = num / denom;
    let r = circumcenter_offset.norm();
    let mut min_edge = f64::MAX;
    let pts = [a, b, c, d];
    for i in 0..4 {
        for j in (i + 1)..4 {
            min_edge = min_edge.min(pts[i].dist(pts[j]));
        }
    }
    if min_edge == 0.0 {
        f64::MAX
    } else {
        r / min_edge
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_algebra() {
        let a = Point3::new(1.0, 0.0, 0.0);
        let b = Point3::new(0.0, 1.0, 0.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), Point3::new(0.0, 0.0, 1.0));
        assert_eq!((a + b).norm(), 2f64.sqrt());
        assert_eq!((a * 3.0).norm(), 3.0);
        assert_eq!(Point3::default().normalized(), Point3::default());
    }

    #[test]
    fn unit_tet_volume() {
        let v = tet_volume(
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(1.0, 0.0, 0.0),
            Point3::new(0.0, 1.0, 0.0),
            Point3::new(0.0, 0.0, 1.0),
        );
        assert!((v - 1.0 / 6.0).abs() < 1e-12);
        // Swapping two vertices flips the sign.
        let v2 = tet_volume(
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(0.0, 1.0, 0.0),
            Point3::new(1.0, 0.0, 0.0),
            Point3::new(0.0, 0.0, 1.0),
        );
        assert!((v2 + 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn triangle_area_and_normal() {
        let a = Point3::new(0.0, 0.0, 0.0);
        let b = Point3::new(2.0, 0.0, 0.0);
        let c = Point3::new(0.0, 2.0, 0.0);
        assert!((tri_area(a, b, c) - 2.0).abs() < 1e-12);
        assert_eq!(tri_normal(a, b, c), Point3::new(0.0, 0.0, 1.0));
        let g = tri_centroid(a, b, c);
        assert!((g.x - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn regular_tet_quality() {
        // Regular tetrahedron with unit edges.
        let a = Point3::new(1.0, 1.0, 1.0);
        let b = Point3::new(1.0, -1.0, -1.0);
        let c = Point3::new(-1.0, 1.0, -1.0);
        let d = Point3::new(-1.0, -1.0, 1.0);
        let q = radius_edge_ratio(a, b, c, d);
        assert!((q - 0.6123724).abs() < 1e-5, "q = {q}");
    }

    #[test]
    fn degenerate_tet_quality_is_max() {
        let a = Point3::new(0.0, 0.0, 0.0);
        let b = Point3::new(1.0, 0.0, 0.0);
        let c = Point3::new(2.0, 0.0, 0.0);
        let d = Point3::new(3.0, 0.0, 0.0);
        assert_eq!(radius_edge_ratio(a, b, c, d), f64::MAX);
    }
}
