//! Sizing fields: how fine the mesh must be at each point.
//!
//! The paper's motivating application is crack-growth simulation (§1): as a
//! crack tip advances through the structure, the region around it must be
//! re-meshed much more finely — and it is "unknown in advance when or where
//! the crack growth will take place". [`CrackFront`] models exactly that
//! moving refinement spike; [`Uniform`] and [`Graded`] cover calmer cases.

use crate::geom::Point3;

/// A spatially varying target edge length.
pub trait Sizing {
    /// Desired local edge length at `p`.
    fn size_at(&self, p: Point3) -> f64;
}

/// Constant element size everywhere.
#[derive(Clone, Copy, Debug)]
pub struct Uniform(pub f64);

impl Sizing for Uniform {
    fn size_at(&self, _p: Point3) -> f64 {
        self.0
    }
}

/// Size graded linearly along x between two extremes (a classic boundary-
/// layer style field).
#[derive(Clone, Copy, Debug)]
pub struct Graded {
    /// Size at x = 0.
    pub at_zero: f64,
    /// Size at x = 1.
    pub at_one: f64,
}

impl Sizing for Graded {
    fn size_at(&self, p: Point3) -> f64 {
        let t = p.x.clamp(0.0, 1.0);
        self.at_zero * (1.0 - t) + self.at_one * t
    }
}

/// A crack-tip refinement field: background size everywhere except inside a
/// ball of `radius` around the current tip, where the size shrinks to
/// `refined` (with smooth blending to the edge of the ball).
///
/// The tip position is a function of the refinement round, so the spike
/// *moves* between rounds — the unpredictability that breaks history-based
/// load prediction (§2, §3.2).
#[derive(Clone, Copy, Debug)]
pub struct CrackFront {
    /// Element size away from the crack.
    pub background: f64,
    /// Element size at the tip.
    pub refined: f64,
    /// Radius of the refined ball.
    pub radius: f64,
    /// Current tip position.
    pub tip: Point3,
}

impl CrackFront {
    /// The tip's trajectory across the unit cube: a diagonal sweep
    /// parameterized by round `t ∈ [0, rounds)`. Deterministic but — from a
    /// per-subdomain perspective — "unpredictable": each round a different
    /// set of subdomains is hit.
    pub fn tip_at_round(round: usize, rounds: usize) -> Point3 {
        let t = if rounds <= 1 {
            0.0
        } else {
            round as f64 / (rounds - 1) as f64
        };
        // A bent path so it crosses subdomain boundaries non-monotonically.
        Point3::new(t, 0.5 + 0.4 * (t * std::f64::consts::PI * 2.0).sin(), t * t)
    }

    /// The field for a given refinement round.
    pub fn at_round(
        background: f64,
        refined: f64,
        radius: f64,
        round: usize,
        rounds: usize,
    ) -> Self {
        CrackFront {
            background,
            refined,
            radius,
            tip: Self::tip_at_round(round, rounds),
        }
    }
}

impl Sizing for CrackFront {
    fn size_at(&self, p: Point3) -> f64 {
        let d = p.dist(self.tip);
        if d >= self.radius {
            self.background
        } else {
            let t = d / self.radius; // 0 at tip → 1 at ball edge
            self.refined * (1.0 - t) + self.background * t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_constant() {
        let s = Uniform(0.25);
        assert_eq!(s.size_at(Point3::new(0.0, 0.0, 0.0)), 0.25);
        assert_eq!(s.size_at(Point3::new(9.0, -4.0, 2.0)), 0.25);
    }

    #[test]
    fn graded_interpolates() {
        let s = Graded {
            at_zero: 1.0,
            at_one: 0.1,
        };
        assert!((s.size_at(Point3::new(0.0, 0.0, 0.0)) - 1.0).abs() < 1e-12);
        assert!((s.size_at(Point3::new(1.0, 0.0, 0.0)) - 0.1).abs() < 1e-12);
        assert!((s.size_at(Point3::new(0.5, 0.0, 0.0)) - 0.55).abs() < 1e-12);
        // Out-of-range clamps.
        assert!((s.size_at(Point3::new(5.0, 0.0, 0.0)) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn crack_refines_near_tip_only() {
        let c = CrackFront {
            background: 0.5,
            refined: 0.05,
            radius: 0.2,
            tip: Point3::new(0.5, 0.5, 0.5),
        };
        assert_eq!(c.size_at(Point3::new(0.0, 0.0, 0.0)), 0.5);
        assert!((c.size_at(c.tip) - 0.05).abs() < 1e-12);
        // Halfway out: blended.
        let half = c.size_at(Point3::new(0.6, 0.5, 0.5));
        assert!(half > 0.05 && half < 0.5, "half = {half}");
    }

    #[test]
    fn tip_moves_between_rounds() {
        let a = CrackFront::tip_at_round(0, 10);
        let b = CrackFront::tip_at_round(5, 10);
        let c = CrackFront::tip_at_round(9, 10);
        assert!(a.dist(b) > 0.1);
        assert!(b.dist(c) > 0.1);
        // End of trajectory reaches the far corner region.
        assert!(c.x > 0.9 && c.z > 0.8);
    }

    #[test]
    fn single_round_trajectory_is_origin_corner() {
        let p = CrackFront::tip_at_round(0, 1);
        assert_eq!(p.x, 0.0);
    }
}
