//! # prema-mesh — a 3-D advancing-front tetrahedral mesher
//!
//! The "real-world" application of the SC'03 paper's evaluation (§5): a
//! 3-dimensional parallel advancing-front mesh generator whose subdomains
//! are PREMA mobile objects. A moving crack front ([`sizing::CrackFront`])
//! concentrates refinement in a shifting, *a-priori-unpredictable* subset of
//! subdomains — the "highly adaptive and irregular" workload the runtime
//! exists to balance.
//!
//! Simplifications relative to a production mesher (documented in
//! DESIGN.md): subdomains are meshed independently from their own boundary
//! fronts (no inter-subdomain conformity), apex placement uses snapping
//! without global intersection tests, and unmeshable faces are parked
//! rather than repaired. None of these affect the load-balancing behaviour
//! the reproduction measures: per-subdomain work remains real, irregular,
//! and driven by the live geometry.
//!
//! * [`geom`] — points, tet volumes, quality measures;
//! * [`sizing`] — sizing fields, including the moving crack tip;
//! * [`front`] — the advancing front (face set with cancellation);
//! * [`subdomain`] — the mobile object: mesh + front + full serialization;
//! * [`domain`] — decomposition of the unit cube into subdomains.

#![warn(missing_docs)]

pub mod domain;
pub mod front;
pub mod geom;
pub mod quality;
pub mod sizing;
pub mod smooth;
pub mod subdomain;

pub use domain::{cubic_decomposition, decompose_unit_cube};
pub use front::{Face, Front};
pub use geom::Point3;
pub use quality::QualityStats;
pub use sizing::{CrackFront, Graded, Sizing, Uniform};
pub use smooth::{laplacian_smooth, SmoothStats};
pub use subdomain::{MeshStats, Subdomain};
