//! Mesh quality measurement.
//!
//! Downstream of mesh generation sits a field solver whose conditioning
//! depends on element quality; the paper notes that load-balancing quality
//! "can be of interest to any stages that come later in the execution
//! chain". This module provides the standard radius–edge quality summary a
//! solver-facing mesher reports.

use crate::geom::radius_edge_ratio;
use crate::subdomain::Subdomain;

/// Distribution summary of per-tet radius–edge ratios (lower = better;
/// a regular tetrahedron scores ≈ 0.612).
#[derive(Clone, Debug, PartialEq)]
pub struct QualityStats {
    /// Number of tets measured.
    pub count: usize,
    /// Best (minimum) ratio.
    pub min: f64,
    /// Worst (maximum, excluding degenerate `f64::MAX` entries).
    pub max: f64,
    /// Mean ratio.
    pub mean: f64,
    /// Tets whose ratio exceeds 2.0 (sliver-ish, would need cleanup).
    pub poor: usize,
    /// Degenerate tets (numerically zero volume).
    pub degenerate: usize,
    /// Histogram over the ratio ranges
    /// `[0, 0.75), [0.75, 1), [1, 1.5), [1.5, 2), [2, ∞)`.
    pub histogram: [usize; 5],
}

impl QualityStats {
    /// Measure every tetrahedron of a subdomain.
    pub fn measure(sub: &Subdomain) -> QualityStats {
        let mut stats = QualityStats {
            count: 0,
            min: f64::MAX,
            max: 0.0,
            mean: 0.0,
            poor: 0,
            degenerate: 0,
            histogram: [0; 5],
        };
        let mut sum = 0.0;
        for t in &sub.tets {
            let q = radius_edge_ratio(
                sub.vertices[t[0] as usize],
                sub.vertices[t[1] as usize],
                sub.vertices[t[2] as usize],
                sub.vertices[t[3] as usize],
            );
            if q == f64::MAX {
                stats.degenerate += 1;
                continue;
            }
            stats.count += 1;
            sum += q;
            stats.min = stats.min.min(q);
            stats.max = stats.max.max(q);
            let bucket = if q < 0.75 {
                0
            } else if q < 1.0 {
                1
            } else if q < 1.5 {
                2
            } else if q < 2.0 {
                3
            } else {
                stats.poor += 1;
                4
            };
            stats.histogram[bucket] += 1;
        }
        if stats.count > 0 {
            stats.mean = sum / stats.count as f64;
        } else {
            stats.min = 0.0;
        }
        stats
    }

    /// Fraction of measured tets in acceptable shape (ratio < 2).
    pub fn acceptable_fraction(&self) -> f64 {
        if self.count == 0 {
            return 1.0;
        }
        (self.count - self.poor) as f64 / self.count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Point3;
    use crate::sizing::Uniform;

    fn meshed_box() -> Subdomain {
        let mut s = Subdomain::seed_box(
            1,
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(1.0, 1.0, 1.0),
            0.05,
        );
        let _ = s.mesh_all(&Uniform(0.35));
        s
    }

    #[test]
    fn stats_cover_every_tet() {
        let s = meshed_box();
        let q = QualityStats::measure(&s);
        assert_eq!(q.count + q.degenerate, s.tets.len());
        assert_eq!(q.histogram.iter().sum::<usize>(), q.count);
        assert!(q.count > 0);
    }

    #[test]
    fn bounds_are_consistent() {
        let q = QualityStats::measure(&meshed_box());
        assert!(q.min <= q.mean && q.mean <= q.max, "{q:?}");
        // Nothing can beat the regular tetrahedron.
        assert!(q.min >= 0.612 - 1e-6, "min {q:?}");
        assert!((0.0..=1.0).contains(&q.acceptable_fraction()));
    }

    #[test]
    fn empty_subdomain_is_trivially_fine() {
        let s = Subdomain::seed_box(
            1,
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(1.0, 1.0, 1.0),
            0.05,
        );
        let q = QualityStats::measure(&s);
        assert_eq!(q.count, 0);
        assert_eq!(q.acceptable_fraction(), 1.0);
    }

    #[test]
    fn majority_of_generated_tets_are_acceptable() {
        let q = QualityStats::measure(&meshed_box());
        assert!(
            q.acceptable_fraction() > 0.5,
            "mesher produces mostly slivers: {q:?}"
        );
    }
}
