//! Domain decomposition: splitting the problem domain into subdomains.
//!
//! The parallel mesher decomposes the unit cube into a grid of box
//! subdomains — many more than there are processors, so the load balancer
//! has something to move (§4: "the application's data domain is first
//! decomposed into some number of subdomains, which is greater than the
//! number of available physical processors").

use crate::geom::Point3;
use crate::subdomain::Subdomain;

/// Split the unit cube into `nx × ny × nz` box subdomains.
pub fn decompose_unit_cube(nx: usize, ny: usize, nz: usize, finest: f64) -> Vec<Subdomain> {
    assert!(nx > 0 && ny > 0 && nz > 0);
    let mut out = Vec::with_capacity(nx * ny * nz);
    let mut id = 0u64;
    for iz in 0..nz {
        for iy in 0..ny {
            for ix in 0..nx {
                let lo = Point3::new(
                    ix as f64 / nx as f64,
                    iy as f64 / ny as f64,
                    iz as f64 / nz as f64,
                );
                let hi = Point3::new(
                    (ix + 1) as f64 / nx as f64,
                    (iy + 1) as f64 / ny as f64,
                    (iz + 1) as f64 / nz as f64,
                );
                out.push(Subdomain::seed_box(id, lo, hi, finest));
                id += 1;
            }
        }
    }
    out
}

/// Choose a roughly cubic decomposition with at least `min_subdomains`
/// blocks. Returns `(nx, ny, nz)`.
pub fn cubic_decomposition(min_subdomains: usize) -> (usize, usize, usize) {
    let mut n = 1usize;
    while n * n * n < min_subdomains {
        n += 1;
    }
    (n, n, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decomposition_tiles_the_cube() {
        let subs = decompose_unit_cube(2, 3, 1, 0.05);
        assert_eq!(subs.len(), 6);
        let total: f64 = subs.iter().map(|s| s.box_volume()).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // Ids are unique and dense.
        let mut ids: Vec<u64> = subs.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..6).collect::<Vec<u64>>());
    }

    #[test]
    fn blocks_do_not_overlap() {
        let subs = decompose_unit_cube(2, 2, 2, 0.05);
        for (i, a) in subs.iter().enumerate() {
            for b in subs.iter().skip(i + 1) {
                let sep = a.hi.x <= b.lo.x + 1e-12
                    || b.hi.x <= a.lo.x + 1e-12
                    || a.hi.y <= b.lo.y + 1e-12
                    || b.hi.y <= a.lo.y + 1e-12
                    || a.hi.z <= b.lo.z + 1e-12
                    || b.hi.z <= a.lo.z + 1e-12;
                assert!(sep, "blocks {} and {} overlap", a.id, b.id);
            }
        }
    }

    #[test]
    fn cubic_decomposition_covers_request() {
        assert_eq!(cubic_decomposition(1), (1, 1, 1));
        assert_eq!(cubic_decomposition(8), (2, 2, 2));
        assert_eq!(cubic_decomposition(9), (3, 3, 3));
        let (x, y, z) = cubic_decomposition(100);
        assert!(x * y * z >= 100);
    }
}
