//! The advancing front: the set of oriented triangular faces separating
//! meshed from unmeshed space.
//!
//! Faces are keyed by their sorted vertex triple. Adding a face whose triple
//! is already present *cancels* both — that is how two fronts meet and the
//! cavity closes. Faces are popped FIFO, which advances the front in
//! breadth-first layers.

use std::collections::{HashMap, VecDeque};

/// An oriented face: three vertex indices whose right-hand normal points
/// into the unmeshed region.
pub type Face = [u32; 3];

fn key_of(f: Face) -> [u32; 3] {
    let mut k = f;
    k.sort_unstable();
    k
}

/// The set of active front faces.
#[derive(Clone, Debug, Default)]
pub struct Front {
    faces: HashMap<[u32; 3], Face>,
    order: VecDeque<[u32; 3]>,
    cancelled: u64,
}

impl Front {
    /// Empty front.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of active faces.
    pub fn len(&self) -> usize {
        self.faces.len()
    }

    /// Whether the front has closed (no active faces).
    pub fn is_empty(&self) -> bool {
        self.faces.is_empty()
    }

    /// Number of face pairs that met and annihilated so far.
    pub fn cancelled(&self) -> u64 {
        self.cancelled
    }

    /// Add an oriented face; if its (unoriented) triple is already on the
    /// front the two faces cancel. Returns `true` if the face was inserted,
    /// `false` if it cancelled an existing face.
    pub fn add(&mut self, face: Face) -> bool {
        assert!(face[0] != face[1] && face[1] != face[2] && face[0] != face[2]);
        let key = key_of(face);
        match self.faces.remove(&key) {
            Some(_) => {
                self.cancelled += 1;
                false
            }
            None => {
                self.faces.insert(key, face);
                self.order.push_back(key);
                true
            }
        }
    }

    /// Pop the oldest active face.
    pub fn pop(&mut self) -> Option<Face> {
        while let Some(key) = self.order.pop_front() {
            if let Some(face) = self.faces.remove(&key) {
                return Some(face);
            }
            // Stale queue entry: the face was cancelled since enqueueing.
        }
        None
    }

    /// Active faces in deterministic (insertion) order. Cancelled faces and
    /// stale duplicates are skipped, so the result is reproducible across
    /// runs — required for bit-stable serialization.
    pub fn faces_in_order(&self) -> Vec<Face> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::with_capacity(self.faces.len());
        for key in &self.order {
            if let Some(&face) = self.faces.get(key) {
                if seen.insert(*key) {
                    out.push(face);
                }
            }
        }
        out
    }

    /// Iterate active faces in deterministic (insertion) order.
    pub fn iter(&self) -> impl Iterator<Item = Face> {
        self.faces_in_order().into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_pop_roundtrip() {
        let mut f = Front::new();
        assert!(f.add([0, 1, 2]));
        assert!(f.add([1, 2, 3]));
        assert_eq!(f.len(), 2);
        let p = f.pop().unwrap();
        assert_eq!(p, [0, 1, 2]);
        assert_eq!(f.len(), 1);
        assert_eq!(f.pop().unwrap(), [1, 2, 3]);
        assert!(f.pop().is_none());
        assert!(f.is_empty());
    }

    #[test]
    fn opposite_faces_cancel() {
        let mut f = Front::new();
        assert!(f.add([0, 1, 2]));
        // Same triple, any orientation → cancels.
        assert!(!f.add([2, 1, 0]));
        assert!(f.is_empty());
        assert_eq!(f.cancelled(), 1);
        // The stale queue entry must not resurface.
        assert!(f.pop().is_none());
    }

    #[test]
    fn cancel_then_readd_works() {
        let mut f = Front::new();
        f.add([0, 1, 2]);
        f.add([0, 2, 1]); // cancel
        assert!(f.add([0, 1, 2])); // back again as a fresh face
        assert_eq!(f.pop().unwrap(), [0, 1, 2]);
    }

    #[test]
    fn pop_skips_stale_entries() {
        let mut f = Front::new();
        f.add([0, 1, 2]);
        f.add([3, 4, 5]);
        f.add([2, 1, 0]); // cancels the first
        assert_eq!(f.pop().unwrap(), [3, 4, 5]);
        assert!(f.pop().is_none());
    }

    #[test]
    #[should_panic]
    fn degenerate_face_rejected() {
        Front::new().add([1, 1, 2]);
    }
}
