//! Laplacian mesh smoothing.
//!
//! After the advancing front closes, interior vertices sit wherever the
//! front left them. *Smart* Laplacian smoothing relaxes each interior vertex
//! toward the centroid of its neighbors, accepting the move only when the
//! worst radius–edge quality among its incident tetrahedra does not degrade
//! (and no element inverts) — the standard cheap post-pass that improves the
//! quality a downstream solver sees without ever making anything worse.

use crate::geom::{radius_edge_ratio, tet_volume, Point3};
use crate::subdomain::Subdomain;
use std::collections::{HashMap, HashSet};

/// Outcome of a smoothing run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SmoothStats {
    /// Vertices whose position changed.
    pub moved: usize,
    /// Candidate moves rejected because they would invert an element.
    pub rejected: usize,
    /// Sweeps performed.
    pub sweeps: usize,
}

/// Smooth interior vertices of a meshed subdomain in place.
///
/// `lambda ∈ (0, 1]` is the relaxation factor (1 = move fully to the
/// neighbor centroid). Boundary vertices (any vertex on the subdomain box
/// surface) are pinned so the decomposition's geometry is preserved.
pub fn laplacian_smooth(sub: &mut Subdomain, lambda: f64, sweeps: usize) -> SmoothStats {
    assert!(lambda > 0.0 && lambda <= 1.0);
    let mut stats = SmoothStats::default();
    if sub.tets.is_empty() {
        return stats;
    }

    // Vertex adjacency and incident tets, once.
    let nv = sub.vertices.len();
    let mut neighbors: Vec<HashSet<u32>> = vec![HashSet::new(); nv];
    let mut incident: HashMap<u32, Vec<usize>> = HashMap::new();
    for (ti, t) in sub.tets.iter().enumerate() {
        for i in 0..4 {
            incident.entry(t[i]).or_default().push(ti);
            for j in 0..4 {
                if i != j {
                    neighbors[t[i] as usize].insert(t[j]);
                }
            }
        }
    }
    let eps = 1e-9;
    let on_boundary = |p: Point3, sub: &Subdomain| {
        (p.x - sub.lo.x).abs() < eps
            || (p.x - sub.hi.x).abs() < eps
            || (p.y - sub.lo.y).abs() < eps
            || (p.y - sub.hi.y).abs() < eps
            || (p.z - sub.lo.z).abs() < eps
            || (p.z - sub.hi.z).abs() < eps
    };

    for _ in 0..sweeps {
        stats.sweeps += 1;
        let mut moved_this_sweep = 0usize;
        for v in 0..nv as u32 {
            let vp = sub.vertices[v as usize];
            if on_boundary(vp, sub) || neighbors[v as usize].is_empty() {
                continue;
            }
            let Some(tets) = incident.get(&v) else {
                continue;
            };
            // Neighbor centroid.
            let mut c = Point3::default();
            for &u in &neighbors[v as usize] {
                c = c + sub.vertices[u as usize];
            }
            c = c / neighbors[v as usize].len() as f64;
            let target = vp + (c - vp) * lambda;
            if target.dist(vp) < eps {
                continue;
            }
            // Smart acceptance: no inversion, and the worst incident
            // radius–edge quality must not degrade.
            let quality_at = |apex: Point3| {
                tets.iter()
                    .map(|&ti| {
                        let t = sub.tets[ti];
                        let pos = |idx: u32| {
                            if idx == v {
                                apex
                            } else {
                                sub.vertices[idx as usize]
                            }
                        };
                        if tet_volume(pos(t[0]), pos(t[1]), pos(t[2]), pos(t[3])) <= 1e-14 {
                            f64::MAX
                        } else {
                            radius_edge_ratio(pos(t[0]), pos(t[1]), pos(t[2]), pos(t[3]))
                        }
                    })
                    .fold(0.0f64, f64::max)
            };
            let worst_before = quality_at(vp);
            let worst_after = quality_at(target);
            let ok = worst_after < f64::MAX && worst_after <= worst_before + 1e-12;
            if ok {
                sub.vertices[v as usize] = target;
                moved_this_sweep += 1;
            } else {
                stats.rejected += 1;
            }
        }
        stats.moved += moved_this_sweep;
        if moved_this_sweep == 0 {
            break;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::QualityStats;
    use crate::sizing::Uniform;

    fn meshed() -> Subdomain {
        let mut s = Subdomain::seed_box(
            1,
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(1.0, 1.0, 1.0),
            0.05,
        );
        let _ = s.mesh_all(&Uniform(0.3));
        s
    }

    #[test]
    fn smoothing_keeps_the_mesh_valid() {
        let mut s = meshed();
        let stats = laplacian_smooth(&mut s, 0.5, 4);
        s.validate();
        assert!(stats.sweeps >= 1);
    }

    #[test]
    fn smoothing_does_not_degrade_mean_quality_much() {
        let mut s = meshed();
        let before = QualityStats::measure(&s);
        laplacian_smooth(&mut s, 0.5, 4);
        let after = QualityStats::measure(&s);
        // Smart smoothing only accepts locally non-degrading moves; the
        // global worst ratio must not get worse.
        assert!(
            after.max <= before.max + 1e-9,
            "worst quality degraded: {} → {}",
            before.max,
            after.max
        );
        assert_eq!(
            after.count + after.degenerate,
            before.count + before.degenerate
        );
    }

    #[test]
    fn boundary_vertices_are_pinned() {
        let mut s = meshed();
        let boundary: Vec<(usize, Point3)> = s
            .vertices
            .iter()
            .copied()
            .enumerate()
            .filter(|(_, p)| {
                p.x.abs() < 1e-9
                    || (p.x - 1.0).abs() < 1e-9
                    || p.y.abs() < 1e-9
                    || (p.y - 1.0).abs() < 1e-9
                    || p.z.abs() < 1e-9
                    || (p.z - 1.0).abs() < 1e-9
            })
            .collect();
        assert!(!boundary.is_empty());
        laplacian_smooth(&mut s, 1.0, 3);
        for (i, p) in boundary {
            assert_eq!(s.vertices[i], p, "boundary vertex {i} moved");
        }
    }

    #[test]
    fn empty_mesh_is_a_noop() {
        let mut s = Subdomain::seed_box(
            1,
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(1.0, 1.0, 1.0),
            0.05,
        );
        let stats = laplacian_smooth(&mut s, 0.5, 3);
        assert_eq!(stats.moved, 0);
    }

    #[test]
    #[should_panic]
    fn invalid_lambda_rejected() {
        let mut s = meshed();
        laplacian_smooth(&mut s, 0.0, 1);
    }
}
