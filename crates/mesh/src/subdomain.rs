//! Mesh subdomains: the mobile objects of the parallel mesher.
//!
//! Each subdomain owns a box of the problem domain and meshes it with a
//! (simplified) 3-D advancing front: pop the oldest front face, place or
//! reuse an apex vertex at the sizing-field-prescribed distance, emit the
//! tetrahedron, and push the tet's other faces (cancelling where fronts
//! meet). Subdomains implement [`Migratable`] — full pack/unpack of
//! vertices, tetrahedra, and the live front — so the PREMA runtime can move
//! them mid-computation.

use crate::front::{Face, Front};
use crate::geom::{tet_volume, tri_centroid, tri_normal, Point3};
use crate::sizing::Sizing;
use prema_mol::Migratable;
use std::collections::HashMap;

/// Spatial hash over vertices for apex snapping.
#[derive(Clone, Debug, Default)]
struct VertexGrid {
    cell: f64,
    map: HashMap<(i64, i64, i64), Vec<u32>>,
}

impl VertexGrid {
    fn new(cell: f64) -> Self {
        VertexGrid {
            cell: cell.max(1e-9),
            map: HashMap::new(),
        }
    }

    fn cell_size(&self) -> f64 {
        self.cell
    }

    fn cell_of(&self, p: Point3) -> (i64, i64, i64) {
        (
            (p.x / self.cell).floor() as i64,
            (p.y / self.cell).floor() as i64,
            (p.z / self.cell).floor() as i64,
        )
    }

    fn insert(&mut self, idx: u32, p: Point3) {
        self.map.entry(self.cell_of(p)).or_default().push(idx);
    }

    fn near(&self, p: Point3, radius: f64) -> Vec<u32> {
        let r = (radius / self.cell).ceil() as i64;
        let (cx, cy, cz) = self.cell_of(p);
        let mut out = Vec::new();
        for dx in -r..=r {
            for dy in -r..=r {
                for dz in -r..=r {
                    if let Some(v) = self.map.get(&(cx + dx, cy + dy, cz + dz)) {
                        out.extend_from_slice(v);
                    }
                }
            }
        }
        out
    }
}

/// Statistics from one meshing run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MeshStats {
    /// Tetrahedra created.
    pub tets_created: usize,
    /// Faces that could not be advanced (left for cleanup).
    pub stuck_faces: usize,
    /// Whether the front closed completely.
    pub closed: bool,
}

/// One box-shaped piece of the problem domain, meshed independently.
///
/// ```
/// use prema_mesh::{Point3, Subdomain, Uniform};
/// use prema_mol::Migratable;
///
/// let mut sub = Subdomain::seed_box(1, Point3::new(0.0, 0.0, 0.0),
///                                   Point3::new(1.0, 1.0, 1.0), 0.05);
/// let stats = sub.mesh_all(&Uniform(0.4));
/// assert!(stats.tets_created > 0);
/// sub.validate();
///
/// // Subdomains are mobile objects: full serialization round-trip.
/// let mut wire = Vec::new();
/// sub.pack(&mut wire);
/// let restored = Subdomain::unpack(&wire);
/// assert_eq!(restored.tets, sub.tets);
/// ```
#[derive(Clone, Debug)]
pub struct Subdomain {
    /// Stable id (assigned by the domain decomposition).
    pub id: u64,
    /// Box lower corner.
    pub lo: Point3,
    /// Box upper corner.
    pub hi: Point3,
    /// Mesh vertices.
    pub vertices: Vec<Point3>,
    /// Tetrahedra (vertex indices, positive orientation).
    pub tets: Vec<[u32; 4]>,
    /// The live advancing front.
    pub front: Front,
    /// Faces given up on (cavity cleanup would handle these).
    pub stuck: Vec<Face>,
    /// Total tets created over this subdomain's lifetime (across rounds).
    pub total_tets: u64,
    grid: VertexGrid,
    /// How many tets already use each (unoriented) face: a face may join at
    /// most two tets, which keeps the mesh manifold without global
    /// intersection tests. Rebuilt from `tets` on unpack.
    face_use: HashMap<[u32; 3], u8>,
    /// Tets hosted per size-graded spatial cell: bounds overlap (the cheap
    /// stand-in for intersection tests) and terminates the fill naturally
    /// once a region is saturated. Rebuilt on unpack.
    occupancy: HashMap<(i64, i64, i64), u8>,
}

impl Subdomain {
    /// Create an empty subdomain over the box `[lo, hi]`, with its boundary
    /// triangulation seeded as the initial front. `finest` is the smallest
    /// sizing value expected (sets the snap-grid resolution).
    pub fn seed_box(id: u64, lo: Point3, hi: Point3, finest: f64) -> Self {
        let mut s = Subdomain {
            id,
            lo,
            hi,
            vertices: Vec::new(),
            tets: Vec::new(),
            front: Front::new(),
            stuck: Vec::new(),
            total_tets: 0,
            grid: VertexGrid::new(finest),
            face_use: HashMap::new(),
            occupancy: HashMap::new(),
        };
        s.reseed();
        s
    }

    /// Reset the mesh and re-seed the boundary front (used when a new
    /// refinement round re-meshes the subdomain under a new sizing field).
    pub fn reseed(&mut self) {
        self.vertices.clear();
        self.tets.clear();
        self.front = Front::new();
        self.stuck.clear();
        self.grid = VertexGrid::new(self.grid.cell);
        self.face_use.clear();
        self.occupancy.clear();
        let (lo, hi) = (self.lo, self.hi);
        // Eight corners.
        let corners = [
            Point3::new(lo.x, lo.y, lo.z), // 0
            Point3::new(hi.x, lo.y, lo.z), // 1
            Point3::new(hi.x, hi.y, lo.z), // 2
            Point3::new(lo.x, hi.y, lo.z), // 3
            Point3::new(lo.x, lo.y, hi.z), // 4
            Point3::new(hi.x, lo.y, hi.z), // 5
            Point3::new(hi.x, hi.y, hi.z), // 6
            Point3::new(lo.x, hi.y, hi.z), // 7
        ];
        for p in corners {
            self.add_vertex(p);
        }
        // Twelve boundary triangles, oriented with normals pointing inward.
        let quads: [([u32; 4], Point3); 6] = [
            ([0, 3, 2, 1], Point3::new(0.0, 0.0, 1.0)),  // z = lo
            ([4, 5, 6, 7], Point3::new(0.0, 0.0, -1.0)), // z = hi
            ([0, 1, 5, 4], Point3::new(0.0, 1.0, 0.0)),  // y = lo
            ([3, 7, 6, 2], Point3::new(0.0, -1.0, 0.0)), // y = hi
            ([0, 4, 7, 3], Point3::new(1.0, 0.0, 0.0)),  // x = lo
            ([1, 2, 6, 5], Point3::new(-1.0, 0.0, 0.0)), // x = hi
        ];
        for (q, inward) in quads {
            for tri in [[q[0], q[1], q[2]], [q[0], q[2], q[3]]] {
                let (a, b, c) = (
                    self.vertices[tri[0] as usize],
                    self.vertices[tri[1] as usize],
                    self.vertices[tri[2] as usize],
                );
                let n = tri_normal(a, b, c);
                let face = if n.dot(inward) >= 0.0 {
                    tri
                } else {
                    [tri[0], tri[2], tri[1]]
                };
                self.front.add(face);
            }
        }
    }

    fn add_vertex(&mut self, p: Point3) -> u32 {
        let idx = self.vertices.len() as u32;
        self.vertices.push(p);
        self.grid.insert(idx, p);
        idx
    }

    /// Advance the front by at most `max_steps` faces under `sizing`.
    /// Returns statistics; `closed` is true when the front emptied.
    pub fn advance(&mut self, sizing: &dyn Sizing, max_steps: usize) -> MeshStats {
        let mut stats = MeshStats::default();
        for _ in 0..max_steps {
            let Some(face) = self.front.pop() else {
                stats.closed = true;
                break;
            };
            if !self.advance_face(face, sizing) {
                self.stuck.push(face);
                stats.stuck_faces += 1;
            } else {
                stats.tets_created += 1;
            }
        }
        if self.front.is_empty() {
            stats.closed = true;
        }
        self.total_tets += stats.tets_created as u64;
        stats
    }

    /// Mesh to completion (bounded by a step budget proportional to how many
    /// elements this box can hold at the finest sizing value it sees).
    pub fn mesh_all(&mut self, sizing: &dyn Sizing) -> MeshStats {
        // Sample the sizing field over the box to estimate the finest
        // resolution requested here.
        let mut h = f64::MAX;
        for ix in 0..3 {
            for iy in 0..3 {
                for iz in 0..3 {
                    let p = Point3::new(
                        self.lo.x + (self.hi.x - self.lo.x) * ix as f64 / 2.0,
                        self.lo.y + (self.hi.y - self.lo.y) * iy as f64 / 2.0,
                        self.lo.z + (self.hi.z - self.lo.z) * iz as f64 / 2.0,
                    );
                    h = h.min(sizing.size_at(p));
                }
            }
        }
        let h = h.max(self.grid.cell_size()).max(1e-6);
        let capacity = (self.box_volume() / (h * h * h)).max(1.0);
        let budget = 500 + ((capacity * 60.0).min(2_000_000.0) as usize);
        self.advance(sizing, budget)
    }

    /// Size-graded occupancy cell (pitch h/2) of a point.
    fn occupancy_cell(h: f64, p: Point3) -> (i64, i64, i64) {
        let pitch = (0.5 * h).max(1e-9);
        (
            (p.x / pitch).floor() as i64,
            (p.y / pitch).floor() as i64,
            (p.z / pitch).floor() as i64,
        )
    }

    /// Tets allowed per occupancy cell before the region is declared full.
    const CELL_CAP: u8 = 8;

    /// Whether a tet with this centroid may still be placed.
    fn occupancy_allows(&self, h: f64, tet_centroid: Point3) -> bool {
        let cell = Self::occupancy_cell(h, tet_centroid);
        self.occupancy.get(&cell).copied().unwrap_or(0) < Self::CELL_CAP
    }

    /// Whether a tet `(face, apex)` would violate the two-tets-per-face
    /// manifold invariant.
    fn tet_is_manifold(&self, face: Face, apex: u32) -> bool {
        for tri in [
            [face[0], face[1], face[2]],
            [face[0], face[1], apex],
            [face[1], face[2], apex],
            [face[2], face[0], apex],
        ] {
            let mut k = tri;
            k.sort_unstable();
            if self.face_use.get(&k).copied().unwrap_or(0) >= 2 {
                return false;
            }
        }
        true
    }

    fn record_tet_faces(&mut self, tet: [u32; 4]) {
        for tri in [
            [tet[0], tet[1], tet[2]],
            [tet[0], tet[1], tet[3]],
            [tet[1], tet[2], tet[3]],
            [tet[2], tet[0], tet[3]],
        ] {
            let mut k = tri;
            k.sort_unstable();
            *self.face_use.entry(k).or_insert(0) += 1;
        }
    }

    fn advance_face(&mut self, face: Face, sizing: &dyn Sizing) -> bool {
        let (a, b, c) = (
            self.vertices[face[0] as usize],
            self.vertices[face[1] as usize],
            self.vertices[face[2] as usize],
        );
        let centroid = tri_centroid(a, b, c);
        let n = tri_normal(a, b, c); // points into the cavity
        let h = sizing.size_at(centroid).max(1e-6);
        // Ideal apex: equilateral-ish height above the face. Quantizing new
        // vertices to a size-graded lattice (pitch h/2) keeps element sizes
        // pinned to the sizing field — without it, front faces shrink across
        // generations and the mesh over-refines.
        let ideal_raw = centroid + n * (h * 0.8);
        let pitch = 0.5 * h;
        let q = |lo: f64, hi: f64, v: f64| (((v - lo) / pitch).round() * pitch + lo).clamp(lo, hi);
        let ideal = Point3::new(
            q(self.lo.x, self.hi.x, ideal_raw.x),
            q(self.lo.y, self.hi.y, ideal_raw.y),
            q(self.lo.z, self.hi.z, ideal_raw.z),
        );
        let min_vol = 1e-12;

        // Candidates, best first: nearby existing vertices (front closure),
        // then a fresh vertex at the ideal position. Each must yield a
        // positively oriented tet that keeps the mesh manifold.
        let snap_r = 0.6 * h;
        let mut snaps: Vec<(f64, u32)> = self
            .grid
            .near(ideal, snap_r)
            .into_iter()
            .filter(|idx| !face.contains(idx))
            .map(|idx| (self.vertices[idx as usize].dist(ideal), idx))
            .filter(|&(d, _)| d <= snap_r)
            .collect();
        snaps.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap().then(x.1.cmp(&y.1)));
        let mut apex: Option<u32> = None;
        for (_, idx) in snaps {
            let p = self.vertices[idx as usize];
            if tet_volume(a, b, c, p) > min_vol
                && self.tet_is_manifold(face, idx)
                && self.occupancy_allows(h, centroid * 0.75 + p * 0.25)
            {
                apex = Some(idx);
                break;
            }
        }
        let d = match apex {
            Some(idx) => idx,
            None => {
                if tet_volume(a, b, c, ideal) <= min_vol {
                    return false; // clamping flattened the tet; give up
                }
                if !self.occupancy_allows(h, centroid * 0.75 + ideal * 0.25) {
                    return false; // region saturated: cavity is full here
                }
                let idx = self.add_vertex(ideal);
                if !self.tet_is_manifold(face, idx) {
                    return false; // base face already closed elsewhere
                }
                idx
            }
        };
        self.tets.push([face[0], face[1], face[2], d]);
        self.record_tet_faces([face[0], face[1], face[2], d]);
        let apex_p = self.vertices[d as usize];
        let cell = Self::occupancy_cell(h, tri_centroid(a, b, c) * 0.75 + apex_p * 0.25);
        *self.occupancy.entry(cell).or_insert(0) += 1;
        // New front faces: the tet's other three sides, oriented away from
        // the tet interior (into the remaining cavity).
        for (tri, opposite) in [
            ([face[0], face[1], d], c),
            ([face[1], face[2], d], a),
            ([face[2], face[0], d], b),
        ] {
            let (x, y, z) = (
                self.vertices[tri[0] as usize],
                self.vertices[tri[1] as usize],
                self.vertices[tri[2] as usize],
            );
            let nf = tri_normal(x, y, z);
            let to_opposite = opposite - tri_centroid(x, y, z);
            let oriented = if nf.dot(to_opposite) > 0.0 {
                [tri[0], tri[2], tri[1]]
            } else {
                tri
            };
            self.front.add(oriented);
        }
        true
    }

    /// Total meshed volume (sum of |tet| volumes).
    pub fn meshed_volume(&self) -> f64 {
        self.tets
            .iter()
            .map(|t| {
                tet_volume(
                    self.vertices[t[0] as usize],
                    self.vertices[t[1] as usize],
                    self.vertices[t[2] as usize],
                    self.vertices[t[3] as usize],
                )
                .abs()
            })
            .sum()
    }

    /// The box volume this subdomain is responsible for.
    pub fn box_volume(&self) -> f64 {
        let d = self.hi - self.lo;
        d.x * d.y * d.z
    }

    /// Structural sanity checks; panics on violation (used by tests).
    pub fn validate(&self) {
        for t in &self.tets {
            for &v in t {
                assert!(
                    (v as usize) < self.vertices.len(),
                    "tet vertex out of range"
                );
            }
            let vol = tet_volume(
                self.vertices[t[0] as usize],
                self.vertices[t[1] as usize],
                self.vertices[t[2] as usize],
                self.vertices[t[3] as usize],
            );
            assert!(vol > 0.0, "non-positive tet volume {vol}");
        }
        // Manifold-ish: every face appears in at most two tets.
        let mut count: HashMap<[u32; 3], u32> = HashMap::new();
        for t in &self.tets {
            for f in [
                [t[0], t[1], t[2]],
                [t[0], t[1], t[3]],
                [t[0], t[2], t[3]],
                [t[1], t[2], t[3]],
            ] {
                let mut k = f;
                k.sort_unstable();
                *count.entry(k).or_insert(0) += 1;
            }
        }
        for (f, n) in count {
            assert!(n <= 2, "face {f:?} shared by {n} tets");
        }
    }
}

impl Migratable for Subdomain {
    fn pack(&self, buf: &mut Vec<u8>) {
        let w = |buf: &mut Vec<u8>, v: f64| buf.extend_from_slice(&v.to_le_bytes());
        buf.extend_from_slice(&self.id.to_le_bytes());
        for p in [self.lo, self.hi] {
            w(buf, p.x);
            w(buf, p.y);
            w(buf, p.z);
        }
        w(buf, self.grid.cell);
        buf.extend_from_slice(&(self.vertices.len() as u64).to_le_bytes());
        for p in &self.vertices {
            w(buf, p.x);
            w(buf, p.y);
            w(buf, p.z);
        }
        buf.extend_from_slice(&(self.tets.len() as u64).to_le_bytes());
        for t in &self.tets {
            for &v in t {
                buf.extend_from_slice(&v.to_le_bytes());
            }
        }
        let faces: Vec<Face> = self.front.faces_in_order();
        buf.extend_from_slice(&(faces.len() as u64).to_le_bytes());
        for f in faces {
            for v in f {
                buf.extend_from_slice(&v.to_le_bytes());
            }
        }
        buf.extend_from_slice(&(self.stuck.len() as u64).to_le_bytes());
        for f in &self.stuck {
            for &v in f {
                buf.extend_from_slice(&v.to_le_bytes());
            }
        }
        buf.extend_from_slice(&self.total_tets.to_le_bytes());
    }

    fn unpack(buf: &[u8]) -> Self {
        let mut off = 0usize;
        let rd_u64 = |buf: &[u8], off: &mut usize| {
            let v = u64::from_le_bytes(buf[*off..*off + 8].try_into().unwrap());
            *off += 8;
            v
        };
        let rd_f64 = |buf: &[u8], off: &mut usize| {
            let v = f64::from_le_bytes(buf[*off..*off + 8].try_into().unwrap());
            *off += 8;
            v
        };
        let rd_u32 = |buf: &[u8], off: &mut usize| {
            let v = u32::from_le_bytes(buf[*off..*off + 4].try_into().unwrap());
            *off += 4;
            v
        };
        let id = rd_u64(buf, &mut off);
        let lo = Point3::new(
            rd_f64(buf, &mut off),
            rd_f64(buf, &mut off),
            rd_f64(buf, &mut off),
        );
        let hi = Point3::new(
            rd_f64(buf, &mut off),
            rd_f64(buf, &mut off),
            rd_f64(buf, &mut off),
        );
        let cell = rd_f64(buf, &mut off);
        let nv = rd_u64(buf, &mut off) as usize;
        let mut vertices = Vec::with_capacity(nv);
        for _ in 0..nv {
            vertices.push(Point3::new(
                rd_f64(buf, &mut off),
                rd_f64(buf, &mut off),
                rd_f64(buf, &mut off),
            ));
        }
        let nt = rd_u64(buf, &mut off) as usize;
        let mut tets = Vec::with_capacity(nt);
        for _ in 0..nt {
            tets.push([
                rd_u32(buf, &mut off),
                rd_u32(buf, &mut off),
                rd_u32(buf, &mut off),
                rd_u32(buf, &mut off),
            ]);
        }
        let nf = rd_u64(buf, &mut off) as usize;
        let mut front = Front::new();
        for _ in 0..nf {
            front.add([
                rd_u32(buf, &mut off),
                rd_u32(buf, &mut off),
                rd_u32(buf, &mut off),
            ]);
        }
        let ns = rd_u64(buf, &mut off) as usize;
        let mut stuck = Vec::with_capacity(ns);
        for _ in 0..ns {
            stuck.push([
                rd_u32(buf, &mut off),
                rd_u32(buf, &mut off),
                rd_u32(buf, &mut off),
            ]);
        }
        let total_tets = rd_u64(buf, &mut off);
        let mut grid = VertexGrid::new(cell);
        for (i, p) in vertices.iter().enumerate() {
            grid.insert(i as u32, *p);
        }
        let mut s = Subdomain {
            id,
            lo,
            hi,
            vertices,
            tets: Vec::new(),
            front,
            stuck,
            total_tets,
            grid,
            face_use: HashMap::new(),
            occupancy: HashMap::new(),
        };
        for t in tets {
            s.tets.push(t);
            s.record_tet_faces(t);
            // Occupancy is rebuilt conservatively at the finest pitch; since
            // the sizing field is not part of the wire format, use the snap
            // grid's cell, which is at least as fine as any local h.
            let c = (s.vertices[t[0] as usize]
                + s.vertices[t[1] as usize]
                + s.vertices[t[2] as usize]
                + s.vertices[t[3] as usize])
                / 4.0;
            let cell = Subdomain::occupancy_cell(2.0 * s.grid.cell_size(), c);
            *s.occupancy.entry(cell).or_insert(0) += 1;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sizing::{CrackFront, Uniform};

    fn unit_box(id: u64) -> Subdomain {
        Subdomain::seed_box(
            id,
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(1.0, 1.0, 1.0),
            0.05,
        )
    }

    #[test]
    fn seeding_creates_boundary_front() {
        let s = unit_box(1);
        assert_eq!(s.vertices.len(), 8);
        assert_eq!(s.front.len(), 12);
        assert!(s.tets.is_empty());
        // All seed faces point inward: normal · (center − centroid) > 0.
        let center = Point3::new(0.5, 0.5, 0.5);
        for f in s.front.iter() {
            let (a, b, c) = (
                s.vertices[f[0] as usize],
                s.vertices[f[1] as usize],
                s.vertices[f[2] as usize],
            );
            let n = tri_normal(a, b, c);
            assert!(
                n.dot(center - tri_centroid(a, b, c)) > 0.0,
                "face {f:?} points outward"
            );
        }
    }

    #[test]
    fn advancing_creates_valid_tets() {
        let mut s = unit_box(1);
        let stats = s.advance(&Uniform(0.5), 200);
        assert!(stats.tets_created > 0);
        s.validate();
    }

    #[test]
    fn meshing_fills_most_of_the_box() {
        let mut s = unit_box(1);
        let _ = s.mesh_all(&Uniform(0.45));
        s.validate();
        let frac = s.meshed_volume() / s.box_volume();
        assert!(frac > 0.5, "only {frac:.2} of the box meshed");
    }

    #[test]
    fn finer_sizing_creates_more_tets() {
        let mut coarse = unit_box(1);
        let mut fine = unit_box(2);
        let c = coarse.mesh_all(&Uniform(0.6));
        let f = fine.mesh_all(&Uniform(0.3));
        assert!(
            f.tets_created > c.tets_created,
            "fine {} !> coarse {}",
            f.tets_created,
            c.tets_created
        );
    }

    #[test]
    fn crack_subdomain_does_more_work_than_far_subdomain() {
        // Two identical boxes; the crack tip sits inside the first.
        let near_tip = CrackFront {
            background: 0.5,
            refined: 0.12,
            radius: 0.6,
            tip: Point3::new(0.5, 0.5, 0.5),
        };
        let mut hot = unit_box(1);
        let mut cold = unit_box(2);
        let hot_stats = hot.mesh_all(&near_tip);
        let far_tip = CrackFront {
            tip: Point3::new(10.0, 10.0, 10.0),
            ..near_tip
        };
        let cold_stats = cold.mesh_all(&far_tip);
        assert!(
            hot_stats.tets_created > cold_stats.tets_created * 2,
            "hot {} vs cold {}",
            hot_stats.tets_created,
            cold_stats.tets_created
        );
    }

    #[test]
    fn reseed_resets_but_keeps_lifetime_counter() {
        let mut s = unit_box(1);
        let first = s.mesh_all(&Uniform(0.5)).tets_created as u64;
        assert!(first > 0);
        s.reseed();
        assert!(s.tets.is_empty());
        assert_eq!(s.front.len(), 12);
        let _ = s.mesh_all(&Uniform(0.5));
        assert!(s.total_tets >= first * 2 - 2, "lifetime counter lost");
    }

    #[test]
    fn pack_unpack_roundtrip_mid_mesh() {
        let mut s = unit_box(7);
        let _ = s.advance(&Uniform(0.4), 50);
        let mut buf = Vec::new();
        s.pack(&mut buf);
        let mut r = Subdomain::unpack(&buf);
        assert_eq!(r.id, s.id);
        assert_eq!(r.vertices.len(), s.vertices.len());
        assert_eq!(r.tets, s.tets);
        assert_eq!(r.front.len(), s.front.len());
        assert_eq!(r.total_tets, s.total_tets);
        // And the restored subdomain can continue meshing.
        let more = r.advance(&Uniform(0.4), 50);
        r.validate();
        let _ = more;
    }

    #[test]
    fn determinism() {
        let run = || {
            let mut s = unit_box(3);
            let st = s.mesh_all(&Uniform(0.35));
            (st.tets_created, s.vertices.len(), s.meshed_volume())
        };
        let a = run();
        let b = run();
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
        assert!((a.2 - b.2).abs() < 1e-12);
    }
}
