//! A fault-injecting transport decorator.
//!
//! The paper's PREMA inherited LAM/MPI's reliable FIFO wire, and every
//! protocol above our [`LocalFabric`](crate::LocalFabric) — MOL forwarding
//! epochs, ILB begging, termination detection — silently assumes the same.
//! [`ChaosTransport`] breaks that assumption on purpose: wrapping any
//! [`Transport`], it drops, duplicates, reorders, and delays envelopes and
//! can partition rank pairs, all **deterministically from a seed**, so a
//! protocol bug shaken out by chaos reproduces on every run.
//!
//! # Determinism
//!
//! Each envelope's fate is a pure function of `(seed, src, dst, k)` where
//! `k` is the count of envelopes this receiver has ingested from `src` so
//! far. The underlying fabric guarantees per-pair FIFO structurally, so `k`
//! is the same on every run regardless of thread interleaving — no RNG
//! state, no ordering sensitivity. Delays are measured in *logical ticks*
//! (receive polls), not wall time, for the same reason.
//!
//! # Layering
//!
//! Chaos applies on the **receive** side: envelopes are pulled off the inner
//! transport and then dropped/duplicated/held. Pair this with
//! [`ReliableTransport`](crate::ReliableTransport) stacked *above* it to
//! exercise the recovery path end to end:
//!
//! ```text
//! Communicator → ReliableTransport → ChaosTransport → LocalEndpoint
//! ```

use crate::envelope::{Envelope, Rank};
use crate::transport::Transport;
use parking_lot::Mutex;
use prema_trace::{TraceEvent, Tracer};
use std::cell::RefCell;
use std::collections::{BinaryHeap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Injection rates and the seed they key off. All probabilities are in
/// `[0, 1]` and mutually exclusive per envelope (a message is dropped *or*
/// duplicated *or* deferred, never several at once).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChaosConfig {
    /// Seed for the deterministic fate function.
    pub seed: u64,
    /// Probability an envelope is silently dropped.
    pub drop_p: f64,
    /// Probability an envelope is delivered twice.
    pub dup_p: f64,
    /// Probability an envelope is deferred one tick so a later message from
    /// any source can overtake it.
    pub reorder_p: f64,
    /// Probability an envelope is deferred [`ChaosConfig::delay_ticks`]
    /// receive polls.
    pub delay_p: f64,
    /// Logical-tick duration of an injected delay.
    pub delay_ticks: u32,
}

impl ChaosConfig {
    /// A quiet configuration: deterministic plumbing in place, zero injected
    /// faults. Useful as a baseline and for overhead measurement.
    pub fn quiet(seed: u64) -> Self {
        ChaosConfig {
            seed,
            drop_p: 0.0,
            dup_p: 0.0,
            reorder_p: 0.0,
            delay_p: 0.0,
            delay_ticks: 0,
        }
    }

    /// The standard adversarial mix used by the soak tests: `loss` of drop
    /// plus half as much duplication, reordering, and delay.
    pub fn adversarial(seed: u64, loss: f64) -> Self {
        ChaosConfig {
            seed,
            drop_p: loss,
            dup_p: loss / 2.0,
            reorder_p: loss / 2.0,
            delay_p: loss / 2.0,
            delay_ticks: 3,
        }
    }

    /// Read the chaos knobs from the environment. Returns `None` unless
    /// `PREMA_CHAOS_SEED` is set (chaos is strictly opt-in). The rates
    /// default to a mild 1% loss mix and can be overridden individually:
    ///
    /// * `PREMA_CHAOS_SEED` — fate seed (required to enable)
    /// * `PREMA_CHAOS_LOSS` — drop probability (default `0.01`)
    /// * `PREMA_CHAOS_DUP` — duplication probability (default `loss / 2`)
    /// * `PREMA_CHAOS_REORDER` — reorder probability (default `loss / 2`)
    /// * `PREMA_CHAOS_DELAY` — delay probability (default `loss / 2`)
    /// * `PREMA_CHAOS_DELAY_TICKS` — delay length in polls (default `3`)
    ///
    /// All knobs are validated via [`crate::env`]: malformed values warn
    /// once and read as unset, and the probabilities are range-checked to
    /// `[0, 1]` (an out-of-range rate previously saturated the fate dice
    /// silently).
    pub fn from_env() -> Option<Self> {
        let seed = crate::env::u64_var("PREMA_CHAOS_SEED")?;
        let loss = crate::env::prob_var("PREMA_CHAOS_LOSS").unwrap_or(0.01);
        let mut cfg = Self::adversarial(seed, loss);
        if let Some(dup) = crate::env::prob_var("PREMA_CHAOS_DUP") {
            cfg.dup_p = dup;
        }
        if let Some(re) = crate::env::prob_var("PREMA_CHAOS_REORDER") {
            cfg.reorder_p = re;
        }
        if let Some(delay) = crate::env::prob_var("PREMA_CHAOS_DELAY") {
            cfg.delay_p = delay;
        }
        if let Some(ticks) = crate::env::u32_var("PREMA_CHAOS_DELAY_TICKS") {
            cfg.delay_ticks = ticks;
        }
        Some(cfg)
    }
}

/// Aggregated fault counters, snapshot via [`ChaosHandle::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Envelopes dropped by the loss dice.
    pub dropped: u64,
    /// Envelopes delivered twice.
    pub duplicated: u64,
    /// Envelopes deferred by the reorder dice.
    pub reordered: u64,
    /// Envelopes deferred by the delay dice.
    pub delayed: u64,
    /// Envelopes dropped because their rank pair was partitioned.
    pub partitioned: u64,
}

#[derive(Default)]
struct Counters {
    dropped: AtomicU64,
    duplicated: AtomicU64,
    reordered: AtomicU64,
    delayed: AtomicU64,
    partitioned: AtomicU64,
}

/// Shared control surface for a set of [`ChaosTransport`]s: partition and
/// heal rank pairs at runtime and read the aggregated fault counters. Clone
/// freely; all clones control the same machine.
#[derive(Clone, Default)]
pub struct ChaosHandle {
    partitions: Arc<Mutex<HashSet<(Rank, Rank)>>>,
    counters: Arc<Counters>,
}

impl ChaosHandle {
    /// Fresh handle with no partitions and zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sever the pair `(a, b)`: every envelope between them (both
    /// directions) is dropped until [`ChaosHandle::heal`].
    pub fn partition(&self, a: Rank, b: Rank) {
        self.partitions.lock().insert(Self::key(a, b));
    }

    /// Restore the pair `(a, b)`.
    pub fn heal(&self, a: Rank, b: Rank) {
        self.partitions.lock().remove(&Self::key(a, b));
    }

    /// Restore every partitioned pair.
    pub fn heal_all(&self) {
        self.partitions.lock().clear();
    }

    /// Whether the pair `(a, b)` is currently severed.
    pub fn is_partitioned(&self, a: Rank, b: Rank) -> bool {
        self.partitions.lock().contains(&Self::key(a, b))
    }

    /// Snapshot the aggregated fault counters across all transports sharing
    /// this handle.
    pub fn stats(&self) -> ChaosStats {
        ChaosStats {
            dropped: self.counters.dropped.load(Ordering::SeqCst),
            duplicated: self.counters.duplicated.load(Ordering::SeqCst),
            reordered: self.counters.reordered.load(Ordering::SeqCst),
            delayed: self.counters.delayed.load(Ordering::SeqCst),
            partitioned: self.counters.partitioned.load(Ordering::SeqCst),
        }
    }

    fn key(a: Rank, b: Rank) -> (Rank, Rank) {
        (a.min(b), a.max(b))
    }
}

/// What the fate dice decided for one envelope.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Fate {
    Deliver,
    Drop,
    Duplicate,
    Reorder,
    Delay,
}

/// A deferred envelope waiting in the maturity heap. Ordered by
/// `(mature_at, seq)` *reversed*, so the std max-heap pops the entry with
/// the **smallest** maturity tick first; `seq` breaks ties in deferral
/// order, preserving FIFO among envelopes that mature on the same tick.
struct Held {
    /// Absolute logical tick at which this envelope is released.
    mature_at: u64,
    /// Deferral sequence number (tie-break).
    seq: u64,
    env: Envelope,
}

impl PartialEq for Held {
    fn eq(&self, other: &Self) -> bool {
        self.mature_at == other.mature_at && self.seq == other.seq
    }
}

impl Eq for Held {}

impl Ord for Held {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: smallest (mature_at, seq) has the greatest heap priority.
        (other.mature_at, other.seq).cmp(&(self.mature_at, self.seq))
    }
}

impl PartialOrd for Held {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Receiver-side mutable state (the transport is used from one thread at a
/// time, like every other decorator in this crate).
struct ChaosState {
    /// Envelopes cleared for delivery, in order.
    ready: VecDeque<Envelope>,
    /// Deferred envelopes keyed by absolute maturity tick: releasing the
    /// matured prefix is O(matured · log held) heap pops instead of the
    /// former O(held) scan-and-remove per poll, which went quadratic when a
    /// burst held many messages at once.
    held: BinaryHeap<Held>,
    /// Current logical tick (advances once per receive poll).
    now_tick: u64,
    /// Next deferral sequence number (the FIFO tie-break in [`Held`]).
    held_seq: u64,
    /// Per-source ingest counts: the `k` of the fate function.
    ingested: Vec<u64>,
}

impl ChaosState {
    /// Defer `env` for `ticks` logical ticks from now.
    fn hold(&mut self, ticks: u32, env: Envelope) {
        let seq = self.held_seq;
        self.held_seq += 1;
        self.held.push(Held {
            mature_at: self.now_tick + u64::from(ticks),
            seq,
            env,
        });
    }
}

/// The fault-injecting decorator. See the module docs for the model.
pub struct ChaosTransport<T: Transport> {
    inner: T,
    cfg: ChaosConfig,
    handle: ChaosHandle,
    state: RefCell<ChaosState>,
    tracer: Tracer,
}

/// SplitMix64 finalizer: a high-quality 64-bit mixer, used here to turn
/// `(seed, src, dst, k)` into independent uniform dice with no carried state.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Map a mixed word onto `[0, 1)` with 53 bits of precision.
fn unit(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl<T: Transport> ChaosTransport<T> {
    /// Wrap `inner`, injecting faults per `cfg`, controlled/observed through
    /// `handle` (share one handle across all ranks of a machine).
    pub fn new(inner: T, cfg: ChaosConfig, handle: ChaosHandle) -> Self {
        let n = inner.nprocs();
        ChaosTransport {
            inner,
            cfg,
            handle,
            state: RefCell::new(ChaosState {
                ready: VecDeque::new(),
                held: BinaryHeap::new(),
                now_tick: 0,
                held_seq: 0,
                ingested: vec![0; n],
            }),
            tracer: Tracer::off(),
        }
    }

    /// Attach a tracer so injected faults show up in the event stream.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The control handle shared by this transport.
    pub fn handle(&self) -> ChaosHandle {
        self.handle.clone()
    }

    /// Roll the fate dice for ingest index `k` from `src`. Pure function of
    /// the identifying tuple: stable across runs and interleavings.
    fn fate(&self, src: Rank, k: u64) -> Fate {
        let id = self
            .cfg
            .seed
            .wrapping_add(mix(src as u64 ^ ((self.inner.rank() as u64) << 20)))
            .wrapping_add(k.wrapping_mul(0xA24B_AED4_963E_E407));
        let u = unit(mix(id));
        let c = &self.cfg;
        let mut edge = c.drop_p;
        if u < edge {
            return Fate::Drop;
        }
        edge += c.dup_p;
        if u < edge {
            return Fate::Duplicate;
        }
        edge += c.reorder_p;
        if u < edge {
            return Fate::Reorder;
        }
        edge += c.delay_p;
        if u < edge {
            return Fate::Delay;
        }
        Fate::Deliver
    }

    /// Advance one logical tick and release the matured prefix of the heap
    /// to the ready queue — earliest maturity first, deferral order among
    /// ties.
    fn tick(&self, state: &mut ChaosState) {
        state.now_tick += 1;
        while state
            .held
            .peek()
            .is_some_and(|h| h.mature_at <= state.now_tick)
        {
            if let Some(h) = state.held.pop() {
                state.ready.push_back(h.env);
            }
        }
    }

    /// Pull one envelope off the inner transport and apply its fate.
    fn admit(&self, state: &mut ChaosState, env: Envelope) {
        let src = env.src;
        let k = state.ingested[src];
        state.ingested[src] += 1;
        if self.handle.is_partitioned(src, self.inner.rank()) {
            self.handle
                .counters
                .partitioned
                .fetch_add(1, Ordering::SeqCst);
            let handler = env.handler.0;
            self.tracer
                .emit(|| TraceEvent::DcsDropped { peer: src, handler });
            return;
        }
        match self.fate(src, k) {
            Fate::Deliver => state.ready.push_back(env),
            Fate::Drop => {
                self.handle.counters.dropped.fetch_add(1, Ordering::SeqCst);
                let handler = env.handler.0;
                self.tracer
                    .emit(|| TraceEvent::DcsDropped { peer: src, handler });
            }
            Fate::Duplicate => {
                self.handle
                    .counters
                    .duplicated
                    .fetch_add(1, Ordering::SeqCst);
                let handler = env.handler.0;
                self.tracer
                    .emit(|| TraceEvent::DcsDuplicate { peer: src, handler });
                state.ready.push_back(env.clone());
                state.ready.push_back(env);
            }
            Fate::Reorder => {
                // Defer one tick: anything admitted before the next tick
                // overtakes this envelope.
                self.handle
                    .counters
                    .reordered
                    .fetch_add(1, Ordering::SeqCst);
                state.hold(1, env);
            }
            Fate::Delay => {
                self.handle.counters.delayed.fetch_add(1, Ordering::SeqCst);
                state.hold(self.cfg.delay_ticks.max(1), env);
            }
        }
    }
}

impl<T: Transport> Transport for ChaosTransport<T> {
    fn rank(&self) -> Rank {
        self.inner.rank()
    }

    fn nprocs(&self) -> usize {
        self.inner.nprocs()
    }

    fn send(&self, env: Envelope) {
        // Faults are injected receiver-side only; the send path stays the
        // inner transport's untouched fast path.
        self.inner.send(env);
    }

    fn try_recv(&self) -> Option<Envelope> {
        let mut state = self.state.borrow_mut();
        self.tick(&mut state);
        while let Some(env) = self.inner.try_recv() {
            self.admit(&mut state, env);
        }
        state.ready.pop_front()
    }

    fn recv_timeout(&self, timeout: Duration) -> Option<Envelope> {
        let deadline = crate::transport::saturating_deadline(timeout);
        loop {
            if let Some(env) = self.try_recv() {
                return Some(env);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            // If envelopes are deferred, wake every slice so logical ticks
            // keep advancing even with no fresh arrivals; otherwise block on
            // the inner transport until something arrives.
            let held = !self.state.borrow().held.is_empty();
            let wait = if held {
                (deadline - now).min(Duration::from_micros(500))
            } else {
                deadline - now
            };
            if let Some(env) = self.inner.recv_timeout(wait) {
                let mut state = self.state.borrow_mut();
                self.admit(&mut state, env);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::{HandlerId, Tag};
    use crate::transport::LocalFabric;
    use bytes::Bytes;

    fn env(src: Rank, dst: Rank, n: u32) -> Envelope {
        Envelope {
            src,
            dst,
            handler: HandlerId(n),
            tag: Tag::App,
            payload: Bytes::new(),
        }
    }

    /// Run `count` messages through a 2-rank chaos wire and return the
    /// handler ids that came out, in order.
    fn run_once(cfg: ChaosConfig, count: u32) -> (Vec<u32>, ChaosStats) {
        let mut eps = LocalFabric::new(2);
        let handle = ChaosHandle::new();
        let b = ChaosTransport::new(eps.pop().unwrap(), cfg, handle.clone());
        let a = eps.pop().unwrap();
        for i in 0..count {
            a.send(env(0, 1, i));
        }
        let mut got = Vec::new();
        // Extra polls drain deferred envelopes.
        for _ in 0..(count + 64) {
            if let Some(e) = b.try_recv() {
                got.push(e.handler.0);
            }
        }
        (got, handle.stats())
    }

    #[test]
    fn quiet_config_is_transparent() {
        let (got, stats) = run_once(ChaosConfig::quiet(7), 100);
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        assert_eq!(stats, ChaosStats::default());
    }

    #[test]
    fn fates_are_deterministic_across_runs() {
        let cfg = ChaosConfig::adversarial(0xC0FFEE, 0.10);
        let (got1, stats1) = run_once(cfg, 500);
        let (got2, stats2) = run_once(cfg, 500);
        let (got3, stats3) = run_once(cfg, 500);
        assert_eq!(got1, got2);
        assert_eq!(got2, got3);
        assert_eq!(stats1, stats2);
        assert_eq!(stats2, stats3);
        // And the dice actually fired at 10% loss over 500 messages.
        assert!(stats1.dropped > 0, "{stats1:?}");
        assert!(stats1.duplicated > 0, "{stats1:?}");
    }

    #[test]
    fn different_seeds_give_different_fates() {
        let (got1, _) = run_once(ChaosConfig::adversarial(1, 0.20), 300);
        let (got2, _) = run_once(ChaosConfig::adversarial(2, 0.20), 300);
        assert_ne!(got1, got2);
    }

    #[test]
    fn loss_rate_is_roughly_honored() {
        let mut cfg = ChaosConfig::quiet(42);
        cfg.drop_p = 0.05;
        let (got, stats) = run_once(cfg, 2000);
        let lost = 2000 - got.len() as u64;
        assert_eq!(lost, stats.dropped);
        // 5% of 2000 = 100 expected; allow generous slack.
        assert!((40..=180).contains(&lost), "lost {lost}");
    }

    #[test]
    fn duplicates_are_delivered_back_to_back() {
        let mut cfg = ChaosConfig::quiet(9);
        cfg.dup_p = 1.0;
        let (got, stats) = run_once(cfg, 5);
        assert_eq!(got, vec![0, 0, 1, 1, 2, 2, 3, 3, 4, 4]);
        assert_eq!(stats.duplicated, 5);
    }

    #[test]
    fn delay_defers_by_logical_ticks() {
        let mut cfg = ChaosConfig::quiet(3);
        cfg.delay_p = 1.0;
        cfg.delay_ticks = 4;
        let mut eps = LocalFabric::new(2);
        let b = ChaosTransport::new(eps.pop().unwrap(), cfg, ChaosHandle::new());
        let a = eps.pop().unwrap();
        a.send(env(0, 1, 7));
        // First poll ingests + defers; three more age it; the next delivers.
        for _ in 0..4 {
            assert!(b.try_recv().is_none());
        }
        assert_eq!(b.try_recv().map(|e| e.handler.0), Some(7));
    }

    #[test]
    fn many_delayed_messages_mature_together_in_deferral_order() {
        // A burst that defers hundreds of envelopes at once is exactly the
        // shape that made the old linear scan quadratic; the heap must both
        // stay cheap and release the whole cohort in deferral (FIFO) order.
        let mut cfg = ChaosConfig::quiet(5);
        cfg.delay_p = 1.0;
        cfg.delay_ticks = 3;
        let mut eps = LocalFabric::new(2);
        let handle = ChaosHandle::new();
        let b = ChaosTransport::new(eps.pop().unwrap(), cfg, handle.clone());
        let a = eps.pop().unwrap();
        for i in 0..500 {
            a.send(env(0, 1, i));
        }
        let mut got = Vec::new();
        for _ in 0..1200 {
            if let Some(e) = b.try_recv() {
                got.push(e.handler.0);
            }
        }
        assert_eq!(got, (0..500).collect::<Vec<_>>());
        assert_eq!(handle.stats().delayed, 500);
    }

    #[test]
    fn later_reorder_overtakes_earlier_long_delay() {
        // Message 0 rolls Delay (matures at now+4), message 1 rolls Reorder
        // (matures at now+1): the maturity heap must deliver 1 before 0 even
        // though 0 was deferred first. Scan seeds for that fate pair — the
        // fate function is deterministic, so the found seed reproduces the
        // inversion on every run.
        let mut found = false;
        for seed in 0..256u64 {
            let mut cfg = ChaosConfig::quiet(seed);
            cfg.delay_p = 0.5;
            cfg.reorder_p = 0.5;
            cfg.delay_ticks = 4;
            let (got, stats) = run_once(cfg, 2);
            if got == vec![1, 0] && stats.delayed == 1 && stats.reordered == 1 {
                found = true;
                break;
            }
        }
        assert!(found, "no seed in 0..256 produced delay-then-reorder");
    }

    #[test]
    fn partition_severs_and_heal_restores() {
        let mut eps = LocalFabric::new(2);
        let handle = ChaosHandle::new();
        let b = ChaosTransport::new(eps.pop().unwrap(), ChaosConfig::quiet(1), handle.clone());
        let a = eps.pop().unwrap();
        handle.partition(0, 1);
        a.send(env(0, 1, 1));
        for _ in 0..8 {
            assert!(b.try_recv().is_none());
        }
        assert_eq!(handle.stats().partitioned, 1);
        handle.heal(0, 1);
        a.send(env(0, 1, 2));
        assert_eq!(b.try_recv().map(|e| e.handler.0), Some(2));
    }

    #[test]
    fn reorder_lets_later_message_overtake() {
        // An overtake needs the dice to defer message 0 but deliver message
        // 1 in the same poll window. The fate function is deterministic per
        // seed, so scan a few seeds until one produces the inversion — that
        // seed then reproduces it forever.
        let mut inverted = false;
        for seed in 0..64u64 {
            let mut cfg = ChaosConfig::quiet(seed);
            cfg.reorder_p = 0.5;
            let (got, _) = run_once(cfg, 2);
            if got == vec![1, 0] {
                inverted = true;
                break;
            }
        }
        assert!(inverted, "no seed in 0..64 produced an overtake");
    }

    #[test]
    fn recv_timeout_delivers_through_chaos() {
        let mut eps = LocalFabric::new(2);
        let b = ChaosTransport::new(
            eps.pop().unwrap(),
            ChaosConfig::quiet(11),
            ChaosHandle::new(),
        );
        let a = eps.pop().unwrap();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            a.send(env(0, 1, 9));
        });
        let got = b.recv_timeout(Duration::from_secs(5));
        assert_eq!(got.map(|e| e.handler.0), Some(9));
        h.join().expect("sender thread must not panic");
    }

    #[test]
    fn from_env_requires_seed() {
        // Can't set process env safely in parallel tests; just assert the
        // parse path on the absence default (the variable is not set under
        // `cargo test`).
        if std::env::var("PREMA_CHAOS_SEED").is_err() {
            assert!(ChaosConfig::from_env().is_none());
        }
    }
}
