//! # prema-dcs — Data-movement and Control Substrate
//!
//! The communication layer beneath PREMA (Barker et al., *Concurrency P&E*
//! 14:77–101, 2002 — reference [2] of the SC'03 paper): **single-sided,
//! Active-Messages-style communication**. A message names a handler to run at
//! its destination; receivers learn about messages only by polling, exactly
//! like the MPI-over-polling substrate the paper's experiments ran on.
//!
//! Layering (bottom-up):
//!
//! * [`transport`] — the wire. [`transport::RingFabric`] connects N ranks
//!   (one OS thread each) through a shared-nothing mesh of bounded SPSC
//!   rings, one per ordered rank pair: a real concurrent message-passing
//!   machine inside one process with a lock-free, allocation-free
//!   steady-state path, O(1) empty polls via a readiness bitmask, and
//!   structural per-pair FIFO (one sender, one ring, one receiver).
//! * `ring` (crate-internal) — the lock-free building blocks under the
//!   transport: the SPSC ring, the readiness bitmask, the parker eventcount
//!   for blocking receives, and the unbounded overflow spill channel.
//! * [`envelope`] — messages: handler id + [`envelope::Tag`] (application vs
//!   system) + payload bytes.
//! * [`comm`] — the per-rank endpoint: sends, polling receives, a sideline
//!   queue for deferring messages, traffic counters.
//! * [`batch`] — opt-in per-destination coalescing: application envelopes
//!   stage per destination and ship as one wire frame, amortizing the
//!   per-message channel cost while `Tag::System` traffic bypasses staging
//!   (the preemptive poll's latency is never queued behind a batch).
//! * [`pool`] — a thread-local freelist of payload/frame buffers in
//!   power-of-two size classes, so steady-state encoding reuses allocations.
//! * [`handler`] — handler tables for dispatch.
//! * [`collective`] — barrier / allgather / allreduce, used by the
//!   *baselines* (stop-and-repartition, Charm++ `AtSync`), never by PREMA's
//!   own asynchronous load balancing.
//! * [`wire`] — tiny fixed-layout payload codec for runtime-internal protocol
//!   messages.
//! * [`delay`] — a latency-injecting transport decorator for tests that need
//!   wide-area message races.
//! * [`chaos`] — a seeded fault-injecting transport decorator: deterministic
//!   drop / duplicate / reorder / delay plus runtime rank-pair partitions.
//! * [`reliable`] — an opt-in ack/retry/backoff reliable-delivery decorator
//!   (sequence-deduped, per-pair FIFO) that restores the MPI-grade wire
//!   contract above an adversarial transport.
//! * [`udp`] — the out-of-process wire: one UDP socket per rank with batched
//!   `sendmmsg`/`recvmmsg` I/O, a versioned header, and a join handshake, so
//!   ranks run as separate OS processes (see `prema-launch`).
//! * [`env`] — validated `PREMA_*` environment-knob parsing (warn-once on
//!   malformed values, range-checked probabilities), shared by every layer.
//! * [`fxmap`] — Fx-hashed map aliases for runtime-internal keys (fast,
//!   deterministic, not DoS-resistant).

#![warn(missing_docs)]

pub mod batch;
pub mod chaos;
pub mod collective;
pub mod comm;
pub mod delay;
pub mod env;
pub mod envelope;
pub mod fxmap;
pub mod handler;
pub mod pool;
pub mod reliable;
mod ring;
pub mod transport;
pub mod udp;
pub mod wire;

pub use batch::{BatchConfig, H_DCS_BATCH};
pub use chaos::{ChaosConfig, ChaosHandle, ChaosStats, ChaosTransport};
pub use collective::Collectives;
pub use comm::{CommStats, Communicator};
pub use delay::DelayTransport;
pub use envelope::{Envelope, HandlerId, Rank, Tag};
pub use fxmap::{FxHashMap, FxHashSet};
pub use handler::{Handler, HandlerTable};
pub use reliable::{ReliableStats, ReliableTransport, RetryConfig};
pub use transport::{LocalEndpoint, LocalFabric, RingEndpoint, RingFabric, Transport};
pub use udp::{UdpBuilder, UdpError, UdpStats, UdpTransport};
pub use wire::{WireReader, WireWriter};
