//! Lock-free building blocks for the shared-nothing ring transport.
//!
//! The ring-mesh substrate (DESIGN.md §13) gives every ordered rank pair its
//! own bounded single-producer/single-consumer ring, so the steady-state
//! send/receive path crosses **no** lock and **no** contended compare-and-swap:
//! the producer touches only the tail index, the consumer only the head, and
//! each caches the other's last-observed position to avoid even uncontended
//! atomic loads while the ring is comfortably non-empty/non-full (the
//! classic cached-index SPSC construction).
//!
//! Four pieces live here, all consumed by [`crate::transport`]:
//!
//! - [`SpscRing`] / [`Producer`] / [`Consumer`] — the bounded ring itself.
//! - [`ReadySet`] — a per-receiver readiness bitmask (one bit per peer) that
//!   keeps the *empty* poll O(words) instead of O(n): a sweep loads
//!   ⌈n/64⌉ words and stops if all are zero.
//! - [`Parker`] — an eventcount so a blocking `recv_timeout` can sleep
//!   without a shared condvar-per-message cost on the send path: senders pay
//!   one relaxed-cheap `waiters` load per send, and only take the generation
//!   lock when a receiver is actually parked.
//! - [`Overflow`] — the unbounded spill side channel that preserves the
//!   transport's "send never blocks, never drops" contract under ring-full
//!   backpressure while keeping per-pair FIFO intact.
//!
//! The index handshake, the readiness clear-then-recheck protocol, and the
//! parker's Dekker-style waiter registration are model-checked in
//! `tests/loom_ring.rs` under the vendored loom explorer.

use crate::envelope::Envelope;
use parking_lot::{Condvar, Mutex};
use std::cell::{Cell, UnsafeCell};
use std::collections::VecDeque;
use std::mem::MaybeUninit;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Pads and aligns a value to a cache line so the producer-owned tail and
/// consumer-owned head indices of one ring never false-share.
#[repr(align(128))]
pub(crate) struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    pub(crate) const fn new(value: T) -> Self {
        CachePadded { value }
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

// ---------------------------------------------------------------------------
// Bounded SPSC ring
// ---------------------------------------------------------------------------

/// Shared state of one bounded SPSC ring. Constructed only through [`spsc`],
/// which hands out exactly one [`Producer`] and one [`Consumer`]; all slot
/// access goes through those two ends.
pub(crate) struct SpscRing {
    /// `capacity - 1`; capacity is always a power of two so `index & mask`
    /// replaces the modulo.
    mask: usize,
    /// Slot storage. A slot is initialized exactly when its index lies in
    /// `[head, tail)` of the free-running counters.
    slots: Box<[UnsafeCell<MaybeUninit<Envelope>>]>,
    /// Consumer position (free-running). Written only by the consumer
    /// (Release), read by the producer (Acquire) when it looks full.
    head: CachePadded<AtomicUsize>,
    /// Producer position (free-running). Written only by the producer
    /// (Release) after the slot write, read by the consumer (Acquire) when
    /// it looks empty — the Release/Acquire pair is what publishes the slot
    /// contents.
    tail: CachePadded<AtomicUsize>,
}

// SAFETY: the ring is shared between exactly two threads — the unique
// `Producer` writes slots at `tail` and the unique `Consumer` reads slots at
// `head`, and the Release-store/Acquire-load handshake on the indices
// guarantees a slot is never read before its write is published nor
// overwritten before its read has retired. `Envelope` is `Send`, which is
// all that moving one through the ring requires.
unsafe impl Send for SpscRing {}
unsafe impl Sync for SpscRing {}

impl Drop for SpscRing {
    fn drop(&mut self) {
        // Exclusive access: drain whatever is still in flight so payload
        // refcounts are released. The counters are free-running, so walk
        // with wrapping increments rather than a `head..tail` range.
        let mut i = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        while i != tail {
            unsafe { (*self.slots[i & self.mask].get()).assume_init_drop() };
            i = i.wrapping_add(1);
        }
    }
}

/// Build one ring of the given capacity (rounded up to a power of two, min
/// 2) and return its two ends.
pub(crate) fn spsc(capacity: usize) -> (Producer, Consumer) {
    let cap = capacity.next_power_of_two().max(2);
    let slots = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let ring = Arc::new(SpscRing {
        mask: cap - 1,
        slots,
        head: CachePadded::new(AtomicUsize::new(0)),
        tail: CachePadded::new(AtomicUsize::new(0)),
    });
    (
        Producer {
            ring: Arc::clone(&ring),
            tail: Cell::new(0),
            head_cache: Cell::new(0),
        },
        Consumer {
            ring,
            head: Cell::new(0),
            tail_cache: Cell::new(0),
        },
    )
}

/// The sending end of a ring. `!Sync` by construction (the cached indices
/// are `Cell`s): a producer belongs to exactly one thread at a time, which
/// is the single-producer half of the SPSC contract. In the runtime the
/// endpoint is shared between the worker and the polling thread *above*
/// this layer, under the scheduler lock, which serializes all uses.
pub(crate) struct Producer {
    ring: Arc<SpscRing>,
    /// Local copy of the authoritative `ring.tail` (we are its only writer).
    tail: Cell<usize>,
    /// Last observed consumer position; refreshed only when the ring looks
    /// full, so steady-state pushes do no cross-cacheline atomic load.
    head_cache: Cell<usize>,
}

impl Producer {
    /// Push without blocking. Returns the envelope back when the ring is
    /// full — the caller decides the backpressure policy (the transport
    /// spills to its [`Overflow`] channel).
    pub(crate) fn push(&self, env: Envelope) -> Result<(), Envelope> {
        let ring = &*self.ring;
        let cap = ring.mask + 1;
        let tail = self.tail.get();
        if tail.wrapping_sub(self.head_cache.get()) == cap {
            self.head_cache.set(ring.head.load(Ordering::Acquire));
            if tail.wrapping_sub(self.head_cache.get()) == cap {
                return Err(env);
            }
        }
        // SAFETY: `tail` is strictly less than `head + cap`, so this slot is
        // outside the initialized `[head, tail)` window and unobservable by
        // the consumer until the Release store below publishes it.
        unsafe { (*ring.slots[tail & ring.mask].get()).write(env) };
        ring.tail.store(tail.wrapping_add(1), Ordering::Release);
        self.tail.set(tail.wrapping_add(1));
        Ok(())
    }
}

/// The receiving end of a ring (see [`Producer`] for the ownership rules).
pub(crate) struct Consumer {
    ring: Arc<SpscRing>,
    /// Local copy of the authoritative `ring.head` (we are its only writer).
    head: Cell<usize>,
    /// Last observed producer position; refreshed only when the ring looks
    /// empty.
    tail_cache: Cell<usize>,
}

impl Consumer {
    /// Pop the oldest envelope, if any.
    pub(crate) fn pop(&self) -> Option<Envelope> {
        let ring = &*self.ring;
        let head = self.head.get();
        if self.tail_cache.get() == head {
            self.tail_cache.set(ring.tail.load(Ordering::Acquire));
            if self.tail_cache.get() == head {
                return None;
            }
        }
        // SAFETY: `head < tail` was just established, and the Acquire load
        // of `tail` ordered this read after the producer's slot write.
        let env = unsafe { (*ring.slots[head & ring.mask].get()).assume_init_read() };
        ring.head.store(head.wrapping_add(1), Ordering::Release);
        self.head.set(head.wrapping_add(1));
        Some(env)
    }
}

// ---------------------------------------------------------------------------
// Readiness bitmask
// ---------------------------------------------------------------------------

/// One readiness bit per peer of a receiving rank. A sender marks its bit
/// after every push; the receiver's sweep loads ⌈n/64⌉ words and returns
/// immediately when all are zero, which is what keeps the empty poll O(1)
/// in machine size for all practical n.
///
/// A set bit means "this pair *may* have traffic"; a clear bit means "this
/// pair was observed empty after the last mark". The receiver clears a bit
/// only via the clear-then-recheck protocol in the transport sweep, which
/// closes the race with a push that lands between the failed pop and the
/// clear: the clearing `fetch_and` is an AcqRel RMW, so when it observes the
/// sender's `fetch_or` the subsequent re-probe observes the pushed envelope
/// too; when it does not, the sender's mark survives the clear and the next
/// sweep finds it.
pub(crate) struct ReadySet {
    words: Vec<AtomicU64>,
}

impl ReadySet {
    pub(crate) fn new(n: usize) -> Self {
        ReadySet {
            words: (0..n.div_ceil(64)).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Mark peer `i` as possibly-ready (sender side, after a push).
    pub(crate) fn mark(&self, i: usize) {
        self.words[i >> 6].fetch_or(1 << (i & 63), Ordering::AcqRel);
    }

    /// Clear peer `i`'s bit (receiver side, only within clear-then-recheck).
    pub(crate) fn clear(&self, i: usize) {
        self.words[i >> 6].fetch_and(!(1 << (i & 63)), Ordering::AcqRel);
    }

    /// Whether peer `i`'s bit is set, at the caller's chosen strength (the
    /// polling sweep probes Relaxed; the pre-park double-check re-probes
    /// SeqCst so a parked receiver can never miss a registered send).
    pub(crate) fn is_marked(&self, i: usize, ord: Ordering) -> bool {
        self.words[i >> 6].load(ord) & (1 << (i & 63)) != 0
    }

    /// Whether any bit is set — the empty-poll fast path.
    pub(crate) fn any(&self, ord: Ordering) -> bool {
        self.words.iter().any(|w| w.load(ord) != 0)
    }
}

// ---------------------------------------------------------------------------
// Parker (eventcount)
// ---------------------------------------------------------------------------

/// An eventcount for the blocking receive path.
///
/// Protocol (receiver): [`prepare`](Parker::prepare) registers the waiter
/// and snapshots the wake generation → re-probe the rings at SeqCst → if
/// still empty, [`park`](Parker::park) sleeps until the generation moves or
/// the deadline passes. Protocol (sender): after publishing an envelope and
/// its readiness bit, [`unpark`](Parker::unpark) checks `waiters` and only
/// then takes the lock to advance the generation.
///
/// The SeqCst `waiters` increment before the receiver's re-probe and the
/// sender's SeqCst `waiters` read after its publish form the Dekker-style
/// store-buffering pair that makes a lost wakeup impossible: either the
/// receiver's re-probe sees the envelope, or the sender sees the registered
/// waiter and advances the generation the receiver is about to sleep on —
/// with the generation check and the sleep made atomic by the mutex.
///
/// `signaled` makes the wake one-shot per sleep episode: the first unpark
/// to latch it pays the mutex and the condvar notify; every later unpark in
/// the same episode (the woken receiver can stay registered for a whole
/// scheduler quantum before it runs, during which a bulk sender keeps
/// calling unpark) sees the latch and returns after two atomic ops. The
/// latch is safe because it is re-armed in `prepare` *after* the waiter
/// registration: in the SeqCst total order, an unpark whose swap follows
/// the re-arm reads `false` and performs the full wake, and an unpark whose
/// swap precedes it published its envelope before the receiver's re-probe.
/// Model-checked in `tests/loom_ring.rs`.
pub(crate) struct Parker {
    /// Receivers registered between `prepare` and the end of `park`/`cancel`.
    waiters: AtomicUsize,
    /// One-shot wake latch for the current sleep episode; armed (cleared)
    /// by `prepare`, consumed by the first effective `unpark`.
    signaled: AtomicBool,
    /// Wake generation; advances on every effective unpark.
    generation: Mutex<u64>,
    cv: Condvar,
}

impl Parker {
    pub(crate) fn new() -> Self {
        Parker {
            waiters: AtomicUsize::new(0),
            signaled: AtomicBool::new(false),
            generation: Mutex::new(0),
            cv: Condvar::new(),
        }
    }

    /// Register as a waiter and snapshot the generation. Must be paired
    /// with exactly one `park` or `cancel`.
    pub(crate) fn prepare(&self) -> u64 {
        self.waiters.fetch_add(1, Ordering::SeqCst);
        // Re-arm the one-shot latch only after the registration above: a
        // stale latch value can then only be read by an unpark that
        // published before this point, i.e. before the caller's re-probe.
        self.signaled.store(false, Ordering::SeqCst);
        *self.generation.lock()
    }

    /// Deregister without sleeping (the post-`prepare` re-probe found work).
    pub(crate) fn cancel(&self) {
        self.waiters.fetch_sub(1, Ordering::SeqCst);
    }

    /// Sleep until the generation moves past `epoch` or `deadline` passes.
    /// Returns `true` on timeout. Deregisters the waiter either way.
    pub(crate) fn park(&self, epoch: u64, deadline: Instant) -> bool {
        let mut gen = self.generation.lock();
        let mut timed_out = false;
        while *gen == epoch {
            let now = Instant::now();
            if now >= deadline {
                timed_out = true;
                break;
            }
            gen = match self.cv.wait_timeout(gen, deadline - now) {
                Ok((g, _)) => g,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
        drop(gen);
        self.waiters.fetch_sub(1, Ordering::SeqCst);
        timed_out
    }

    /// Wake any parked receiver. The fast path — no waiter registered — is
    /// a single atomic load, which is all a steady-state send pays; with a
    /// waiter registered, only the first unpark of the sleep episode takes
    /// the lock and notifies (see the latch discussion on [`Parker`]).
    pub(crate) fn unpark(&self) {
        if self.waiters.load(Ordering::SeqCst) == 0 {
            return;
        }
        if self.signaled.swap(true, Ordering::SeqCst) {
            return;
        }
        let mut gen = self.generation.lock();
        *gen = gen.wrapping_add(1);
        self.cv.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Overflow spill channel
// ---------------------------------------------------------------------------

/// Unbounded per-pair spill queue backing the ring's backpressure policy.
///
/// The transport's invariant: once a pair has spilled, the sender keeps
/// appending to the overflow (never the ring) until the receiver has
/// drained it empty — and the receiver drains the ring before the overflow
/// in every probe. Together those two rules keep per-pair FIFO across spill
/// episodes: everything in the ring predates everything in the overflow.
///
/// `len` mirrors the queue length so the steady-state probes on both sides
/// are a single atomic load; only the sender ever grows it, so its own
/// `is_empty` check is exact, and the mutex remains the true arbiter for
/// the queue contents themselves.
pub(crate) struct Overflow {
    queue: Mutex<VecDeque<Envelope>>,
    len: AtomicUsize,
}

impl Overflow {
    pub(crate) fn new() -> Self {
        Overflow {
            queue: Mutex::new(VecDeque::new()),
            len: AtomicUsize::new(0),
        }
    }

    /// Whether the spill queue is empty (exact for the sender — it is the
    /// only writer that grows the queue; a hint for the receiver, whose
    /// next probe re-checks).
    pub(crate) fn is_empty(&self) -> bool {
        self.len.load(Ordering::SeqCst) == 0
    }

    pub(crate) fn push(&self, env: Envelope) {
        let mut q = self.queue.lock();
        q.push_back(env);
        self.len.store(q.len(), Ordering::SeqCst);
    }

    pub(crate) fn pop(&self) -> Option<Envelope> {
        if self.is_empty() {
            return None;
        }
        let mut q = self.queue.lock();
        let env = q.pop_front();
        self.len.store(q.len(), Ordering::SeqCst);
        env
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::{HandlerId, Rank, Tag};
    use bytes::Bytes;
    use std::time::Duration;

    fn env(src: Rank, dst: Rank, n: u32) -> Envelope {
        Envelope {
            src,
            dst,
            handler: HandlerId(n),
            tag: Tag::App,
            payload: Bytes::new(),
        }
    }

    #[test]
    fn ring_roundtrips_in_order_and_reports_full() {
        let (tx, rx) = spsc(4);
        assert!(rx.pop().is_none());
        for i in 0..4 {
            assert!(tx.push(env(0, 1, i)).is_ok());
        }
        // Capacity 4: the fifth push bounces back intact.
        let bounced = tx.push(env(0, 1, 99)).unwrap_err();
        assert_eq!(bounced.handler, HandlerId(99));
        for i in 0..4 {
            assert_eq!(rx.pop().unwrap().handler, HandlerId(i));
        }
        assert!(rx.pop().is_none());
        // Space freed: the bounced envelope now fits.
        assert!(tx.push(bounced).is_ok());
        assert_eq!(rx.pop().unwrap().handler, HandlerId(99));
    }

    #[test]
    fn ring_wraps_many_times_without_confusion() {
        let (tx, rx) = spsc(2);
        for i in 0..1000 {
            assert!(tx.push(env(0, 0, i)).is_ok());
            assert_eq!(rx.pop().unwrap().handler, HandlerId(i));
        }
    }

    #[test]
    fn ring_drop_releases_in_flight_payloads() {
        let payload = Bytes::from(vec![7u8; 100]);
        let (tx, rx) = spsc(8);
        for i in 0..5 {
            let mut e = env(0, 1, i);
            e.payload = payload.clone();
            tx.push(e).map_err(|_| "full").unwrap();
        }
        drop(rx);
        drop(tx);
        // All ring-held clones released: we are the sole owner again, which
        // is exactly what a successful `try_reclaim` certifies.
        assert!(payload.try_reclaim().is_ok());
    }

    #[test]
    fn ring_spsc_across_threads_preserves_order() {
        let (tx, rx) = spsc(8);
        let h = std::thread::spawn(move || {
            let mut pending = None;
            for i in 0..10_000 {
                let mut e = pending.take().unwrap_or_else(|| env(0, 1, i));
                loop {
                    match tx.push(e) {
                        Ok(()) => break,
                        Err(back) => {
                            e = back;
                            std::thread::yield_now();
                        }
                    }
                }
                pending = None;
            }
        });
        let mut next = 0u32;
        while next < 10_000 {
            if let Some(e) = rx.pop() {
                assert_eq!(e.handler, HandlerId(next));
                next += 1;
            } else {
                std::thread::yield_now();
            }
        }
        h.join().unwrap();
    }

    #[test]
    fn ready_set_marks_clears_and_sweeps() {
        let rs = ReadySet::new(130); // 3 words
        assert!(!rs.any(Ordering::SeqCst));
        rs.mark(0);
        rs.mark(64);
        rs.mark(129);
        assert!(rs.any(Ordering::SeqCst));
        assert!(rs.is_marked(64, Ordering::SeqCst));
        assert!(!rs.is_marked(63, Ordering::SeqCst));
        rs.clear(64);
        assert!(!rs.is_marked(64, Ordering::SeqCst));
        assert!(rs.is_marked(0, Ordering::SeqCst));
        assert!(rs.is_marked(129, Ordering::SeqCst));
        rs.clear(0);
        rs.clear(129);
        assert!(!rs.any(Ordering::SeqCst));
    }

    #[test]
    fn parker_times_out_without_signal() {
        let p = Parker::new();
        let epoch = p.prepare();
        let start = Instant::now();
        assert!(p.park(epoch, start + Duration::from_millis(20)));
        assert!(start.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn parker_wakes_on_unpark() {
        let p = Arc::new(Parker::new());
        let p2 = Arc::clone(&p);
        let epoch = p.prepare();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            p2.unpark();
        });
        let timed_out = p.park(epoch, Instant::now() + Duration::from_secs(5));
        assert!(!timed_out, "unpark must beat the 5s deadline");
        h.join().unwrap();
    }

    #[test]
    fn parker_unpark_before_park_is_not_lost() {
        let p = Parker::new();
        let epoch = p.prepare();
        p.unpark(); // generation advances: the sleep below must not block
        let start = Instant::now();
        assert!(!p.park(epoch, start + Duration::from_secs(5)));
        assert!(start.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn overflow_is_fifo_and_tracks_len() {
        let o = Overflow::new();
        assert!(o.is_empty());
        assert!(o.pop().is_none());
        for i in 0..10 {
            o.push(env(0, 1, i));
        }
        assert!(!o.is_empty());
        for i in 0..10 {
            assert_eq!(o.pop().unwrap().handler, HandlerId(i));
        }
        assert!(o.is_empty());
    }
}
