//! Tiny fixed-layout wire encoding helpers.
//!
//! DCS payloads are raw bytes; runtime-internal protocol messages (collectives,
//! migration, load balancing) use these little-endian helpers rather than a
//! full serializer, keeping system messages small and allocation-light.

use crate::pool;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Incrementally build a payload.
#[derive(Default)]
pub struct WireWriter {
    buf: BytesMut,
}

impl WireWriter {
    /// New empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// New writer backed by a pooled buffer of at least `min_cap` bytes
    /// (see [`crate::pool`]). Hot-path encoders use this so steady-state
    /// message construction reuses allocations instead of growing fresh
    /// `Vec`s; the buffer returns to the pool when the finished payload's
    /// last owner recycles it (or is dropped — recycling is best-effort).
    pub fn pooled(min_cap: usize) -> Self {
        WireWriter {
            buf: pool::take(min_cap),
        }
    }

    /// Append a `u64`.
    pub fn u64(mut self, v: u64) -> Self {
        self.buf.put_u64_le(v);
        self
    }

    /// Append a `u32`.
    pub fn u32(mut self, v: u32) -> Self {
        self.buf.put_u32_le(v);
        self
    }

    /// Append an `f64`.
    pub fn f64(mut self, v: f64) -> Self {
        self.buf.put_f64_le(v);
        self
    }

    /// Append a length-prefixed byte string.
    pub fn bytes(mut self, v: &[u8]) -> Self {
        self.buf.put_u32_le(v.len() as u32);
        self.buf.put_slice(v);
        self
    }

    /// Finish, producing the payload.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }
}

/// Sequentially decode a payload written by [`WireWriter`].
pub struct WireReader {
    buf: Bytes,
}

impl WireReader {
    /// Wrap a payload for reading.
    pub fn new(buf: Bytes) -> Self {
        Self { buf }
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> u64 {
        assert!(self.buf.remaining() >= 8, "wire underflow reading u64");
        self.buf.get_u64_le()
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> u32 {
        assert!(self.buf.remaining() >= 4, "wire underflow reading u32");
        self.buf.get_u32_le()
    }

    /// Read an `f64`.
    pub fn f64(&mut self) -> f64 {
        assert!(self.buf.remaining() >= 8, "wire underflow reading f64");
        self.buf.get_f64_le()
    }

    /// Read a length-prefixed byte string.
    pub fn bytes(&mut self) -> Bytes {
        let len = self.u32() as usize;
        assert!(self.buf.remaining() >= len, "wire underflow reading bytes");
        if len == 0 {
            // Hand out a detached empty `Bytes` instead of a zero-length
            // slice of the backing buffer: a `split_to(0)` still clones the
            // storage handle, which would keep the buffer shared and defeat
            // the frame-recycling in `batch::decode_frame`.
            return Bytes::new();
        }
        self.buf.split_to(len)
    }

    /// Read a `u64`, returning `None` on underflow instead of panicking.
    ///
    /// Use this (and the other `try_*` readers) when decoding payloads that
    /// arrived off the wire: a truncated or hostile message must be droppable
    /// without aborting the rank.
    pub fn try_u64(&mut self) -> Option<u64> {
        if self.buf.remaining() < 8 {
            return None;
        }
        Some(self.buf.get_u64_le())
    }

    /// Read a `u32`, returning `None` on underflow instead of panicking.
    pub fn try_u32(&mut self) -> Option<u32> {
        if self.buf.remaining() < 4 {
            return None;
        }
        Some(self.buf.get_u32_le())
    }

    /// Read an `f64`, returning `None` on underflow instead of panicking.
    pub fn try_f64(&mut self) -> Option<f64> {
        if self.buf.remaining() < 8 {
            return None;
        }
        Some(self.buf.get_f64_le())
    }

    /// Read a length-prefixed byte string, returning `None` on underflow
    /// (including a length prefix that exceeds the remaining payload).
    pub fn try_bytes(&mut self) -> Option<Bytes> {
        let len = self.try_u32()? as usize;
        if self.buf.remaining() < len {
            return None;
        }
        if len == 0 {
            // See `bytes`: keep zero-length reads from sharing the backing
            // buffer so it stays reclaimable.
            return Some(Bytes::new());
        }
        Some(self.buf.split_to(len))
    }

    /// Read a `u64` and narrow it to `usize`, returning `None` on underflow
    /// or if the value does not fit (a corrupt count on a 32-bit target must
    /// not truncate silently).
    pub fn try_usize(&mut self) -> Option<usize> {
        usize::try_from(self.try_u64()?).ok()
    }

    /// Bytes left unread.
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }

    /// Consume the reader, returning whatever is left of the backing buffer.
    ///
    /// After a full decode this is a zero-length handle on the original
    /// storage — exactly what [`crate::pool::recycle`] needs to reclaim the
    /// allocation when no decoded slice still shares it.
    pub fn into_inner(self) -> Bytes {
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_fields() {
        let payload = WireWriter::new()
            .u64(u64::MAX)
            .u32(42)
            .f64(-1.5)
            .bytes(b"abc")
            .u64(7)
            .finish();
        let mut r = WireReader::new(payload);
        assert_eq!(r.u64(), u64::MAX);
        assert_eq!(r.u32(), 42);
        assert_eq!(r.f64(), -1.5);
        assert_eq!(&r.bytes()[..], b"abc");
        assert_eq!(r.u64(), 7);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn empty_byte_string() {
        let payload = WireWriter::new().bytes(b"").finish();
        let mut r = WireReader::new(payload);
        assert_eq!(r.bytes().len(), 0);
    }

    #[test]
    #[should_panic(expected = "wire underflow")]
    fn underflow_panics() {
        let mut r = WireReader::new(Bytes::from_static(&[1, 2]));
        let _ = r.u64();
    }

    #[test]
    fn try_readers_return_none_on_underflow() {
        let mut r = WireReader::new(Bytes::from_static(&[1, 2]));
        assert_eq!(r.try_u64(), None);
        assert_eq!(r.try_f64(), None);
        assert_eq!(r.try_usize(), None);
        // The two bytes are still there: underflow must not consume.
        assert_eq!(r.remaining(), 2);
        assert_eq!(r.try_u32(), None);
    }

    #[test]
    fn try_bytes_rejects_oversized_length_prefix() {
        // Length prefix says 100 bytes but only 2 follow.
        let payload = WireWriter::new().u32(100).u32(0).finish();
        let mut r = WireReader::new(payload);
        assert_eq!(r.try_bytes(), None);
    }

    #[test]
    fn try_readers_roundtrip() {
        let payload = WireWriter::new().u64(9).f64(2.5).bytes(b"xy").finish();
        let mut r = WireReader::new(payload);
        assert_eq!(r.try_usize(), Some(9));
        assert_eq!(r.try_f64(), Some(2.5));
        assert_eq!(r.try_bytes().as_deref(), Some(&b"xy"[..]));
        assert_eq!(r.try_u64(), None);
    }

    #[test]
    fn pooled_writer_matches_fresh_writer() {
        let fresh = WireWriter::new().u64(1).bytes(b"abc").finish();
        let pooled = WireWriter::pooled(32).u64(1).bytes(b"abc").finish();
        assert_eq!(fresh, pooled);
        // Recycle and re-take: the encoding must still be identical (a warm
        // buffer carries no residue of its previous contents).
        assert!(pool::recycle(pooled));
        let warm = WireWriter::pooled(32).u64(1).bytes(b"abc").finish();
        assert_eq!(fresh, warm);
    }
}
