//! Wire transports.
//!
//! The paper's PREMA sat on LAM/MPI. Here the wire is abstracted behind
//! [`Transport`]; the provided [`LocalFabric`] connects N ranks (one OS thread
//! each) through crossbeam channels, giving a real concurrent message-passing
//! machine inside one process. The per-pair FIFO guarantee of MPI is inherited
//! from channel FIFO order (each sender→receiver path is a single channel).

use crate::envelope::{Envelope, Rank};
use crossbeam::channel::{unbounded, Receiver, Select, Sender};
use std::time::Duration;

/// A node's connection to the machine.
pub trait Transport: Send {
    /// This node's rank.
    fn rank(&self) -> Rank;
    /// Number of ranks in the machine.
    fn nprocs(&self) -> usize;
    /// Enqueue an envelope for delivery (non-blocking, unbounded buffering —
    /// the semantics of MPI eager sends for the small messages DCS carries).
    fn send(&self, env: Envelope);
    /// Non-blocking receive.
    fn try_recv(&self) -> Option<Envelope>;
    /// Blocking receive with a timeout; `None` on timeout.
    fn recv_timeout(&self, timeout: Duration) -> Option<Envelope>;
}

/// One endpoint of a [`LocalFabric`].
pub struct LocalEndpoint {
    rank: Rank,
    /// `peers[d]` delivers to rank `d` (including self, for uniformity).
    peers: Vec<Sender<Envelope>>,
    /// One receiver per possible sender, so per-pair FIFO holds even under
    /// concurrent senders.
    inboxes: Vec<Receiver<Envelope>>,
    /// Round-robin cursor over inboxes for fairness.
    cursor: std::cell::Cell<usize>,
}

impl Transport for LocalEndpoint {
    fn rank(&self) -> Rank {
        self.rank
    }

    fn nprocs(&self) -> usize {
        self.peers.len()
    }

    fn send(&self, env: Envelope) {
        let dst = env.dst;
        assert!(dst < self.peers.len(), "send to nonexistent rank {dst}");
        // Unbounded channel: send never blocks and cannot fail unless the
        // receiver was dropped, which only happens at teardown.
        let _ = self.peers[dst].send(env);
    }

    fn try_recv(&self) -> Option<Envelope> {
        let n = self.inboxes.len();
        let start = self.cursor.get();
        for i in 0..n {
            let idx = (start + i) % n;
            if let Ok(env) = self.inboxes[idx].try_recv() {
                self.cursor.set((idx + 1) % n);
                return Some(env);
            }
        }
        None
    }

    fn recv_timeout(&self, timeout: Duration) -> Option<Envelope> {
        if let Some(env) = self.try_recv() {
            return Some(env);
        }
        let mut sel = Select::new();
        for rx in &self.inboxes {
            sel.recv(rx);
        }
        match sel.select_timeout(timeout) {
            Ok(op) => {
                let idx = op.index();
                op.recv(&self.inboxes[idx]).ok()
            }
            Err(_) => None,
        }
    }
}

/// Builds the all-to-all channel mesh for `n` ranks.
pub struct LocalFabric;

impl LocalFabric {
    /// Create `n` endpoints. Endpoint `i` must be moved to the thread acting
    /// as rank `i`. (Deliberately returns the endpoints rather than `Self`:
    /// the fabric has no identity beyond its endpoints.)
    #[allow(clippy::new_ret_no_self)]
    pub fn new(n: usize) -> Vec<LocalEndpoint> {
        assert!(n > 0, "fabric needs at least one rank");
        // txs[src][dst] / rxs[dst][src]; one channel per ordered (src → dst)
        // pair so FIFO per pair is structural.
        let mut txs: Vec<Vec<Sender<Envelope>>> = (0..n).map(|_| Vec::with_capacity(n)).collect();
        let mut rxs: Vec<Vec<Receiver<Envelope>>> = (0..n).map(|_| Vec::with_capacity(n)).collect();
        let mut grid: Vec<Vec<(Sender<Envelope>, Receiver<Envelope>)>> = (0..n)
            .map(|_| (0..n).map(|_| unbounded()).collect())
            .collect();
        #[allow(clippy::needless_range_loop)] // indices pair txs[src] with rxs[dst]
        for src in 0..n {
            for dst in 0..n {
                let (tx, rx) = grid[src].remove(0);
                txs[src].push(tx);
                rxs[dst].push(rx);
            }
        }
        drop(grid);
        txs.into_iter()
            .zip(rxs)
            .enumerate()
            .map(|(rank, (peers, inboxes))| LocalEndpoint {
                rank,
                peers,
                inboxes,
                cursor: std::cell::Cell::new(0),
            })
            .collect()
    }
}

// Receivers/Senders are Send; Cell<usize> keeps LocalEndpoint !Sync, which is
// correct: an endpoint belongs to exactly one thread. (Sharing between the
// worker and the polling thread happens above this layer, under a lock.)
#[allow(unused)]
fn _assert_endpoint_send(e: LocalEndpoint) -> impl Send {
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::{HandlerId, Tag};
    use bytes::Bytes;

    fn env(src: Rank, dst: Rank, n: u32) -> Envelope {
        Envelope {
            src,
            dst,
            handler: HandlerId(n),
            tag: Tag::App,
            payload: Bytes::new(),
        }
    }

    #[test]
    fn point_to_point_delivery() {
        let mut eps = LocalFabric::new(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        assert_eq!(a.rank(), 0);
        assert_eq!(b.rank(), 1);
        a.send(env(0, 1, 7));
        let got = b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(got.handler, HandlerId(7));
        assert!(b.try_recv().is_none());
    }

    #[test]
    fn per_pair_fifo_under_concurrency() {
        let mut eps = LocalFabric::new(3);
        let c = eps.pop().unwrap();
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let ha = std::thread::spawn(move || {
            for i in 0..1000 {
                a.send(env(0, 2, i));
            }
        });
        let hb = std::thread::spawn(move || {
            for i in 1000..2000 {
                b.send(env(1, 2, i));
            }
        });
        ha.join().unwrap();
        hb.join().unwrap();
        let mut last_a = None;
        let mut last_b = None;
        let mut count = 0;
        while let Some(e) = c.try_recv() {
            count += 1;
            let v = e.handler.0;
            if e.src == 0 {
                assert!(last_a.is_none_or(|p| v > p), "fifo from rank 0 violated");
                last_a = Some(v);
            } else {
                assert!(last_b.is_none_or(|p| v > p), "fifo from rank 1 violated");
                last_b = Some(v);
            }
        }
        assert_eq!(count, 2000);
    }

    #[test]
    fn recv_timeout_times_out_when_empty() {
        let eps = LocalFabric::new(1);
        let a = &eps[0];
        let start = std::time::Instant::now();
        assert!(a.recv_timeout(Duration::from_millis(20)).is_none());
        assert!(start.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn self_send_works() {
        let eps = LocalFabric::new(1);
        eps[0].send(env(0, 0, 5));
        assert_eq!(eps[0].try_recv().unwrap().handler, HandlerId(5));
    }

    #[test]
    fn try_recv_is_fair_across_senders() {
        let mut eps = LocalFabric::new(3);
        let c = eps.pop().unwrap();
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        for i in 0..10 {
            a.send(env(0, 2, i));
            b.send(env(1, 2, 100 + i));
        }
        // Round-robin cursor should interleave sources rather than draining
        // one sender entirely first.
        let mut seen_src = Vec::new();
        for _ in 0..4 {
            seen_src.push(c.try_recv().unwrap().src);
        }
        assert!(
            seen_src.contains(&0) && seen_src.contains(&1),
            "{seen_src:?}"
        );
    }
}
