//! Wire transports.
//!
//! The paper's PREMA sat on LAM/MPI. Here the wire is abstracted behind
//! [`Transport`]; the provided [`RingFabric`] connects N ranks (one OS
//! thread each) through a shared-nothing mesh of bounded lock-free SPSC
//! rings, giving a real concurrent message-passing machine inside one
//! process.
//!
//! # The shared-nothing ring mesh
//!
//! Every ordered rank pair (including self-sends) owns a private
//! single-producer/single-consumer ring (see [`crate::ring`]): the sender
//! holds the producer end, the receiver the consumer end, and the
//! steady-state path crosses **no** lock and **no** contended RMW — a send
//! is a slot write plus three uncontended atomics (tail publish, readiness
//! mark, parked-waiter probe), and it allocates nothing. Two earlier
//! designs are retired by this one: the original n×n channel mesh paid an
//! O(n) scan per *empty* poll, and the single shared MPSC inbox that
//! replaced it made the empty poll O(1) but pushed every bulk send through
//! one contended channel (BENCH_substrate.json: unbatched p2p *slower* than
//! the scan it replaced). The ring mesh keeps both properties at once:
//!
//! - **Empty poll**: a receiver-side readiness bitmask (one bit per peer,
//!   marked by senders after each push) lets `try_recv` answer "nothing
//!   pending" from ⌈n/64⌉ relaxed word loads — no ring is touched.
//! - **Blocking receive**: a per-rank [`ring::Parker`] eventcount gives
//!   `recv_timeout` a sleep that senders can wake for the cost of one
//!   atomic load on the no-waiter fast path, preserving the prompt-wake
//!   and bounded-timeout behavior the model-checked shutdown relies on.
//! - **Backpressure**: a full ring spills to that pair's unbounded
//!   [`ring::Overflow`] side channel, so `send` keeps the never-blocks /
//!   never-drops contract the decorators (`ReliableTransport`,
//!   `ChaosTransport`) and [`crate::batch`] assume. Spill order invariant:
//!   from the first spill until the receiver drains the overflow empty, the
//!   sender keeps appending to the overflow — and every receive probes the
//!   ring before the overflow — so everything in the ring predates
//!   everything in the overflow and per-pair FIFO survives spill episodes.
//!
//! The per-pair FIFO guarantee of MPI — which the MOL's sequence-numbered
//! delivery ordering builds on — is now *structural per pair*: one sender,
//! one ring, one receiver. Interleaving *between* pairs is arbitrary (it
//! always was), which is all the MOL assumes; the receive sweep
//! round-robins across ready peers so no pair starves behind another's
//! backlog. A multi-sender proptest (`ring_mesh_preserves_per_pair_fifo` in
//! `tests/proptest_dcs.rs`) pins the guarantee under randomized thread
//! interleavings, and `tests/loom_ring.rs` model-checks the ring index
//! handshake, the readiness clear-then-recheck, and the parker wakeup.

use crate::batch;
use crate::envelope::{Envelope, Rank};
use crate::ring::{self, Consumer, Overflow, Parker, Producer, ReadySet};
use prema_trace::{TraceEvent, Tracer};
use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A node's connection to the machine.
pub trait Transport: Send {
    /// This node's rank.
    fn rank(&self) -> Rank;
    /// Number of ranks in the machine.
    fn nprocs(&self) -> usize;
    /// Enqueue an envelope for delivery (non-blocking, unbounded buffering —
    /// the semantics of MPI eager sends for the small messages DCS carries).
    fn send(&self, env: Envelope);
    /// Non-blocking receive.
    fn try_recv(&self) -> Option<Envelope>;
    /// Blocking receive with a timeout; `None` on timeout.
    fn recv_timeout(&self, timeout: Duration) -> Option<Envelope>;

    /// Send a group of envelopes staged for one destination as a single
    /// wire frame (see [`crate::batch`]). The default coalesces into one
    /// [`batch::H_DCS_BATCH`] envelope and pushes it through [`send`] — a
    /// frame is an ordinary envelope, so decorators that wrap `send`
    /// (reliability, chaos) treat the whole frame as their unit without
    /// knowing batching exists. Zero or one envelope degenerates to today's
    /// semantics exactly.
    ///
    /// [`send`]: Transport::send
    fn send_batch(&self, dst: Rank, mut msgs: Vec<Envelope>) {
        match msgs.len() {
            0 => {}
            1 => self.send(msgs.remove(0)),
            _ => self.send(batch::encode_frame(self.rank(), dst, msgs)),
        }
    }

    /// Non-blocking receive that expands a coalesced frame: **one** probe
    /// (the empty poll stays O(1)), but a frame arrival appends every
    /// constituent envelope to `out` in staging order. Returns the number of
    /// envelopes appended (0 = nothing pending).
    fn try_recv_batch(&self, out: &mut VecDeque<Envelope>) -> usize {
        match self.try_recv() {
            Some(env) => batch::expand(env, out),
            None => 0,
        }
    }
}

/// Per-receiver state every sender needs a handle on: the readiness bits it
/// marks, the parker it pokes, and the teardown latch it consults.
struct RankShared {
    /// Bit `s` set ⇒ pair (s → this rank) may hold traffic.
    ready: ReadySet,
    /// Eventcount for this rank's blocking receives.
    parker: Parker,
    /// Set when this rank's endpoint drops; senders then count the message
    /// as undeliverable instead of writing into a ring nobody will drain.
    closed: AtomicBool,
}

/// State shared by every endpoint of one fabric.
struct FabricShared {
    ranks: Vec<RankShared>,
    /// Fabric-wide count of sends to an already-torn-down rank. Shared by
    /// every endpoint so a teardown race anywhere in the machine is visible
    /// from any surviving rank.
    undeliverable: AtomicU64,
}

/// Sender-side handle on one ordered pair: the ring's producer end plus the
/// shared spill queue.
struct TxPair {
    prod: Producer,
    overflow: Arc<Overflow>,
}

/// Receiver-side handle on one ordered pair.
struct RxPair {
    cons: Consumer,
    overflow: Arc<Overflow>,
}

/// One endpoint of a [`RingFabric`].
pub struct RingEndpoint {
    rank: Rank,
    /// `tx[d]` is this rank's private producer for the (rank → d) ring.
    tx: Vec<TxPair>,
    /// `rx[s]` is this rank's private consumer for the (s → rank) ring.
    rx: Vec<RxPair>,
    /// Round-robin sweep position, advanced past each delivering peer so no
    /// pair starves behind another's backlog.
    cursor: Cell<usize>,
    shared: Arc<FabricShared>,
    /// Emits [`TraceEvent::DcsDropped`] for undeliverable sends.
    tracer: Tracer,
}

/// Compatibility alias from the shared-inbox era; the ring mesh is the only
/// local transport now.
pub type LocalEndpoint = RingEndpoint;

impl RingEndpoint {
    /// Attach a tracer so undeliverable sends show up in the event stream.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Fabric-wide number of envelopes that could not be delivered because
    /// the destination rank had already been torn down.
    pub fn undeliverable_count(&self) -> u64 {
        self.shared.undeliverable.load(Ordering::SeqCst)
    }

    /// Probe the (src → self) pair: ring first, then spill queue — the
    /// order the FIFO-across-spill invariant requires.
    fn pop_pair(&self, src: usize) -> Option<Envelope> {
        let pair = &self.rx[src];
        pair.cons.pop().or_else(|| pair.overflow.pop())
    }

    /// One round-robin sweep over the ready peers at the caller's chosen
    /// load strength: `Relaxed` for the polling fast path (a mark published
    /// concurrently is caught by the next poll), `SeqCst` for the pre-park
    /// double-check (a registered waiter must observe any send that
    /// preceded its registration — see [`Parker`]).
    fn sweep(&self, ord: Ordering) -> Option<Envelope> {
        let ready = &self.shared.ranks[self.rank].ready;
        if !ready.any(ord) {
            return None;
        }
        let n = self.rx.len();
        let start = self.cursor.get();
        for k in 0..n {
            let src = {
                let s = start + k;
                if s >= n {
                    s - n
                } else {
                    s
                }
            };
            if !ready.is_marked(src, ord) {
                continue;
            }
            if let Some(env) = self.pop_pair(src) {
                self.cursor.set(if src + 1 >= n { 0 } else { src + 1 });
                return Some(env);
            }
            // Stale bit. Clear it, then re-probe: the clearing fetch_and is
            // an AcqRel RMW, so if it observed a concurrent sender's mark
            // the re-probe observes that sender's push too; if it did not,
            // the mark lands after the clear and survives for the next
            // sweep. Either way nothing is lost.
            ready.clear(src);
            if let Some(env) = self.pop_pair(src) {
                ready.mark(src);
                self.cursor.set(if src + 1 >= n { 0 } else { src + 1 });
                return Some(env);
            }
        }
        None
    }
}

impl Transport for RingEndpoint {
    fn rank(&self) -> Rank {
        self.rank
    }

    fn nprocs(&self) -> usize {
        self.tx.len()
    }

    fn send(&self, env: Envelope) {
        let dst = env.dst;
        assert!(dst < self.tx.len(), "send to nonexistent rank {dst}");
        let peer = &self.shared.ranks[dst];
        // A rank that already tore down will never drain its rings. That
        // loss must not be silent — count it and trace it so a vanished
        // message is diagnosable instead of a mystery hang.
        if peer.closed.load(Ordering::SeqCst) {
            self.shared.undeliverable.fetch_add(1, Ordering::SeqCst);
            let handler = env.handler.0;
            self.tracer
                .emit(|| TraceEvent::DcsDropped { peer: dst, handler });
            return;
        }
        let pair = &self.tx[dst];
        // Steady state: one slot write into the private ring, no lock, no
        // allocation. Ring full — or an earlier spill not yet drained —
        // diverts to the overflow queue (see the module docs for why this
        // preserves per-pair FIFO).
        if pair.overflow.is_empty() {
            if let Err(env) = pair.prod.push(env) {
                pair.overflow.push(env);
            }
        } else {
            pair.overflow.push(env);
        }
        peer.ready.mark(self.rank);
        peer.parker.unpark();
    }

    fn try_recv(&self) -> Option<Envelope> {
        // Empty poll: ⌈n/64⌉ relaxed word loads and out. The relaxed
        // strength is safe because polling repeats: a mark this poll
        // misses, the next poll (or the SeqCst pre-park re-probe) sees.
        self.sweep(Ordering::Relaxed)
    }

    fn recv_timeout(&self, timeout: Duration) -> Option<Envelope> {
        if let Some(env) = self.sweep(Ordering::Relaxed) {
            return Some(env);
        }
        let deadline = saturating_deadline(timeout);
        let parker = &self.shared.ranks[self.rank].parker;
        loop {
            // Register-then-recheck (the eventcount protocol): after the
            // waiter registration, a SeqCst sweep; only if that still finds
            // nothing do we sleep on the generation we snapshotted. A
            // sender either lands before the re-probe (we consume it) or
            // after our registration (it advances the generation and the
            // park returns immediately). See `ring::Parker`.
            let epoch = parker.prepare();
            if let Some(env) = self.sweep(Ordering::SeqCst) {
                parker.cancel();
                return Some(env);
            }
            let timed_out = parker.park(epoch, deadline);
            if let Some(env) = self.sweep(Ordering::SeqCst) {
                return Some(env);
            }
            if timed_out {
                return None;
            }
        }
    }
}

impl Drop for RingEndpoint {
    fn drop(&mut self) {
        // Teardown latch: peers still holding producer ends switch to the
        // undeliverable-accounting path instead of queueing into rings that
        // will never be drained.
        self.shared.ranks[self.rank]
            .closed
            .store(true, Ordering::SeqCst);
    }
}

/// Builds the ring-mesh fabric for `n` ranks.
pub struct RingFabric;

/// Compatibility alias from the shared-inbox era (see [`RingFabric`]).
pub type LocalFabric = RingFabric;

/// `Instant::now() + timeout` without the overflow panic: a timeout too
/// large to represent (e.g. `Duration::MAX`, the idiomatic "block forever")
/// saturates to a deadline ~30 years out, which is "never" for any PREMA
/// run. Every `recv_timeout` implementation in this crate routes through
/// here.
pub(crate) fn saturating_deadline(timeout: Duration) -> Instant {
    let now = Instant::now();
    now.checked_add(timeout)
        .unwrap_or_else(|| now + Duration::from_secs(60 * 60 * 24 * 365 * 30))
}

/// Per-pair ring capacity: scaled down with machine size so the n² mesh
/// stays affordable (n=2 → 4096 slots, n=128 → 64), overridable with
/// `PREMA_RING_CAP` (validated via [`crate::env`]; malformed values warn
/// once and fall back to the scaled default). Always rounded up to a power
/// of two.
fn default_ring_capacity(n: usize) -> usize {
    crate::env::usize_var("PREMA_RING_CAP")
        .map(|cap| cap.max(2).next_power_of_two())
        .unwrap_or_else(|| scaled_ring_capacity(n))
}

/// The env-independent default: `8192 / n` slots per pair, clamped.
fn scaled_ring_capacity(n: usize) -> usize {
    (8192 / n).clamp(32, 4096).next_power_of_two()
}

impl RingFabric {
    /// Create `n` endpoints with the default per-pair ring capacity.
    /// Endpoint `i` must be moved to the thread acting as rank `i`.
    /// (Deliberately returns the endpoints rather than `Self`: the fabric
    /// has no identity beyond its endpoints.)
    #[allow(clippy::new_ret_no_self)]
    pub fn new(n: usize) -> Vec<RingEndpoint> {
        Self::with_capacity(n, default_ring_capacity(n))
    }

    /// Create `n` endpoints whose per-pair rings hold `capacity` envelopes
    /// (rounded up to a power of two, min 2). Tests use tiny capacities to
    /// exercise the overflow spill path deterministically.
    pub fn with_capacity(n: usize, capacity: usize) -> Vec<RingEndpoint> {
        assert!(n > 0, "fabric needs at least one rank");
        let shared = Arc::new(FabricShared {
            ranks: (0..n)
                .map(|_| RankShared {
                    ready: ReadySet::new(n),
                    parker: Parker::new(),
                    closed: AtomicBool::new(false),
                })
                .collect(),
            undeliverable: AtomicU64::new(0),
        });
        // Build the n² mesh: ring (s → d) hands its producer to endpoint s
        // and its consumer to endpoint d; both share that pair's overflow.
        // Outer loop over destinations, inner over sources, so txs[s] gains
        // its dst-th entry and rx_row collects in src order — txs[s][d] and
        // rxs[d][s] index the same wire.
        let mut txs: Vec<Vec<TxPair>> = (0..n).map(|_| Vec::with_capacity(n)).collect();
        let mut rxs: Vec<Vec<RxPair>> = Vec::with_capacity(n);
        for _dst in 0..n {
            let mut rx_row = Vec::with_capacity(n);
            for tx_row in txs.iter_mut() {
                let (prod, cons) = ring::spsc(capacity);
                let overflow = Arc::new(Overflow::new());
                tx_row.push(TxPair {
                    prod,
                    overflow: Arc::clone(&overflow),
                });
                rx_row.push(RxPair { cons, overflow });
            }
            rxs.push(rx_row);
        }
        txs.into_iter()
            .zip(rxs)
            .enumerate()
            .map(|(rank, (tx, rx))| RingEndpoint {
                rank,
                tx,
                rx,
                cursor: Cell::new(0),
                shared: Arc::clone(&shared),
                tracer: Tracer::off(),
            })
            .collect()
    }
}

// Endpoints move to their rank's thread. They are deliberately !Sync (the
// sweep cursor and the ring ends' cached indices are Cells): sharing between
// the worker and the polling thread happens above this layer, under a lock,
// which serializes all uses — the single-producer/single-consumer contract
// each ring end requires.
#[allow(unused)]
fn _assert_endpoint_send(e: RingEndpoint) -> impl Send {
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::{HandlerId, Tag};
    use bytes::Bytes;

    fn env(src: Rank, dst: Rank, n: u32) -> Envelope {
        Envelope {
            src,
            dst,
            handler: HandlerId(n),
            tag: Tag::App,
            payload: Bytes::new(),
        }
    }

    #[test]
    fn saturating_deadline_survives_duration_max() {
        // `Instant::now() + Duration::MAX` panics; the saturating helper
        // must not, and must land far enough out to mean "never".
        let d = saturating_deadline(Duration::MAX);
        assert!(d > Instant::now() + Duration::from_secs(60 * 60 * 24 * 365));
        // Representable timeouts are exact (within scheduling slop).
        let exact = saturating_deadline(Duration::from_secs(5));
        assert!(exact <= Instant::now() + Duration::from_secs(5));
    }

    #[test]
    fn recv_timeout_accepts_duration_max() {
        // The classic foot-gun: "block forever" spelled as Duration::MAX.
        // Must compute a saturated deadline (not panic) and still wake on
        // arrival.
        let mut eps = RingFabric::new(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            a.send(env(0, 1, 9));
        });
        let got = b.recv_timeout(Duration::MAX).unwrap();
        assert_eq!(got.handler, HandlerId(9));
        h.join().unwrap();
    }

    #[test]
    fn point_to_point_delivery() {
        let mut eps = RingFabric::new(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        assert_eq!(a.rank(), 0);
        assert_eq!(b.rank(), 1);
        a.send(env(0, 1, 7));
        let got = b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(got.handler, HandlerId(7));
        assert!(b.try_recv().is_none());
    }

    #[test]
    fn per_pair_fifo_under_concurrency() {
        let mut eps = RingFabric::new(3);
        let c = eps.pop().unwrap();
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let ha = std::thread::spawn(move || {
            for i in 0..1000 {
                a.send(env(0, 2, i));
            }
        });
        let hb = std::thread::spawn(move || {
            for i in 1000..2000 {
                b.send(env(1, 2, i));
            }
        });
        ha.join().unwrap();
        hb.join().unwrap();
        let mut last_a = None;
        let mut last_b = None;
        let mut count = 0;
        while let Some(e) = c.try_recv() {
            count += 1;
            let v = e.handler.0;
            if e.src == 0 {
                assert!(last_a.is_none_or(|p| v > p), "fifo from rank 0 violated");
                last_a = Some(v);
            } else {
                assert!(last_b.is_none_or(|p| v > p), "fifo from rank 1 violated");
                last_b = Some(v);
            }
        }
        assert_eq!(count, 2000);
    }

    #[test]
    fn recv_timeout_times_out_when_empty() {
        let eps = RingFabric::new(1);
        let a = &eps[0];
        let start = std::time::Instant::now();
        assert!(a.recv_timeout(Duration::from_millis(20)).is_none());
        assert!(start.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn self_send_works() {
        let eps = RingFabric::new(1);
        eps[0].send(env(0, 0, 5));
        assert_eq!(eps[0].try_recv().unwrap().handler, HandlerId(5));
    }

    #[test]
    fn arrival_order_preserved_across_senders() {
        let mut eps = RingFabric::new(3);
        let c = eps.pop().unwrap();
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        for i in 0..10 {
            a.send(env(0, 2, i));
            b.send(env(1, 2, 100 + i));
        }
        // The sweep round-robins across ready peers, so no sender can be
        // starved behind another's backlog: both sources show up
        // immediately.
        let mut seen_src = Vec::new();
        for _ in 0..4 {
            seen_src.push(c.try_recv().unwrap().src);
        }
        assert!(
            seen_src.contains(&0) && seen_src.contains(&1),
            "{seen_src:?}"
        );
    }

    #[test]
    fn ring_full_spills_to_overflow_and_preserves_fifo() {
        // Capacity 4 and no receiver draining: sends 4.. spill. Everything
        // must still arrive, in order, with nothing counted undeliverable.
        let mut eps = RingFabric::with_capacity(2, 4);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        for i in 0..100 {
            a.send(env(0, 1, i));
        }
        for i in 0..100 {
            assert_eq!(b.try_recv().unwrap().handler, HandlerId(i), "at {i}");
        }
        assert!(b.try_recv().is_none());
        assert_eq!(a.undeliverable_count(), 0);
    }

    #[test]
    fn fifo_survives_interleaved_spill_episodes() {
        // Drain partially between bursts so the pair oscillates between
        // in-ring and spilled states; order must hold across the seams.
        let mut eps = RingFabric::with_capacity(2, 2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let mut next = 0u32;
        let mut sent = 0u32;
        for round in 0..50 {
            for _ in 0..(round % 5 + 1) {
                a.send(env(0, 1, sent));
                sent += 1;
            }
            for _ in 0..(round % 3) {
                if let Some(e) = b.try_recv() {
                    assert_eq!(e.handler, HandlerId(next));
                    next += 1;
                }
            }
        }
        while let Some(e) = b.try_recv() {
            assert_eq!(e.handler, HandlerId(next));
            next += 1;
        }
        assert_eq!(next, sent);
    }

    #[test]
    fn send_to_torn_down_rank_is_counted_not_silent() {
        let mut eps = RingFabric::new(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        assert_eq!(a.undeliverable_count(), 0);
        // Rank 1 tears down while rank 0 still holds its producer ends —
        // the shutdown race the runtime hits when a worker finishes before
        // a straggler's last messages drain.
        drop(b);
        a.send(env(0, 1, 3));
        a.send(env(0, 1, 4));
        assert_eq!(a.undeliverable_count(), 2);
        // Deliverable traffic (self-send) is unaffected and not counted.
        a.send(env(0, 0, 5));
        assert_eq!(a.try_recv().unwrap().handler, HandlerId(5));
        assert_eq!(a.undeliverable_count(), 2);
    }

    #[test]
    fn undeliverable_send_emits_dropped_event() {
        use prema_trace::TraceSink;
        let sink = std::sync::Arc::new(TraceSink::new(2));
        let mut eps = RingFabric::new(2);
        let b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.set_tracer(sink.tracer(0));
        drop(b);
        a.send(env(0, 1, 9));
        let recs = sink.drain();
        // With tracing compiled out the emit is a no-op; the counter is the
        // always-on signal (asserted above), the event is best-effort.
        if !recs.is_empty() {
            assert_eq!(recs[0].ev.name(), "dcs_dropped");
        }
        assert_eq!(a.undeliverable_count(), 1);
    }

    #[test]
    fn default_batch_surface_roundtrips() {
        let mut eps = RingFabric::new(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        a.send_batch(1, vec![]); // zero envelopes: nothing hits the wire
        a.send_batch(1, vec![env(0, 1, 1)]); // one envelope: sent plain
        a.send_batch(1, (2..5).map(|i| env(0, 1, i)).collect());
        let mut out = VecDeque::new();
        // The plain envelope costs one probe; the frame delivers all three
        // of its envelopes out of a single probe.
        assert_eq!(b.try_recv_batch(&mut out), 1);
        assert_eq!(b.try_recv_batch(&mut out), 3);
        assert_eq!(b.try_recv_batch(&mut out), 0);
        let ids: Vec<u32> = out.iter().map(|e| e.handler.0).collect();
        assert_eq!(ids, vec![1, 2, 3, 4]);
    }

    #[test]
    fn recv_timeout_wakes_on_concurrent_send() {
        let mut eps = RingFabric::new(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            a.send(env(0, 1, 9));
        });
        // The blocking receive must be woken by the send, well before the
        // generous timeout.
        let got = b.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(got.handler, HandlerId(9));
        h.join().unwrap();
    }

    #[test]
    fn ring_capacity_scales_down_with_machine_size() {
        // Checked via the env-independent helper — mutating the process
        // env in a multithreaded test harness is racy.
        assert_eq!(scaled_ring_capacity(2), 4096);
        assert_eq!(scaled_ring_capacity(8), 1024);
        assert_eq!(scaled_ring_capacity(128), 64);
        assert_eq!(scaled_ring_capacity(100_000), 32);
        for n in [1, 2, 3, 7, 64, 1000] {
            assert!(scaled_ring_capacity(n).is_power_of_two());
        }
    }
}
