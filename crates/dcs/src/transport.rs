//! Wire transports.
//!
//! The paper's PREMA sat on LAM/MPI. Here the wire is abstracted behind
//! [`Transport`]; the provided [`LocalFabric`] connects N ranks (one OS thread
//! each) through crossbeam channels, giving a real concurrent message-passing
//! machine inside one process.
//!
//! # The single-queue fast path
//!
//! Each rank owns **one** shared MPSC inbox; every peer holds a clone of its
//! sender. This makes the two operations the runtime performs constantly —
//! the preemptive polling thread's empty poll and the blocking
//! `recv_timeout` — O(1) in machine size: `try_recv` is a single channel
//! probe (no scan over per-peer inboxes) and `recv_timeout` is a single
//! condvar wait (no `Select` built per call). An earlier design used an n×n
//! channel mesh, which paid an O(n) scan per *empty* poll — overhead that
//! grew with machine size on exactly the path §4.2's implicit mode needs to
//! be negligible (the inbox-scan baseline survives in
//! `crates/bench/benches/fastpath.rs` so the win stays measured).
//!
//! The per-pair FIFO guarantee of MPI — which the MOL's sequence-numbered
//! delivery ordering builds on — is preserved *structurally*: the channel is
//! multi-producer with each `send` enqueueing atomically, so the messages of
//! any one producer appear in the queue in their send order. Interleaving
//! *between* producers is arbitrary (it always was, even with per-pair
//! channels), which is all the MOL assumes. A multi-sender proptest
//! (`shared_queue_preserves_per_pair_fifo` in `tests/proptest_dcs.rs`) pins
//! the guarantee under randomized thread interleavings.

use crate::batch;
use crate::envelope::{Envelope, Rank};
use crossbeam::channel::{unbounded, Receiver, Sender};
use prema_trace::{TraceEvent, Tracer};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A node's connection to the machine.
pub trait Transport: Send {
    /// This node's rank.
    fn rank(&self) -> Rank;
    /// Number of ranks in the machine.
    fn nprocs(&self) -> usize;
    /// Enqueue an envelope for delivery (non-blocking, unbounded buffering —
    /// the semantics of MPI eager sends for the small messages DCS carries).
    fn send(&self, env: Envelope);
    /// Non-blocking receive.
    fn try_recv(&self) -> Option<Envelope>;
    /// Blocking receive with a timeout; `None` on timeout.
    fn recv_timeout(&self, timeout: Duration) -> Option<Envelope>;

    /// Send a group of envelopes staged for one destination as a single
    /// wire frame (see [`crate::batch`]). The default coalesces into one
    /// [`batch::H_DCS_BATCH`] envelope and pushes it through [`send`] — a
    /// frame is an ordinary envelope, so decorators that wrap `send`
    /// (reliability, chaos) treat the whole frame as their unit without
    /// knowing batching exists. Zero or one envelope degenerates to today's
    /// semantics exactly.
    ///
    /// [`send`]: Transport::send
    fn send_batch(&self, dst: Rank, mut msgs: Vec<Envelope>) {
        match msgs.len() {
            0 => {}
            1 => self.send(msgs.remove(0)),
            _ => self.send(batch::encode_frame(self.rank(), dst, msgs)),
        }
    }

    /// Non-blocking receive that expands a coalesced frame: **one** channel
    /// probe (the empty poll stays O(1)), but a frame arrival appends every
    /// constituent envelope to `out` in staging order. Returns the number of
    /// envelopes appended (0 = nothing pending).
    fn try_recv_batch(&self, out: &mut VecDeque<Envelope>) -> usize {
        match self.try_recv() {
            Some(env) => batch::expand(env, out),
            None => 0,
        }
    }
}

/// One endpoint of a [`LocalFabric`].
pub struct LocalEndpoint {
    rank: Rank,
    /// `peers[d]` delivers into rank `d`'s shared inbox (including self, for
    /// uniformity).
    peers: Vec<Sender<Envelope>>,
    /// This rank's single shared inbox: every peer sends into it, so receive
    /// cost is independent of machine size.
    inbox: Receiver<Envelope>,
    /// Fabric-wide count of sends into an already-torn-down inbox. Shared by
    /// every endpoint so a teardown race anywhere in the machine is visible
    /// from any surviving rank.
    undeliverable: Arc<AtomicU64>,
    /// Emits [`TraceEvent::DcsDropped`] for undeliverable sends.
    tracer: Tracer,
}

impl LocalEndpoint {
    /// Attach a tracer so undeliverable sends show up in the event stream.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Fabric-wide number of envelopes that could not be delivered because
    /// the destination inbox had already been dropped.
    pub fn undeliverable_count(&self) -> u64 {
        self.undeliverable.load(Ordering::SeqCst)
    }
}

impl Transport for LocalEndpoint {
    fn rank(&self) -> Rank {
        self.rank
    }

    fn nprocs(&self) -> usize {
        self.peers.len()
    }

    fn send(&self, env: Envelope) {
        let dst = env.dst;
        assert!(dst < self.peers.len(), "send to nonexistent rank {dst}");
        // Unbounded channel: send never blocks; it fails only when the
        // destination inbox receiver was already dropped (a teardown race).
        // That loss must not be silent — count it and trace it so a vanished
        // message is diagnosable instead of a mystery hang.
        if let Err(e) = self.peers[dst].send(env) {
            self.undeliverable.fetch_add(1, Ordering::SeqCst);
            let handler = e.0.handler.0;
            self.tracer
                .emit(|| TraceEvent::DcsDropped { peer: dst, handler });
        }
    }

    fn try_recv(&self) -> Option<Envelope> {
        // O(1): one probe of the shared inbox, regardless of machine size.
        self.inbox.try_recv().ok()
    }

    fn recv_timeout(&self, timeout: Duration) -> Option<Envelope> {
        // O(1): a single blocking receive — no selector construction, no
        // scan. A sender's enqueue wakes this directly via the channel's
        // condvar.
        self.inbox.recv_timeout(timeout).ok()
    }
}

/// Builds the shared-inbox fabric for `n` ranks.
pub struct LocalFabric;

impl LocalFabric {
    /// Create `n` endpoints. Endpoint `i` must be moved to the thread acting
    /// as rank `i`. (Deliberately returns the endpoints rather than `Self`:
    /// the fabric has no identity beyond its endpoints.)
    #[allow(clippy::new_ret_no_self)]
    pub fn new(n: usize) -> Vec<LocalEndpoint> {
        assert!(n > 0, "fabric needs at least one rank");
        // One channel per rank. Each endpoint gets a clone of every sender
        // (its address table) and its own receiver: n channels total instead
        // of the previous n² mesh, and no quadratic vector shuffling at
        // construction.
        let (txs, rxs): (Vec<Sender<Envelope>>, Vec<Receiver<Envelope>>) =
            (0..n).map(|_| unbounded()).unzip();
        let undeliverable = Arc::new(AtomicU64::new(0));
        rxs.into_iter()
            .enumerate()
            .map(|(rank, inbox)| LocalEndpoint {
                rank,
                peers: txs.clone(),
                inbox,
                undeliverable: Arc::clone(&undeliverable),
                tracer: Tracer::off(),
            })
            .collect()
    }
}

// Senders/Receivers are Send, so endpoints can be moved to their rank's
// thread. (The shared MPMC inbox would even tolerate concurrent receivers,
// but the runtime never does that: sharing between the worker and the
// polling thread happens above this layer, under a lock.)
#[allow(unused)]
fn _assert_endpoint_send(e: LocalEndpoint) -> impl Send {
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::{HandlerId, Tag};
    use bytes::Bytes;

    fn env(src: Rank, dst: Rank, n: u32) -> Envelope {
        Envelope {
            src,
            dst,
            handler: HandlerId(n),
            tag: Tag::App,
            payload: Bytes::new(),
        }
    }

    #[test]
    fn point_to_point_delivery() {
        let mut eps = LocalFabric::new(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        assert_eq!(a.rank(), 0);
        assert_eq!(b.rank(), 1);
        a.send(env(0, 1, 7));
        let got = b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(got.handler, HandlerId(7));
        assert!(b.try_recv().is_none());
    }

    #[test]
    fn per_pair_fifo_under_concurrency() {
        let mut eps = LocalFabric::new(3);
        let c = eps.pop().unwrap();
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let ha = std::thread::spawn(move || {
            for i in 0..1000 {
                a.send(env(0, 2, i));
            }
        });
        let hb = std::thread::spawn(move || {
            for i in 1000..2000 {
                b.send(env(1, 2, i));
            }
        });
        ha.join().unwrap();
        hb.join().unwrap();
        let mut last_a = None;
        let mut last_b = None;
        let mut count = 0;
        while let Some(e) = c.try_recv() {
            count += 1;
            let v = e.handler.0;
            if e.src == 0 {
                assert!(last_a.is_none_or(|p| v > p), "fifo from rank 0 violated");
                last_a = Some(v);
            } else {
                assert!(last_b.is_none_or(|p| v > p), "fifo from rank 1 violated");
                last_b = Some(v);
            }
        }
        assert_eq!(count, 2000);
    }

    #[test]
    fn recv_timeout_times_out_when_empty() {
        let eps = LocalFabric::new(1);
        let a = &eps[0];
        let start = std::time::Instant::now();
        assert!(a.recv_timeout(Duration::from_millis(20)).is_none());
        assert!(start.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn self_send_works() {
        let eps = LocalFabric::new(1);
        eps[0].send(env(0, 0, 5));
        assert_eq!(eps[0].try_recv().unwrap().handler, HandlerId(5));
    }

    #[test]
    fn arrival_order_preserved_across_senders() {
        let mut eps = LocalFabric::new(3);
        let c = eps.pop().unwrap();
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        for i in 0..10 {
            a.send(env(0, 2, i));
            b.send(env(1, 2, 100 + i));
        }
        // The shared inbox preserves global arrival order, so no sender can
        // be starved behind another's backlog: both sources show up
        // immediately.
        let mut seen_src = Vec::new();
        for _ in 0..4 {
            seen_src.push(c.try_recv().unwrap().src);
        }
        assert!(
            seen_src.contains(&0) && seen_src.contains(&1),
            "{seen_src:?}"
        );
    }

    #[test]
    fn send_to_torn_down_rank_is_counted_not_silent() {
        let mut eps = LocalFabric::new(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        assert_eq!(a.undeliverable_count(), 0);
        // Rank 1 tears down (its inbox receiver drops) while rank 0 still
        // holds a sender — the shutdown race the runtime hits when a worker
        // finishes before a straggler's last messages drain.
        drop(b);
        a.send(env(0, 1, 3));
        a.send(env(0, 1, 4));
        assert_eq!(a.undeliverable_count(), 2);
        // Deliverable traffic (self-send) is unaffected and not counted.
        a.send(env(0, 0, 5));
        assert_eq!(a.try_recv().unwrap().handler, HandlerId(5));
        assert_eq!(a.undeliverable_count(), 2);
    }

    #[test]
    fn undeliverable_send_emits_dropped_event() {
        use prema_trace::TraceSink;
        let sink = std::sync::Arc::new(TraceSink::new(2));
        let mut eps = LocalFabric::new(2);
        let b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.set_tracer(sink.tracer(0));
        drop(b);
        a.send(env(0, 1, 9));
        let recs = sink.drain();
        // With tracing compiled out the emit is a no-op; the counter is the
        // always-on signal (asserted above), the event is best-effort.
        if !recs.is_empty() {
            assert_eq!(recs[0].ev.name(), "dcs_dropped");
        }
        assert_eq!(a.undeliverable_count(), 1);
    }

    #[test]
    fn default_batch_surface_roundtrips() {
        let mut eps = LocalFabric::new(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        a.send_batch(1, vec![]); // zero envelopes: nothing hits the wire
        a.send_batch(1, vec![env(0, 1, 1)]); // one envelope: sent plain
        a.send_batch(1, (2..5).map(|i| env(0, 1, i)).collect());
        let mut out = VecDeque::new();
        // The plain envelope costs one probe; the frame delivers all three
        // of its envelopes out of a single probe.
        assert_eq!(b.try_recv_batch(&mut out), 1);
        assert_eq!(b.try_recv_batch(&mut out), 3);
        assert_eq!(b.try_recv_batch(&mut out), 0);
        let ids: Vec<u32> = out.iter().map(|e| e.handler.0).collect();
        assert_eq!(ids, vec![1, 2, 3, 4]);
    }

    #[test]
    fn recv_timeout_wakes_on_concurrent_send() {
        let mut eps = LocalFabric::new(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            a.send(env(0, 1, 9));
        });
        // The blocking receive must be woken by the send, well before the
        // generous timeout.
        let got = b.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(got.handler, HandlerId(9));
        h.join().unwrap();
    }
}
