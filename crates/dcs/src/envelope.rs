//! Message envelopes.
//!
//! A DCS message is an *active message*: it names a handler to run at the
//! destination and carries an opaque payload. Envelopes also carry a
//! [`Tag`] so the runtime can separate **system-generated** traffic (load
//! balancing status updates, migration requests) from **application**
//! traffic — the mechanism PREMA uses to let its preemptive polling thread
//! process load-balancer messages without ever running application handlers
//! behind the application's back (§4.2 of the paper).

use bytes::Bytes;

/// Rank of a node in the communicator (the paper's "processor").
pub type Rank = usize;

/// Identifies a registered message handler. Handler ids must be agreed upon
/// by all ranks (register handlers in the same order everywhere, exactly as
/// with classic Active Messages).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct HandlerId(pub u32);

impl HandlerId {
    /// Handler ids at and above this value are reserved for the runtime
    /// (collectives, migration protocol, load balancer).
    pub const SYSTEM_BASE: u32 = 0xFFFF_0000;

    /// Whether this is a runtime-reserved handler id.
    pub fn is_system(self) -> bool {
        self.0 >= Self::SYSTEM_BASE
    }
}

/// Coarse classification of a message, used by polling filters.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Tag {
    /// Application-generated message: only processed at application-posted
    /// polling operations.
    App,
    /// System-generated message (load balancing, migration, collectives):
    /// may additionally be processed preemptively by the polling thread.
    System,
}

/// A message either in flight or queued for dispatch.
#[derive(Clone, Debug)]
pub struct Envelope {
    /// Sending rank.
    pub src: Rank,
    /// Destination rank.
    pub dst: Rank,
    /// Which handler to run at the destination.
    pub handler: HandlerId,
    /// System/application classification.
    pub tag: Tag,
    /// Opaque payload bytes.
    pub payload: Bytes,
}

impl Envelope {
    /// Total bytes this envelope occupies on the wire (header + payload),
    /// used by cost models and traffic counters.
    pub fn wire_size(&self) -> usize {
        const HEADER: usize = 24; // src + dst + handler + tag, padded
        HEADER + self.payload.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_handler_classification() {
        assert!(HandlerId(HandlerId::SYSTEM_BASE).is_system());
        assert!(HandlerId(u32::MAX).is_system());
        assert!(!HandlerId(0).is_system());
        assert!(!HandlerId(HandlerId::SYSTEM_BASE - 1).is_system());
    }

    #[test]
    fn wire_size_includes_header() {
        let e = Envelope {
            src: 0,
            dst: 1,
            handler: HandlerId(3),
            tag: Tag::App,
            payload: Bytes::from_static(b"hello"),
        };
        assert_eq!(e.wire_size(), 24 + 5);
    }
}
