//! Validated parsing for the `PREMA_*` environment knobs.
//!
//! Before this module each knob rolled its own `.parse().ok()`, with three
//! different failure behaviors: `PREMA_RING_CAP` silently ignored malformed
//! values, `ilb::stability` silently fell back to defaults, and
//! `ChaosConfig::from_env` accepted out-of-range probabilities (loss above
//! `1.0` quietly saturates the fate dice). A typo in an env var is exactly
//! the situation where silence is costliest — the operator believes a knob
//! is set and it is not — so every knob now routes through one helper that
//!
//! * warns (once per variable, on stderr) when a set value does not parse,
//!   then behaves as if the variable were unset;
//! * range-checks probabilities to `[0, 1]` and rejects non-finite floats;
//! * keeps the *semantics* of every existing knob unchanged for well-formed
//!   values.
//!
//! Each `*_var` reader has a pure `parse_*` core taking the raw string, so
//! tests can cover the validation matrix without mutating the process
//! environment (which is racy under a multithreaded test harness).

use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::sync::OnceLock;

/// Emit `msg` for `key` at most once per process. Repeated reads of the
/// same malformed variable (every rank re-reads the env at launch) must not
/// spam stderr.
fn warn_once(key: &str, msg: &str) {
    static WARNED: OnceLock<Mutex<BTreeSet<String>>> = OnceLock::new();
    let mut warned = WARNED.get_or_init(|| Mutex::new(BTreeSet::new())).lock();
    if warned.insert(key.to_string()) {
        eprintln!("prema: ignoring {key}: {msg}");
    }
}

/// Parse a `u64` knob from a raw (possibly absent) value. Malformed input
/// warns once and reads as unset.
pub fn parse_u64(key: &str, raw: Option<&str>) -> Option<u64> {
    let raw = raw?;
    match raw.trim().parse::<u64>() {
        Ok(v) => Some(v),
        Err(_) => {
            warn_once(key, &format!("{raw:?} is not an unsigned integer"));
            None
        }
    }
}

/// Parse a `usize` knob (same rules as [`parse_u64`]).
pub fn parse_usize(key: &str, raw: Option<&str>) -> Option<usize> {
    let raw = raw?;
    match raw.trim().parse::<usize>() {
        Ok(v) => Some(v),
        Err(_) => {
            warn_once(key, &format!("{raw:?} is not an unsigned integer"));
            None
        }
    }
}

/// Parse a `u32` knob (same rules as [`parse_u64`], plus a range check).
pub fn parse_u32(key: &str, raw: Option<&str>) -> Option<u32> {
    let v = parse_u64(key, raw)?;
    if v > u32::MAX as u64 {
        warn_once(key, &format!("{v} exceeds u32::MAX"));
        return None;
    }
    Some(v as u32)
}

/// Parse a finite `f64` knob. Non-finite values (NaN, ±inf) warn and read
/// as unset.
pub fn parse_f64(key: &str, raw: Option<&str>) -> Option<f64> {
    let raw = raw?;
    match raw.trim().parse::<f64>() {
        Ok(v) if v.is_finite() => Some(v),
        Ok(_) => {
            warn_once(key, &format!("{raw:?} is not finite"));
            None
        }
        Err(_) => {
            warn_once(key, &format!("{raw:?} is not a number"));
            None
        }
    }
}

/// Parse a probability knob: a finite `f64` in `[0, 1]`. Out-of-range
/// values warn once and read as unset (they do **not** clamp — a clamped
/// `PREMA_CHAOS_LOSS=10` would silently run at 100% loss, which is never
/// what the operator meant).
pub fn parse_prob(key: &str, raw: Option<&str>) -> Option<f64> {
    let v = parse_f64(key, raw)?;
    if !(0.0..=1.0).contains(&v) {
        warn_once(key, &format!("probability {v} is outside [0, 1]"));
        return None;
    }
    Some(v)
}

/// Parse a boolean knob. `1`/`true`/`on`/`yes` (case-insensitive) read as
/// `true`; `0`/`false`/`off`/`no` as `false`; anything else warns once and
/// reads as `false` — matching the historical `PREMA_PIN_CORES` contract
/// where *any* set value overrides the config and only the affirmative
/// spellings enable.
pub fn parse_flag(key: &str, raw: Option<&str>) -> Option<bool> {
    let raw = raw?;
    match raw.trim().to_ascii_lowercase().as_str() {
        "1" | "true" | "on" | "yes" => Some(true),
        "0" | "false" | "off" | "no" => Some(false),
        other => {
            warn_once(key, &format!("{other:?} is not a boolean; reading as off"));
            Some(false)
        }
    }
}

fn raw(key: &str) -> Option<String> {
    std::env::var(key).ok()
}

/// Read + validate a `u64` knob from the process environment.
pub fn u64_var(key: &str) -> Option<u64> {
    parse_u64(key, raw(key).as_deref())
}

/// Read + validate a `usize` knob from the process environment.
pub fn usize_var(key: &str) -> Option<usize> {
    parse_usize(key, raw(key).as_deref())
}

/// Read + validate a `u32` knob from the process environment.
pub fn u32_var(key: &str) -> Option<u32> {
    parse_u32(key, raw(key).as_deref())
}

/// Read + validate a probability knob from the process environment.
pub fn prob_var(key: &str) -> Option<f64> {
    parse_prob(key, raw(key).as_deref())
}

/// Read + validate a boolean knob from the process environment.
pub fn flag_var(key: &str) -> Option<bool> {
    parse_flag(key, raw(key).as_deref())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_accepts_and_trims() {
        assert_eq!(parse_u64("K", Some(" 42 ")), Some(42));
        assert_eq!(parse_u64("K", None), None);
    }

    #[test]
    fn u64_rejects_malformed() {
        assert_eq!(parse_u64("K", Some("not-a-number")), None);
        assert_eq!(parse_u64("K", Some("-3")), None);
        assert_eq!(parse_u64("K", Some("1.5")), None);
    }

    #[test]
    fn u32_range_checked() {
        assert_eq!(parse_u32("K", Some("7")), Some(7));
        assert_eq!(parse_u32("K", Some("4294967296")), None);
    }

    #[test]
    fn prob_range_checked() {
        assert_eq!(parse_prob("K", Some("0")), Some(0.0));
        assert_eq!(parse_prob("K", Some("1")), Some(1.0));
        assert_eq!(parse_prob("K", Some("0.02")), Some(0.02));
        assert_eq!(parse_prob("K", Some("1.5")), None);
        assert_eq!(parse_prob("K", Some("-0.1")), None);
        assert_eq!(parse_prob("K", Some("NaN")), None);
        assert_eq!(parse_prob("K", Some("inf")), None);
        assert_eq!(parse_prob("K", Some("lots")), None);
    }

    #[test]
    fn flag_spellings() {
        for yes in ["1", "true", "ON", "Yes"] {
            assert_eq!(parse_flag("K", Some(yes)), Some(true));
        }
        for no in ["0", "false", "OFF", "No"] {
            assert_eq!(parse_flag("K", Some(no)), Some(false));
        }
        // Historical contract: a set-but-unrecognized value reads as off
        // (it still *overrides* any config default — Some, not None).
        assert_eq!(parse_flag("K", Some("maybe")), Some(false));
        assert_eq!(parse_flag("K", None), None);
    }

    #[test]
    fn warn_once_does_not_panic_on_repeat() {
        // The dedup set is process-global; just exercise the path twice.
        assert_eq!(parse_u64("PREMA_TEST_WARN_TWICE", Some("x")), None);
        assert_eq!(parse_u64("PREMA_TEST_WARN_TWICE", Some("x")), None);
    }
}
