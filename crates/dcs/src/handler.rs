//! Handler tables for active-message dispatch.

use crate::envelope::{Envelope, HandlerId};
use std::collections::HashMap;

/// A registered message handler: runs at the destination with exclusive
/// access to the node state `S`.
pub type Handler<S> = Box<dyn Fn(&mut S, Envelope) + Send>;

/// Maps [`HandlerId`]s to handlers over node state `S`.
///
/// As with classic Active Messages, all ranks must register the same handlers
/// under the same ids; [`HandlerTable::add`] assigns sequential ids so
/// identical registration order yields identical tables everywhere.
pub struct HandlerTable<S> {
    map: HashMap<HandlerId, Handler<S>>,
    next: u32,
}

impl<S> Default for HandlerTable<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S> HandlerTable<S> {
    /// Empty table.
    pub fn new() -> Self {
        HandlerTable {
            map: HashMap::new(),
            next: 0,
        }
    }

    /// Register a handler under a caller-chosen id. Panics on duplicates —
    /// a duplicate id is always a wiring bug.
    pub fn register(&mut self, id: HandlerId, f: impl Fn(&mut S, Envelope) + Send + 'static) {
        let prev = self.map.insert(id, Box::new(f));
        assert!(prev.is_none(), "handler id {id:?} registered twice");
    }

    /// Register a handler under the next sequential application id.
    pub fn add(&mut self, f: impl Fn(&mut S, Envelope) + Send + 'static) -> HandlerId {
        let id = HandlerId(self.next);
        self.next += 1;
        assert!(!id.is_system(), "application handler ids exhausted");
        self.register(id, f);
        id
    }

    /// Run the handler an envelope names. Returns `false` (dropping the
    /// message) if no such handler exists.
    pub fn dispatch(&self, state: &mut S, env: Envelope) -> bool {
        match self.map.get(&env.handler) {
            Some(h) => {
                h(state, env);
                true
            }
            None => false,
        }
    }

    /// Whether `id` has a registered handler.
    pub fn contains(&self, id: HandlerId) -> bool {
        self.map.contains_key(&id)
    }

    /// Number of registered handlers.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::Tag;
    use bytes::Bytes;

    fn env(handler: HandlerId) -> Envelope {
        Envelope {
            src: 0,
            dst: 0,
            handler,
            tag: Tag::App,
            payload: Bytes::new(),
        }
    }

    #[test]
    fn add_assigns_sequential_ids_and_dispatches() {
        let mut t: HandlerTable<Vec<u32>> = HandlerTable::new();
        let a = t.add(|s, _| s.push(1));
        let b = t.add(|s, _| s.push(2));
        assert_eq!(a, HandlerId(0));
        assert_eq!(b, HandlerId(1));
        let mut s = Vec::new();
        assert!(t.dispatch(&mut s, env(b)));
        assert!(t.dispatch(&mut s, env(a)));
        assert_eq!(s, vec![2, 1]);
    }

    #[test]
    fn unknown_handler_returns_false() {
        let t: HandlerTable<()> = HandlerTable::new();
        assert!(!t.dispatch(&mut (), env(HandlerId(9))));
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let mut t: HandlerTable<()> = HandlerTable::new();
        t.register(HandlerId(5), |_, _| {});
        t.register(HandlerId(5), |_, _| {});
    }

    #[test]
    fn handler_reads_payload() {
        let mut t: HandlerTable<u64> = HandlerTable::new();
        let id = t.add(|s, e| {
            *s = u64::from_le_bytes(e.payload[..8].try_into().unwrap());
        });
        let mut s = 0u64;
        let mut e = env(id);
        e.payload = Bytes::copy_from_slice(&99u64.to_le_bytes());
        t.dispatch(&mut s, e);
        assert_eq!(s, 99);
    }
}
