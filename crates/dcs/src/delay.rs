//! A latency-injecting transport decorator.
//!
//! The in-process [`LocalFabric`](crate::LocalFabric) delivers instantly,
//! which hides the message races a real network creates (migrations landing
//! after the messages that chased them, late location updates, …).
//! [`DelayTransport`] wraps any [`Transport`] and holds each incoming
//! envelope for a fixed latency, preserving per-pair FIFO order — so
//! threaded tests can reproduce wide-area interleavings deterministically
//! enough to assert on.

use crate::envelope::{Envelope, Rank};
use crate::transport::Transport;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Wraps a transport, delaying the *visibility* of received envelopes by a
/// fixed latency. Sending is unchanged (the latency is applied receiver-side,
/// which yields the same observable one-way delay).
pub struct DelayTransport<T: Transport> {
    inner: T,
    latency: Duration,
    /// Envelopes pulled off the wire, with the instant they become visible.
    holding: RefCell<VecDeque<(Instant, Envelope)>>,
    /// Number of times `recv_timeout` went to sleep or blocked on the inner
    /// transport. Exposed so tests can assert the wait is event-driven, not
    /// a busy-spin.
    wakeups: Cell<u64>,
}

impl<T: Transport> DelayTransport<T> {
    /// Add `latency` of one-way delay to `inner`.
    pub fn new(inner: T, latency: Duration) -> Self {
        DelayTransport {
            inner,
            latency,
            holding: RefCell::new(VecDeque::new()),
            wakeups: Cell::new(0),
        }
    }

    /// How many sleep/block cycles `recv_timeout` has performed so far.
    pub fn wakeup_count(&self) -> u64 {
        self.wakeups.get()
    }

    /// Pull everything available off the inner transport into the holding
    /// pen, stamping visibility times.
    fn ingest(&self) {
        let mut holding = self.holding.borrow_mut();
        while let Some(env) = self.inner.try_recv() {
            holding.push_back((Instant::now() + self.latency, env));
        }
    }
}

impl<T: Transport> Transport for DelayTransport<T> {
    fn rank(&self) -> Rank {
        self.inner.rank()
    }

    fn nprocs(&self) -> usize {
        self.inner.nprocs()
    }

    fn send(&self, env: Envelope) {
        self.inner.send(env);
    }

    fn try_recv(&self) -> Option<Envelope> {
        self.ingest();
        let mut holding = self.holding.borrow_mut();
        match holding.front() {
            Some((visible, _)) if *visible <= Instant::now() => holding.pop_front().map(|(_, e)| e),
            _ => None,
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Option<Envelope> {
        let deadline = crate::transport::saturating_deadline(timeout);
        loop {
            if let Some(env) = self.try_recv() {
                return Some(env);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            match self.holding.borrow().front().map(|(visible, _)| *visible) {
                // Nothing in flight: block on the inner transport's condvar
                // until something arrives or the deadline passes. An arrival
                // still has to age `latency` before delivery, so there is
                // nothing to wake up for in between.
                None => {
                    self.wakeups.set(self.wakeups.get() + 1);
                    if let Some(env) = self.inner.recv_timeout(deadline - now) {
                        self.holding
                            .borrow_mut()
                            .push_back((Instant::now() + self.latency, env));
                    }
                }
                // A message is aging: sleep exactly until it matures (or the
                // deadline, whichever is sooner). All latencies are equal, so
                // the front of the queue is always the earliest maturity —
                // nothing behind it can become visible first.
                Some(next) => {
                    self.wakeups.set(self.wakeups.get() + 1);
                    let pause = next.min(deadline).saturating_duration_since(now);
                    if !pause.is_zero() {
                        std::thread::sleep(pause);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::{HandlerId, Tag};
    use crate::transport::LocalFabric;
    use bytes::Bytes;

    fn env(dst: Rank, n: u32) -> Envelope {
        Envelope {
            src: 0,
            dst,
            handler: HandlerId(n),
            tag: Tag::App,
            payload: Bytes::new(),
        }
    }

    #[test]
    fn messages_are_invisible_until_latency_elapses() {
        let mut eps = LocalFabric::new(2);
        let b = DelayTransport::new(eps.pop().unwrap(), Duration::from_millis(30));
        let a = eps.pop().unwrap();
        a.send(env(1, 1));
        // Immediately: held.
        assert!(b.try_recv().is_none());
        std::thread::sleep(Duration::from_millis(40));
        assert!(b.try_recv().is_some());
    }

    #[test]
    fn fifo_is_preserved_through_the_delay() {
        let mut eps = LocalFabric::new(2);
        let b = DelayTransport::new(eps.pop().unwrap(), Duration::from_millis(5));
        let a = eps.pop().unwrap();
        for i in 0..20 {
            a.send(env(1, i));
        }
        let mut got = Vec::new();
        while got.len() < 20 {
            if let Some(e) = b.recv_timeout(Duration::from_millis(100)) {
                got.push(e.handler.0);
            }
        }
        assert_eq!(got, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn recv_timeout_honors_deadline() {
        let mut eps = LocalFabric::new(2);
        let b = DelayTransport::new(eps.pop().unwrap(), Duration::from_millis(50));
        let _a = eps.remove(0);
        let start = Instant::now();
        assert!(b.recv_timeout(Duration::from_millis(20)).is_none());
        let waited = start.elapsed();
        assert!(waited >= Duration::from_millis(18) && waited < Duration::from_millis(200));
    }

    #[test]
    fn long_latency_wait_is_not_a_busy_spin() {
        let mut eps = LocalFabric::new(2);
        let b = DelayTransport::new(eps.pop().unwrap(), Duration::from_millis(60));
        let a = eps.pop().unwrap();
        a.send(env(1, 1));
        let got = b
            .recv_timeout(Duration::from_secs(2))
            .expect("must deliver after latency");
        assert_eq!(got.handler, HandlerId(1));
        // One ingest finds the message, then one sleep carries the wait all
        // the way to maturity. The old 500µs-clamped loop needed ~120 wakeups
        // to cross 60ms; allow a small margin for spurious early wakeups.
        assert!(
            b.wakeup_count() <= 5,
            "busy-spin: {} wakeups to cross a 60ms latency",
            b.wakeup_count()
        );
    }

    #[test]
    fn empty_wait_blocks_instead_of_polling() {
        let mut eps = LocalFabric::new(2);
        let b = DelayTransport::new(eps.pop().unwrap(), Duration::from_millis(5));
        let _a = eps.remove(0);
        // No traffic at all: the whole timeout should be one blocking wait on
        // the inner transport, not a tick loop.
        assert!(b.recv_timeout(Duration::from_millis(80)).is_none());
        assert!(
            b.wakeup_count() <= 3,
            "busy-spin: {} wakeups across an idle 80ms wait",
            b.wakeup_count()
        );
    }

    #[test]
    fn zero_latency_behaves_like_inner() {
        let mut eps = LocalFabric::new(2);
        let b = DelayTransport::new(eps.pop().unwrap(), Duration::ZERO);
        let a = eps.pop().unwrap();
        a.send(env(1, 9));
        assert_eq!(
            b.recv_timeout(Duration::from_millis(50)).unwrap().handler,
            HandlerId(9)
        );
    }
}
