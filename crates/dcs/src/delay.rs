//! A latency-injecting transport decorator.
//!
//! The in-process [`LocalFabric`](crate::LocalFabric) delivers instantly,
//! which hides the message races a real network creates (migrations landing
//! after the messages that chased them, late location updates, …).
//! [`DelayTransport`] wraps any [`Transport`] and holds each incoming
//! envelope for a fixed latency, preserving per-pair FIFO order — so
//! threaded tests can reproduce wide-area interleavings deterministically
//! enough to assert on.

use crate::envelope::{Envelope, Rank};
use crate::transport::Transport;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Wraps a transport, delaying the *visibility* of received envelopes by a
/// fixed latency. Sending is unchanged (the latency is applied receiver-side,
/// which yields the same observable one-way delay).
pub struct DelayTransport<T: Transport> {
    inner: T,
    latency: Duration,
    /// Envelopes pulled off the wire, with the instant they become visible.
    holding: RefCell<VecDeque<(Instant, Envelope)>>,
}

impl<T: Transport> DelayTransport<T> {
    /// Add `latency` of one-way delay to `inner`.
    pub fn new(inner: T, latency: Duration) -> Self {
        DelayTransport {
            inner,
            latency,
            holding: RefCell::new(VecDeque::new()),
        }
    }

    /// Pull everything available off the inner transport into the holding
    /// pen, stamping visibility times.
    fn ingest(&self) {
        let mut holding = self.holding.borrow_mut();
        while let Some(env) = self.inner.try_recv() {
            holding.push_back((Instant::now() + self.latency, env));
        }
    }
}

impl<T: Transport> Transport for DelayTransport<T> {
    fn rank(&self) -> Rank {
        self.inner.rank()
    }

    fn nprocs(&self) -> usize {
        self.inner.nprocs()
    }

    fn send(&self, env: Envelope) {
        self.inner.send(env);
    }

    fn try_recv(&self) -> Option<Envelope> {
        self.ingest();
        let mut holding = self.holding.borrow_mut();
        match holding.front() {
            Some((visible, _)) if *visible <= Instant::now() => holding.pop_front().map(|(_, e)| e),
            _ => None,
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Option<Envelope> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(env) = self.try_recv() {
                return Some(env);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            // Sleep until either the next held message matures or a short
            // poll tick, whichever is sooner.
            let next = self
                .holding
                .borrow()
                .front()
                .map(|(visible, _)| *visible)
                .unwrap_or(now + Duration::from_micros(200));
            let wake = next.min(deadline);
            let pause = wake
                .saturating_duration_since(now)
                .min(Duration::from_micros(500));
            std::thread::sleep(pause.max(Duration::from_micros(10)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::{HandlerId, Tag};
    use crate::transport::LocalFabric;
    use bytes::Bytes;

    fn env(dst: Rank, n: u32) -> Envelope {
        Envelope {
            src: 0,
            dst,
            handler: HandlerId(n),
            tag: Tag::App,
            payload: Bytes::new(),
        }
    }

    #[test]
    fn messages_are_invisible_until_latency_elapses() {
        let mut eps = LocalFabric::new(2);
        let b = DelayTransport::new(eps.pop().unwrap(), Duration::from_millis(30));
        let a = eps.pop().unwrap();
        a.send(env(1, 1));
        // Immediately: held.
        assert!(b.try_recv().is_none());
        std::thread::sleep(Duration::from_millis(40));
        assert!(b.try_recv().is_some());
    }

    #[test]
    fn fifo_is_preserved_through_the_delay() {
        let mut eps = LocalFabric::new(2);
        let b = DelayTransport::new(eps.pop().unwrap(), Duration::from_millis(5));
        let a = eps.pop().unwrap();
        for i in 0..20 {
            a.send(env(1, i));
        }
        let mut got = Vec::new();
        while got.len() < 20 {
            if let Some(e) = b.recv_timeout(Duration::from_millis(100)) {
                got.push(e.handler.0);
            }
        }
        assert_eq!(got, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn recv_timeout_honors_deadline() {
        let mut eps = LocalFabric::new(2);
        let b = DelayTransport::new(eps.pop().unwrap(), Duration::from_millis(50));
        let _a = eps.remove(0);
        let start = Instant::now();
        assert!(b.recv_timeout(Duration::from_millis(20)).is_none());
        let waited = start.elapsed();
        assert!(waited >= Duration::from_millis(18) && waited < Duration::from_millis(200));
    }

    #[test]
    fn zero_latency_behaves_like_inner() {
        let mut eps = LocalFabric::new(2);
        let b = DelayTransport::new(eps.pop().unwrap(), Duration::ZERO);
        let a = eps.pop().unwrap();
        a.send(env(1, 9));
        assert_eq!(
            b.recv_timeout(Duration::from_millis(50)).unwrap().handler,
            HandlerId(9)
        );
    }
}
