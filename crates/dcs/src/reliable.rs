//! An opt-in reliable-delivery transport decorator.
//!
//! [`ReliableTransport`] restores the wire contract the protocols above DCS
//! were written against — every message delivered exactly once, per-pair
//! FIFO — on top of a transport that may drop, duplicate, reorder, or delay
//! (typically a [`ChaosTransport`](crate::ChaosTransport), ultimately a real
//! unreliable interconnect). The mechanism is the classic one:
//!
//! * every outgoing envelope is wrapped in a **data frame** carrying a
//!   per-destination sequence number and kept until acknowledged;
//! * receivers deliver frames in sequence order per source, buffering
//!   out-of-order arrivals and **deduplicating** by sequence number, so
//!   duplicated frames (including retransmissions that crossed an ACK) are
//!   idempotent;
//! * receivers answer every data frame with a **cumulative ACK** (the next
//!   sequence number they expect), and senders retransmit unacknowledged
//!   frames on a tick-counted timeout with exponential backoff.
//!
//! Time is counted in *receive polls* (ticks), not wall time: the runtime's
//! polling loops call `try_recv`/`recv_timeout` continuously, so ticks
//! advance whenever the rank is making progress, and the retransmit schedule
//! is independent of wall-clock jitter.
//!
//! Tick time has one failure mode a real lossy socket exposes: a rank
//! blocked in one long `recv_timeout` would advance **no** ticks until
//! unrelated traffic arrived, so a lost frame would never be retransmitted
//! under silence — precisely when retransmission is the only way forward.
//! `recv_timeout` therefore never sleeps longer than [`RETRY_SLICE`] while
//! any frame is unacknowledged: each expired slice advances the tick count
//! explicitly, converting silent wall-clock time into ticks at a bounded
//! rate (`RETRY_SLICE` per tick) so backoff fires even when the wire is
//! one-way dead. Once everything is acknowledged the sleep reverts to the
//! full remaining timeout (event-driven, no polling tax).
//!
//! ACK frames are sent raw (not themselves sequence-numbered): a lost ACK
//! merely causes a retransmission, which the dedup layer absorbs.

use crate::envelope::{Envelope, HandlerId, Rank, Tag};
use crate::pool;
use crate::transport::Transport;
use crate::wire::{WireReader, WireWriter};
use prema_trace::{TraceEvent, Tracer};
use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::time::{Duration, Instant};

/// Reliable-layer data frame: wraps one application/system envelope with a
/// per-destination sequence number.
pub const H_REL_DATA: HandlerId = HandlerId(HandlerId::SYSTEM_BASE + 48);
/// Reliable-layer cumulative acknowledgement.
pub const H_REL_ACK: HandlerId = HandlerId(HandlerId::SYSTEM_BASE + 49);

// Wire schema of the two reliable-layer frames, kept as named encode/decode
// pairs so `cargo xtask analyze` can check the sequences against each other.

/// Encode a data frame: seq, inner handler, inner tag, inner payload.
///
/// Pooled: frame buffers cycle constantly under load (wrapped at send,
/// dropped at ACK), the exact pattern the freelist serves.
fn encode_data(seq: u64, env: &Envelope) -> bytes::Bytes {
    WireWriter::pooled(20 + env.payload.len())
        .u64(seq)
        .u32(env.handler.0)
        .u32(match env.tag {
            Tag::App => 0,
            Tag::System => 1,
        })
        .bytes(&env.payload)
        .finish()
}

/// Decode a data frame back to (seq, handler, tag, payload).
fn decode_data(payload: bytes::Bytes) -> Option<(u64, HandlerId, Tag, bytes::Bytes)> {
    let mut r = WireReader::new(payload);
    let seq = r.try_u64()?;
    let handler = HandlerId(r.try_u32()?);
    let tag = match r.try_u32()? {
        0 => Tag::App,
        _ => Tag::System,
    };
    let inner = r.try_bytes()?;
    Some((seq, handler, tag, inner))
}

/// Encode a cumulative ACK: the next expected sequence number.
fn encode_ack(expected: u64) -> bytes::Bytes {
    WireWriter::pooled(8).u64(expected).finish()
}

/// Decode a cumulative ACK.
fn decode_ack(payload: bytes::Bytes) -> Option<u64> {
    WireReader::new(payload).try_u64()
}

/// Upper bound on one `recv_timeout` sleep while any frame is
/// unacknowledged: each expired slice advances one tick, so under total
/// silence the retry clock runs at one tick per `RETRY_SLICE` of wall time
/// (e.g. the default [`RetryConfig`]'s 64-tick first retransmit fires after
/// ~32 ms of silence). Irrelevant once all-acked — the sleep then spans the
/// whole remaining timeout.
pub const RETRY_SLICE: Duration = Duration::from_micros(500);

/// Retransmission schedule, in receive-poll ticks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryConfig {
    /// Ticks to wait for an ACK before the first retransmission.
    pub retry_ticks: u64,
    /// Backoff cap: the interval doubles per retry up to
    /// `retry_ticks << max_backoff_shift`.
    pub max_backoff_shift: u32,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            retry_ticks: 64,
            max_backoff_shift: 6,
        }
    }
}

/// Counters for the recovery machinery, snapshot via
/// [`ReliableTransport::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReliableStats {
    /// Data frames retransmitted.
    pub retries: u64,
    /// Duplicate data frames suppressed by sequence dedup.
    pub duplicates: u64,
    /// In-order data frames delivered up the stack.
    pub delivered: u64,
    /// Out-of-order frames parked until the gap filled.
    pub buffered: u64,
    /// ACK frames sent.
    pub acks_sent: u64,
    /// Frames with undecodable payloads dropped defensively.
    pub malformed: u64,
    /// Retransmissions that reused the stored pre-encoded frame instead of
    /// re-encoding the envelope. Frames are wrapped exactly once (into a
    /// pooled buffer) at `send` and kept until acknowledged, so this equals
    /// `retries` — the counter pins that invariant observably.
    pub retx_reencode_avoided: u64,
}

/// Per-destination sender book-keeping.
#[derive(Default)]
struct SendState {
    /// Next sequence number to assign.
    next_seq: u64,
    /// Unacknowledged frames, by sequence number (stored pre-wrapped so a
    /// retransmit is a plain `send`).
    unacked: BTreeMap<u64, Envelope>,
    /// Consecutive retransmission rounds without ACK progress.
    attempts: u32,
    /// Tick at which the next retransmission fires.
    next_retry: u64,
}

/// Per-source receiver book-keeping.
#[derive(Default)]
struct RecvState {
    /// Next sequence number expected from this source.
    expected: u64,
    /// Frames that arrived ahead of the gap, by sequence number.
    ooo: BTreeMap<u64, Envelope>,
}

struct ReliableState {
    tick: u64,
    send: Vec<SendState>,
    recv: Vec<RecvState>,
    /// In-order envelopes ready for delivery up the stack.
    ready: VecDeque<Envelope>,
    stats: ReliableStats,
}

/// The reliable-delivery decorator. See the module docs for the protocol.
pub struct ReliableTransport<T: Transport> {
    inner: T,
    retry: RetryConfig,
    state: RefCell<ReliableState>,
    tracer: Tracer,
}

impl<T: Transport> ReliableTransport<T> {
    /// Wrap `inner` with the default retransmission schedule.
    pub fn new(inner: T) -> Self {
        Self::with_retry(inner, RetryConfig::default())
    }

    /// Wrap `inner` with an explicit retransmission schedule.
    pub fn with_retry(inner: T, retry: RetryConfig) -> Self {
        let n = inner.nprocs();
        ReliableTransport {
            inner,
            retry,
            state: RefCell::new(ReliableState {
                tick: 0,
                send: (0..n).map(|_| SendState::default()).collect(),
                recv: (0..n).map(|_| RecvState::default()).collect(),
                ready: VecDeque::new(),
                stats: ReliableStats::default(),
            }),
            tracer: Tracer::off(),
        }
    }

    /// Attach a tracer so retransmissions and suppressed duplicates show up
    /// in the event stream.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Snapshot the recovery counters.
    pub fn stats(&self) -> ReliableStats {
        self.state.borrow().stats
    }

    /// Whether every frame sent so far has been acknowledged.
    pub fn all_acked(&self) -> bool {
        self.state
            .borrow()
            .send
            .iter()
            .all(|s| s.unacked.is_empty())
    }

    fn wrap(&self, env: &Envelope, seq: u64) -> Envelope {
        let payload = encode_data(seq, env);
        Envelope {
            src: self.inner.rank(),
            dst: env.dst,
            handler: H_REL_DATA,
            // The frame shares the inner tag so chaos layers that filter by
            // tag see representative traffic; the receiver restores the
            // decoded tag anyway.
            tag: env.tag,
            payload,
        }
    }

    fn send_ack(&self, state: &mut ReliableState, dst: Rank) {
        let expected = state.recv[dst].expected;
        state.stats.acks_sent += 1;
        self.inner.send(Envelope {
            src: self.inner.rank(),
            dst,
            handler: H_REL_ACK,
            tag: Tag::System,
            payload: encode_ack(expected),
        });
    }

    /// Process one raw envelope from the inner transport.
    fn handle_incoming(&self, state: &mut ReliableState, env: Envelope) {
        let src = env.src;
        if env.handler == H_REL_ACK {
            let Some(ack) = decode_ack(env.payload) else {
                state.stats.malformed += 1;
                return;
            };
            let tick = state.tick;
            let s = &mut state.send[src];
            let keep = s.unacked.split_off(&ack);
            let acked = std::mem::replace(&mut s.unacked, keep);
            if !acked.is_empty() {
                // Progress: reset the backoff clock.
                s.attempts = 0;
                s.next_retry = tick + self.retry.retry_ticks;
            }
            // Acknowledged frames are done for good — hand their buffers
            // back to the pool (best-effort: a buffer still shared with an
            // in-flight retransmit clone just drops normally).
            for (_, frame) in acked {
                pool::recycle(frame.payload);
            }
            return;
        }
        if env.handler != H_REL_DATA {
            // Raw traffic from an unwrapped peer (or a layer below): pass it
            // through untouched rather than wedging interop.
            state.ready.push_back(env);
            return;
        }
        let dst = env.dst;
        let decoded = decode_data(env.payload).map(|(seq, handler, tag, payload)| {
            (
                seq,
                Envelope {
                    src,
                    dst,
                    handler,
                    tag,
                    payload,
                },
            )
        });
        let Some((seq, inner_env)) = decoded else {
            state.stats.malformed += 1;
            let handler = env.handler.0;
            self.tracer
                .emit(|| TraceEvent::DcsDropped { peer: src, handler });
            return;
        };
        let expected = state.recv[src].expected;
        if seq < expected || state.recv[src].ooo.contains_key(&seq) {
            // Duplicate (a retransmission that crossed our ACK, or injected
            // by the wire): suppress and re-ACK so the sender settles.
            state.stats.duplicates += 1;
            let handler = inner_env.handler.0;
            self.tracer
                .emit(|| TraceEvent::DcsDuplicate { peer: src, handler });
            self.send_ack(state, src);
            return;
        }
        if seq > expected {
            // A gap: park until the missing frames arrive. The repeated
            // cumulative ACK tells the sender where the gap starts.
            state.recv[src].ooo.insert(seq, inner_env);
            state.stats.buffered += 1;
            self.send_ack(state, src);
            return;
        }
        // In order: deliver, then drain any now-contiguous parked frames.
        state.recv[src].expected += 1;
        state.ready.push_back(inner_env);
        state.stats.delivered += 1;
        loop {
            let want = state.recv[src].expected;
            let Some(next) = state.recv[src].ooo.remove(&want) else {
                break;
            };
            state.recv[src].expected += 1;
            state.ready.push_back(next);
            state.stats.delivered += 1;
        }
        self.send_ack(state, src);
    }

    /// Advance the tick and fire any due retransmissions.
    fn tick(&self, state: &mut ReliableState) {
        state.tick += 1;
        let tick = state.tick;
        for dst in 0..state.send.len() {
            let retry = {
                let s = &mut state.send[dst];
                if s.unacked.is_empty() || tick < s.next_retry {
                    continue;
                }
                s.attempts += 1;
                let shift = (s.attempts).min(self.retry.max_backoff_shift);
                s.next_retry = tick + (self.retry.retry_ticks << shift);
                s.attempts
            };
            // Resend every unacked frame in sequence order. Clone out to end
            // the state borrow before touching the wire.
            let frames: Vec<(u64, Envelope)> = state.send[dst]
                .unacked
                .iter()
                .map(|(s, e)| (*s, e.clone()))
                .collect();
            for (seq, frame) in frames {
                state.stats.retries += 1;
                // The frame was encoded once at `send` and stored wrapped;
                // this resend is a clone of that buffer, not a re-encode.
                state.stats.retx_reencode_avoided += 1;
                self.tracer.emit(|| TraceEvent::DcsRetry {
                    peer: dst,
                    seq,
                    attempt: retry,
                });
                self.inner.send(frame);
            }
        }
    }
}

impl<T: Transport> Transport for ReliableTransport<T> {
    fn rank(&self) -> Rank {
        self.inner.rank()
    }

    fn nprocs(&self) -> usize {
        self.inner.nprocs()
    }

    fn send(&self, env: Envelope) {
        let mut state = self.state.borrow_mut();
        let tick = state.tick;
        let s = &mut state.send[env.dst];
        let seq = s.next_seq;
        s.next_seq += 1;
        let frame = self.wrap(&env, seq);
        if s.unacked.is_empty() {
            // First outstanding frame to this peer: arm the retry clock.
            s.next_retry = tick + self.retry.retry_ticks;
        }
        s.unacked.insert(seq, frame.clone());
        self.inner.send(frame);
    }

    fn try_recv(&self) -> Option<Envelope> {
        let mut state = self.state.borrow_mut();
        self.tick(&mut state);
        while let Some(env) = self.inner.try_recv() {
            self.handle_incoming(&mut state, env);
        }
        state.ready.pop_front()
    }

    fn recv_timeout(&self, timeout: Duration) -> Option<Envelope> {
        let deadline = crate::transport::saturating_deadline(timeout);
        loop {
            if let Some(env) = self.try_recv() {
                return Some(env);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            // Wait in bounded slices while frames are unacknowledged, so
            // ticks keep advancing and due retransmissions fire even under
            // total silence (see the module docs: a partitioned peer sends
            // no ACKs and no data, so *only* the slice expiry can drive the
            // retry clock). Arrivals (data or ACK) cut the slice short via
            // the inner condvar; once all-acked, sleep the full remainder.
            let outstanding = !self.all_acked_locked();
            let wait = if outstanding {
                (deadline - now).min(RETRY_SLICE)
            } else {
                deadline - now
            };
            match self.inner.recv_timeout(wait) {
                Some(env) => {
                    let mut state = self.state.borrow_mut();
                    self.handle_incoming(&mut state, env);
                }
                // Slice expired with nothing on the wire: advance the tick
                // explicitly (and fire any due retransmissions) right here,
                // so the retry clock never depends on the next `try_recv`
                // happening — the guarantee the module docs promise.
                None if outstanding => {
                    let mut state = self.state.borrow_mut();
                    self.tick(&mut state);
                }
                None => {}
            }
        }
    }
}

impl<T: Transport> ReliableTransport<T> {
    fn all_acked_locked(&self) -> bool {
        self.state
            .borrow()
            .send
            .iter()
            .all(|s| s.unacked.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::{ChaosConfig, ChaosHandle, ChaosTransport};
    use crate::transport::LocalFabric;
    use bytes::Bytes;

    fn env(src: Rank, dst: Rank, n: u32) -> Envelope {
        Envelope {
            src,
            dst,
            handler: HandlerId(n),
            tag: Tag::App,
            payload: Bytes::from(vec![n as u8; 3]),
        }
    }

    /// Two ranks, both reliable over chaos, sharing one handle.
    fn reliable_pair(
        cfg: ChaosConfig,
    ) -> (
        ReliableTransport<ChaosTransport<crate::transport::LocalEndpoint>>,
        ReliableTransport<ChaosTransport<crate::transport::LocalEndpoint>>,
        ChaosHandle,
    ) {
        let mut eps = LocalFabric::new(2);
        let handle = ChaosHandle::new();
        let retry = RetryConfig {
            retry_ticks: 8,
            max_backoff_shift: 3,
        };
        let b = ReliableTransport::with_retry(
            ChaosTransport::new(eps.pop().unwrap(), cfg, handle.clone()),
            retry,
        );
        let a = ReliableTransport::with_retry(
            ChaosTransport::new(eps.pop().unwrap(), cfg, handle.clone()),
            retry,
        );
        (a, b, handle)
    }

    #[test]
    fn lossless_wire_delivers_in_order() {
        let (a, b, _) = reliable_pair(ChaosConfig::quiet(1));
        for i in 0..50 {
            a.send(env(0, 1, i));
        }
        let mut got = Vec::new();
        for _ in 0..200 {
            if let Some(e) = b.try_recv() {
                got.push(e.handler.0);
            }
            let _ = a.try_recv(); // drain ACKs, advance ticks
        }
        assert_eq!(got, (0..50).collect::<Vec<_>>());
        assert_eq!(b.stats().duplicates, 0);
        assert!(a.all_acked());
    }

    #[test]
    fn heavy_chaos_still_delivers_exactly_once_in_order() {
        // 20% loss + dup + reorder: brutal wire, perfect stream above.
        let (a, b, _) = reliable_pair(ChaosConfig::adversarial(0xBAD5EED, 0.20));
        for i in 0..100 {
            a.send(env(0, 1, i));
        }
        let mut got = Vec::new();
        let mut polls = 0;
        while got.len() < 100 && polls < 200_000 {
            polls += 1;
            if let Some(e) = b.try_recv() {
                assert_eq!(e.src, 0);
                got.push(e.handler.0);
            }
            let _ = a.try_recv();
        }
        assert_eq!(got, (0..100).collect::<Vec<_>>(), "after {polls} polls");
        let stats = a.stats();
        assert!(
            stats.retries > 0,
            "loss must have forced retries: {stats:?}"
        );
        // Every retransmission reused the stored pre-encoded buffer.
        assert_eq!(stats.retx_reencode_avoided, stats.retries, "{stats:?}");
        assert!(a.all_acked(), "all frames eventually acknowledged");
    }

    /// Composition with coalescing: a batch frame is one envelope, so the
    /// reliable layer gives it one sequence number and a drop retransmits
    /// the *whole frame as a unit* — its constituents arrive together, in
    /// order, exactly once, with no decorator-side batching knowledge.
    #[test]
    fn dropped_batch_frame_retransmits_as_a_unit() {
        use crate::batch;
        use std::collections::VecDeque;
        let mut cfg = ChaosConfig::quiet(11);
        cfg.drop_p = 0.5;
        let (a, b, _) = reliable_pair(cfg);
        let msgs: Vec<Envelope> = (0..8).map(|i| env(0, 1, i)).collect();
        a.send_batch(1, msgs);
        // One wrapped frame on the wire for the whole batch.
        assert_eq!(a.stats().retries, 0);
        let mut out = VecDeque::new();
        let mut polls = 0;
        // Poll until the sender settles too: the last ACK also has to
        // survive the 50%-loss wire (via duplicate-triggered re-ACKs).
        while (out.len() < 8 || !a.all_acked()) && polls < 400_000 {
            polls += 1;
            a.try_recv_batch(&mut VecDeque::new());
            b.try_recv_batch(&mut out);
        }
        // All eight constituents arrive (across however many retransmits the
        // seeded wire forced), contiguously and in staging order.
        let ids: Vec<u32> = out.iter().map(|e| e.handler.0).collect();
        assert_eq!(ids, (0..8).collect::<Vec<_>>(), "after {polls} polls");
        assert!(out.iter().all(|e| !batch::is_frame(e)));
        let stats = a.stats();
        assert_eq!(stats.retx_reencode_avoided, stats.retries);
        assert!(a.all_acked());
    }

    #[test]
    fn duplicates_are_suppressed_not_delivered() {
        let mut cfg = ChaosConfig::quiet(7);
        cfg.dup_p = 1.0; // every frame duplicated by the wire
        let (a, b, _) = reliable_pair(cfg);
        for i in 0..20 {
            a.send(env(0, 1, i));
        }
        let mut got = Vec::new();
        for _ in 0..400 {
            if let Some(e) = b.try_recv() {
                got.push(e.handler.0);
            }
            let _ = a.try_recv();
        }
        assert_eq!(got, (0..20).collect::<Vec<_>>());
        assert!(b.stats().duplicates >= 20, "{:?}", b.stats());
    }

    #[test]
    fn payload_and_metadata_survive_the_wrap() {
        let (a, b, _) = reliable_pair(ChaosConfig::quiet(3));
        a.send(Envelope {
            src: 0,
            dst: 1,
            handler: HandlerId(0xFEED),
            tag: Tag::System,
            payload: Bytes::from_static(b"payload bytes"),
        });
        let mut got = None;
        for _ in 0..50 {
            if let Some(e) = b.try_recv() {
                got = Some(e);
                break;
            }
        }
        let e = got.expect("frame must be delivered");
        assert_eq!(e.src, 0);
        assert_eq!(e.dst, 1);
        assert_eq!(e.handler, HandlerId(0xFEED));
        assert_eq!(e.tag, Tag::System);
        assert_eq!(&e.payload[..], b"payload bytes");
    }

    #[test]
    fn partition_then_heal_recovers_via_retransmit() {
        let (a, b, handle) = reliable_pair(ChaosConfig::quiet(9));
        handle.partition(0, 1);
        for i in 0..5 {
            a.send(env(0, 1, i));
        }
        // While severed: nothing arrives, frames stay unacked.
        for _ in 0..100 {
            assert!(b.try_recv().is_none());
            let _ = a.try_recv();
        }
        assert!(!a.all_acked());
        handle.heal(0, 1);
        let mut got = Vec::new();
        for _ in 0..20_000 {
            if let Some(e) = b.try_recv() {
                got.push(e.handler.0);
            }
            let _ = a.try_recv();
            if got.len() == 5 && a.all_acked() {
                break;
            }
        }
        assert_eq!(got, (0..5).collect::<Vec<_>>());
        assert!(a.all_acked());
    }

    /// Regression: retransmission must fire *inside* a single long
    /// `recv_timeout` with a silent (partitioned) peer. Tick time used to
    /// advance only on receive polls, so a rank parked in one blocking
    /// receive never retried — over a real socket, a lost frame stayed lost
    /// until unrelated traffic happened to arrive. The bounded
    /// [`RETRY_SLICE`] sleep now converts silence into ticks.
    #[test]
    fn retransmit_fires_during_one_long_recv_timeout() {
        let (a, _b, handle) = reliable_pair(ChaosConfig::quiet(13));
        handle.partition(0, 1);
        for i in 0..5 {
            a.send(env(0, 1, i));
        }
        assert_eq!(a.stats().retries, 0);
        // One blocking call, no other polls: the peer is severed, so no
        // data and no ACKs can cut the wait short. 200 ms ≫ the first
        // retry point (8 ticks × 500 µs slices = 4 ms with the test
        // RetryConfig), so backoff must have fired several times.
        assert!(a.recv_timeout(Duration::from_millis(200)).is_none());
        let stats = a.stats();
        assert!(
            stats.retries >= 5,
            "a silent peer must not stall the retry clock: {stats:?}"
        );
        assert!(!a.all_acked(), "partitioned frames stay unacked");
    }

    #[test]
    fn recv_timeout_duration_max_returns_on_arrival() {
        // Saturating-deadline regression (`Instant::now() + Duration::MAX`
        // panicked): the reliable layer must accept "block forever".
        let (a, b, _) = reliable_pair(ChaosConfig::quiet(14));
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            a.send(env(0, 1, 3));
            // Drain ACKs until the frame is acknowledged.
            for _ in 0..20_000 {
                let _ = a.try_recv();
                if a.all_acked() {
                    break;
                }
            }
        });
        let got = b.recv_timeout(Duration::MAX).expect("must deliver");
        assert_eq!(got.handler, HandlerId(3));
        h.join().expect("sender thread");
    }

    #[test]
    fn malformed_frame_is_dropped_not_fatal() {
        let (_a, b, _) = reliable_pair(ChaosConfig::quiet(2));
        // Hand-craft a truncated data frame straight onto the wire.
        b.inner.send(Envelope {
            src: 1,
            dst: 1,
            handler: H_REL_DATA,
            tag: Tag::App,
            payload: Bytes::from_static(&[1, 2, 3]),
        });
        for _ in 0..10 {
            assert!(b.try_recv().is_none());
        }
        assert_eq!(b.stats().malformed, 1);
    }

    #[test]
    fn recv_timeout_rides_out_loss() {
        let (a, b, _) = reliable_pair(ChaosConfig::adversarial(0x5EED, 0.30));
        let h = std::thread::spawn(move || {
            for i in 0..10 {
                a.send(env(0, 1, i));
            }
            // Keep the sender's ticks advancing so retransmits fire until
            // everything is acknowledged.
            for _ in 0..200_000 {
                let _ = a.try_recv();
                if a.all_acked() {
                    break;
                }
                std::hint::spin_loop();
            }
            a.all_acked()
        });
        let mut got = Vec::new();
        while got.len() < 10 {
            match b.recv_timeout(Duration::from_secs(10)) {
                Some(e) => got.push(e.handler.0),
                None => break,
            }
        }
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert!(h.join().expect("sender thread must not panic"));
    }
}
