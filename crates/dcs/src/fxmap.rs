//! Fx-hashed maps for runtime-internal keys.
//!
//! The MOL probes a directory keyed by 16-byte mobile pointers on every
//! message; `std`'s default SipHash is DoS-resistant but pays ~an order of
//! magnitude more per probe than needed for keys the runtime itself
//! constructs (mobile pointers, ranks, handler ids — never
//! attacker-controlled). This module is a pure-std implementation of the
//! `FxHasher` used by rustc and Firefox (a multiply-rotate word hash), with
//! `HashMap`/`HashSet` aliases; the whole workspace's runtime-internal maps
//! go through these aliases so the hasher choice lives in one place.
//!
//! Not for untrusted keys: Fx is trivially collidable by an adversary who
//! controls key bytes. Application-facing tables keyed by external input
//! should stay on `std`'s default hasher.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc FxHasher (64-bit).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc/Firefox Fx word hasher: `hash = (hash.rotl(5) ^ word) * SEED`
/// per input word. Fast and well-distributed for short, trusted keys.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Fold 8 bytes at a time; a short tail is zero-padded into one last
        // word. Length is not mixed in — fine for the fixed-width keys the
        // runtime uses (and `Hash` impls for variable-width types delimit
        // their fields themselves).
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_word(u64::from_le_bytes(buf));
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut buf = [0u8; 8];
            buf[..tail.len()].copy_from_slice(tail);
            self.add_word(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_word(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_word(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_word(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_word(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_word(i as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s (stateless, so maps hash
/// deterministically across runs — handy for reproducible experiments).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`]; for runtime-internal, trusted keys only.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`]; for runtime-internal, trusted keys only.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_hasher_instances() {
        assert_eq!(hash_of(&(3usize, 77u64)), hash_of(&(3usize, 77u64)));
        assert_eq!(hash_of(&"prema"), hash_of(&"prema"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        let a = hash_of(&(0usize, 1u64));
        let b = hash_of(&(0usize, 2u64));
        let c = hash_of(&(1usize, 1u64));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn byte_stream_tail_handling() {
        // Same prefix, differing only in a sub-word tail, must differ.
        let mut h1 = FxHasher::default();
        h1.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut h2 = FxHasher::default();
        h2.write(&[1, 2, 3, 4, 5, 6, 7, 8, 10]);
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(5, "five");
        m.insert(6, "six");
        assert_eq!(m.get(&5), Some(&"five"));
        assert_eq!(m.len(), 2);

        let mut s: FxHashSet<(usize, u64)> = FxHashSet::default();
        assert!(s.insert((1, 2)));
        assert!(!s.insert((1, 2)));
    }
}
