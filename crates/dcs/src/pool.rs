//! Thread-local buffer pool for payload and frame construction.
//!
//! The substrate's hot paths — `WireWriter` encoders, the [`crate::batch`]
//! framer, MOL migrate packing — each used to allocate a fresh `Vec<u8>` per
//! message. Under the small-message regime the §4.2 fast path targets, that
//! allocator churn is a measurable slice of per-message cost. This module
//! keeps a **thread-local freelist** of emptied buffers in power-of-two size
//! classes so an encoder can take a warm buffer, freeze it into a payload,
//! and (once the payload's last owner drops it) hand the allocation back.
//!
//! Design points:
//!
//! * **Thread-local, no locks.** Every rank runs on its own thread; a send
//!   path never contends on a shared pool. A buffer recycled on a different
//!   thread than it was taken from simply refills that thread's freelist —
//!   allocations are plain `Vec`s, owned by whoever holds them.
//! * **Power-of-two size classes**, 64 B ([`MIN_POOLED`]) through 64 KiB
//!   ([`MAX_POOLED`]). Oversized buffers are never pooled (a one-off huge
//!   migrate must not pin its allocation forever); undersized requests round
//!   up to the smallest class.
//! * **Bounded capacity** ([`PER_CLASS_CAP`] buffers per class): a burst can
//!   not turn the pool into an unbounded leak. Overflow buffers just drop.
//! * **Best-effort recycling.** [`recycle`] only reclaims a `Bytes` whose
//!   storage is uniquely owned; payloads still shared with a decoder or a
//!   retransmit queue are left alone and returned `false`. Correctness never
//!   depends on a recycle succeeding — a miss is just an allocation.

use bytes::{Bytes, BytesMut};
use std::cell::RefCell;

/// Smallest pooled buffer capacity (bytes).
pub const MIN_POOLED: usize = 64;
/// Largest pooled buffer capacity (bytes); bigger allocations bypass the pool.
pub const MAX_POOLED: usize = 64 * 1024;
/// Maximum buffers retained per size class.
pub const PER_CLASS_CAP: usize = 32;

const MIN_SHIFT: u32 = MIN_POOLED.trailing_zeros(); // 6
const MAX_SHIFT: u32 = MAX_POOLED.trailing_zeros(); // 16
const NUM_CLASSES: usize = (MAX_SHIFT - MIN_SHIFT + 1) as usize;

/// Counters for one thread's pool (see [`stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// `take` calls satisfied from the freelist.
    pub hits: u64,
    /// `take` calls that had to allocate.
    pub misses: u64,
    /// Buffers returned to the freelist by `recycle`.
    pub recycled: u64,
    /// `recycle` calls that could not reclaim (shared, static, oversized, or
    /// a full size class) — the allocation was simply dropped.
    pub rejected: u64,
}

struct ThreadPool {
    classes: [Vec<Vec<u8>>; NUM_CLASSES],
    stats: PoolStats,
}

impl ThreadPool {
    fn new() -> Self {
        ThreadPool {
            classes: std::array::from_fn(|_| Vec::new()),
            stats: PoolStats::default(),
        }
    }
}

thread_local! {
    static POOL: RefCell<ThreadPool> = RefCell::new(ThreadPool::new());
}

/// Size class index for a *request* of `min_cap` bytes: smallest class whose
/// buffers are guaranteed to hold it, or `None` if the request is oversized.
fn class_for_request(min_cap: usize) -> Option<usize> {
    if min_cap > MAX_POOLED {
        return None;
    }
    let cap = min_cap.max(MIN_POOLED).next_power_of_two();
    Some((cap.trailing_zeros() - MIN_SHIFT) as usize)
}

/// Size class index for a *returned* buffer of `capacity` bytes: largest
/// class it can serve, or `None` if it is too small or too large to pool.
fn class_for_capacity(capacity: usize) -> Option<usize> {
    if !(MIN_POOLED..=MAX_POOLED).contains(&capacity) {
        return None;
    }
    let shift = usize::BITS - 1 - capacity.leading_zeros(); // floor(log2)
    Some((shift - MIN_SHIFT) as usize)
}

/// Take a buffer with at least `min_cap` bytes of capacity, reusing a pooled
/// allocation when one is available.
pub fn take(min_cap: usize) -> BytesMut {
    BytesMut::from(take_vec(min_cap))
}

/// [`take`], as a raw `Vec<u8>` for callers that fill through `&mut Vec<u8>`
/// (MOL object packing).
pub fn take_vec(min_cap: usize) -> Vec<u8> {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        if let Some(class) = class_for_request(min_cap) {
            // Buffers in a class always have capacity >= the class size, and
            // the request rounds *up*, so any pooled buffer fits.
            if let Some(buf) = p.classes[class].pop() {
                p.stats.hits += 1;
                debug_assert!(buf.capacity() >= min_cap);
                return buf;
            }
        }
        p.stats.misses += 1;
        // Allocate at the class size (not the raw request) so the buffer
        // re-enters the same class it serves when it is recycled.
        let cap = match class_for_request(min_cap) {
            Some(class) => MIN_POOLED << class,
            None => min_cap,
        };
        Vec::with_capacity(cap)
    })
}

/// Fill a pooled scratch buffer through `fill` and freeze it into a payload.
/// This is the sanctioned way for hot paths to turn `&mut Vec<u8>`-style
/// packing APIs (MOL object packing) into a `Bytes` — the `batch-hygiene`
/// lint forbids raw `Bytes::from(vec…)` construction outside this module.
pub fn build<F: FnOnce(&mut Vec<u8>)>(min_cap: usize, fill: F) -> Bytes {
    let mut v = take_vec(min_cap);
    fill(&mut v);
    Bytes::from(v)
}

/// Return a payload's allocation to this thread's freelist.
///
/// Succeeds (and returns `true`) only when `bytes` was the sole owner of
/// poolable heap storage; otherwise the bytes drop normally. Always safe to
/// call — recycling is an optimization, never a requirement.
pub fn recycle(bytes: Bytes) -> bool {
    let Ok(v) = bytes.try_reclaim() else {
        POOL.with(|p| p.borrow_mut().stats.rejected += 1);
        return false;
    };
    recycle_vec(v)
}

/// [`recycle`] for an already-owned buffer (e.g. a drained scratch `Vec`).
pub fn recycle_vec(v: Vec<u8>) -> bool {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        if let Some(class) = class_for_capacity(v.capacity()) {
            if p.classes[class].len() < PER_CLASS_CAP {
                let mut v = v;
                v.clear();
                p.classes[class].push(v);
                p.stats.recycled += 1;
                return true;
            }
        }
        p.stats.rejected += 1;
        false
    })
}

/// This thread's pool counters.
pub fn stats() -> PoolStats {
    POOL.with(|p| p.borrow().stats)
}

/// Reset this thread's pool counters (benchmarks isolate phases with this).
pub fn reset_stats() {
    POOL.with(|p| p.borrow_mut().stats = PoolStats::default());
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests share a thread-local pool with each other only within one test
    /// thread; each test uses relative deltas, not absolute counters.
    fn delta<F: FnOnce()>(f: F) -> PoolStats {
        let before = stats();
        f();
        let after = stats();
        PoolStats {
            hits: after.hits - before.hits,
            misses: after.misses - before.misses,
            recycled: after.recycled - before.recycled,
            rejected: after.rejected - before.rejected,
        }
    }

    #[test]
    fn take_recycle_take_hits() {
        let d = delta(|| {
            let mut buf = take(100);
            use bytes::BufMut;
            buf.put_slice(&[7; 100]);
            let frozen = buf.freeze();
            assert!(recycle(frozen));
            let again = take(100);
            assert!(again.capacity() >= 100);
        });
        assert_eq!(d.recycled, 1);
        assert!(d.hits >= 1, "second take must hit the freelist: {d:?}");
    }

    #[test]
    fn shared_payload_is_not_reclaimed() {
        let d = delta(|| {
            let buf = take(64);
            let frozen = buf.freeze();
            let clone = frozen.clone();
            assert!(!recycle(frozen), "shared storage must not be pooled");
            drop(clone);
        });
        assert_eq!(d.recycled, 0);
        assert_eq!(d.rejected, 1);
    }

    #[test]
    fn static_and_oversized_are_rejected() {
        let d = delta(|| {
            assert!(!recycle(Bytes::from_static(b"abc")));
            assert!(!recycle_vec(Vec::with_capacity(MAX_POOLED * 2)));
            assert!(!recycle_vec(Vec::with_capacity(MIN_POOLED / 2)));
        });
        assert_eq!(d.rejected, 3);
    }

    #[test]
    fn oversized_take_allocates_directly() {
        let d = delta(|| {
            let big = take(MAX_POOLED + 1);
            assert!(big.capacity() > MAX_POOLED);
        });
        assert_eq!(d.misses, 1);
    }

    #[test]
    fn class_is_bounded() {
        let d = delta(|| {
            for _ in 0..(PER_CLASS_CAP + 8) {
                // Exact power-of-two capacity lands in one class.
                recycle_vec(Vec::with_capacity(1024));
            }
        });
        assert!(d.recycled <= PER_CLASS_CAP as u64);
        assert!(d.rejected >= 8);
    }

    #[test]
    fn request_rounds_up_capacity_rounds_down() {
        // A 65-byte request must map to the 128-class; a 127-capacity buffer
        // can only serve the 64-class.
        assert_eq!(class_for_request(65), class_for_capacity(128));
        assert_eq!(class_for_capacity(127), class_for_request(64));
        assert_eq!(class_for_request(0), class_for_request(MIN_POOLED));
        assert_eq!(class_for_request(MAX_POOLED + 1), None);
    }
}
