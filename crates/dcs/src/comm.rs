//! The communicator: a rank's single-sided communication endpoint.
//!
//! [`Communicator`] wraps a [`Transport`] and adds what the Mobile Object
//! Layer and the load balancer need from the substrate:
//!
//! * active-message sends ([`Communicator::am_send`]);
//! * polling receives, with a *sideline queue* so higher layers can defer a
//!   message they are not ready for without losing FIFO order among the rest;
//! * traffic counters (the harness reports message/byte volumes).
//!
//! A `Communicator` belongs to one rank. It is `Send` (so the owning runtime
//! can place it behind a lock shared between the worker and PREMA's preemptive
//! polling thread) but deliberately not `Sync`.

use crate::envelope::{Envelope, HandlerId, Rank, Tag};
use crate::transport::Transport;
use bytes::Bytes;
use prema_trace::{TraceEvent, Tracer};
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::time::Duration;

/// Cumulative traffic counters for one rank.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Envelopes sent.
    pub msgs_sent: u64,
    /// Wire bytes sent (headers + payloads).
    pub bytes_sent: u64,
    /// Envelopes received (delivered to the caller).
    pub msgs_recvd: u64,
}

/// A rank's endpoint: sends, polls, counters, sideline queue.
pub struct Communicator {
    transport: Box<dyn Transport>,
    sidelined: RefCell<VecDeque<Envelope>>,
    stats: Cell<CommStats>,
    tracer: Tracer,
}

impl Communicator {
    /// Wrap a transport endpoint.
    pub fn new(transport: Box<dyn Transport>) -> Self {
        Communicator {
            transport,
            sidelined: RefCell::new(VecDeque::new()),
            stats: Cell::new(CommStats::default()),
            tracer: Tracer::off(),
        }
    }

    /// Attach a trace recorder for this rank's sends and receives. A no-op
    /// handle unless `prema-trace` is built with its `enabled` feature.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// This rank.
    pub fn rank(&self) -> Rank {
        self.transport.rank()
    }

    /// Machine size.
    pub fn nprocs(&self) -> usize {
        self.transport.nprocs()
    }

    /// Send an active message: `handler` will run at `dst` with `payload`.
    pub fn am_send(&self, dst: Rank, handler: HandlerId, tag: Tag, payload: Bytes) {
        let env = Envelope {
            src: self.rank(),
            dst,
            handler,
            tag,
            payload,
        };
        let mut s = self.stats.get();
        s.msgs_sent += 1;
        s.bytes_sent += env.wire_size() as u64;
        self.stats.set(s);
        self.tracer.emit(|| TraceEvent::Send {
            dst,
            handler: handler.0,
            bytes: env.wire_size(),
            system: tag == Tag::System,
        });
        self.transport.send(env);
    }

    /// Non-blocking receive. Sidelined messages are returned first (in the
    /// order they were sidelined), then fresh transport messages.
    pub fn try_recv(&self) -> Option<Envelope> {
        if let Some(env) = self.sidelined.borrow_mut().pop_front() {
            return Some(self.count_recv(env));
        }
        self.transport.try_recv().map(|e| self.count_recv(e))
    }

    /// Blocking receive with timeout. Sidelined messages take priority.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Envelope> {
        if let Some(env) = self.sidelined.borrow_mut().pop_front() {
            return Some(self.count_recv(env));
        }
        self.transport
            .recv_timeout(timeout)
            .map(|e| self.count_recv(e))
    }

    /// Blocking receive with timeout that bypasses the sideline queue. Used
    /// by waits that *produce* sidelined messages (collectives): consuming
    /// the sideline here would starve the transport and livelock.
    pub fn recv_timeout_transport(&self, timeout: Duration) -> Option<Envelope> {
        self.transport
            .recv_timeout(timeout)
            .map(|e| self.count_recv(e))
    }

    /// Non-blocking receive that bypasses the sideline queue, looking only at
    /// fresh transport traffic. This is what a *system-only* poll uses: it
    /// scans new arrivals (sidelining the application ones) and is guaranteed
    /// to terminate once the transport is drained, whereas [`try_recv`]
    /// would hand back its own sidelined messages forever.
    ///
    /// [`try_recv`]: Communicator::try_recv
    pub fn try_recv_transport(&self) -> Option<Envelope> {
        self.transport.try_recv().map(|e| self.count_recv(e))
    }

    /// Put a message back for a later receive (front of the queue is the
    /// oldest sidelined message). Does not double-count it in the stats.
    ///
    /// Only envelopes obtained from this communicator's receive methods may
    /// be sidelined: each one was counted on receipt, and that count is
    /// backed out here (it is re-counted when re-received). Sidelining a
    /// never-received envelope is a caller bug — debug builds assert;
    /// release builds saturate rather than wrapping the counter to 2⁶⁴.
    pub fn sideline(&self, env: Envelope) {
        let mut s = self.stats.get();
        debug_assert!(
            s.msgs_recvd > 0,
            "sideline of an envelope that was never counted as received"
        );
        s.msgs_recvd = s.msgs_recvd.saturating_sub(1);
        self.stats.set(s);
        self.sidelined.borrow_mut().push_back(env);
    }

    /// Traffic counters so far.
    pub fn stats(&self) -> CommStats {
        self.stats.get()
    }

    /// Number of currently sidelined messages.
    pub fn sidelined_len(&self) -> usize {
        self.sidelined.borrow().len()
    }

    fn count_recv(&self, env: Envelope) -> Envelope {
        let mut s = self.stats.get();
        s.msgs_recvd += 1;
        self.stats.set(s);
        self.tracer.emit(|| TraceEvent::Recv {
            src: env.src,
            handler: env.handler.0,
            bytes: env.wire_size(),
            system: env.tag == Tag::System,
        });
        env
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::LocalFabric;

    fn pair() -> (Communicator, Communicator) {
        let mut eps = LocalFabric::new(2);
        let b = Communicator::new(Box::new(eps.pop().unwrap()));
        let a = Communicator::new(Box::new(eps.pop().unwrap()));
        (a, b)
    }

    #[test]
    fn am_send_and_receive() {
        let (a, b) = pair();
        a.am_send(1, HandlerId(3), Tag::App, Bytes::from_static(b"hi"));
        let env = b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(env.src, 0);
        assert_eq!(env.handler, HandlerId(3));
        assert_eq!(&env.payload[..], b"hi");
        assert_eq!(a.stats().msgs_sent, 1);
        assert_eq!(a.stats().bytes_sent, 24 + 2);
        assert_eq!(b.stats().msgs_recvd, 1);
    }

    #[test]
    fn sideline_preserves_order_and_priority() {
        let (a, b) = pair();
        for i in 0..3u32 {
            a.am_send(1, HandlerId(i), Tag::App, Bytes::new());
        }
        let first = b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(first.handler, HandlerId(0));
        b.sideline(first);
        let second = b.try_recv().unwrap();
        // Sidelined message comes back first.
        assert_eq!(second.handler, HandlerId(0));
        assert_eq!(b.try_recv().unwrap().handler, HandlerId(1));
        assert_eq!(b.try_recv().unwrap().handler, HandlerId(2));
        assert!(b.try_recv().is_none());
        // Net received count: 3 unique messages (sideline un-counts).
        assert_eq!(b.stats().msgs_recvd, 3);
    }

    /// The collective wait loop depends on `recv_timeout_transport` /
    /// `try_recv_transport` *never* handing back sidelined messages (it
    /// would re-receive what it just sidelined and livelock), while plain
    /// `recv_timeout` must drain the sideline first. Regression test for
    /// that contract across a transport swap.
    #[test]
    fn transport_receives_bypass_the_sideline_queue() {
        let (a, b) = pair();
        a.am_send(1, HandlerId(1), Tag::App, Bytes::new());
        let env = b.recv_timeout(Duration::from_secs(1)).unwrap();
        b.sideline(env);
        // Transport-only receives must not see the sidelined message, even
        // though it is the only one queued anywhere.
        assert!(b.try_recv_transport().is_none());
        assert!(b
            .recv_timeout_transport(Duration::from_millis(20))
            .is_none());
        // Fresh wire traffic is returned ahead of the sidelined envelope.
        a.am_send(1, HandlerId(2), Tag::App, Bytes::new());
        assert_eq!(
            b.recv_timeout_transport(Duration::from_secs(1))
                .unwrap()
                .handler,
            HandlerId(2)
        );
        // The plain receive finally drains the sideline, oldest first.
        assert_eq!(
            b.recv_timeout(Duration::from_secs(1)).unwrap().handler,
            HandlerId(1)
        );
        assert!(b.try_recv().is_none());
        assert_eq!(b.stats().msgs_recvd, 2);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "never counted as received")]
    fn sideline_of_uncounted_envelope_asserts_in_debug() {
        let (a, b) = pair();
        a.am_send(1, HandlerId(1), Tag::App, Bytes::new());
        let env = b.recv_timeout(Duration::from_secs(1)).unwrap();
        b.sideline(env.clone()); // legitimate: counted once, backed out once
        b.sideline(env); // bug: the count was already backed out
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn sideline_of_uncounted_envelope_saturates_in_release() {
        let (a, b) = pair();
        a.am_send(1, HandlerId(1), Tag::App, Bytes::new());
        let env = b.recv_timeout(Duration::from_secs(1)).unwrap();
        b.sideline(env.clone());
        b.sideline(env); // must saturate at 0, not wrap to u64::MAX
        assert_eq!(b.stats().msgs_recvd, 0);
    }

    #[test]
    fn self_communication() {
        let mut eps = LocalFabric::new(1);
        let a = Communicator::new(Box::new(eps.pop().unwrap()));
        a.am_send(0, HandlerId(1), Tag::System, Bytes::new());
        assert!(a.try_recv().is_some());
    }
}
