//! The communicator: a rank's single-sided communication endpoint.
//!
//! [`Communicator`] wraps a [`Transport`] and adds what the Mobile Object
//! Layer and the load balancer need from the substrate:
//!
//! * active-message sends ([`Communicator::am_send`]);
//! * polling receives, with a *sideline queue* so higher layers can defer a
//!   message they are not ready for without losing FIFO order among the rest;
//! * optional per-destination coalescing of application sends
//!   ([`crate::batch`], off by default) with a receive-side ring that drains
//!   a whole frame out of a single channel op;
//! * traffic counters (the harness reports message/byte volumes).
//!
//! A `Communicator` belongs to one rank. It is `Send` (so the owning runtime
//! can place it behind a lock shared between the worker and PREMA's preemptive
//! polling thread) but deliberately not `Sync`.

use crate::batch::{self, BatchConfig};
use crate::envelope::{Envelope, HandlerId, Rank, Tag};
use crate::transport::Transport;
use bytes::Bytes;
use prema_trace::{TraceEvent, Tracer};
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::time::Duration;

/// Cumulative traffic counters for one rank.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Logical envelopes sent (each application message counts once, batched
    /// or not).
    pub msgs_sent: u64,
    /// Wire bytes sent. **Batch-aware**: a coalesced frame is charged its
    /// actual framed size (one 24-byte envelope header + 8 bytes of framing
    /// per message) rather than a 24-byte header per logical message, so
    /// these counters and the sim cost model agree on what crossed the wire.
    pub bytes_sent: u64,
    /// Transport-level envelopes actually sent (frames count once; equals
    /// `msgs_sent` when batching is off).
    pub frames_sent: u64,
    /// Envelopes received (delivered to the caller).
    pub msgs_recvd: u64,
}

/// Envelopes staged for one destination, awaiting a flush.
#[derive(Default)]
struct StagedBatch {
    msgs: Vec<Envelope>,
    /// Payload length of the frame these messages would coalesce into.
    frame_bytes: usize,
}

/// A rank's endpoint: sends, polls, counters, sideline queue.
pub struct Communicator {
    transport: Box<dyn Transport>,
    sidelined: RefCell<VecDeque<Envelope>>,
    /// Envelopes decoded from a received frame but not yet handed out:
    /// one channel op can deliver many messages (burst drain).
    recv_ring: RefCell<VecDeque<Envelope>>,
    /// `staged[dst]` holds coalescing state for that destination. Empty
    /// (never allocated) while batching is off.
    staged: RefCell<Vec<StagedBatch>>,
    /// Total envelopes currently staged across all destinations, kept
    /// denormalized so the poll-boundary flush is a load when idle.
    staged_total: Cell<usize>,
    batch: Cell<BatchConfig>,
    stats: Cell<CommStats>,
    tracer: Tracer,
}

impl Communicator {
    /// Wrap a transport endpoint. Batching starts [`BatchConfig::off`].
    pub fn new(transport: Box<dyn Transport>) -> Self {
        Communicator {
            transport,
            sidelined: RefCell::new(VecDeque::new()),
            recv_ring: RefCell::new(VecDeque::new()),
            staged: RefCell::new(Vec::new()),
            staged_total: Cell::new(0),
            batch: Cell::new(BatchConfig::off()),
            stats: Cell::new(CommStats::default()),
            tracer: Tracer::off(),
        }
    }

    /// Set the coalescing policy. Flushes anything staged under the old
    /// policy first, so no envelope is stranded by a config change.
    pub fn set_batch_config(&mut self, cfg: BatchConfig) {
        self.flush_with_reason("config");
        self.batch.set(cfg);
    }

    /// The active coalescing policy.
    pub fn batch_config(&self) -> BatchConfig {
        self.batch.get()
    }

    /// Attach a trace recorder for this rank's sends and receives. A no-op
    /// handle unless `prema-trace` is built with its `enabled` feature.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// This rank.
    pub fn rank(&self) -> Rank {
        self.transport.rank()
    }

    /// Machine size.
    pub fn nprocs(&self) -> usize {
        self.transport.nprocs()
    }

    /// Send an active message: `handler` will run at `dst` with `payload`.
    ///
    /// With batching on, `Tag::App` sends are staged per destination and
    /// flushed by the three-way policy (size threshold here, explicit
    /// [`flush`] at poll boundaries, and — critical for the preemptive
    /// polling thread's latency — **`Tag::System` sends flush the
    /// destination's pending batch and then go straight to the transport**,
    /// so LB traffic is never queued behind an application batch while
    /// per-pair FIFO across the tag boundary still holds.
    ///
    /// [`flush`]: Communicator::flush
    pub fn am_send(&self, dst: Rank, handler: HandlerId, tag: Tag, payload: Bytes) {
        let env = Envelope {
            src: self.rank(),
            dst,
            handler,
            tag,
            payload,
        };
        let cfg = self.batch.get();
        if cfg.is_on() && tag == Tag::System {
            // Flush before emitting the Send record: the trace must show the
            // staged batch reaching the wire ahead of the System envelope,
            // matching the actual wire order.
            self.flush_dst(dst, "system");
        }
        self.tracer.emit(|| TraceEvent::Send {
            dst,
            handler: handler.0,
            bytes: env.wire_size(),
            system: tag == Tag::System,
        });
        if cfg.is_on() && tag == Tag::App {
            self.stage(env, cfg);
            return;
        }
        self.send_direct(env);
    }

    /// Stage an application envelope for its destination, flushing if the
    /// pending frame hits the size threshold.
    fn stage(&self, env: Envelope, cfg: BatchConfig) {
        let dst = env.dst;
        let full = {
            let mut staged = self.staged.borrow_mut();
            if staged.len() <= dst {
                let n = self.transport.nprocs().max(dst + 1);
                staged.resize_with(n, StagedBatch::default);
            }
            let b = &mut staged[dst];
            if b.msgs.is_empty() {
                b.frame_bytes = batch::FRAME_OVERHEAD;
            }
            b.frame_bytes += batch::PER_MSG_OVERHEAD + env.payload.len();
            b.msgs.push(env);
            b.msgs.len() >= cfg.max_msgs || b.frame_bytes >= cfg.max_bytes
        };
        self.staged_total.set(self.staged_total.get() + 1);
        if full {
            self.flush_dst(dst, "size");
        }
    }

    /// Hand one envelope to the transport, charging its full wire size.
    fn send_direct(&self, env: Envelope) {
        let mut s = self.stats.get();
        s.msgs_sent += 1;
        s.frames_sent += 1;
        s.bytes_sent += env.wire_size() as u64;
        self.stats.set(s);
        self.transport.send(env);
    }

    /// Flush every destination's staged batch (a poll/handler-boundary
    /// flush). Returns the number of envelopes pushed to the transport.
    pub fn flush(&self) -> usize {
        self.flush_with_reason("poll")
    }

    fn flush_with_reason(&self, reason: &'static str) -> usize {
        if self.staged_total.get() == 0 {
            return 0;
        }
        let ndst = self.staged.borrow().len();
        (0..ndst).map(|dst| self.flush_dst(dst, reason)).sum()
    }

    /// Flush one destination's staged batch, if any. Returns the number of
    /// envelopes flushed.
    fn flush_dst(&self, dst: Rank, reason: &'static str) -> usize {
        let pending = {
            let mut staged = self.staged.borrow_mut();
            match staged.get_mut(dst) {
                Some(b) if !b.msgs.is_empty() => std::mem::take(b),
                _ => return 0,
            }
        };
        let n = pending.msgs.len();
        self.staged_total.set(self.staged_total.get() - n);
        let frame_wire = if n == 1 {
            pending.msgs[0].wire_size()
        } else {
            // One envelope header for the whole frame plus the framing the
            // encoder writes — charged as what actually crosses the wire.
            24 + pending.frame_bytes
        };
        let mut s = self.stats.get();
        s.msgs_sent += n as u64;
        s.frames_sent += 1;
        s.bytes_sent += frame_wire as u64;
        self.stats.set(s);
        self.tracer.emit(|| TraceEvent::DcsBatchFlush {
            reason,
            msgs: n as u32,
            bytes: frame_wire,
        });
        self.transport.send_batch(dst, pending.msgs);
        n
    }

    /// Number of envelopes currently staged (awaiting a flush).
    pub fn staged_len(&self) -> usize {
        self.staged_total.get()
    }

    /// Pull the next envelope off the wire without blocking: the local ring
    /// of already-decoded frame contents first, then one transport probe
    /// (which may refill the ring from a whole frame).
    fn wire_next(&self) -> Option<Envelope> {
        let mut ring = self.recv_ring.borrow_mut();
        if let Some(env) = ring.pop_front() {
            return Some(env);
        }
        if self.transport.try_recv_batch(&mut ring) == 0 {
            return None;
        }
        ring.pop_front()
    }

    /// Blocking variant of [`wire_next`](Communicator::wire_next).
    fn wire_next_timeout(&self, timeout: Duration) -> Option<Envelope> {
        let mut ring = self.recv_ring.borrow_mut();
        if let Some(env) = ring.pop_front() {
            return Some(env);
        }
        let env = self.transport.recv_timeout(timeout)?;
        // A malformed frame can expand to zero envelopes; treat that like a
        // timeout (the hostile bytes are dropped, not delivered).
        batch::expand(env, &mut ring);
        ring.pop_front()
    }

    /// Non-blocking receive. Sidelined messages are returned first (in the
    /// order they were sidelined), then fresh transport messages.
    pub fn try_recv(&self) -> Option<Envelope> {
        if let Some(env) = self.sidelined.borrow_mut().pop_front() {
            return Some(self.count_recv(env));
        }
        self.wire_next().map(|e| self.count_recv(e))
    }

    /// Blocking receive with timeout. Sidelined messages take priority.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Envelope> {
        if let Some(env) = self.sidelined.borrow_mut().pop_front() {
            return Some(self.count_recv(env));
        }
        self.wire_next_timeout(timeout).map(|e| self.count_recv(e))
    }

    /// Blocking receive with timeout that bypasses the sideline queue. Used
    /// by waits that *produce* sidelined messages (collectives): consuming
    /// the sideline here would starve the transport and livelock. (The
    /// frame ring does *not* count as the sideline: its contents are fresh
    /// wire traffic that happened to share a frame, and draining it
    /// terminates.)
    pub fn recv_timeout_transport(&self, timeout: Duration) -> Option<Envelope> {
        self.wire_next_timeout(timeout).map(|e| self.count_recv(e))
    }

    /// Non-blocking receive that bypasses the sideline queue, looking only at
    /// fresh transport traffic. This is what a *system-only* poll uses: it
    /// scans new arrivals (sidelining the application ones) and is guaranteed
    /// to terminate once the transport is drained, whereas [`try_recv`]
    /// would hand back its own sidelined messages forever.
    ///
    /// [`try_recv`]: Communicator::try_recv
    pub fn try_recv_transport(&self) -> Option<Envelope> {
        self.wire_next().map(|e| self.count_recv(e))
    }

    /// Put a message back for a later receive (front of the queue is the
    /// oldest sidelined message). Does not double-count it in the stats.
    ///
    /// Only envelopes obtained from this communicator's receive methods may
    /// be sidelined: each one was counted on receipt, and that count is
    /// backed out here (it is re-counted when re-received). Sidelining a
    /// never-received envelope is a caller bug — debug builds assert;
    /// release builds saturate rather than wrapping the counter to 2⁶⁴.
    pub fn sideline(&self, env: Envelope) {
        let mut s = self.stats.get();
        debug_assert!(
            s.msgs_recvd > 0,
            "sideline of an envelope that was never counted as received"
        );
        s.msgs_recvd = s.msgs_recvd.saturating_sub(1);
        self.stats.set(s);
        self.sidelined.borrow_mut().push_back(env);
    }

    /// Traffic counters so far.
    pub fn stats(&self) -> CommStats {
        self.stats.get()
    }

    /// Number of currently sidelined messages.
    pub fn sidelined_len(&self) -> usize {
        self.sidelined.borrow().len()
    }

    fn count_recv(&self, env: Envelope) -> Envelope {
        let mut s = self.stats.get();
        s.msgs_recvd += 1;
        self.stats.set(s);
        self.tracer.emit(|| TraceEvent::Recv {
            src: env.src,
            handler: env.handler.0,
            bytes: env.wire_size(),
            system: env.tag == Tag::System,
        });
        env
    }
}

impl Drop for Communicator {
    /// Teardown drains the staging buffers: no envelope is ever stranded in
    /// a batch at shutdown. (If the peer's inbox is already gone the
    /// transport's undeliverable counter picks the loss up, same as an
    /// unbatched late send.)
    fn drop(&mut self) {
        self.flush_with_reason("shutdown");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::LocalFabric;

    fn pair() -> (Communicator, Communicator) {
        let mut eps = LocalFabric::new(2);
        let b = Communicator::new(Box::new(eps.pop().unwrap()));
        let a = Communicator::new(Box::new(eps.pop().unwrap()));
        (a, b)
    }

    #[test]
    fn am_send_and_receive() {
        let (a, b) = pair();
        a.am_send(1, HandlerId(3), Tag::App, Bytes::from_static(b"hi"));
        let env = b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(env.src, 0);
        assert_eq!(env.handler, HandlerId(3));
        assert_eq!(&env.payload[..], b"hi");
        assert_eq!(a.stats().msgs_sent, 1);
        assert_eq!(a.stats().bytes_sent, 24 + 2);
        assert_eq!(b.stats().msgs_recvd, 1);
    }

    #[test]
    fn sideline_preserves_order_and_priority() {
        let (a, b) = pair();
        for i in 0..3u32 {
            a.am_send(1, HandlerId(i), Tag::App, Bytes::new());
        }
        let first = b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(first.handler, HandlerId(0));
        b.sideline(first);
        let second = b.try_recv().unwrap();
        // Sidelined message comes back first.
        assert_eq!(second.handler, HandlerId(0));
        assert_eq!(b.try_recv().unwrap().handler, HandlerId(1));
        assert_eq!(b.try_recv().unwrap().handler, HandlerId(2));
        assert!(b.try_recv().is_none());
        // Net received count: 3 unique messages (sideline un-counts).
        assert_eq!(b.stats().msgs_recvd, 3);
    }

    /// The collective wait loop depends on `recv_timeout_transport` /
    /// `try_recv_transport` *never* handing back sidelined messages (it
    /// would re-receive what it just sidelined and livelock), while plain
    /// `recv_timeout` must drain the sideline first. Regression test for
    /// that contract across a transport swap.
    #[test]
    fn transport_receives_bypass_the_sideline_queue() {
        let (a, b) = pair();
        a.am_send(1, HandlerId(1), Tag::App, Bytes::new());
        let env = b.recv_timeout(Duration::from_secs(1)).unwrap();
        b.sideline(env);
        // Transport-only receives must not see the sidelined message, even
        // though it is the only one queued anywhere.
        assert!(b.try_recv_transport().is_none());
        assert!(b
            .recv_timeout_transport(Duration::from_millis(20))
            .is_none());
        // Fresh wire traffic is returned ahead of the sidelined envelope.
        a.am_send(1, HandlerId(2), Tag::App, Bytes::new());
        assert_eq!(
            b.recv_timeout_transport(Duration::from_secs(1))
                .unwrap()
                .handler,
            HandlerId(2)
        );
        // The plain receive finally drains the sideline, oldest first.
        assert_eq!(
            b.recv_timeout(Duration::from_secs(1)).unwrap().handler,
            HandlerId(1)
        );
        assert!(b.try_recv().is_none());
        assert_eq!(b.stats().msgs_recvd, 2);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "never counted as received")]
    fn sideline_of_uncounted_envelope_asserts_in_debug() {
        let (a, b) = pair();
        a.am_send(1, HandlerId(1), Tag::App, Bytes::new());
        let env = b.recv_timeout(Duration::from_secs(1)).unwrap();
        b.sideline(env.clone()); // legitimate: counted once, backed out once
        b.sideline(env); // bug: the count was already backed out
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn sideline_of_uncounted_envelope_saturates_in_release() {
        let (a, b) = pair();
        a.am_send(1, HandlerId(1), Tag::App, Bytes::new());
        let env = b.recv_timeout(Duration::from_secs(1)).unwrap();
        b.sideline(env.clone());
        b.sideline(env); // must saturate at 0, not wrap to u64::MAX
        assert_eq!(b.stats().msgs_recvd, 0);
    }

    #[test]
    fn self_communication() {
        let mut eps = LocalFabric::new(1);
        let a = Communicator::new(Box::new(eps.pop().unwrap()));
        a.am_send(0, HandlerId(1), Tag::System, Bytes::new());
        assert!(a.try_recv().is_some());
    }

    fn batched_pair(max_msgs: usize, max_bytes: usize) -> (Communicator, Communicator) {
        let (mut a, b) = pair();
        a.set_batch_config(BatchConfig::on(max_msgs, max_bytes));
        (a, b)
    }

    #[test]
    fn batched_sends_stage_until_size_threshold() {
        let (a, b) = batched_pair(3, 1 << 20);
        a.am_send(1, HandlerId(1), Tag::App, Bytes::new());
        a.am_send(1, HandlerId(2), Tag::App, Bytes::new());
        assert_eq!(a.staged_len(), 2);
        // Nothing on the wire yet.
        assert!(b.try_recv().is_none());
        assert_eq!(a.stats().frames_sent, 0);
        // Third message hits max_msgs: the frame ships, one transport send.
        a.am_send(1, HandlerId(3), Tag::App, Bytes::new());
        assert_eq!(a.staged_len(), 0);
        assert_eq!(a.stats().frames_sent, 1);
        assert_eq!(a.stats().msgs_sent, 3);
        for expect in 1..=3u32 {
            assert_eq!(b.try_recv().unwrap().handler, HandlerId(expect));
        }
        assert!(b.try_recv().is_none());
        assert_eq!(b.stats().msgs_recvd, 3);
    }

    #[test]
    fn byte_threshold_flushes_before_msg_threshold() {
        let (a, b) = batched_pair(1000, 64);
        // Two 30-byte payloads push the pending frame past 64 bytes.
        a.am_send(1, HandlerId(1), Tag::App, Bytes::from_static(&[7; 30]));
        assert_eq!(a.staged_len(), 1);
        a.am_send(1, HandlerId(2), Tag::App, Bytes::from_static(&[7; 30]));
        assert_eq!(a.staged_len(), 0);
        assert_eq!(
            b.recv_timeout(Duration::from_secs(1)).unwrap().handler,
            HandlerId(1)
        );
        assert_eq!(b.try_recv().unwrap().handler, HandlerId(2));
    }

    #[test]
    fn explicit_flush_ships_a_partial_batch() {
        let (a, b) = batched_pair(100, 1 << 20);
        a.am_send(1, HandlerId(9), Tag::App, Bytes::new());
        assert!(b.try_recv().is_none());
        assert_eq!(a.flush(), 1);
        assert_eq!(a.flush(), 0); // idempotent when empty
        assert_eq!(
            b.recv_timeout(Duration::from_secs(1)).unwrap().handler,
            HandlerId(9)
        );
    }

    /// Acceptance: a `Tag::System` envelope is never delayed behind a
    /// pending application batch — the staged batch flushes *first* (so
    /// per-pair FIFO holds across the tag boundary) and the system envelope
    /// goes straight to the transport, unbatched.
    #[test]
    fn system_send_flushes_pending_batch_and_bypasses_staging() {
        let (a, b) = batched_pair(100, 1 << 20);
        a.am_send(1, HandlerId(1), Tag::App, Bytes::new());
        a.am_send(1, HandlerId(2), Tag::App, Bytes::new());
        let sys_handler = HandlerId(HandlerId::SYSTEM_BASE + 1);
        a.am_send(1, sys_handler, Tag::System, Bytes::new());
        // Nothing staged: the system send forced everything out.
        assert_eq!(a.staged_len(), 0);
        // Two transport envelopes: the 2-message frame, then the system one.
        assert_eq!(a.stats().frames_sent, 2);
        assert_eq!(a.stats().msgs_sent, 3);
        // FIFO across the tag boundary: app messages arrive before system.
        assert_eq!(b.try_recv().unwrap().handler, HandlerId(1));
        assert_eq!(b.try_recv().unwrap().handler, HandlerId(2));
        let sys = b.try_recv().unwrap();
        assert_eq!(sys.handler, sys_handler);
        assert_eq!(sys.tag, Tag::System);
    }

    /// The accounting regression the batch-aware counters exist for: the
    /// same logical traffic must cost *fewer* wire bytes batched than
    /// unbatched (8 bytes framing vs a 24-byte header per message), and the
    /// logical message counters must not change at all.
    #[test]
    fn batched_accounting_charges_framed_bytes_not_per_envelope_headers() {
        let n = 10u32;
        let payload = Bytes::from_static(b"abcd");

        let (u, urx) = pair();
        for i in 0..n {
            u.am_send(1, HandlerId(i), Tag::App, payload.clone());
        }
        while urx.try_recv().is_some() {}

        let (b, brx) = batched_pair(n as usize, 1 << 20);
        for i in 0..n {
            b.am_send(1, HandlerId(i), Tag::App, payload.clone());
        }
        while brx.recv_timeout(Duration::from_millis(200)).is_some() {}

        let (us, bs) = (u.stats(), b.stats());
        assert_eq!(us.msgs_sent, n as u64);
        assert_eq!(bs.msgs_sent, n as u64);
        assert_eq!(urx.stats().msgs_recvd, n as u64);
        assert_eq!(brx.stats().msgs_recvd, n as u64);
        assert_eq!(us.frames_sent, n as u64);
        assert_eq!(bs.frames_sent, 1);
        // Unbatched: n * (24 + 4). Batched: 24 + 4 + n * (8 + 4).
        assert_eq!(us.bytes_sent, (n as u64) * (24 + 4));
        assert_eq!(bs.bytes_sent, 24 + 4 + (n as u64) * (8 + 4));
        assert!(bs.bytes_sent < us.bytes_sent);
    }

    #[test]
    fn drop_flushes_staged_envelopes() {
        let (a, b) = batched_pair(100, 1 << 20);
        a.am_send(1, HandlerId(5), Tag::App, Bytes::new());
        a.am_send(1, HandlerId(6), Tag::App, Bytes::new());
        assert_eq!(a.staged_len(), 2);
        drop(a);
        assert_eq!(
            b.recv_timeout(Duration::from_secs(1)).unwrap().handler,
            HandlerId(5)
        );
        assert_eq!(b.try_recv().unwrap().handler, HandlerId(6));
    }

    #[test]
    fn transport_bypass_receives_drain_frames_too() {
        let (a, b) = batched_pair(2, 1 << 20);
        a.am_send(1, HandlerId(1), Tag::App, Bytes::new());
        a.am_send(1, HandlerId(2), Tag::App, Bytes::new());
        // A system-only poll sees both frame constituents (and can sideline
        // them individually), even with something already sidelined.
        let first = b.recv_timeout(Duration::from_secs(1)).unwrap();
        b.sideline(first);
        assert_eq!(b.try_recv_transport().unwrap().handler, HandlerId(2));
        assert!(b.try_recv_transport().is_none());
        // The sidelined envelope is still there for the plain receive.
        assert_eq!(b.try_recv().unwrap().handler, HandlerId(1));
    }

    #[test]
    fn batching_off_is_todays_behavior() {
        let (mut a, _b) = pair();
        assert!(!a.batch_config().is_on());
        a.am_send(1, HandlerId(1), Tag::App, Bytes::new());
        assert_eq!(a.staged_len(), 0);
        assert_eq!(a.stats().frames_sent, 1);
        assert_eq!(a.flush(), 0);
        // Turning batching on mid-stream is allowed (nothing staged to lose).
        a.set_batch_config(BatchConfig::on(4, 1024));
        a.am_send(1, HandlerId(2), Tag::App, Bytes::new());
        assert_eq!(a.staged_len(), 1);
        // And back off: the config change flushes the stragglers.
        a.set_batch_config(BatchConfig::off());
        assert_eq!(a.staged_len(), 0);
    }
}
