//! The out-of-process wire: a UDP socket [`Transport`].
//!
//! Every transport before this one lived inside a single OS process — the
//! ring mesh is a machine *model*, not a machine. `UdpTransport` makes the
//! wire real: each rank owns one `UdpSocket`, datagrams carry a versioned
//! header, and ranks may be separate OS processes on one host (loopback) or
//! different hosts. The paper's stack (LAM/MPI over a genuinely lossy
//! interconnect) maps onto the existing decorator layering unchanged:
//!
//! ```text
//! Communicator → ReliableTransport → [ChaosTransport] → UdpTransport
//! ```
//!
//! * [`crate::batch`] frames remain the send unit — a coalesced frame is one
//!   envelope, hence one datagram;
//! * [`crate::reliable`] supplies ack/retry over the genuinely lossy socket
//!   (UDP drops under load even on loopback);
//! * [`crate::chaos`] wraps the socket to make test runs deterministic at a
//!   *seeded* loss rate regardless of what the kernel does.
//!
//! # Wire format
//!
//! Every datagram starts with a fixed 24-byte little-endian header
//! (`encode_header`/`decode_header`, checked for drift by `cargo xtask
//! analyze`): magic `"PRMA"`, protocol version, frame kind (HELLO /
//! WELCOME / DATA), source rank, epoch. DATA frames append the destination
//! rank, handler id, tag, and a length-prefixed payload. The epoch ties a
//! datagram to one launch (the launcher stamps its PID), so a straggler
//! process from a previous run cannot corrupt a new one — its frames fail
//! the epoch check and are counted, traced, and dropped.
//!
//! # Join handshake
//!
//! [`UdpBuilder::connect`] runs a symmetric two-message handshake: each rank
//! re-sends HELLO to every peer that has not yet WELCOMEd it, answers every
//! HELLO with WELCOME, and completes once WELCOMEd by all peers. A HELLO or
//! WELCOME whose version or epoch disagrees fails `connect` immediately —
//! cross-version peers are rejected at join time instead of corrupting
//! state mid-run. DATA arriving during the handshake (a peer that finished
//! earlier) is queued normally. After connect, stray HELLOs keep being
//! answered (the last rank to finish still needs WELCOMEs) and bad headers
//! are dropped with per-cause counters plus a `DcsDropped` trace event.
//!
//! # Batched I/O
//!
//! On x86-64 Linux, sends and receives go through raw `sendmmsg` /
//! `recvmmsg` syscalls (no libc, the `prema::affinity` idiom): sends stage
//! per-datagram buffers drawn from [`crate::pool`] and flush as one syscall
//! per batch; receives drain up to a batch of datagrams per syscall into
//! persistent scratch buffers. Elsewhere a portable `send_to`/`recv_from`
//! fallback keeps the module compiling. [`MTU_PAYLOAD`] is the recommended
//! `PREMA_BATCH_BYTES` ceiling so coalesced frames stay within one ethernet
//! MTU; datagrams up to [`MAX_DGRAM`] work on loopback.

use crate::envelope::{Envelope, HandlerId, Rank, Tag};
use crate::pool;
use crate::transport::{saturating_deadline, Transport};
use crate::wire::{WireReader, WireWriter};
use bytes::{BufMut, Bytes};
use prema_trace::{TraceEvent, Tracer};
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::fmt;
use std::io;
use std::net::{SocketAddr, SocketAddrV4, UdpSocket};
use std::time::{Duration, Instant};

/// `"PRMA"` in little-endian — the first four bytes of every datagram.
const MAGIC: u32 = 0x414D_5250;
/// Wire protocol version; bumped on any header or DATA layout change.
pub const PROTO_VERSION: u32 = 1;

/// Frame kinds carried in the header.
const KIND_HELLO: u32 = 0;
const KIND_WELCOME: u32 = 1;
const KIND_DATA: u32 = 2;

/// Fixed header length: magic + version + kind + src (u32 each) + epoch.
const HEADER_LEN: usize = 24;
/// DATA overhead beyond the header: dst + handler + tag + payload length
/// prefix, u32 each.
const DATA_OVERHEAD: usize = 16;

/// Largest UDP payload that fits a single IPv4 datagram (65535 − 20 IP −
/// 8 UDP). Loopback carries these whole.
pub const MAX_DGRAM: usize = 65_507;
/// Recommended `max_bytes` for [`crate::BatchConfig`] above this transport:
/// one coalesced frame stays inside a 1500-byte ethernet MTU after the UDP,
/// IP, and PREMA headers.
pub const MTU_PAYLOAD: usize = 1408;

/// Datagrams per `sendmmsg`/`recvmmsg` syscall.
const IO_BATCH: usize = 16;
/// Handshake HELLO re-send period.
const HELLO_INTERVAL: Duration = Duration::from_millis(2);
/// Longest single blocking wait inside `recv_timeout`; the loop re-checks
/// its deadline (and the cached socket timeout stays coarse enough to be
/// reused) every slice.
const BLOCK_SLICE: Duration = Duration::from_millis(100);

/// The parsed fixed header of any datagram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Header {
    magic: u32,
    version: u32,
    kind: u32,
    src: u32,
    epoch: u64,
}

// Wire schema, kept as named encode/decode pairs so `cargo xtask analyze`
// checks the field sequences against each other (see `wire_pairing`).

/// Append the fixed header to `w`.
fn encode_header(w: WireWriter, h: &Header) -> WireWriter {
    w.u32(h.magic)
        .u32(h.version)
        .u32(h.kind)
        .u32(h.src)
        .u64(h.epoch)
}

/// Read the fixed header. Field validation (magic, version, epoch) is the
/// caller's: which mismatches are fatal depends on whether we are joining
/// or in steady state.
fn decode_header(r: &mut WireReader) -> Option<Header> {
    Some(Header {
        magic: r.try_u32()?,
        version: r.try_u32()?,
        kind: r.try_u32()?,
        src: r.try_u32()?,
        epoch: r.try_u64()?,
    })
}

/// Build a control (HELLO / WELCOME) datagram. Control datagrams are
/// header-only, so their reader is [`decode_header`] itself — this is a
/// composer, not a schema writer.
fn control_dgram(kind: u32, version: u32, src: u32, epoch: u64) -> Bytes {
    encode_header(
        WireWriter::pooled(HEADER_LEN),
        &Header {
            magic: MAGIC,
            version,
            kind,
            src,
            epoch,
        },
    )
    .finish()
}

/// Build a complete DATA datagram: header, then the DATA fields.
///
/// Pooled: one buffer per datagram, recycled after the send syscall.
fn data_dgram(env: &Envelope, epoch: u64) -> Bytes {
    let w = encode_header(
        WireWriter::pooled(HEADER_LEN + DATA_OVERHEAD + env.payload.len()),
        &Header {
            magic: MAGIC,
            version: PROTO_VERSION,
            kind: KIND_DATA,
            src: env.src as u32,
            epoch,
        },
    );
    encode_dgram(w, env).finish()
}

/// Append the DATA fields following the header: dst, handler, tag, payload.
fn encode_dgram(w: WireWriter, env: &Envelope) -> WireWriter {
    w.u32(env.dst as u32)
        .u32(env.handler.0)
        .u32(match env.tag {
            Tag::App => 0,
            Tag::System => 1,
        })
        .bytes(&env.payload)
}

/// Decode the DATA fields following an already-read header.
fn decode_dgram(r: &mut WireReader, h: &Header) -> Option<Envelope> {
    let dst = r.try_u32()?;
    let handler = HandlerId(r.try_u32()?);
    let tag = match r.try_u32()? {
        0 => Tag::App,
        _ => Tag::System,
    };
    let payload = r.try_bytes()?;
    Some(Envelope {
        src: h.src as Rank,
        dst: dst as Rank,
        handler,
        tag,
        payload,
    })
}

/// Why a [`UdpBuilder`] or [`UdpTransport`] operation failed.
#[derive(Debug)]
pub enum UdpError {
    /// Socket creation / configuration failed.
    Io(io::Error),
    /// A peer address is not IPv4 (the raw-syscall path speaks
    /// `sockaddr_in` only).
    AddrUnsupported(SocketAddr),
    /// A peer spoke a different protocol version during the handshake.
    VersionMismatch {
        /// The peer's claimed rank.
        peer: u32,
        /// The version it sent.
        got: u32,
    },
    /// A peer belongs to a different launch (epoch) — typically a straggler
    /// process from a previous run.
    EpochMismatch {
        /// The peer's claimed rank.
        peer: u32,
        /// The epoch it sent.
        got: u64,
    },
    /// The handshake deadline passed before every peer answered.
    HandshakeTimeout {
        /// Ranks that never sent WELCOME.
        missing: Vec<usize>,
    },
}

impl fmt::Display for UdpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UdpError::Io(e) => write!(f, "udp socket error: {e}"),
            UdpError::AddrUnsupported(a) => write!(f, "peer address {a} is not IPv4"),
            UdpError::VersionMismatch { peer, got } => write!(
                f,
                "peer rank {peer} speaks protocol version {got}, this build speaks {PROTO_VERSION}"
            ),
            UdpError::EpochMismatch { peer, got } => {
                write!(
                    f,
                    "peer rank {peer} belongs to a different launch (epoch {got})"
                )
            }
            UdpError::HandshakeTimeout { missing } => {
                write!(f, "handshake timed out waiting for ranks {missing:?}")
            }
        }
    }
}

impl std::error::Error for UdpError {}

impl From<io::Error> for UdpError {
    fn from(e: io::Error) -> Self {
        UdpError::Io(e)
    }
}

/// Datagram-level counters, snapshot via [`UdpTransport::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UdpStats {
    /// DATA datagrams handed to the kernel.
    pub sent: u64,
    /// DATA datagrams delivered up the stack.
    pub received: u64,
    /// `sendmmsg` (or fallback send) syscalls issued.
    pub send_calls: u64,
    /// `recvmmsg` (or fallback recv) syscalls that returned datagrams.
    pub recv_calls: u64,
    /// Datagrams shorter than the fixed header.
    pub runts: u64,
    /// Header magic mismatches (stray traffic on our port).
    pub bad_magic: u64,
    /// Protocol-version mismatches seen in steady state.
    pub bad_version: u64,
    /// Epoch mismatches seen in steady state (straggler processes).
    pub bad_epoch: u64,
    /// DATA frames whose header fields parse but body does not.
    pub malformed: u64,
    /// DATA frames addressed to a different rank.
    pub misrouted: u64,
    /// Sends refused because the encoded datagram exceeds [`MAX_DGRAM`].
    pub oversize: u64,
    /// Datagrams abandoned after a send-side socket error.
    pub send_errors: u64,
    /// HELLOs answered with WELCOME (handshake and steady state).
    pub hellos_answered: u64,
}

/// Raw batched-I/O syscalls for x86-64 Linux — no libc, the
/// `prema::affinity` idiom. Struct layouts match the kernel ABI for this
/// target exactly (x86-64 `sockaddr_in` / `iovec` / `msghdr` / `mmsghdr`).
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod sys {
    use std::net::SocketAddrV4;

    pub const MSG_DONTWAIT: i64 = 0x40;
    pub const EAGAIN: i64 = 11;
    pub const EINTR: i64 = 4;

    /// Kernel `struct iovec`.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct IoVec {
        pub base: *mut u8,
        pub len: usize,
    }

    /// Kernel `struct sockaddr_in` (16 bytes).
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct SockAddrIn {
        pub family: u16,
        pub port_be: u16,
        pub addr_be: u32,
        pub zero: [u8; 8],
    }

    /// Kernel `struct msghdr` (56 bytes on x86-64; `repr(C)` reproduces the
    /// kernel's padding after `namelen` and `flags`).
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct MsgHdr {
        pub name: *mut SockAddrIn,
        pub namelen: u32,
        pub iov: *mut IoVec,
        pub iovlen: usize,
        pub control: *mut u8,
        pub controllen: usize,
        pub flags: i32,
    }

    /// Kernel `struct mmsghdr` (64 bytes on x86-64).
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct MMsgHdr {
        pub hdr: MsgHdr,
        pub len: u32,
    }

    pub const AF_INET: u16 = 2;

    pub fn to_sockaddr(sa: &SocketAddrV4) -> SockAddrIn {
        SockAddrIn {
            family: AF_INET,
            port_be: sa.port().to_be(),
            addr_be: u32::from_be_bytes(sa.ip().octets()).to_be(),
            zero: [0; 8],
        }
    }

    pub fn from_sockaddr(sa: &SockAddrIn) -> SocketAddrV4 {
        SocketAddrV4::new(
            std::net::Ipv4Addr::from(u32::from_be(sa.addr_be).to_be_bytes()),
            u16::from_be(sa.port_be),
        )
    }

    /// `sendmmsg(fd, hdrs, vlen, flags)`; returns datagrams sent or
    /// `-errno`.
    ///
    /// # Safety
    /// `hdrs[..vlen]` must point at valid, live iovec/sockaddr scaffolding
    /// for the duration of the call.
    pub unsafe fn sendmmsg(fd: i32, hdrs: *mut MMsgHdr, vlen: u32, flags: i64) -> i64 {
        let ret: i64;
        // SAFETY: the syscall reads only through the pointers the caller
        // vouches for; rcx/r11 are clobbered by `syscall` itself.
        std::arch::asm!(
            "syscall",
            inlateout("rax") 307i64 => ret, // __NR_sendmmsg
            in("rdi") fd as i64,
            in("rsi") hdrs,
            in("rdx") vlen as i64,
            in("r10") flags,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    /// `recvmmsg(fd, hdrs, vlen, MSG_DONTWAIT, NULL)`; returns datagrams
    /// received or `-errno` (notably `-EAGAIN` when the queue is empty).
    ///
    /// # Safety
    /// `hdrs[..vlen]` must point at valid scaffolding whose iovec buffers
    /// are writable for the duration of the call.
    pub unsafe fn recvmmsg(fd: i32, hdrs: *mut MMsgHdr, vlen: u32) -> i64 {
        let ret: i64;
        // SAFETY: as for `sendmmsg`; the kernel writes through the iovec
        // and sockaddr pointers, all owned by the caller's scratch arrays.
        std::arch::asm!(
            "syscall",
            inlateout("rax") 299i64 => ret, // __NR_recvmmsg
            in("rdi") fd as i64,
            in("rsi") hdrs,
            in("rdx") vlen as i64,
            in("r10") MSG_DONTWAIT,
            in("r8") 0i64, // no per-call timeout struct
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    /// Persistent syscall scaffolding: pointer arrays rebuilt (not
    /// reallocated) on every batched call.
    pub struct Scratch {
        pub addrs: Vec<SockAddrIn>,
        pub iovs: Vec<IoVec>,
        pub hdrs: Vec<MMsgHdr>,
    }

    impl Scratch {
        pub fn with_capacity(n: usize) -> Self {
            Scratch {
                addrs: Vec::with_capacity(n),
                iovs: Vec::with_capacity(n),
                hdrs: Vec::with_capacity(n),
            }
        }
    }

    // SAFETY: the raw pointers inside `Scratch` are only ever written and
    // consumed within a single batched-I/O call on one thread — between
    // calls they are dangling scaffolding, never dereferenced. Ownership of
    // the pointed-to buffers lives beside the scratch in the same transport.
    unsafe impl Send for Scratch {}
}

/// Send-side state: datagrams staged (destination rank + encoded bytes)
/// until the next flush.
struct TxState {
    staged: Vec<(Rank, Bytes)>,
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    sys: sys::Scratch,
}

/// Receive-side state: decoded envelopes ready for delivery plus the
/// persistent datagram scratch buffers the kernel fills.
struct RxState {
    ready: VecDeque<Envelope>,
    bufs: Vec<Vec<u8>>,
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    sys: sys::Scratch,
}

/// A bound-but-unjoined UDP endpoint: created by [`UdpTransport::bind`],
/// consumed by [`UdpBuilder::connect`]. The two-phase construction exists
/// because every rank must learn every peer's bound port before anyone can
/// join — the launcher collects [`UdpBuilder::local_addr`] from each rank
/// and distributes the full map.
pub struct UdpBuilder {
    socket: UdpSocket,
    local: SocketAddr,
}

impl UdpBuilder {
    /// This endpoint's bound address (advertise this to peers).
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Run the join handshake and produce the transport. `peers[r]` is rank
    /// `r`'s bound address (including our own at `peers[rank]`); `epoch`
    /// identifies this launch (the launcher stamps its PID) and must agree
    /// across ranks. Fails fast on a version or epoch mismatch, and with
    /// [`UdpError::HandshakeTimeout`] if any peer stays silent past
    /// `timeout`.
    pub fn connect(
        self,
        rank: Rank,
        peers: Vec<SocketAddr>,
        epoch: u64,
        timeout: Duration,
    ) -> Result<UdpTransport, UdpError> {
        let t = UdpTransport::from_parts(self.socket, rank, peers, epoch)?;
        t.handshake(PROTO_VERSION, timeout)?;
        Ok(t)
    }
}

/// A socket-backed [`Transport`]: one UDP socket per rank, versioned
/// datagrams, batched syscalls. See the module docs for the layering and
/// wire format.
pub struct UdpTransport {
    socket: UdpSocket,
    rank: Rank,
    epoch: u64,
    peers: Vec<SocketAddrV4>,
    tx: RefCell<TxState>,
    rx: RefCell<RxState>,
    stats: RefCell<UdpStats>,
    /// Staged datagrams that trigger an eager flush (see
    /// `PREMA_UDP_BATCH`).
    tx_batch: usize,
    /// Last value handed to `set_read_timeout`, to skip redundant
    /// `setsockopt` syscalls in the blocking-receive loop.
    cached_timeout: Cell<Option<Duration>>,
    tracer: Tracer,
}

impl UdpTransport {
    /// Bind a socket (use port 0 to let the kernel pick) and start the
    /// two-phase join. `PREMA_UDP_BATCH` (validated via [`crate::env`])
    /// overrides the staged-datagram flush threshold.
    pub fn bind(addr: SocketAddr) -> Result<UdpBuilder, UdpError> {
        let socket = UdpSocket::bind(addr)?;
        let local = socket.local_addr()?;
        Ok(UdpBuilder { socket, local })
    }

    fn from_parts(
        socket: UdpSocket,
        rank: Rank,
        peers: Vec<SocketAddr>,
        epoch: u64,
    ) -> Result<Self, UdpError> {
        let peers = peers
            .into_iter()
            .map(|a| match a {
                SocketAddr::V4(v4) => Ok(v4),
                other => Err(UdpError::AddrUnsupported(other)),
            })
            .collect::<Result<Vec<_>, _>>()?;
        let tx_batch = crate::env::usize_var("PREMA_UDP_BATCH")
            .unwrap_or(IO_BATCH)
            .clamp(1, 1024);
        Ok(UdpTransport {
            socket,
            rank,
            epoch,
            peers,
            tx: RefCell::new(TxState {
                staged: Vec::with_capacity(tx_batch),
                #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
                sys: sys::Scratch::with_capacity(IO_BATCH),
            }),
            rx: RefCell::new(RxState {
                ready: VecDeque::new(),
                bufs: (0..IO_BATCH).map(|_| vec![0u8; MAX_DGRAM]).collect(),
                #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
                sys: sys::Scratch::with_capacity(IO_BATCH),
            }),
            stats: RefCell::new(UdpStats::default()),
            tx_batch,
            cached_timeout: Cell::new(None),
            tracer: Tracer::off(),
        })
    }

    /// Attach a tracer so dropped datagrams show up in the event stream.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// This rank's bound socket address.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.socket.local_addr().ok()
    }

    /// The launch epoch this transport joined with.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Snapshot the datagram counters.
    pub fn stats(&self) -> UdpStats {
        *self.stats.borrow()
    }

    /// Fire-and-forget a control frame to `addr` (handshake traffic — tiny,
    /// rare, not worth staging).
    fn send_control(&self, kind: u32, version: u32, addr: &SocketAddrV4) {
        let frame = control_dgram(kind, version, self.rank as u32, self.epoch);
        let _ = self.socket.send_to(&frame, addr);
        let _ = pool::recycle(frame);
    }

    /// The symmetric join protocol (see the module docs). `version` is a
    /// parameter so tests can impersonate an incompatible build.
    fn handshake(&self, version: u32, timeout: Duration) -> Result<(), UdpError> {
        let deadline = saturating_deadline(timeout);
        let n = self.peers.len();
        let mut welcomed = vec![false; n];
        welcomed[self.rank] = true;
        let mut next_hello = Instant::now();
        loop {
            if welcomed.iter().all(|w| *w) {
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(UdpError::HandshakeTimeout {
                    missing: (0..n).filter(|&r| !welcomed[r]).collect(),
                });
            }
            if now >= next_hello {
                for (r, w) in welcomed.iter().enumerate() {
                    if !*w {
                        self.send_control(KIND_HELLO, version, &self.peers[r]);
                    }
                }
                next_hello = now + HELLO_INTERVAL;
            }
            let wait = (deadline - now).min(HELLO_INTERVAL);
            self.set_read_timeout(wait);
            let (len, from) = {
                let rx = &mut *self.rx.borrow_mut();
                match self.socket.recv_from(&mut rx.bufs[0]) {
                    Ok((len, SocketAddr::V4(from))) => (len, from),
                    Ok(_) => continue,
                    Err(e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut =>
                    {
                        continue
                    }
                    Err(e) => return Err(UdpError::Io(e)),
                }
            };
            self.handshake_ingest(len, from, version, &mut welcomed)?;
        }
    }

    /// Classify one datagram received while joining. Version/epoch
    /// mismatches are fatal here (the whole point of the handshake); DATA
    /// from peers that finished earlier is queued for normal delivery.
    fn handshake_ingest(
        &self,
        len: usize,
        from: SocketAddrV4,
        version: u32,
        welcomed: &mut [bool],
    ) -> Result<(), UdpError> {
        let Some((header, body)) = self.parse_header(len) else {
            return Ok(()); // runt or stray magic: counted, ignored
        };
        if header.version != version {
            return Err(UdpError::VersionMismatch {
                peer: header.src,
                got: header.version,
            });
        }
        if header.epoch != self.epoch {
            return Err(UdpError::EpochMismatch {
                peer: header.src,
                got: header.epoch,
            });
        }
        match header.kind {
            KIND_HELLO => {
                self.stats.borrow_mut().hellos_answered += 1;
                self.send_control(KIND_WELCOME, version, &from);
            }
            KIND_WELCOME => {
                let src = header.src as usize;
                if src < welcomed.len() {
                    welcomed[src] = true;
                }
            }
            KIND_DATA => {
                let mut r = WireReader::new(body);
                match decode_dgram(&mut r, &header) {
                    Some(env) if env.dst == self.rank => {
                        self.stats.borrow_mut().received += 1;
                        self.rx.borrow_mut().ready.push_back(env);
                    }
                    Some(_) => self.stats.borrow_mut().misrouted += 1,
                    None => self.stats.borrow_mut().malformed += 1,
                }
            }
            _ => self.stats.borrow_mut().malformed += 1,
        }
        Ok(())
    }

    /// Copy `rx.bufs[0][..len]` into a pooled buffer, read and
    /// magic-check the header. Returns the header plus the remaining body.
    /// `None` ⇒ already counted as runt / stray.
    fn parse_header(&self, len: usize) -> Option<(Header, Bytes)> {
        if len < HEADER_LEN {
            self.stats.borrow_mut().runts += 1;
            return None;
        }
        let frame = {
            let rx = self.rx.borrow();
            let mut b = pool::take(len);
            b.put_slice(&rx.bufs[0][..len]);
            b.freeze()
        };
        let mut r = WireReader::new(frame);
        let header = decode_header(&mut r)?;
        if header.magic != MAGIC {
            self.stats.borrow_mut().bad_magic += 1;
            return None;
        }
        // The reader has advanced past the header: what's left is the body.
        Some((header, r.into_inner()))
    }

    /// Steady-state classification of one received datagram (bytes already
    /// copied out of the scratch buffer). Bad headers are counted, traced,
    /// and dropped — never fatal once joined.
    fn ingest_dgram(&self, frame: Bytes, from: SocketAddrV4, ready: &mut VecDeque<Envelope>) {
        if frame.len() < HEADER_LEN {
            self.stats.borrow_mut().runts += 1;
            return;
        }
        let mut r = WireReader::new(frame);
        let Some(header) = decode_header(&mut r) else {
            self.stats.borrow_mut().runts += 1;
            return;
        };
        let peer = (header.src as usize).min(self.peers.len());
        if header.magic != MAGIC {
            self.stats.borrow_mut().bad_magic += 1;
            return;
        }
        if header.version != PROTO_VERSION {
            self.stats.borrow_mut().bad_version += 1;
            self.tracer
                .emit(|| TraceEvent::DcsDropped { peer, handler: 0 });
            return;
        }
        if header.epoch != self.epoch {
            self.stats.borrow_mut().bad_epoch += 1;
            self.tracer
                .emit(|| TraceEvent::DcsDropped { peer, handler: 0 });
            return;
        }
        match header.kind {
            KIND_HELLO => {
                // A peer still joining (we finished first): keep answering.
                self.stats.borrow_mut().hellos_answered += 1;
                self.send_control(KIND_WELCOME, PROTO_VERSION, &from);
            }
            KIND_WELCOME => {}
            KIND_DATA => match decode_dgram(&mut r, &header) {
                Some(env) if env.dst == self.rank => {
                    self.stats.borrow_mut().received += 1;
                    ready.push_back(env);
                }
                Some(env) => {
                    self.stats.borrow_mut().misrouted += 1;
                    self.tracer.emit(|| TraceEvent::DcsDropped {
                        peer,
                        handler: env.handler.0,
                    });
                }
                None => {
                    self.stats.borrow_mut().malformed += 1;
                    self.tracer
                        .emit(|| TraceEvent::DcsDropped { peer, handler: 0 });
                }
            },
            _ => self.stats.borrow_mut().malformed += 1,
        }
    }

    /// Set the socket read timeout, skipping the `setsockopt` when the
    /// value is unchanged (the blocking loop re-arms every slice).
    fn set_read_timeout(&self, wait: Duration) {
        let wait = wait.max(Duration::from_millis(1));
        if self.cached_timeout.get() == Some(wait) {
            return;
        }
        if self.socket.set_read_timeout(Some(wait)).is_ok() {
            self.cached_timeout.set(Some(wait));
        }
    }

    /// Push every staged datagram to the kernel — `sendmmsg` in
    /// [`IO_BATCH`]-sized chunks. Buffers are recycled into the pool after
    /// the syscall.
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    fn flush_tx(&self) {
        use std::os::fd::AsRawFd;
        let tx = &mut *self.tx.borrow_mut();
        if tx.staged.is_empty() {
            return;
        }
        let fd = self.socket.as_raw_fd();
        let mut start = 0;
        while start < tx.staged.len() {
            let chunk = (tx.staged.len() - start).min(IO_BATCH);
            tx.sys.addrs.clear();
            tx.sys.iovs.clear();
            tx.sys.hdrs.clear();
            for (dst, bytes) in tx.staged[start..start + chunk].iter() {
                tx.sys.addrs.push(sys::to_sockaddr(&self.peers[*dst]));
                tx.sys.iovs.push(sys::IoVec {
                    base: bytes.as_ptr() as *mut u8,
                    len: bytes.len(),
                });
            }
            for i in 0..chunk {
                tx.sys.hdrs.push(sys::MMsgHdr {
                    hdr: sys::MsgHdr {
                        name: &mut tx.sys.addrs[i],
                        namelen: std::mem::size_of::<sys::SockAddrIn>() as u32,
                        iov: &mut tx.sys.iovs[i],
                        iovlen: 1,
                        control: std::ptr::null_mut(),
                        controllen: 0,
                        flags: 0,
                    },
                    len: 0,
                });
            }
            // SAFETY: hdrs/iovs/addrs live in `tx.sys`, the payload bytes in
            // `tx.staged` — all alive across the call, nothing aliased
            // mutably.
            let ret = unsafe { sys::sendmmsg(fd, tx.sys.hdrs.as_mut_ptr(), chunk as u32, 0) };
            let mut stats = self.stats.borrow_mut();
            stats.send_calls += 1;
            if ret > 0 {
                stats.sent += ret as u64;
                start += ret as usize;
            } else if ret == -sys::EINTR || ret == -sys::EAGAIN {
                // Interrupted or transiently full: retry the same chunk.
            } else {
                // Hard error (e.g. ECONNREFUSED bounced off a dead peer):
                // skip one datagram so the flush always terminates.
                stats.send_errors += 1;
                start += 1;
            }
        }
        for (_, bytes) in tx.staged.drain(..) {
            let _ = pool::recycle(bytes);
        }
    }

    /// Portable fallback: one `send_to` per staged datagram.
    #[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
    fn flush_tx(&self) {
        let tx = &mut *self.tx.borrow_mut();
        for (dst, bytes) in tx.staged.drain(..) {
            let mut stats = self.stats.borrow_mut();
            stats.send_calls += 1;
            match self.socket.send_to(&bytes, self.peers[dst]) {
                Ok(_) => stats.sent += 1,
                Err(_) => stats.send_errors += 1,
            }
            drop(stats);
            let _ = pool::recycle(bytes);
        }
    }

    /// Drain everything queued on the socket without blocking — `recvmmsg`
    /// in [`IO_BATCH`]-sized gulps. Returns envelopes made ready.
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    fn drain_rx(&self) -> usize {
        use std::os::fd::AsRawFd;
        let fd = self.socket.as_raw_fd();
        let rx = &mut *self.rx.borrow_mut();
        let before = rx.ready.len();
        loop {
            let RxState { bufs, sys: s, .. } = rx;
            s.addrs.clear();
            s.iovs.clear();
            s.hdrs.clear();
            for b in bufs.iter_mut() {
                s.addrs.push(sys::SockAddrIn {
                    family: 0,
                    port_be: 0,
                    addr_be: 0,
                    zero: [0; 8],
                });
                s.iovs.push(sys::IoVec {
                    base: b.as_mut_ptr(),
                    len: b.len(),
                });
            }
            for i in 0..bufs.len() {
                s.hdrs.push(sys::MMsgHdr {
                    hdr: sys::MsgHdr {
                        name: &mut s.addrs[i],
                        namelen: std::mem::size_of::<sys::SockAddrIn>() as u32,
                        iov: &mut s.iovs[i],
                        iovlen: 1,
                        control: std::ptr::null_mut(),
                        controllen: 0,
                        flags: 0,
                    },
                    len: 0,
                });
            }
            let vlen = bufs.len() as u32;
            // SAFETY: scaffolding and buffers both live in `rx`, held
            // exclusively for the duration of the call.
            let ret = unsafe { sys::recvmmsg(fd, s.hdrs.as_mut_ptr(), vlen) };
            if ret <= 0 {
                // -EAGAIN: queue empty. -EINTR: let the caller's loop retry.
                break;
            }
            self.stats.borrow_mut().recv_calls += 1;
            let got = ret as usize;
            for i in 0..got {
                let len = rx.sys.hdrs[i].len as usize;
                let from = sys::from_sockaddr(&rx.sys.addrs[i]);
                let frame = {
                    let mut b = pool::take(len.max(1));
                    b.put_slice(&rx.bufs[i][..len]);
                    b.freeze()
                };
                self.ingest_dgram(frame, from, &mut rx.ready);
            }
            if got < vlen as usize {
                break; // queue drained mid-batch
            }
        }
        rx.ready.len() - before
    }

    /// Portable fallback: nonblocking `recv_from` until `WouldBlock`.
    #[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
    fn drain_rx(&self) -> usize {
        let rx = &mut *self.rx.borrow_mut();
        let before = rx.ready.len();
        if self.socket.set_nonblocking(true).is_err() {
            return 0;
        }
        loop {
            let got = {
                let RxState { bufs, .. } = rx;
                match self.socket.recv_from(&mut bufs[0]) {
                    Ok((len, SocketAddr::V4(from))) => Some((len, from)),
                    Ok(_) => continue,
                    Err(_) => None,
                }
            };
            let Some((len, from)) = got else { break };
            self.stats.borrow_mut().recv_calls += 1;
            let frame = {
                let mut b = pool::take(len.max(1));
                b.put_slice(&rx.bufs[0][..len]);
                b.freeze()
            };
            self.ingest_dgram(frame, from, &mut rx.ready);
        }
        let _ = self.socket.set_nonblocking(false);
        self.cached_timeout.set(None);
        rx.ready.len() - before
    }
}

impl Transport for UdpTransport {
    fn rank(&self) -> Rank {
        self.rank
    }

    fn nprocs(&self) -> usize {
        self.peers.len()
    }

    fn send(&self, env: Envelope) {
        if env.payload.len() > MAX_DGRAM - HEADER_LEN - DATA_OVERHEAD {
            self.stats.borrow_mut().oversize += 1;
            self.tracer.emit(|| TraceEvent::DcsDropped {
                peer: env.dst,
                handler: env.handler.0,
            });
            return;
        }
        let dgram = data_dgram(&env, self.epoch);
        let mut tx = self.tx.borrow_mut();
        tx.staged.push((env.dst, dgram));
        let full = tx.staged.len() >= self.tx_batch;
        drop(tx);
        if full {
            self.flush_tx();
        }
    }

    fn try_recv(&self) -> Option<Envelope> {
        self.flush_tx();
        if let Some(env) = self.rx.borrow_mut().ready.pop_front() {
            return Some(env);
        }
        self.drain_rx();
        self.rx.borrow_mut().ready.pop_front()
    }

    fn recv_timeout(&self, timeout: Duration) -> Option<Envelope> {
        if let Some(env) = self.try_recv() {
            return Some(env);
        }
        let deadline = saturating_deadline(timeout);
        loop {
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let wait = (deadline - now).min(BLOCK_SLICE);
            self.set_read_timeout(wait);
            let got = {
                let rx = &mut *self.rx.borrow_mut();
                match self.socket.recv_from(&mut rx.bufs[0]) {
                    Ok((len, SocketAddr::V4(from))) => Some((len, from)),
                    _ => None,
                }
            };
            if let Some((len, from)) = got {
                self.stats.borrow_mut().recv_calls += 1;
                let frame = {
                    let rx = self.rx.borrow();
                    let mut b = pool::take(len.max(1));
                    b.put_slice(&rx.bufs[0][..len]);
                    b.freeze()
                };
                {
                    let rx = &mut *self.rx.borrow_mut();
                    self.ingest_dgram(frame, from, &mut rx.ready);
                }
            }
            if let Some(env) = self.try_recv() {
                return Some(env);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::{ChaosConfig, ChaosHandle, ChaosTransport};
    use crate::reliable::{ReliableTransport, RetryConfig};

    fn loopback() -> SocketAddr {
        "127.0.0.1:0".parse().expect("loopback addr")
    }

    fn env_to(src: Rank, dst: Rank, n: u32) -> Envelope {
        Envelope {
            src,
            dst,
            handler: HandlerId(n),
            tag: Tag::App,
            payload: Bytes::from_static(b"payload"),
        }
    }

    /// Two in-process transports joined over real loopback sockets.
    fn pair(epoch: u64) -> (UdpTransport, UdpTransport) {
        let b0 = UdpTransport::bind(loopback()).expect("bind rank 0");
        let b1 = UdpTransport::bind(loopback()).expect("bind rank 1");
        let addrs = vec![b0.local_addr(), b1.local_addr()];
        let addrs1 = addrs.clone();
        let h = std::thread::spawn(move || {
            b1.connect(1, addrs1, epoch, Duration::from_secs(5))
                .expect("rank 1 join")
        });
        let t0 = b0
            .connect(0, addrs, epoch, Duration::from_secs(5))
            .expect("rank 0 join");
        let t1 = h.join().expect("rank 1 thread");
        (t0, t1)
    }

    #[test]
    fn header_roundtrip() {
        let h = Header {
            magic: MAGIC,
            version: PROTO_VERSION,
            kind: KIND_DATA,
            src: 3,
            epoch: 0xDEAD_BEEF,
        };
        let bytes = encode_header(WireWriter::new(), &h).finish();
        assert_eq!(bytes.len(), HEADER_LEN);
        let mut r = WireReader::new(bytes);
        assert_eq!(decode_header(&mut r), Some(h));
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn dgram_roundtrip() {
        let env = Envelope {
            src: 2,
            dst: 5,
            handler: HandlerId(0xFEED),
            tag: Tag::System,
            payload: Bytes::from_static(b"hello wire"),
        };
        let bytes = data_dgram(&env, 42);
        let mut r = WireReader::new(bytes);
        let h = decode_header(&mut r).expect("header");
        assert_eq!(h.magic, MAGIC);
        assert_eq!(h.version, PROTO_VERSION);
        assert_eq!(h.kind, KIND_DATA);
        assert_eq!(h.src, 2);
        assert_eq!(h.epoch, 42);
        let got = decode_dgram(&mut r, &h).expect("body");
        assert_eq!(got.src, env.src);
        assert_eq!(got.dst, env.dst);
        assert_eq!(got.handler, env.handler);
        assert_eq!(got.tag, env.tag);
        assert_eq!(got.payload, env.payload);
    }

    #[test]
    fn loopback_pair_delivers_both_ways() {
        let (t0, t1) = pair(7);
        t0.send(env_to(0, 1, 11));
        let _ = t0.try_recv(); // sends stage until the sender's next poll
        let got = t1.recv_timeout(Duration::from_secs(2)).expect("0→1");
        assert_eq!(got.handler, HandlerId(11));
        assert_eq!(got.src, 0);
        t1.send(env_to(1, 0, 22));
        let _ = t1.try_recv();
        let got = t0.recv_timeout(Duration::from_secs(2)).expect("1→0");
        assert_eq!(got.handler, HandlerId(22));
        assert!(t0.stats().sent >= 1);
        assert!(t0.stats().received >= 1);
    }

    #[test]
    fn staged_sends_flush_as_one_batch() {
        let (t0, t1) = pair(8);
        // Below the flush threshold: sends stage, the next receive-side
        // flush pushes them all (one syscall on the batched path).
        for i in 0..5 {
            t0.send(env_to(0, 1, i));
        }
        let _ = t0.try_recv(); // flushes
        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(2);
        while got.len() < 5 && Instant::now() < deadline {
            if let Some(e) = t1.recv_timeout(Duration::from_millis(50)) {
                got.push(e.handler.0);
            }
        }
        assert_eq!(got, vec![0, 1, 2, 3, 4], "in order, exactly once");
    }

    #[test]
    fn batch_frames_pass_through() {
        let (t0, t1) = pair(9);
        t0.send_batch(1, vec![env_to(0, 1, 1), env_to(0, 1, 2)]);
        let _ = t0.try_recv();
        let mut out = VecDeque::new();
        let deadline = Instant::now() + Duration::from_secs(2);
        while out.len() < 2 && Instant::now() < deadline {
            if t1.try_recv_batch(&mut out) == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        let ids: Vec<u32> = out.iter().map(|e| e.handler.0).collect();
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn oversize_payload_is_dropped_not_sent() {
        let (t0, t1) = pair(10);
        let huge = Envelope {
            src: 0,
            dst: 1,
            handler: HandlerId(1),
            tag: Tag::App,
            payload: Bytes::from(vec![0u8; MAX_DGRAM]),
        };
        t0.send(huge);
        assert_eq!(t0.stats().oversize, 1);
        assert!(t1.recv_timeout(Duration::from_millis(50)).is_none());
    }

    #[test]
    fn stray_and_stale_datagrams_are_counted_and_dropped() {
        let (t0, t1) = pair(11);
        let t1_addr = t1.local_addr().expect("t1 addr");
        let stray = UdpSocket::bind("127.0.0.1:0").expect("stray socket");
        // Runt (shorter than the header).
        stray.send_to(&[1, 2, 3], t1_addr).expect("send runt");
        // Wrong magic.
        let bad_magic = encode_header(
            WireWriter::new(),
            &Header {
                magic: 0x1234_5678,
                version: PROTO_VERSION,
                kind: KIND_DATA,
                src: 0,
                epoch: 11,
            },
        )
        .finish();
        stray.send_to(&bad_magic, t1_addr).expect("send bad magic");
        // Wrong version.
        let bad_version = control_dgram(KIND_DATA, PROTO_VERSION + 9, 0, 11);
        stray
            .send_to(&bad_version, t1_addr)
            .expect("send bad version");
        // Wrong epoch (straggler from a previous launch).
        let stale = control_dgram(KIND_DATA, PROTO_VERSION, 0, 999);
        stray.send_to(&stale, t1_addr).expect("send stale epoch");
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            assert!(t1.try_recv().is_none(), "nothing bad may be delivered");
            let s = t1.stats();
            if s.runts >= 1 && s.bad_magic >= 1 && s.bad_version >= 1 && s.bad_epoch >= 1 {
                break;
            }
            assert!(Instant::now() < deadline, "counters never arrived: {s:?}");
            std::thread::sleep(Duration::from_millis(1));
        }
        drop(t0);
    }

    #[test]
    fn handshake_rejects_wrong_protocol_version() {
        let b = UdpTransport::bind(loopback()).expect("bind");
        let imposter = UdpSocket::bind("127.0.0.1:0").expect("imposter");
        let my_addr = b.local_addr();
        let peer_addr = imposter.local_addr().expect("imposter addr");
        // An incompatible build announces itself with a newer version.
        let hello = control_dgram(KIND_HELLO, PROTO_VERSION + 1, 1, 77);
        imposter.send_to(&hello, my_addr).expect("send hello");
        let err = b
            .connect(0, vec![my_addr, peer_addr], 77, Duration::from_secs(2))
            .err()
            .expect("must reject");
        match err {
            UdpError::VersionMismatch { peer, got } => {
                assert_eq!(peer, 1);
                assert_eq!(got, PROTO_VERSION + 1);
            }
            other => panic!("wrong rejection: {other}"),
        }
    }

    #[test]
    fn handshake_rejects_wrong_epoch() {
        let b = UdpTransport::bind(loopback()).expect("bind");
        let straggler = UdpSocket::bind("127.0.0.1:0").expect("straggler");
        let my_addr = b.local_addr();
        let peer_addr = straggler.local_addr().expect("straggler addr");
        // A process from a previous launch (different epoch) knocks.
        let hello = control_dgram(KIND_HELLO, PROTO_VERSION, 1, 1000);
        straggler.send_to(&hello, my_addr).expect("send hello");
        let err = b
            .connect(0, vec![my_addr, peer_addr], 2000, Duration::from_secs(2))
            .err()
            .expect("must reject");
        match err {
            UdpError::EpochMismatch { peer, got } => {
                assert_eq!(peer, 1);
                assert_eq!(got, 1000);
            }
            other => panic!("wrong rejection: {other}"),
        }
    }

    #[test]
    fn handshake_times_out_on_silent_peer() {
        let b = UdpTransport::bind(loopback()).expect("bind");
        let silent = UdpSocket::bind("127.0.0.1:0").expect("silent peer");
        let my_addr = b.local_addr();
        let peer_addr = silent.local_addr().expect("silent addr");
        let err = b
            .connect(0, vec![my_addr, peer_addr], 5, Duration::from_millis(100))
            .err()
            .expect("must time out");
        match err {
            UdpError::HandshakeTimeout { missing } => assert_eq!(missing, vec![1]),
            other => panic!("wrong failure: {other}"),
        }
    }

    /// The full production stack over a real socket: reliable over chaos
    /// over UDP, seeded loss, exactly-once in-order delivery.
    #[test]
    fn reliable_chaos_over_udp_delivers_exactly_once() {
        let (t0, t1) = pair(12);
        let handle = ChaosHandle::new();
        let cfg = ChaosConfig::adversarial(0xFACE, 0.20);
        let retry = RetryConfig {
            retry_ticks: 8,
            max_backoff_shift: 3,
        };
        let a = ReliableTransport::with_retry(ChaosTransport::new(t0, cfg, handle.clone()), retry);
        let b = ReliableTransport::with_retry(ChaosTransport::new(t1, cfg, handle.clone()), retry);
        for i in 0..50 {
            a.send(env_to(0, 1, i));
        }
        let receiver = std::thread::spawn(move || {
            let mut got = Vec::new();
            let deadline = Instant::now() + Duration::from_secs(10);
            while got.len() < 50 && Instant::now() < deadline {
                if let Some(e) = b.recv_timeout(Duration::from_millis(5)) {
                    got.push(e.handler.0);
                }
            }
            got
        });
        // Drive the sender: flush, ACK processing, retransmits.
        let deadline = Instant::now() + Duration::from_secs(10);
        while !a.all_acked() && Instant::now() < deadline {
            let _ = a.recv_timeout(Duration::from_millis(2));
        }
        let got = receiver.join().expect("receiver thread");
        assert_eq!(got, (0..50).collect::<Vec<_>>(), "exactly once, in order");
        assert!(a.all_acked(), "every frame acknowledged over the socket");
    }
}
