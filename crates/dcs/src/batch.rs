//! Per-destination message coalescing.
//!
//! The shared-inbox fast path (DESIGN.md §8) made the empty poll O(1) but
//! left bulk throughput paying one contended channel op + condvar wake per
//! envelope. This module supplies the canonical active-message fix — the
//! same per-destination aggregation Charm++ (TRAM) and GASNet use for the
//! small-message regime: the [`crate::Communicator`] stages application
//! envelopes per destination and ships a whole batch as **one wire frame**.
//!
//! A frame is itself an ordinary [`Envelope`] addressed to [`H_DCS_BATCH`],
//! which is what makes the layer compose with the transport decorators for
//! free: `ReliableTransport` assigns the frame one sequence number (the
//! frame is the retransmit unit) and `ChaosTransport` rolls one fate per
//! frame, with **zero changes to either decorator**. The receiving
//! communicator expands a frame back into its constituent envelopes before
//! any higher layer sees it.
//!
//! Ordering: only `Tag::App` traffic is ever staged, and a system send to a
//! destination first flushes that destination's pending batch. Within a
//! frame, envelopes are decoded in the order they were staged; frames ride
//! the same per-pair-FIFO channel as everything else. The per-pair delivery
//! order of the unbatched substrate is therefore preserved exactly —
//! pinned by the batched-mode companion of `shared_queue_preserves_per_pair_fifo`.

use crate::envelope::{Envelope, HandlerId, Rank, Tag};
use crate::pool;
use crate::wire::{WireReader, WireWriter};
use std::collections::VecDeque;

/// Handler id marking a coalesced frame. Never dispatched: the communicator
/// expands frames before delivery, so handler tables never see it.
pub const H_DCS_BATCH: HandlerId = HandlerId(HandlerId::SYSTEM_BASE + 64);

/// Per-envelope framing overhead inside a frame payload: `u32` handler +
/// `u32` length prefix. Compare with the 24-byte envelope header each
/// message pays when sent unbatched — the accounting win batching is
/// measured by.
pub const PER_MSG_OVERHEAD: usize = 8;

/// Fixed frame payload overhead: the `u32` message count.
pub const FRAME_OVERHEAD: usize = 4;

/// Default [`BatchConfig::max_msgs`] when batching is enabled without an
/// explicit message cap.
pub const DEFAULT_MAX_MSGS: usize = 32;

/// Default [`BatchConfig::max_bytes`] when batching is enabled without an
/// explicit byte cap.
pub const DEFAULT_MAX_BYTES: usize = 8 * 1024;

/// Coalescing policy for a [`crate::Communicator`].
///
/// [`BatchConfig::off`] (the default) reproduces the unbatched substrate
/// exactly: every send goes straight to the transport. When on, application
/// sends are staged per destination and flushed by the three-way policy
/// described in DESIGN.md §11 (size threshold, explicit flush at poll
/// boundaries, immediate flush-and-bypass for `Tag::System`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchConfig {
    /// Flush a destination once this many envelopes are staged for it.
    /// Values below 2 mean batching is off.
    pub max_msgs: usize,
    /// Flush a destination once its pending frame payload reaches this many
    /// bytes.
    pub max_bytes: usize,
}

impl BatchConfig {
    /// Batching disabled — byte-for-byte today's unbatched behavior.
    pub const fn off() -> Self {
        BatchConfig {
            max_msgs: 0,
            max_bytes: 0,
        }
    }

    /// Batching enabled with explicit thresholds (`max_msgs` is clamped up
    /// to 2: a 1-message "batch" is just a slower direct send).
    pub fn on(max_msgs: usize, max_bytes: usize) -> Self {
        BatchConfig {
            max_msgs: max_msgs.max(2),
            max_bytes: max_bytes.max(1),
        }
    }

    /// Whether sends are coalesced under this config.
    pub fn is_on(&self) -> bool {
        self.max_msgs >= 2
    }

    /// Read `PREMA_BATCH_MSGS` / `PREMA_BATCH_BYTES`. Batching stays off
    /// unless at least one is set; a knob the other leaves at its default
    /// ([`DEFAULT_MAX_MSGS`] / [`DEFAULT_MAX_BYTES`]).
    pub fn from_env() -> Self {
        Self::from_env_values(
            std::env::var("PREMA_BATCH_MSGS").ok().as_deref(),
            std::env::var("PREMA_BATCH_BYTES").ok().as_deref(),
        )
    }

    fn from_env_values(msgs: Option<&str>, bytes: Option<&str>) -> Self {
        let msgs = crate::env::parse_usize("PREMA_BATCH_MSGS", msgs);
        let bytes = crate::env::parse_usize("PREMA_BATCH_BYTES", bytes);
        if msgs.is_none() && bytes.is_none() {
            return Self::off();
        }
        Self::on(
            msgs.unwrap_or(DEFAULT_MAX_MSGS),
            bytes.unwrap_or(DEFAULT_MAX_BYTES),
        )
    }
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self::off()
    }
}

/// Payload length of the frame that would carry `msgs`.
pub fn frame_payload_len(msgs: &[Envelope]) -> usize {
    FRAME_OVERHEAD
        + msgs
            .iter()
            .map(|e| PER_MSG_OVERHEAD + e.payload.len())
            .sum::<usize>()
}

/// Coalesce `msgs` (all staged for `dst`) into one wire frame. The staged
/// payload buffers are recycled into the thread-local [`pool`] after being
/// copied into the frame — this is the allocation-reuse loop that makes the
/// batched hot path allocation-free in steady state.
pub fn encode_frame(src: Rank, dst: Rank, msgs: Vec<Envelope>) -> Envelope {
    debug_assert!(msgs.len() >= 2, "a frame coalesces at least two envelopes");
    let mut w = WireWriter::pooled(frame_payload_len(&msgs));
    w = w.u32(msgs.len() as u32);
    for env in msgs {
        debug_assert_eq!(env.dst, dst, "staged envelope addressed elsewhere");
        debug_assert_eq!(env.tag, Tag::App, "system traffic is never batched");
        w = w.u32(env.handler.0).bytes(&env.payload);
        pool::recycle(env.payload);
    }
    Envelope {
        src,
        dst,
        handler: H_DCS_BATCH,
        tag: Tag::App,
        payload: w.finish(),
    }
}

/// Whether an envelope is a coalesced frame.
pub fn is_frame(env: &Envelope) -> bool {
    env.handler == H_DCS_BATCH
}

/// Decode a frame payload back into its constituent envelopes, appending to
/// `out` in staging order (zero-copy payload slices). The schema mirrors
/// [`encode_frame`]. A truncated or hostile frame yields its decodable
/// prefix — per-pair FIFO among what survives, never a panic.
pub fn decode_frame(
    src: Rank,
    dst: Rank,
    payload: bytes::Bytes,
    out: &mut VecDeque<Envelope>,
) -> usize {
    let mut r = WireReader::new(payload);
    let Some(count) = r.try_u32() else { return 0 };
    let mut appended = 0;
    for _ in 0..count {
        let Some(handler) = r.try_u32() else { break };
        let Some(inner) = r.try_bytes() else { break };
        out.push_back(Envelope {
            src,
            dst,
            handler: HandlerId(handler),
            tag: Tag::App,
            payload: inner,
        });
        appended += 1;
    }
    // Receive-side half of the allocation-reuse loop: once every message is
    // unpacked, hand the frame buffer back to the pool. Best-effort — it
    // only reclaims when no decoded payload slice still shares the storage
    // (e.g. the all-empty-payload frames system traffic favors); a miss
    // just drops the buffer as before.
    pool::recycle(r.into_inner());
    appended
}

/// Expand a received envelope into `out`: a frame is decoded via
/// [`decode_frame`]; a plain envelope is passed through. Returns the number
/// of envelopes appended.
pub fn expand(env: Envelope, out: &mut VecDeque<Envelope>) -> usize {
    if !is_frame(&env) {
        out.push_back(env);
        return 1;
    }
    let (src, dst) = (env.src, env.dst);
    decode_frame(src, dst, env.payload, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn app(src: Rank, dst: Rank, h: u32, payload: &'static [u8]) -> Envelope {
        Envelope {
            src,
            dst,
            handler: HandlerId(h),
            tag: Tag::App,
            payload: Bytes::from_static(payload),
        }
    }

    #[test]
    fn frame_roundtrip_preserves_order_and_payloads() {
        let msgs = vec![app(0, 1, 7, b"aa"), app(0, 1, 8, b""), app(0, 1, 9, b"ccc")];
        let expect_len = frame_payload_len(&msgs);
        let frame = encode_frame(0, 1, msgs);
        assert!(is_frame(&frame));
        assert_eq!(frame.payload.len(), expect_len);
        assert_eq!(frame.wire_size(), 24 + 4 + 3 * 8 + 5);
        let mut out = VecDeque::new();
        assert_eq!(expand(frame, &mut out), 3);
        let got: Vec<_> = out.iter().map(|e| (e.handler.0, e.payload.len())).collect();
        assert_eq!(got, vec![(7, 2), (8, 0), (9, 3)]);
        assert!(out
            .iter()
            .all(|e| e.src == 0 && e.dst == 1 && e.tag == Tag::App));
    }

    #[test]
    fn frame_is_smaller_than_unbatched_wire_bytes() {
        let msgs: Vec<_> = (0..16).map(|i| app(0, 1, i, b"xy")).collect();
        let unbatched: usize = msgs.iter().map(Envelope::wire_size).sum();
        let frame = encode_frame(0, 1, msgs);
        assert!(
            frame.wire_size() < unbatched,
            "frame {} vs unbatched {}",
            frame.wire_size(),
            unbatched
        );
    }

    #[test]
    fn expand_passes_plain_envelopes_through() {
        let mut out = VecDeque::new();
        assert_eq!(expand(app(2, 3, 5, b"p"), &mut out), 1);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].handler, HandlerId(5));
    }

    #[test]
    fn truncated_frame_yields_decodable_prefix() {
        let msgs = vec![app(0, 1, 1, b"aaaa"), app(0, 1, 2, b"bbbb")];
        let frame = encode_frame(0, 1, msgs);
        let cut = frame.payload.len() - 2;
        let truncated = Envelope {
            payload: frame.payload.slice(0..cut),
            ..frame
        };
        let mut out = VecDeque::new();
        assert_eq!(expand(truncated, &mut out), 1);
        assert_eq!(out[0].handler, HandlerId(1));
    }

    #[test]
    fn empty_payload_frame_decodes_nothing() {
        let hostile = Envelope {
            src: 0,
            dst: 1,
            handler: H_DCS_BATCH,
            tag: Tag::App,
            payload: Bytes::new(),
        };
        let mut out = VecDeque::new();
        assert_eq!(expand(hostile, &mut out), 0);
    }

    #[test]
    fn decode_recycles_frame_buffer_when_payloads_are_empty() {
        // Frames whose messages carry empty payloads (the shape system
        // traffic favors) leave no slice sharing the frame storage, so the
        // decode must hand the buffer back to the pool.
        let msgs: Vec<_> = (0..8).map(|i| app(0, 1, i, b"")).collect();
        let frame = encode_frame(0, 1, msgs);
        let before = pool::stats();
        let mut out = VecDeque::new();
        assert_eq!(expand(frame, &mut out), 8);
        let after = pool::stats();
        assert_eq!(
            after.recycled - before.recycled,
            1,
            "frame buffer must return to the pool"
        );
        assert!(out.iter().all(|e| e.payload.is_empty()));
    }

    #[test]
    fn decode_with_live_payload_slices_skips_recycling_safely() {
        let msgs = vec![app(0, 1, 1, b"abcd"), app(0, 1, 2, b"efgh")];
        let frame = encode_frame(0, 1, msgs);
        let before = pool::stats();
        let mut out = VecDeque::new();
        assert_eq!(expand(frame, &mut out), 2);
        let after = pool::stats();
        // The decoded payloads still share the frame storage: recycling is
        // rejected, never unsound, and the data stays intact.
        assert_eq!(after.recycled - before.recycled, 0);
        assert_eq!(&out[0].payload[..], b"abcd");
        assert_eq!(&out[1].payload[..], b"efgh");
    }

    #[test]
    fn config_off_by_default_and_env_parsing() {
        assert!(!BatchConfig::default().is_on());
        assert_eq!(BatchConfig::off(), BatchConfig::default());
        assert!(!BatchConfig::from_env_values(None, None).is_on());
        let m = BatchConfig::from_env_values(Some("16"), None);
        assert_eq!(m, BatchConfig::on(16, DEFAULT_MAX_BYTES));
        let b = BatchConfig::from_env_values(None, Some("4096"));
        assert_eq!(b, BatchConfig::on(DEFAULT_MAX_MSGS, 4096));
        let both = BatchConfig::from_env_values(Some("8"), Some("512"));
        assert_eq!(both, BatchConfig::on(8, 512));
        // Garbage values fall back to off rather than panicking.
        assert!(!BatchConfig::from_env_values(Some("lots"), None).is_on());
        // A 1-message batch is a slower direct send; clamp up.
        assert!(BatchConfig::on(1, 64).is_on());
        assert_eq!(BatchConfig::on(1, 64).max_msgs, 2);
    }
}
