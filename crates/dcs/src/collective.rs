//! Synchronous collectives: barrier, gather/broadcast, allgather, allreduce.
//!
//! PREMA itself never needs these — its whole point is avoiding global
//! synchronization — but the two baselines do: ParMETIS-style
//! stop-and-repartition interleaves barriers and all-to-all load exchanges,
//! and Charm++'s `AtSync` load-balancing step is barrier-based. Implementing
//! them on top of the same active-message substrate keeps the comparison fair
//! (every system pays the same per-message costs).
//!
//! All collectives are *matched calls*: every rank must invoke the same
//! collective in the same order. Each collective instance is identified by an
//! epoch counter carried in the payload; application messages that arrive
//! while a rank waits inside a collective are sidelined, preserving their
//! order for the next application poll.

use crate::comm::Communicator;
use crate::envelope::{HandlerId, Tag};
use crate::wire::{WireReader, WireWriter};
use bytes::Bytes;
use std::cell::Cell;
use std::time::Duration;

/// Reserved handler ids for the collective protocol.
pub const H_BARRIER_ARRIVE: HandlerId = HandlerId(HandlerId::SYSTEM_BASE);
/// Barrier release broadcast (root → all).
pub const H_BARRIER_RELEASE: HandlerId = HandlerId(HandlerId::SYSTEM_BASE + 1);
/// Gather contribution (all → root).
pub const H_GATHER: HandlerId = HandlerId(HandlerId::SYSTEM_BASE + 2);
/// Broadcast frame (root → all).
pub const H_BCAST: HandlerId = HandlerId(HandlerId::SYSTEM_BASE + 3);

const TICK: Duration = Duration::from_millis(1);

// Named wire-schema pairs for the collective frames; `cargo xtask analyze`
// checks each encode/decode sequence against its partner.

/// Encode an epoch-only payload (barrier arrive/release).
fn encode_epoch(epoch: u64) -> Bytes {
    WireWriter::new().u64(epoch).finish()
}

/// Decode the leading epoch of any collective payload. Every collective
/// frame starts with the epoch, so this also serves the matched-call check
/// in `await_handler`.
fn decode_epoch(payload: Bytes) -> u64 {
    WireReader::new(payload).u64()
}

/// Encode one rank's gather contribution: epoch, source rank, body.
fn encode_contribution(epoch: u64, rank: u64, body: &[u8]) -> Bytes {
    WireWriter::new().u64(epoch).u64(rank).bytes(body).finish()
}

/// Decode a gather contribution to (source rank, body). The epoch was
/// already validated by `await_handler`.
fn decode_contribution(payload: Bytes) -> (usize, Bytes) {
    let mut r = WireReader::new(payload);
    let _epoch = r.u64();
    let src = r.u64() as usize;
    let body = r.bytes();
    (src, body)
}

/// Encode the broadcast frame: epoch, part count, then each part.
fn encode_bcast(epoch: u64, parts: &[Bytes]) -> Bytes {
    let mut w = WireWriter::new().u64(epoch).u32(parts.len() as u32);
    for p in parts {
        w = w.bytes(p);
    }
    w.finish()
}

/// Decode a broadcast frame back to its per-rank parts.
fn decode_bcast(payload: Bytes) -> Vec<Bytes> {
    let mut r = WireReader::new(payload);
    let _epoch = r.u64();
    let n_parts = r.u32() as usize;
    (0..n_parts).map(|_| r.bytes()).collect()
}

/// Collective state for one rank: pairs a [`Communicator`] with the epoch
/// counter that matches collective instances across ranks.
pub struct Collectives<'a> {
    comm: &'a Communicator,
    epoch: Cell<u64>,
}

impl<'a> Collectives<'a> {
    /// Wrap a communicator. Create exactly one `Collectives` per rank and use
    /// it for the rank's entire lifetime, so epochs stay matched.
    pub fn new(comm: &'a Communicator) -> Self {
        Collectives {
            comm,
            epoch: Cell::new(0),
        }
    }

    fn next_epoch(&self) -> u64 {
        let e = self.epoch.get();
        self.epoch.set(e + 1);
        e
    }

    /// Block until every rank has entered this barrier.
    pub fn barrier(&self) {
        let epoch = self.next_epoch();
        let n = self.comm.nprocs();
        if n == 1 {
            return;
        }
        if self.comm.rank() == 0 {
            let mut arrived = 1usize;
            while arrived < n {
                let env = self.await_handler(H_BARRIER_ARRIVE, epoch);
                let _ = env;
                arrived += 1;
            }
            let payload = encode_epoch(epoch);
            for dst in 1..n {
                self.comm
                    .am_send(dst, H_BARRIER_RELEASE, Tag::System, payload.clone());
            }
        } else {
            let payload = encode_epoch(epoch);
            self.comm.am_send(0, H_BARRIER_ARRIVE, Tag::System, payload);
            let _ = self.await_handler(H_BARRIER_RELEASE, epoch);
        }
    }

    /// Gather each rank's `contribution` at rank 0 and broadcast the
    /// concatenation: every rank returns the per-rank contributions.
    pub fn allgather(&self, contribution: &[u8]) -> Vec<Bytes> {
        let epoch = self.next_epoch();
        let n = self.comm.nprocs();
        if n == 1 {
            return vec![Bytes::copy_from_slice(contribution)];
        }
        if self.comm.rank() == 0 {
            let mut parts: Vec<Option<Bytes>> = vec![None; n];
            parts[0] = Some(Bytes::copy_from_slice(contribution));
            let mut have = 1usize;
            while have < n {
                let env = self.await_handler(H_GATHER, epoch);
                let (src, body) = decode_contribution(env.payload);
                assert!(
                    parts[src].is_none(),
                    "duplicate gather contribution from {src}"
                );
                parts[src] = Some(body);
                have += 1;
            }
            // Broadcast the frame.
            let parts: Vec<Bytes> = parts.into_iter().map(Option::unwrap).collect();
            let frame = encode_bcast(epoch, &parts);
            for dst in 1..n {
                self.comm.am_send(dst, H_BCAST, Tag::System, frame.clone());
            }
            parts
        } else {
            let payload = encode_contribution(epoch, self.comm.rank() as u64, contribution);
            self.comm.am_send(0, H_GATHER, Tag::System, payload);
            let env = self.await_handler(H_BCAST, epoch);
            decode_bcast(env.payload)
        }
    }

    /// All-reduce a vector of `f64`s elementwise with `+`.
    pub fn allreduce_sum_f64(&self, values: &[f64]) -> Vec<f64> {
        let mut w = WireWriter::new().u32(values.len() as u32);
        for &v in values {
            w = w.f64(v);
        }
        let parts = self.allgather(&w.finish());
        let mut out = vec![0.0; values.len()];
        for p in parts {
            let mut r = WireReader::new(p);
            let len = r.u32() as usize;
            assert_eq!(len, values.len(), "allreduce length mismatch across ranks");
            for slot in out.iter_mut() {
                *slot += r.f64();
            }
        }
        out
    }

    /// All-reduce a single `u64` with `max`.
    pub fn allreduce_max_u64(&self, value: u64) -> u64 {
        let w = WireWriter::new().u64(value).finish();
        self.allgather(&w)
            .into_iter()
            .map(|p| WireReader::new(p).u64())
            .max()
            .unwrap_or(value)
    }

    /// Receive until a message for `handler` with the right epoch arrives,
    /// sidelining everything else. Reads the transport directly — consuming
    /// the sideline queue from here would re-receive what we just sidelined
    /// and starve the transport.
    fn await_handler(&self, handler: HandlerId, epoch: u64) -> crate::envelope::Envelope {
        loop {
            let Some(env) = self.comm.recv_timeout_transport(TICK) else {
                continue;
            };
            if env.handler == handler {
                let got = decode_epoch(env.payload.clone());
                assert_eq!(
                    got, epoch,
                    "collective epoch mismatch: ranks issued collectives in different orders"
                );
                return env;
            }
            self.comm.sideline(env);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::LocalFabric;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn spawn_ranks<F>(n: usize, f: F)
    where
        F: Fn(usize, Communicator) + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let eps = LocalFabric::new(n);
        let handles: Vec<_> = eps
            .into_iter()
            .enumerate()
            .map(|(rank, ep)| {
                let f = f.clone();
                std::thread::spawn(move || f(rank, Communicator::new(Box::new(ep))))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn barrier_synchronizes_all_ranks() {
        let counter = Arc::new(AtomicUsize::new(0));
        let c2 = counter.clone();
        spawn_ranks(4, move |rank, comm| {
            let coll = Collectives::new(&comm);
            // Stagger arrival.
            std::thread::sleep(Duration::from_millis(rank as u64 * 10));
            c2.fetch_add(1, Ordering::SeqCst);
            coll.barrier();
            // After the barrier, everyone must have incremented.
            assert_eq!(c2.load(Ordering::SeqCst), 4);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn repeated_barriers_stay_matched() {
        spawn_ranks(3, |_rank, comm| {
            let coll = Collectives::new(&comm);
            for _ in 0..20 {
                coll.barrier();
            }
        });
    }

    #[test]
    fn allgather_returns_rank_ordered_contributions() {
        spawn_ranks(5, |rank, comm| {
            let coll = Collectives::new(&comm);
            let mine = vec![rank as u8; rank + 1];
            let all = coll.allgather(&mine);
            assert_eq!(all.len(), 5);
            for (r, part) in all.iter().enumerate() {
                assert_eq!(part.len(), r + 1);
                assert!(part.iter().all(|&b| b == r as u8));
            }
        });
    }

    #[test]
    fn allreduce_sum_and_max() {
        spawn_ranks(4, |rank, comm| {
            let coll = Collectives::new(&comm);
            let sums = coll.allreduce_sum_f64(&[rank as f64, 1.0]);
            assert_eq!(sums, vec![0.0 + 1.0 + 2.0 + 3.0, 4.0]);
            let max = coll.allreduce_max_u64(10 + rank as u64);
            assert_eq!(max, 13);
        });
    }

    #[test]
    fn app_messages_survive_a_barrier() {
        spawn_ranks(2, |rank, comm| {
            let coll = Collectives::new(&comm);
            if rank == 0 {
                // Send an app message, then join the barrier.
                comm.am_send(1, HandlerId(7), Tag::App, Bytes::from_static(b"x"));
                coll.barrier();
            } else {
                // Enter the barrier before looking at app messages: the app
                // message must be sidelined, not lost.
                coll.barrier();
                let env = comm.recv_timeout(Duration::from_secs(1)).unwrap();
                assert_eq!(env.handler, HandlerId(7));
                assert_eq!(&env.payload[..], b"x");
            }
        });
    }

    #[test]
    fn single_rank_collectives_are_trivial() {
        spawn_ranks(1, |_rank, comm| {
            let coll = Collectives::new(&comm);
            coll.barrier();
            let all = coll.allgather(b"solo");
            assert_eq!(all.len(), 1);
            assert_eq!(&all[0][..], b"solo");
            assert_eq!(coll.allreduce_max_u64(9), 9);
        });
    }
}
