//! Model checks for the ring transport's lock-free protocols.
//!
//! The vendored loom explorer (see `vendor/loom`) enumerates thread
//! interleavings under sequential consistency, so these tests exercise the
//! *protocol logic* — index handshakes, clear-then-recheck, waiter
//! registration — against every schedule, not just the ones a stress test
//! happens to hit. Each model mirrors one structure from `dcs::ring` and
//! keeps its name (`SpscRing`, `ReadySet`, `Parker`) so `cargo xtask
//! analyze`'s atomics audit can tie the production declarations to their
//! models.
//!
//! The models run under plain `cargo test`: vendored loom is a normal
//! dependency, no `--cfg loom` required.

use loom::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use loom::thread;
use std::sync::Arc;

/// SC fetch_or for the modeled readiness word (vendored loom only provides
/// compare_exchange on `AtomicU64`).
fn rmw_or(word: &AtomicU64, bits: u64) {
    let mut cur = word.load(Ordering::SeqCst);
    loop {
        match word.compare_exchange(cur, cur | bits, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => return,
            Err(now) => cur = now,
        }
    }
}

/// SC decrement (vendored loom's `AtomicUsize` has no fetch_sub).
fn rmw_dec(count: &AtomicUsize) {
    // Wrapping add of MAX is subtract-one in a single RMW step — the
    // vendored explorer has no fetch_sub, and a CAS loop would multiply
    // the schedule count of every model that deregisters a waiter.
    count.fetch_add(usize::MAX, Ordering::SeqCst);
}

/// SC fetch_and for the modeled readiness word.
fn rmw_and(word: &AtomicU64, bits: u64) {
    let mut cur = word.load(Ordering::SeqCst);
    loop {
        match word.compare_exchange(cur, cur & bits, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => return,
            Err(now) => cur = now,
        }
    }
}

/// Model of `ring::SpscRing`: two slots, free-running head/tail, the
/// slot-publish-by-tail-store handshake. Slot contents are modeled as
/// atomics (loom has no UnsafeCell shim); what the model checks is the
/// index protocol — a slot is never read before the tail store publishes
/// it, never overwritten before the head store retires it, and values come
/// out exactly once, in order.
struct SpscRing {
    slots: [AtomicU64; 2],
    head: AtomicUsize,
    tail: AtomicUsize,
}

impl SpscRing {
    fn new() -> Self {
        SpscRing {
            slots: [AtomicU64::new(0), AtomicU64::new(0)],
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
        }
    }

    /// Sole-owner pop, used by the main thread after joining the consumer
    /// to drain what is left.
    fn drain_pop(&self) -> Option<u64> {
        let head = self.head.load(Ordering::SeqCst);
        let tail = self.tail.load(Ordering::SeqCst);
        if tail == head {
            return None;
        }
        let v = self.slots[head & 1].load(Ordering::SeqCst);
        self.head.store(head.wrapping_add(1), Ordering::SeqCst);
        Some(v)
    }
}

#[test]
fn spsc_ring_index_handshake_delivers_exactly_once_in_order() {
    loom::model(|| {
        let ring = Arc::new(SpscRing::new());
        let producer = {
            let ring = Arc::clone(&ring);
            thread::spawn(move || {
                // Three pushes through a 2-slot ring with the production
                // cached-index protocol (own index is a local, the peer's
                // is refreshed only when the ring looks full): the third
                // push fits only if it observes the consumer's head store.
                let mut tail = 0usize;
                let mut head_cache = 0usize;
                let mut pushed = 0u64;
                // `tail` deliberately mirrors the production free-running
                // index (mutated after the publishing store), not a loop
                // counter — keep the model's shape aligned with the code.
                #[allow(clippy::explicit_counter_loop)]
                for v in 1..=3u64 {
                    if tail - head_cache == 2 {
                        head_cache = ring.head.load(Ordering::SeqCst);
                        if tail - head_cache == 2 {
                            break;
                        }
                    }
                    ring.slots[tail & 1].store(v, Ordering::SeqCst);
                    ring.tail.store(tail + 1, Ordering::SeqCst);
                    tail += 1;
                    pushed = v;
                }
                pushed
            })
        };
        let consumer = {
            let ring = Arc::clone(&ring);
            thread::spawn(move || {
                // One concurrent pop attempt, same cached-index protocol.
                let tail_cache = ring.tail.load(Ordering::SeqCst);
                if tail_cache == 0 {
                    return None;
                }
                let v = ring.slots[0].load(Ordering::SeqCst);
                ring.head.store(1, Ordering::SeqCst);
                Some(v)
            })
        };
        let pushed = producer.join().expect("producer thread panicked");
        let mut got = Vec::new();
        got.extend(consumer.join().expect("consumer thread panicked"));
        // Drain the remainder from the main thread (sole consumer now).
        while let Some(v) = ring.drain_pop() {
            got.push(v);
        }
        // Exactly the pushed prefix, in order, no loss, no duplication —
        // and a concurrent pop never observes an unpublished slot.
        let expect: Vec<u64> = (1..=pushed).collect();
        assert_eq!(got, expect, "pushed {pushed}, got {got:?}");
    });
}

/// Model of `ring::ReadySet` + ring occupancy for one pair: the sender
/// publishes (count += 1, then mark), the receiver sweeps with the
/// clear-then-recheck protocol. The checked invariant: a message is never
/// stranded behind a clear bit — at quiescence, pending > 0 implies the
/// bit is set.
struct ReadySet {
    word: AtomicU64,
    pending: AtomicUsize,
}

#[test]
fn ready_bit_clear_then_recheck_never_strands_a_message() {
    loom::model(|| {
        let rs = Arc::new(ReadySet {
            word: AtomicU64::new(0),
            pending: AtomicUsize::new(0),
        });
        let sender = {
            let rs = Arc::clone(&rs);
            thread::spawn(move || {
                // Push then mark — the production send() order.
                rs.pending.fetch_add(1, Ordering::SeqCst);
                rmw_or(&rs.word, 1);
            })
        };
        let receiver = {
            let rs = Arc::clone(&rs);
            thread::spawn(move || {
                let mut consumed = 0;
                if rs.word.load(Ordering::SeqCst) & 1 != 0 {
                    let got = rs.pending.swap(0, Ordering::SeqCst);
                    if got > 0 {
                        consumed += got;
                    } else {
                        // Stale bit: clear, then re-probe, re-marking if
                        // the re-probe caught a racing push.
                        rmw_and(&rs.word, !1);
                        let again = rs.pending.swap(0, Ordering::SeqCst);
                        if again > 0 {
                            rmw_or(&rs.word, 1);
                            consumed += again;
                        }
                    }
                }
                consumed
            })
        };
        sender.join().expect("sender thread panicked");
        let consumed = receiver.join().expect("receiver thread panicked");
        let left = rs.pending.load(Ordering::SeqCst);
        assert_eq!(consumed + left, 1, "message lost or duplicated");
        if left > 0 {
            assert_eq!(
                rs.word.load(Ordering::SeqCst) & 1,
                1,
                "pending message stranded behind a cleared readiness bit"
            );
        }
    });
}

/// Model of `ring::Parker`: the Dekker-style waiter registration plus the
/// one-shot `signaled` latch. The receiver registers, re-arms the latch,
/// re-probes, and decides to sleep on its generation snapshot; a sender
/// publishes, consults `waiters`, and bumps the generation only if it is
/// the first to latch the episode. Lost wakeup = receiver decided to sleep
/// on a generation no sender will advance.
/// Two modeling abstractions keep the state space inside the explorer's
/// schedule budget, and neither weakens the checked property. First, the
/// production generation lives under a mutex only to make the condvar wait
/// atomic with the `gen == epoch` check; the model's sleep decision is a
/// single read at one point in the interleaving, which is exactly that
/// atomicity, so `generation` can be a plain SC atomic. Second, the
/// production receiver deregisters from `waiters` on the no-sleep paths —
/// but every execution that takes those paths returns `would_sleep =
/// false`, making the lost-wakeup assertion vacuous there, so the model
/// skips the deregistration (senders then at worst over-wake, which can
/// only be observed in vacuous executions).
struct Parker {
    waiters: AtomicUsize,
    signaled: AtomicBool,
    generation: AtomicU64,
    msgs: AtomicUsize,
}

impl Parker {
    /// The production `unpark` after an `msgs` publish.
    fn unpark(&self) {
        if self.waiters.load(Ordering::SeqCst) == 0 {
            return;
        }
        if self.signaled.swap(true, Ordering::SeqCst) {
            return;
        }
        self.generation.fetch_add(1, Ordering::SeqCst);
    }

    /// The production receiver: prepare (register, re-arm latch, snapshot),
    /// SeqCst re-probe, then the sleep decision. Returns
    /// `(would_sleep, epoch)`; a thread that decides to sleep stays
    /// registered (the real condvar wait holds the registration).
    fn receive(&self) -> (bool, u64) {
        self.waiters.fetch_add(1, Ordering::SeqCst);
        self.signaled.store(false, Ordering::SeqCst);
        let epoch = self.generation.load(Ordering::SeqCst);
        if self.msgs.swap(0, Ordering::SeqCst) > 0 {
            return (false, epoch);
        }
        // park(): the sleep decision — atomic with the condvar wait in the
        // real code (see the mutex note above), so "would sleep here" is
        // exactly the lost-wakeup hazard.
        let would_sleep = self.generation.load(Ordering::SeqCst) == epoch;
        (would_sleep, epoch)
    }
}

#[test]
fn parker_registration_cannot_lose_a_wakeup() {
    loom::model(|| {
        let p = Arc::new(Parker {
            waiters: AtomicUsize::new(0),
            signaled: AtomicBool::new(false),
            generation: AtomicU64::new(0),
            msgs: AtomicUsize::new(0),
        });
        // Two senders so the latch is exercised: one of them can find it
        // already set and skip the bump — the skip is only safe if the
        // earlier latcher's wake (or the receiver's re-probe) covers both
        // envelopes.
        let senders: Vec<_> = (0..2)
            .map(|_| {
                let p = Arc::clone(&p);
                thread::spawn(move || {
                    // Publish, then wake-if-registered: the production order.
                    p.msgs.fetch_add(1, Ordering::SeqCst);
                    p.unpark();
                })
            })
            .collect();
        // The receiver runs on the model's main thread: one fewer thread
        // keeps the three-way interleaving inside the schedule budget.
        let (would_sleep, epoch) = p.receive();
        for s in senders {
            s.join().expect("sender thread panicked");
        }
        if would_sleep && p.msgs.load(Ordering::SeqCst) > 0 {
            // Both senders have completed; if the receiver went to sleep
            // with envelopes still pending, the generation must have moved
            // past its snapshot, i.e. a condvar notify was (or will be,
            // before the wait begins under the same lock) issued. Equal
            // generations here would be a lost wakeup.
            let final_gen = p.generation.load(Ordering::SeqCst);
            assert_ne!(
                final_gen, epoch,
                "receiver slept on a generation no sender advanced"
            );
        }
    });
}

/// A previous sleep episode can leave `signaled` latched (e.g. a wake that
/// raced a timeout). The re-arm in `prepare` happens *after* the waiter
/// registration, which is what makes the stale value harmless: an unpark
/// that reads latched-true before the re-arm published its envelope before
/// the receiver's re-probe. Model that exact scenario: latch starts true.
#[test]
fn parker_stale_latch_from_previous_episode_cannot_mask_a_wakeup() {
    loom::model(|| {
        let p = Arc::new(Parker {
            waiters: AtomicUsize::new(0),
            signaled: AtomicBool::new(true),
            generation: AtomicU64::new(0),
            msgs: AtomicUsize::new(0),
        });
        let sender = {
            let p = Arc::clone(&p);
            thread::spawn(move || {
                p.msgs.fetch_add(1, Ordering::SeqCst);
                p.unpark();
            })
        };
        let receiver = {
            let p = Arc::clone(&p);
            thread::spawn(move || p.receive())
        };
        sender.join().expect("sender thread panicked");
        let (would_sleep, epoch) = receiver.join().expect("receiver thread panicked");
        if would_sleep && p.msgs.load(Ordering::SeqCst) > 0 {
            let final_gen = p.generation.load(Ordering::SeqCst);
            assert_ne!(
                final_gen, epoch,
                "stale latch masked the only wakeup for a pending envelope"
            );
        }
    });
}

#[test]
fn parker_shutdown_wake_is_unconditional_and_cannot_be_missed() {
    loom::model(|| {
        let p = Arc::new(Parker {
            waiters: AtomicUsize::new(0),
            signaled: AtomicBool::new(false),
            generation: AtomicU64::new(0),
            msgs: AtomicUsize::new(0),
        });
        let stop = Arc::new(AtomicBool::new(false));
        let stopper = {
            let p = Arc::clone(&p);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                // Shutdown wake: set the flag, then advance the generation
                // unconditionally — no waiter check and no latch consult,
                // so a receiver that registers after the load (or a sender
                // that latched without bumping) cannot mask it.
                stop.store(true, Ordering::SeqCst);
                p.generation.fetch_add(1, Ordering::SeqCst);
            })
        };
        let receiver = {
            let p = Arc::clone(&p);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                p.waiters.fetch_add(1, Ordering::SeqCst);
                p.signaled.store(false, Ordering::SeqCst);
                let epoch = p.generation.load(Ordering::SeqCst);
                if stop.load(Ordering::SeqCst) {
                    rmw_dec(&p.waiters);
                    return (false, epoch);
                }
                // A thread that decides to sleep stays registered until it
                // is woken (the real condvar wait holds the registration);
                // the no-sleep deregistration is modeled in rmw_dec above.
                let would_sleep = p.generation.load(Ordering::SeqCst) == epoch;
                if !would_sleep {
                    rmw_dec(&p.waiters);
                }
                (would_sleep, epoch)
            })
        };
        stopper.join().expect("stopper thread panicked");
        let (would_sleep, epoch) = receiver.join().expect("receiver thread panicked");
        if would_sleep {
            let final_gen = p.generation.load(Ordering::SeqCst);
            assert_ne!(
                final_gen, epoch,
                "receiver slept through an unconditional shutdown wake"
            );
        }
    });
}
