//! Property-based tests for the DCS substrate: wire codec, transport FIFO,
//! and collectives across arbitrary machine sizes and payloads.

use prema_dcs::{
    BatchConfig, Collectives, Communicator, HandlerId, LocalFabric, Tag, Transport, WireReader,
    WireWriter,
};
use proptest::prelude::*;

#[derive(Clone, Debug, PartialEq)]
enum Field {
    U64(u64),
    U32(u32),
    F64(f64),
    Bytes(Vec<u8>),
}

fn arb_fields() -> impl Strategy<Value = Vec<Field>> {
    proptest::collection::vec(
        prop_oneof![
            any::<u64>().prop_map(Field::U64),
            any::<u32>().prop_map(Field::U32),
            any::<f64>()
                .prop_filter("finite", |f| f.is_finite())
                .prop_map(Field::F64),
            proptest::collection::vec(any::<u8>(), 0..64).prop_map(Field::Bytes),
        ],
        0..16,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn wire_roundtrip_arbitrary_field_sequences(fields in arb_fields()) {
        let mut w = WireWriter::new();
        for f in &fields {
            w = match f {
                Field::U64(v) => w.u64(*v),
                Field::U32(v) => w.u32(*v),
                Field::F64(v) => w.f64(*v),
                Field::Bytes(v) => w.bytes(v),
            };
        }
        let mut r = WireReader::new(w.finish());
        for f in &fields {
            match f {
                Field::U64(v) => prop_assert_eq!(r.u64(), *v),
                Field::U32(v) => prop_assert_eq!(r.u32(), *v),
                Field::F64(v) => prop_assert_eq!(r.f64(), *v),
                Field::Bytes(v) => prop_assert_eq!(&r.bytes()[..], &v[..]),
            }
        }
        prop_assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn single_thread_fifo_for_any_send_sequence(
        msgs in proptest::collection::vec((0u32..1000, 0usize..256), 1..50)
    ) {
        let mut eps = LocalFabric::new(2);
        let b = Communicator::new(Box::new(eps.pop().unwrap()));
        let a = Communicator::new(Box::new(eps.pop().unwrap()));
        for (id, size) in &msgs {
            a.am_send(1, HandlerId(*id), Tag::App, bytes::Bytes::from(vec![0u8; *size]));
        }
        for (id, size) in &msgs {
            let env = b.try_recv().expect("message lost");
            prop_assert_eq!(env.handler, HandlerId(*id));
            prop_assert_eq!(env.payload.len(), *size);
        }
        prop_assert!(b.try_recv().is_none());
    }
}

proptest! {
    // Thread spawning per case is comparatively expensive; fewer, fatter
    // cases give better interleaving coverage per second.
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The ring mesh gives every ordered pair its own SPSC ring (plus an
    /// overflow side channel when the ring fills), so per-pair FIFO rests on
    /// the sender's single-producer push order and the receiver probing the
    /// ring strictly before the overflow queue. Pin that under randomized
    /// multi-sender interleavings: every sender's messages must reach the
    /// receiver in send order (sequence numbers strictly increasing per
    /// sender), none lost, none duplicated. Interleavings vary via
    /// per-sender message counts and yield patterns drawn by proptest.
    #[test]
    fn ring_mesh_preserves_per_pair_fifo(
        counts in proptest::collection::vec(1usize..120, 3..6),
        yield_mask in any::<u64>(),
    ) {
        let senders = counts.len();
        let mut eps = LocalFabric::new(senders + 1);
        let rx = eps.pop().expect("fabric returns one endpoint per rank");
        let dst = senders; // the receiver's rank (last one built)
        let handles: Vec<_> = eps
            .into_iter()
            .zip(&counts)
            .map(|(ep, &count)| {
                std::thread::spawn(move || {
                    for seq in 0..count {
                        ep.send(prema_dcs::Envelope {
                            src: ep.rank(),
                            dst,
                            handler: HandlerId(seq as u32),
                            tag: Tag::App,
                            payload: bytes::Bytes::new(),
                        });
                        // Perturb the interleaving differently per case.
                        if (yield_mask >> (seq % 64)) & 1 == 1 {
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("sender thread panicked");
        }
        let total: usize = counts.iter().sum();
        let mut next_seq = vec![0u32; senders];
        for _ in 0..total {
            let env = rx.try_recv().expect("message lost in ring mesh");
            let src = env.src;
            // Any mismatch here is a per-pair FIFO violation for `src`.
            prop_assert_eq!(env.handler, HandlerId(next_seq[src]));
            next_seq[src] += 1;
        }
        prop_assert!(rx.try_recv().is_none(), "duplicate or phantom message");
        for (&got, &want) in next_seq.iter().zip(&counts) {
            prop_assert_eq!(got as usize, want);
        }
    }

    /// The batched companion of the test above: per-pair FIFO must also hold
    /// when every sender stages messages through a coalescing Communicator,
    /// with flushes injected at proptest-drawn points. Frames ride the
    /// per-pair ring as single envelopes, so the property now additionally
    /// rests on the framer preserving intra-frame order and the receiver's
    /// burst drain preserving frame order.
    #[test]
    fn ring_mesh_preserves_per_pair_fifo_batched(
        counts in proptest::collection::vec(1usize..120, 3..6),
        yield_mask in any::<u64>(),
        flush_mask in any::<u64>(),
        max_msgs in 2usize..9,
    ) {
        let senders = counts.len();
        let mut eps = LocalFabric::new(senders + 1);
        let rx = Communicator::new(Box::new(
            eps.pop().expect("fabric returns one endpoint per rank"),
        ));
        let dst = senders; // the receiver's rank (last one built)
        let handles: Vec<_> = eps
            .into_iter()
            .zip(&counts)
            .map(|(ep, &count)| {
                std::thread::spawn(move || {
                    let mut comm = Communicator::new(Box::new(ep));
                    comm.set_batch_config(BatchConfig::on(max_msgs, 1 << 20));
                    for seq in 0..count {
                        comm.am_send(dst, HandlerId(seq as u32), Tag::App, bytes::Bytes::new());
                        if (flush_mask >> (seq % 64)) & 1 == 1 {
                            comm.flush();
                        }
                        if (yield_mask >> (seq % 64)) & 1 == 1 {
                            std::thread::yield_now();
                        }
                    }
                    comm.flush();
                    assert_eq!(comm.staged_len(), 0, "messages stranded in staging");
                })
            })
            .collect();
        for h in handles {
            h.join().expect("sender thread panicked");
        }
        let total: usize = counts.iter().sum();
        let mut next_seq = vec![0u32; senders];
        for _ in 0..total {
            let env = rx.try_recv().expect("message lost in batched path");
            let src = env.src;
            prop_assert_eq!(env.handler, HandlerId(next_seq[src]));
            next_seq[src] += 1;
        }
        prop_assert!(rx.try_recv().is_none(), "duplicate or phantom message");
        for (&got, &want) in next_seq.iter().zip(&counts) {
            prop_assert_eq!(got as usize, want);
        }
    }

    /// Backpressure companion: with rings shrunk to two slots, almost every
    /// send spills to the overflow side channel while the receiver drains
    /// concurrently — messages bounce between ring and overflow across the
    /// run. Per-pair FIFO and zero loss must survive arbitrarily interleaved
    /// spill episodes, not just the all-in-ring fast path.
    #[test]
    fn ring_overflow_spill_preserves_per_pair_fifo(
        counts in proptest::collection::vec(1usize..120, 3..6),
        yield_mask in any::<u64>(),
    ) {
        let senders = counts.len();
        let mut eps = prema_dcs::RingFabric::with_capacity(senders + 1, 2);
        let rx = eps.pop().expect("fabric returns one endpoint per rank");
        let dst = senders; // the receiver's rank (last one built)
        let handles: Vec<_> = eps
            .into_iter()
            .zip(&counts)
            .map(|(ep, &count)| {
                std::thread::spawn(move || {
                    for seq in 0..count {
                        ep.send(prema_dcs::Envelope {
                            src: ep.rank(),
                            dst,
                            handler: HandlerId(seq as u32),
                            tag: Tag::App,
                            payload: bytes::Bytes::new(),
                        });
                        if (yield_mask >> (seq % 64)) & 1 == 1 {
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        // Drain while the senders are still pushing so ring slots free up
        // mid-stream and later sends go back to the ring after a spill.
        let total: usize = counts.iter().sum();
        let mut next_seq = vec![0u32; senders];
        let mut received = 0;
        while received < total {
            if let Some(env) = rx.try_recv() {
                let src = env.src;
                prop_assert_eq!(env.handler, HandlerId(next_seq[src]));
                next_seq[src] += 1;
                received += 1;
            } else {
                std::thread::yield_now();
            }
        }
        for h in handles {
            h.join().expect("sender thread panicked");
        }
        prop_assert!(rx.try_recv().is_none(), "duplicate or phantom message");
        for (&got, &want) in next_seq.iter().zip(&counts) {
            prop_assert_eq!(got as usize, want);
        }
    }
}

/// Collectives stay matched for arbitrary (small) machine sizes and
/// contribution sizes. Not a proptest macro body because it spawns threads;
/// a couple of seeded variants keep runtime bounded.
#[test]
fn allgather_matches_for_various_shapes() {
    for n in [1usize, 2, 3, 5, 8] {
        for reps in [1usize, 3] {
            let eps = LocalFabric::new(n);
            let handles: Vec<_> = eps
                .into_iter()
                .enumerate()
                .map(|(rank, ep)| {
                    std::thread::spawn(move || {
                        let comm = Communicator::new(Box::new(ep));
                        let coll = Collectives::new(&comm);
                        for round in 0..reps {
                            let mine = vec![rank as u8; rank + round + 1];
                            let all = coll.allgather(&mine);
                            assert_eq!(all.len(), n);
                            for (r, part) in all.iter().enumerate() {
                                assert_eq!(part.len(), r + round + 1);
                                assert!(part.iter().all(|&b| b == r as u8));
                            }
                            coll.barrier();
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        }
    }
}

/// Mixed app traffic during collectives never corrupts either stream.
#[test]
fn app_traffic_interleaved_with_collectives() {
    let n = 4;
    let eps = LocalFabric::new(n);
    let handles: Vec<_> = eps
        .into_iter()
        .enumerate()
        .map(|(rank, ep)| {
            std::thread::spawn(move || {
                let comm = Communicator::new(Box::new(ep));
                let coll = Collectives::new(&comm);
                // Everyone sends an app message to everyone, then barriers.
                for round in 0u32..5 {
                    for dst in 0..n {
                        if dst != rank {
                            let payload = WireWriter::new().u32(round).u64(rank as u64).finish();
                            comm.am_send(dst, HandlerId(7), Tag::App, payload);
                        }
                    }
                    coll.barrier();
                }
                // All app messages must be intact and per-sender ordered.
                let mut last_round = vec![-1i64; n];
                let mut count = 0;
                while let Some(env) = comm.try_recv() {
                    assert_eq!(env.handler, HandlerId(7));
                    let mut r = WireReader::new(env.payload);
                    let round = r.u32() as i64;
                    let src = r.u64() as usize;
                    assert!(round > last_round[src], "per-sender order violated");
                    last_round[src] = round;
                    count += 1;
                }
                assert_eq!(count, 5 * (n - 1));
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}
