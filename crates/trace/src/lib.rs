//! Per-rank event tracing for the PREMA runtime.
//!
//! The paper's evaluation (§5, Figures 3–6) is built from *per-processor*
//! time breakdowns. This crate records the raw material for those tables as
//! a stream of typed events — substrate sends/receives, mobile-object
//! migrations and forwarding hops, load-balancing protocol rounds, poll-thread
//! wakeups, and simulator time spans — one lock-free ring buffer per rank.
//!
//! Two recording paths share the same [`TraceEvent`] vocabulary:
//!
//! * **Always available:** the [`TraceSink`] API. The discrete-event
//!   simulator and the harness drivers call [`TraceSink::record`] directly
//!   with explicit *simulated* timestamps; `cargo xtask trace-report` replays
//!   a dumped run back into the Figure 3–6 tables.
//! * **Feature gated:** the [`Tracer`] handle embedded in the real runtime
//!   (dcs / mol / ilb / core). With the `enabled` feature off — the default —
//!   `Tracer` is a zero-sized type and [`Tracer::emit`] is an empty inline
//!   function, so the substrate fast path pays nothing (the `trace_overhead`
//!   bench in `prema-bench` measures exactly this). With `enabled` on, a
//!   tracer stamps events with wall-clock nanoseconds since its sink's epoch.
//!
//! Rings are bounded: when a rank's ring fills, further events are counted
//! in [`TraceSink::dropped`] rather than blocking or reallocating, so tracing
//! can never distort the run it observes.

#![warn(missing_docs)]

use std::cell::UnsafeCell;
use std::fmt::Write as _;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// One traced runtime occurrence. `Copy`, flat, and small: events live in
/// pre-allocated ring slots and must be cheap to stamp on the fast path.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceEvent {
    /// An active message left this rank (dcs `am_send`).
    Send {
        /// Destination rank.
        dst: usize,
        /// Handler id the message will run at the destination.
        handler: u32,
        /// Wire size in bytes (header + payload).
        bytes: usize,
        /// Sent on the system tag (LB / runtime traffic) rather than app.
        system: bool,
    },
    /// An active message was delivered to this rank.
    Recv {
        /// Source rank.
        src: usize,
        /// Handler id carried by the message.
        handler: u32,
        /// Wire size in bytes (header + payload).
        bytes: usize,
        /// Received on the system tag.
        system: bool,
    },
    /// A mobile object was packed and shipped from this rank (mol `migrate`).
    Migrate {
        /// Object's home rank (identity, not location).
        home: usize,
        /// Object's per-home index.
        index: u64,
        /// Rank the object was sent to.
        dst: usize,
    },
    /// A mobile object arrived and was installed on this rank.
    Install {
        /// Object's home rank.
        home: usize,
        /// Object's per-home index.
        index: u64,
        /// Rank the object came from.
        from: usize,
    },
    /// A mobile-object message missed here and was forwarded along the
    /// location chain; `hops` is its hop count *after* this forward.
    ForwardHop {
        /// Target object's home rank.
        home: usize,
        /// Target object's per-home index.
        index: u64,
        /// Rank the message was forwarded to.
        next: usize,
        /// Total forwarding hops the message has taken so far.
        hops: u32,
    },
    /// A sender's location cache (or forward trail) named an owner for a
    /// mobile pointer, so the message was sent directly (DESIGN.md §16).
    LocCacheHit {
        /// Target object's home rank.
        home: usize,
        /// Target object's per-home index.
        index: u64,
        /// Cached owner rank the message was sent to.
        owner: usize,
    },
    /// No local knowledge for a mobile pointer: the message was routed to
    /// the pointer's home shard for authoritative resolution.
    LocCacheMiss {
        /// Target object's home rank.
        home: usize,
        /// Target object's per-home index.
        index: u64,
        /// Home shard rank the message was routed to.
        shard: usize,
    },
    /// A directory answer flagged this rank's knowledge stale (the answer's
    /// epoch exceeded the epoch the rank sent with); the fresher location
    /// was merged into the cache.
    LocCacheStale {
        /// Target object's home rank.
        home: usize,
        /// Target object's per-home index.
        index: u64,
        /// Authoritative owner rank from the answer.
        owner: usize,
        /// Migration epoch of the answer.
        epoch: u64,
    },
    /// An explicit `resolve()` missed locally and issued a `DirLookup` to
    /// the pointer's home shard.
    HomeLookup {
        /// Target object's home rank.
        home: usize,
        /// Target object's per-home index.
        index: u64,
        /// Home shard rank the lookup was sent to.
        shard: usize,
    },
    /// The scheduler started executing one unit of mobile-object work.
    ExecBegin {
        /// Executing object's home rank.
        home: usize,
        /// Executing object's per-home index.
        index: u64,
        /// Application handler id being run.
        handler: u32,
    },
    /// The scheduler finished the unit started by the matching
    /// [`TraceEvent::ExecBegin`].
    ExecFinish {
        /// Executing object's home rank.
        home: usize,
        /// Executing object's per-home index.
        index: u64,
    },
    /// A full scheduler poll (`Scheduler::poll`) drained `events` messages.
    Poll {
        /// Messages processed by this poll.
        events: u32,
    },
    /// A system-only poll (`Scheduler::poll_system`) drained `events`
    /// system messages, sidelining application traffic.
    PollSystem {
        /// System messages processed.
        events: u32,
    },
    /// One wakeup of the preemptive polling thread (implicit LB mode).
    PollWake {
        /// System messages the wakeup's `poll_system` processed.
        events: u32,
    },
    /// This rank went begging: it sent an `LB_REQUEST` to `victim`.
    LbRequest {
        /// Rank asked for work.
        victim: usize,
        /// Begging attempt number at send time (0 = first try).
        attempt: u32,
    },
    /// An `LB_REQUEST` from `src` arrived at this rank.
    LbRequestRecv {
        /// Requesting rank.
        src: usize,
    },
    /// This rank granted work: `units` mobile objects migrate to `dst`.
    LbGrant {
        /// Rank receiving the granted objects.
        dst: usize,
        /// Number of objects granted.
        units: u32,
    },
    /// A grant from `src` started arriving at this rank.
    LbGrantRecv {
        /// Granting rank.
        src: usize,
        /// Number of objects granted.
        units: u32,
    },
    /// This rank refused an `LB_REQUEST`: it sent an `LB_NACK` to `dst`.
    LbNackSent {
        /// Refused requester.
        dst: usize,
    },
    /// An `LB_NACK` from `src` arrived at this rank.
    LbNackRecv {
        /// Refusing rank.
        src: usize,
        /// The NACK did not match our outstanding request (late/duplicate)
        /// and was ignored rather than cancelling the current round.
        stale: bool,
    },
    /// The migration stability governor vetoed a grant or flow migration
    /// (DESIGN.md §14).
    LbVeto {
        /// The would-be destination (flows/grants) or requester (hysteresis).
        peer: usize,
        /// Veto cause: `prema_ilb::VetoKind::code()` — 0 = hysteresis band,
        /// 1 = minimum residency, 2 = migration-rate cap.
        kind: u32,
    },
    /// Periodic sample of the scheduler's local-load forecast (every 64th
    /// poll): the weight-history trend extrapolated one horizon ahead.
    LbForecast {
        /// Current local weight, in milli-weight units.
        weight_milli: u64,
        /// Predicted weight one horizon ahead, clamped at zero, in
        /// milli-weight units.
        predicted_milli: u64,
        /// Whether the fitted trend is rising.
        rising: bool,
    },
    /// A message was dropped rather than delivered. Emitted by any layer
    /// that discards traffic: the chaos transport (injected loss or a
    /// partitioned pair), a send into a torn-down rank's inbox, or a
    /// scheduler that received a message it cannot route (unregistered
    /// handler id, malformed payload).
    DcsDropped {
        /// The other end of the dropped message (destination when dropped
        /// on send, source when dropped on receive).
        peer: usize,
        /// Raw handler id of the dropped envelope.
        handler: u32,
    },
    /// A communicator flushed a staged per-destination batch to the wire
    /// (DESIGN.md §11). `reason` is one of `"size"` (threshold hit),
    /// `"poll"` (poll/handler-boundary flush), `"system"` (a `Tag::System`
    /// send forced the pending batch out ahead of itself), `"config"`
    /// (batch policy change) or `"shutdown"` (teardown drain).
    DcsBatchFlush {
        /// What triggered the flush (static label, see above).
        reason: &'static str,
        /// Envelopes coalesced into the flushed frame.
        msgs: u32,
        /// Wire bytes of the flushed frame (header + framed payloads).
        bytes: usize,
    },
    /// The reliable-delivery layer retransmitted an unacknowledged frame.
    DcsRetry {
        /// Destination rank of the retransmission.
        peer: usize,
        /// Sequence number of the retransmitted frame.
        seq: u64,
        /// Retry attempt for this backoff round (1 = first retransmit).
        attempt: u32,
    },
    /// A duplicate message was suppressed (reliable-layer sequence dedup)
    /// or observed (MOL sequence replay); the duplicate was not delivered.
    DcsDuplicate {
        /// Source rank of the duplicate.
        peer: usize,
        /// Raw handler id of the duplicate envelope.
        handler: u32,
    },
    /// The simulator charged `dur` nanoseconds of simulated time to cost
    /// category `cat` (`prema_sim::Category as usize`).
    Span {
        /// Cost category index (see `prema_sim::Category::ALL`).
        cat: u8,
        /// Duration in simulated nanoseconds.
        dur: u64,
    },
    /// This processor finished its part of the run (simulator `finish`).
    ProcFinish,
}

impl TraceEvent {
    /// Stable snake_case name used as the `"ev"` field in JSONL dumps.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::Send { .. } => "send",
            TraceEvent::Recv { .. } => "recv",
            TraceEvent::Migrate { .. } => "migrate",
            TraceEvent::Install { .. } => "install",
            TraceEvent::ForwardHop { .. } => "forward_hop",
            TraceEvent::LocCacheHit { .. } => "loc_cache_hit",
            TraceEvent::LocCacheMiss { .. } => "loc_cache_miss",
            TraceEvent::LocCacheStale { .. } => "loc_cache_stale",
            TraceEvent::HomeLookup { .. } => "home_lookup",
            TraceEvent::ExecBegin { .. } => "exec_begin",
            TraceEvent::ExecFinish { .. } => "exec_finish",
            TraceEvent::Poll { .. } => "poll",
            TraceEvent::PollSystem { .. } => "poll_system",
            TraceEvent::PollWake { .. } => "poll_wake",
            TraceEvent::LbRequest { .. } => "lb_request",
            TraceEvent::LbRequestRecv { .. } => "lb_request_recv",
            TraceEvent::LbGrant { .. } => "lb_grant",
            TraceEvent::LbGrantRecv { .. } => "lb_grant_recv",
            TraceEvent::LbNackSent { .. } => "lb_nack_sent",
            TraceEvent::LbNackRecv { .. } => "lb_nack_recv",
            TraceEvent::LbVeto { .. } => "lb_veto",
            TraceEvent::LbForecast { .. } => "lb_forecast",
            TraceEvent::DcsDropped { .. } => "dcs_dropped",
            TraceEvent::DcsBatchFlush { .. } => "dcs_batch_flush",
            TraceEvent::DcsRetry { .. } => "dcs_retry",
            TraceEvent::DcsDuplicate { .. } => "dcs_duplicate",
            TraceEvent::Span { .. } => "span",
            TraceEvent::ProcFinish => "proc_finish",
        }
    }

    /// Append the event-specific JSON fields (everything after `"ev"`) to a
    /// line under construction. Fields are flat scalars only, so the
    /// `trace-report` parser in xtask can stay a hand-rolled splitter.
    fn write_fields(&self, out: &mut String) {
        match *self {
            TraceEvent::Send {
                dst,
                handler,
                bytes,
                system,
            } => {
                let _ = write!(
                    out,
                    ",\"dst\":{dst},\"handler\":{handler},\"bytes\":{bytes},\"system\":{system}"
                );
            }
            TraceEvent::Recv {
                src,
                handler,
                bytes,
                system,
            } => {
                let _ = write!(
                    out,
                    ",\"src\":{src},\"handler\":{handler},\"bytes\":{bytes},\"system\":{system}"
                );
            }
            TraceEvent::Migrate { home, index, dst } => {
                let _ = write!(out, ",\"home\":{home},\"index\":{index},\"dst\":{dst}");
            }
            TraceEvent::Install { home, index, from } => {
                let _ = write!(out, ",\"home\":{home},\"index\":{index},\"from\":{from}");
            }
            TraceEvent::ForwardHop {
                home,
                index,
                next,
                hops,
            } => {
                let _ = write!(
                    out,
                    ",\"home\":{home},\"index\":{index},\"next\":{next},\"hops\":{hops}"
                );
            }
            TraceEvent::LocCacheHit { home, index, owner } => {
                let _ = write!(out, ",\"home\":{home},\"index\":{index},\"owner\":{owner}");
            }
            TraceEvent::LocCacheMiss { home, index, shard }
            | TraceEvent::HomeLookup { home, index, shard } => {
                let _ = write!(out, ",\"home\":{home},\"index\":{index},\"shard\":{shard}");
            }
            TraceEvent::LocCacheStale {
                home,
                index,
                owner,
                epoch,
            } => {
                let _ = write!(
                    out,
                    ",\"home\":{home},\"index\":{index},\"owner\":{owner},\"epoch\":{epoch}"
                );
            }
            TraceEvent::ExecBegin {
                home,
                index,
                handler,
            } => {
                let _ = write!(
                    out,
                    ",\"home\":{home},\"index\":{index},\"handler\":{handler}"
                );
            }
            TraceEvent::ExecFinish { home, index } => {
                let _ = write!(out, ",\"home\":{home},\"index\":{index}");
            }
            TraceEvent::Poll { events }
            | TraceEvent::PollSystem { events }
            | TraceEvent::PollWake { events } => {
                let _ = write!(out, ",\"events\":{events}");
            }
            TraceEvent::LbRequest { victim, attempt } => {
                let _ = write!(out, ",\"victim\":{victim},\"attempt\":{attempt}");
            }
            TraceEvent::LbRequestRecv { src } => {
                let _ = write!(out, ",\"src\":{src}");
            }
            TraceEvent::LbGrant { dst, units } => {
                let _ = write!(out, ",\"dst\":{dst},\"units\":{units}");
            }
            TraceEvent::LbGrantRecv { src, units } => {
                let _ = write!(out, ",\"src\":{src},\"units\":{units}");
            }
            TraceEvent::LbNackSent { dst } => {
                let _ = write!(out, ",\"dst\":{dst}");
            }
            TraceEvent::LbNackRecv { src, stale } => {
                let _ = write!(out, ",\"src\":{src},\"stale\":{stale}");
            }
            TraceEvent::LbVeto { peer, kind } => {
                let _ = write!(out, ",\"peer\":{peer},\"kind\":{kind}");
            }
            TraceEvent::LbForecast {
                weight_milli,
                predicted_milli,
                rising,
            } => {
                let _ = write!(
                    out,
                    ",\"weight_milli\":{weight_milli},\"predicted_milli\":{predicted_milli},\"rising\":{rising}"
                );
            }
            TraceEvent::DcsDropped { peer, handler }
            | TraceEvent::DcsDuplicate { peer, handler } => {
                let _ = write!(out, ",\"peer\":{peer},\"handler\":{handler}");
            }
            TraceEvent::DcsBatchFlush {
                reason,
                msgs,
                bytes,
            } => {
                // `reason` is one of a fixed set of static labels (no quotes
                // or escapes), so emitting it verbatim keeps the line valid
                // JSON without an escaper.
                let _ = write!(
                    out,
                    ",\"reason\":\"{reason}\",\"msgs\":{msgs},\"bytes\":{bytes}"
                );
            }
            TraceEvent::DcsRetry { peer, seq, attempt } => {
                // `seq` is already the record-level sequence key; the frame's
                // own sequence number serializes as `frame` to keep the flat
                // JSON object free of duplicate keys.
                let _ = write!(
                    out,
                    ",\"peer\":{peer},\"frame\":{seq},\"attempt\":{attempt}"
                );
            }
            TraceEvent::Span { cat, dur } => {
                let _ = write!(out, ",\"cat\":{cat},\"dur\":{dur}");
            }
            TraceEvent::ProcFinish => {}
        }
    }
}

/// A recorded event with its full stamp: which rank, its logical sequence
/// number on that rank, and a timestamp (simulated nanoseconds when recorded
/// by the simulator, wall nanoseconds since the sink's epoch when recorded
/// by a live [`Tracer`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Record {
    /// Recording rank (simulated processor id in sim runs).
    pub rank: usize,
    /// Per-rank logical sequence number, dense from 0 in recording order.
    pub seq: u64,
    /// Timestamp in nanoseconds (sim time or wall time since sink epoch).
    pub t: u64,
    /// The event itself.
    pub ev: TraceEvent,
}

impl Record {
    /// Render this record as one line of flat JSON (no trailing newline),
    /// the on-disk format consumed by `cargo xtask trace-report`.
    pub fn to_jsonl(&self) -> String {
        let mut line = String::with_capacity(96);
        let _ = write!(
            line,
            "{{\"rank\":{},\"seq\":{},\"t\":{},\"ev\":\"{}\"",
            self.rank,
            self.seq,
            self.t,
            self.ev.name()
        );
        self.ev.write_fields(&mut line);
        line.push('}');
        line
    }
}

/// One rank's bounded event ring. Writers claim a slot with a single
/// `fetch_add` on `cursor`, fill it, then publish with a `Release` store on
/// the slot's `ready` flag; the reader observes slots with `Acquire` loads.
/// Once the ring is full further events only bump `dropped`.
struct RankRing {
    slots: Box<[Slot]>,
    cursor: AtomicU64,
    dropped: AtomicU64,
}

struct Slot {
    ready: AtomicBool,
    data: UnsafeCell<MaybeUninit<(u64, TraceEvent)>>,
}

// SAFETY: each slot's `data` is written at most once, by the unique claimant
// of its index (cursor `fetch_add` hands out each index exactly once), and
// is only read after the claimant's `Release` store of `ready` is observed
// with `Acquire`. There is no aliased mutable access.
unsafe impl Sync for RankRing {}

impl RankRing {
    fn new(capacity: usize) -> Self {
        let mut slots = Vec::with_capacity(capacity);
        for _ in 0..capacity {
            slots.push(Slot {
                ready: AtomicBool::new(false),
                data: UnsafeCell::new(MaybeUninit::uninit()),
            });
        }
        RankRing {
            slots: slots.into_boxed_slice(),
            cursor: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    fn push(&self, t: u64, ev: TraceEvent) {
        let idx = self.cursor.fetch_add(1, Ordering::AcqRel);
        match self.slots.get(idx as usize) {
            Some(slot) => {
                // SAFETY: `idx` was handed to this thread alone; see the
                // `unsafe impl Sync` justification above.
                unsafe { (*slot.data.get()).write((t, ev)) };
                slot.ready.store(true, Ordering::Release);
            }
            None => {
                self.dropped.fetch_add(1, Ordering::AcqRel);
            }
        }
    }

    fn snapshot(&self, rank: usize, out: &mut Vec<Record>) {
        let claimed = self.cursor.load(Ordering::Acquire) as usize;
        let n = claimed.min(self.slots.len());
        for (seq, slot) in self.slots[..n].iter().enumerate() {
            if slot.ready.load(Ordering::Acquire) {
                // SAFETY: `ready` was stored with `Release` after the write;
                // our `Acquire` load makes the initialized value visible.
                let (t, ev) = unsafe { (*slot.data.get()).assume_init_read() };
                out.push(Record {
                    rank,
                    seq: seq as u64,
                    t,
                    ev,
                });
            }
        }
    }
}

/// Default per-rank ring capacity (events). Roughly 40 bytes per slot, so
/// the default costs ~1.3 MiB per rank; callers recording long runs should
/// size explicitly with [`TraceSink::with_capacity`].
pub const DEFAULT_RING_CAPACITY: usize = 1 << 15;

/// A whole machine's trace: one bounded lock-free ring per rank plus a
/// wall-clock epoch for live (non-simulated) recording.
///
/// Constructors return `Arc<TraceSink>` because recording handles on other
/// threads (live [`Tracer`]s, the core poll thread) each hold a reference.
pub struct TraceSink {
    rings: Vec<RankRing>,
    epoch: Instant,
}

impl TraceSink {
    /// A sink for `nprocs` ranks with [`DEFAULT_RING_CAPACITY`] slots each.
    pub fn new(nprocs: usize) -> Arc<Self> {
        Self::with_capacity(nprocs, DEFAULT_RING_CAPACITY)
    }

    /// A sink for `nprocs` ranks with `capacity` slots per rank. Events past
    /// a rank's capacity are dropped (and counted), never reallocated.
    pub fn with_capacity(nprocs: usize, capacity: usize) -> Arc<Self> {
        Arc::new(TraceSink {
            rings: (0..nprocs).map(|_| RankRing::new(capacity)).collect(),
            epoch: Instant::now(),
        })
    }

    /// Number of ranks this sink records.
    pub fn nprocs(&self) -> usize {
        self.rings.len()
    }

    /// Record `ev` for `rank` at timestamp `t` (nanoseconds; the caller
    /// picks the clock — the simulator passes sim time). Events for ranks
    /// this sink does not know are a caller bug and are dropped.
    pub fn record(&self, rank: usize, t: u64, ev: TraceEvent) {
        debug_assert!(rank < self.rings.len(), "trace record for unknown rank");
        if let Some(ring) = self.rings.get(rank) {
            ring.push(t, ev);
        }
    }

    /// Nanoseconds of wall time since this sink was created. Live tracers
    /// stamp events with this clock.
    pub fn elapsed_nanos(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Total events lost to full rings across all ranks.
    pub fn dropped(&self) -> u64 {
        self.rings
            .iter()
            .map(|r| r.dropped.load(Ordering::Acquire))
            .sum()
    }

    /// Copy out every published record, globally ordered by `(t, rank, seq)`.
    /// Safe to call while recording continues (a consistent prefix per rank).
    pub fn drain(&self) -> Vec<Record> {
        let mut out = Vec::new();
        for (rank, ring) in self.rings.iter().enumerate() {
            ring.snapshot(rank, &mut out);
        }
        out.sort_by_key(|r| (r.t, r.rank, r.seq));
        out
    }

    /// Write the full trace as JSONL (one flat object per line) — the input
    /// format of `cargo xtask trace-report`.
    pub fn write_jsonl(&self, out: &mut dyn std::io::Write) -> std::io::Result<()> {
        for rec in self.drain() {
            writeln!(out, "{}", rec.to_jsonl())?;
        }
        Ok(())
    }

    /// A recording handle for `rank`, stamping events with this sink's wall
    /// clock. With the `enabled` feature off this is the same zero-sized
    /// no-op as [`Tracer::off`]; the sink still works via [`TraceSink::record`].
    #[cfg(feature = "enabled")]
    pub fn tracer(self: &Arc<Self>, rank: usize) -> Tracer {
        Tracer(Some(TracerInner {
            sink: Arc::clone(self),
            rank,
        }))
    }

    /// A recording handle for `rank`, stamping events with this sink's wall
    /// clock. With the `enabled` feature off this is the same zero-sized
    /// no-op as [`Tracer::off`]; the sink still works via [`TraceSink::record`].
    #[cfg(not(feature = "enabled"))]
    pub fn tracer(self: &Arc<Self>, _rank: usize) -> Tracer {
        Tracer
    }
}

/// A per-rank recording handle embedded in the live runtime (communicator,
/// mobile-object node, scheduler, poll thread).
///
/// With the default-off `enabled` feature this is a zero-sized type and
/// [`Tracer::emit`] compiles to nothing — including the closure building the
/// event, which is never called. With `enabled` on, an attached tracer
/// stamps events with wall nanoseconds since its sink's epoch.
#[cfg(feature = "enabled")]
#[derive(Clone, Default)]
pub struct Tracer(Option<TracerInner>);

#[cfg(feature = "enabled")]
#[derive(Clone)]
struct TracerInner {
    sink: Arc<TraceSink>,
    rank: usize,
}

#[cfg(feature = "enabled")]
impl Tracer {
    /// A detached tracer: emits are dropped. The default state of every
    /// runtime component until a sink is attached.
    pub fn off() -> Self {
        Tracer(None)
    }

    /// Record the event built by `f` if this tracer is attached to a sink.
    #[inline]
    pub fn emit(&self, f: impl FnOnce() -> TraceEvent) {
        if let Some(inner) = &self.0 {
            let t = inner.sink.elapsed_nanos();
            inner.sink.record(inner.rank, t, f());
        }
    }
}

/// A per-rank recording handle embedded in the live runtime (communicator,
/// mobile-object node, scheduler, poll thread).
///
/// This is the compiled-out variant (`enabled` feature off): a zero-sized
/// type whose [`Tracer::emit`] is an empty `#[inline(always)]` function, so
/// the event-building closure is dead code and the fast path is untouched.
// Deliberately not `Copy`, matching the enabled variant: callers clone when
// fanning a tracer out to sub-components, and the two variants must accept
// identical code.
#[cfg(not(feature = "enabled"))]
#[derive(Clone, Default)]
pub struct Tracer;

#[cfg(not(feature = "enabled"))]
impl Tracer {
    /// A detached tracer (the only state this variant has).
    pub fn off() -> Self {
        Tracer
    }

    /// No-op: the closure is never called and the call compiles away.
    #[inline(always)]
    pub fn emit(&self, _f: impl FnOnce() -> TraceEvent) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_drain_orders_globally() {
        let sink = TraceSink::with_capacity(2, 8);
        sink.record(1, 30, TraceEvent::ProcFinish);
        sink.record(0, 10, TraceEvent::Poll { events: 2 });
        sink.record(0, 20, TraceEvent::Span { cat: 0, dur: 10 });
        let recs = sink.drain();
        assert_eq!(recs.len(), 3);
        // Ordered by timestamp across ranks.
        assert_eq!(recs[0].t, 10);
        assert_eq!(recs[0].rank, 0);
        assert_eq!(recs[0].seq, 0);
        assert_eq!(recs[1].t, 20);
        assert_eq!(recs[1].seq, 1);
        assert_eq!(recs[2].rank, 1);
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn full_ring_counts_drops_instead_of_growing() {
        let sink = TraceSink::with_capacity(1, 4);
        for i in 0..10 {
            sink.record(0, i, TraceEvent::ProcFinish);
        }
        assert_eq!(sink.drain().len(), 4);
        assert_eq!(sink.dropped(), 6);
    }

    #[test]
    fn out_of_range_rank_is_dropped_in_release() {
        let sink = TraceSink::with_capacity(1, 4);
        if cfg!(debug_assertions) {
            // debug builds assert; exercise only the in-range path there
            sink.record(0, 1, TraceEvent::ProcFinish);
        } else {
            sink.record(7, 1, TraceEvent::ProcFinish);
            assert_eq!(sink.drain().len(), 0);
        }
    }

    #[test]
    fn jsonl_lines_are_flat_and_stable() {
        let rec = Record {
            rank: 3,
            seq: 5,
            t: 1234,
            ev: TraceEvent::Send {
                dst: 1,
                handler: 7,
                bytes: 88,
                system: true,
            },
        };
        assert_eq!(
            rec.to_jsonl(),
            "{\"rank\":3,\"seq\":5,\"t\":1234,\"ev\":\"send\",\"dst\":1,\"handler\":7,\"bytes\":88,\"system\":true}"
        );
        let fin = Record {
            rank: 0,
            seq: 0,
            t: 9,
            ev: TraceEvent::ProcFinish,
        };
        assert_eq!(
            fin.to_jsonl(),
            "{\"rank\":0,\"seq\":0,\"t\":9,\"ev\":\"proc_finish\"}"
        );
    }

    #[test]
    fn chaos_events_serialize_flat() {
        let drop = Record {
            rank: 2,
            seq: 0,
            t: 7,
            ev: TraceEvent::DcsDropped {
                peer: 5,
                handler: 9,
            },
        };
        assert_eq!(
            drop.to_jsonl(),
            "{\"rank\":2,\"seq\":0,\"t\":7,\"ev\":\"dcs_dropped\",\"peer\":5,\"handler\":9}"
        );
        let retry = Record {
            rank: 1,
            seq: 1,
            t: 8,
            ev: TraceEvent::DcsRetry {
                peer: 3,
                seq: 42,
                attempt: 2,
            },
        };
        let flush = Record {
            rank: 0,
            seq: 2,
            t: 9,
            ev: TraceEvent::DcsBatchFlush {
                reason: "size",
                msgs: 32,
                bytes: 420,
            },
        };
        assert_eq!(
            flush.to_jsonl(),
            "{\"rank\":0,\"seq\":2,\"t\":9,\"ev\":\"dcs_batch_flush\",\"reason\":\"size\",\"msgs\":32,\"bytes\":420}"
        );
        assert_eq!(
            retry.to_jsonl(),
            "{\"rank\":1,\"seq\":1,\"t\":8,\"ev\":\"dcs_retry\",\"peer\":3,\"frame\":42,\"attempt\":2}"
        );
        let dup = Record {
            rank: 0,
            seq: 2,
            t: 9,
            ev: TraceEvent::DcsDuplicate {
                peer: 4,
                handler: 1,
            },
        };
        assert_eq!(
            dup.to_jsonl(),
            "{\"rank\":0,\"seq\":2,\"t\":9,\"ev\":\"dcs_duplicate\",\"peer\":4,\"handler\":1}"
        );
    }

    #[test]
    fn directory_events_serialize_flat() {
        let hit = Record {
            rank: 2,
            seq: 0,
            t: 5,
            ev: TraceEvent::LocCacheHit {
                home: 1,
                index: 9,
                owner: 6,
            },
        };
        assert_eq!(
            hit.to_jsonl(),
            "{\"rank\":2,\"seq\":0,\"t\":5,\"ev\":\"loc_cache_hit\",\"home\":1,\"index\":9,\"owner\":6}"
        );
        let miss = Record {
            rank: 2,
            seq: 1,
            t: 6,
            ev: TraceEvent::LocCacheMiss {
                home: 1,
                index: 9,
                shard: 3,
            },
        };
        assert_eq!(
            miss.to_jsonl(),
            "{\"rank\":2,\"seq\":1,\"t\":6,\"ev\":\"loc_cache_miss\",\"home\":1,\"index\":9,\"shard\":3}"
        );
        let stale = Record {
            rank: 2,
            seq: 2,
            t: 7,
            ev: TraceEvent::LocCacheStale {
                home: 1,
                index: 9,
                owner: 7,
                epoch: 4,
            },
        };
        assert_eq!(
            stale.to_jsonl(),
            "{\"rank\":2,\"seq\":2,\"t\":7,\"ev\":\"loc_cache_stale\",\"home\":1,\"index\":9,\"owner\":7,\"epoch\":4}"
        );
        let lookup = Record {
            rank: 2,
            seq: 3,
            t: 8,
            ev: TraceEvent::HomeLookup {
                home: 1,
                index: 9,
                shard: 3,
            },
        };
        assert_eq!(
            lookup.to_jsonl(),
            "{\"rank\":2,\"seq\":3,\"t\":8,\"ev\":\"home_lookup\",\"home\":1,\"index\":9,\"shard\":3}"
        );
    }

    #[test]
    fn governor_events_serialize_flat() {
        let veto = Record {
            rank: 1,
            seq: 0,
            t: 4,
            ev: TraceEvent::LbVeto { peer: 3, kind: 1 },
        };
        assert_eq!(
            veto.to_jsonl(),
            "{\"rank\":1,\"seq\":0,\"t\":4,\"ev\":\"lb_veto\",\"peer\":3,\"kind\":1}"
        );
        let fc = Record {
            rank: 0,
            seq: 1,
            t: 5,
            ev: TraceEvent::LbForecast {
                weight_milli: 1500,
                predicted_milli: 2750,
                rising: true,
            },
        };
        assert_eq!(
            fc.to_jsonl(),
            "{\"rank\":0,\"seq\":1,\"t\":5,\"ev\":\"lb_forecast\",\"weight_milli\":1500,\"predicted_milli\":2750,\"rising\":true}"
        );
    }

    #[test]
    fn write_jsonl_emits_one_line_per_record() {
        let sink = TraceSink::with_capacity(1, 4);
        sink.record(0, 1, TraceEvent::Poll { events: 1 });
        sink.record(0, 2, TraceEvent::ProcFinish);
        let mut buf = Vec::new();
        sink.write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn concurrent_pushes_all_land_or_count_as_dropped() {
        let sink = TraceSink::with_capacity(1, 1024);
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&sink);
                std::thread::spawn(move || {
                    for i in 0..512u64 {
                        s.record(0, i, TraceEvent::Span { cat: 0, dur: i });
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let recs = sink.drain();
        assert_eq!(recs.len() as u64 + sink.dropped(), 4 * 512);
        assert_eq!(recs.len(), 1024);
        // Sequence numbers are dense per rank.
        let mut seqs: Vec<u64> = recs.iter().map(|r| r.seq).collect();
        seqs.sort_unstable();
        assert!(seqs.iter().enumerate().all(|(i, s)| *s == i as u64));
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn enabled_tracer_records_with_wall_stamps() {
        let sink = TraceSink::with_capacity(2, 16);
        let t1 = sink.tracer(1);
        t1.emit(|| TraceEvent::PollWake { events: 3 });
        let recs = sink.drain();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].rank, 1);
        assert_eq!(recs[0].ev, TraceEvent::PollWake { events: 3 });
        // Detached tracers drop events silently.
        Tracer::off().emit(|| TraceEvent::ProcFinish);
        assert_eq!(sink.drain().len(), 1);
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_tracer_is_zero_sized_and_never_calls_the_closure() {
        assert_eq!(std::mem::size_of::<Tracer>(), 0);
        let tracer = Tracer::off();
        tracer.emit(|| unreachable!("closure must not run when disabled"));
        let sink = TraceSink::with_capacity(1, 4);
        sink.tracer(0)
            .emit(|| unreachable!("sink tracer is also a no-op when disabled"));
        assert_eq!(sink.drain().len(), 0);
    }
}
