//! Ablation benches for the design choices DESIGN.md calls out. Each group
//! sweeps one knob over the Figure-3 workload (32 processors) and prints the
//! resulting makespans, so `cargo bench` records how the knob moves the
//! result.
//!
//! * `ablate_poll_interval` — the implicit polling thread's period (§4.2):
//!   too long ≈ explicit mode; too short wastes cycles.
//! * `ablate_watermark` — the explicit-mode water-mark (§4.1): 0 reproduces
//!   the run-dry failure mode; higher values overlap steal round-trips.
//! * `ablate_alpha` — ParMETIS's Relative Cost Factor in |Ecut| + α|Vmove|.
//! * `ablate_sync_points` — Charm++'s load-balancing frequency I − 1.
//! * `ablate_grant` — mobile objects surrendered per steal (footnote 2).
//! * `ablate_forwarding` — MOL location-update strategy: lazy (the paper's)
//!   vs fully lazy vs eager broadcast.

use criterion::{criterion_group, criterion_main, Criterion};
use prema_harness::drivers::{charm_drv, parmetis_drv, prema_drv};
use prema_harness::BenchSpec;
use prema_sim::{MachineConfig, SimTime};
use std::hint::black_box;

fn spec() -> BenchSpec {
    BenchSpec::figure3(MachineConfig::small(32), 40)
}

fn ablate_poll_interval(c: &mut Criterion) {
    let spec = spec();
    let mut group = c.benchmark_group("ablate_poll_interval");
    group.sample_size(10);
    println!("\n== ablate_poll_interval (fig3 workload, 32 procs) ==");
    for ms in [10u64, 50, 100, 500, 2000] {
        let cfg = prema_drv::PremaCfg {
            implicit: true,
            poll_interval: SimTime::from_millis(ms),
            ..prema_drv::PremaCfg::default()
        };
        let r = prema_drv::run(&spec, cfg);
        println!(
            "poll_interval {ms:>5} ms → makespan {:.2}s",
            r.makespan.as_secs_f64()
        );
        group.bench_function(format!("{ms}ms"), |b| {
            b.iter(|| black_box(prema_drv::run(black_box(&spec), cfg).makespan))
        });
    }
    group.finish();
}

fn ablate_watermark(c: &mut Criterion) {
    let spec = spec();
    let mut group = c.benchmark_group("ablate_watermark");
    group.sample_size(10);
    println!("\n== ablate_watermark (explicit mode, fig3 workload) ==");
    for wm in [0.0f64, 200.0, 400.0, 800.0, 1600.0] {
        let cfg = prema_drv::PremaCfg {
            implicit: false,
            watermark_mflop: wm,
            ..prema_drv::PremaCfg::default()
        };
        let r = prema_drv::run(&spec, cfg);
        println!(
            "watermark {wm:>6.0} Mflop → makespan {:.2}s",
            r.makespan.as_secs_f64()
        );
        group.bench_function(format!("{wm}"), |b| {
            b.iter(|| black_box(prema_drv::run(black_box(&spec), cfg).makespan))
        });
    }
    group.finish();
}

fn ablate_alpha(c: &mut Criterion) {
    let spec = spec();
    let mut group = c.benchmark_group("ablate_alpha");
    group.sample_size(10);
    println!("\n== ablate_alpha (ParMETIS relative cost factor) ==");
    for alpha in [0.1f64, 1.0, 10.0, 100.0] {
        let cfg = parmetis_drv::ParMetisCfg {
            alpha,
            ..parmetis_drv::ParMetisCfg::default()
        };
        let r = parmetis_drv::run(&spec, cfg);
        println!(
            "alpha {alpha:>6.1} → makespan {:.2}s",
            r.makespan.as_secs_f64()
        );
        group.bench_function(format!("{alpha}"), |b| {
            b.iter(|| black_box(parmetis_drv::run(black_box(&spec), cfg).makespan))
        });
    }
    group.finish();
}

fn ablate_sync_points(c: &mut Criterion) {
    let spec = spec();
    let mut group = c.benchmark_group("ablate_sync_points");
    group.sample_size(10);
    println!("\n== ablate_sync_points (Charm++ AtSync frequency) ==");
    for sync_points in [0usize, 1, 4, 7] {
        // unit counts divide I = sync_points + 1 for these choices (1280 units)
        let r = charm_drv::run(&spec, sync_points);
        println!(
            "sync points {sync_points} → makespan {:.2}s",
            r.makespan.as_secs_f64()
        );
        group.bench_function(format!("{sync_points}"), |b| {
            b.iter(|| black_box(charm_drv::run(black_box(&spec), sync_points).makespan))
        });
    }
    group.finish();
}

fn ablate_grant(c: &mut Criterion) {
    let spec = spec();
    let mut group = c.benchmark_group("ablate_grant");
    group.sample_size(10);
    println!("\n== ablate_grant (mobile objects per steal, §4 footnote 2) ==");
    for grant in [1usize, 2, 4, 16] {
        let cfg = prema_drv::PremaCfg {
            max_grant: grant,
            ..prema_drv::PremaCfg::default()
        };
        let r = prema_drv::run(&spec, cfg);
        println!(
            "max_grant {grant:>3} → makespan {:.2}s",
            r.makespan.as_secs_f64()
        );
        group.bench_function(format!("{grant}"), |b| {
            b.iter(|| black_box(prema_drv::run(black_box(&spec), cfg).makespan))
        });
    }
    group.finish();
}

fn ablate_forwarding(c: &mut Criterion) {
    use bytes::Bytes;
    use prema_dcs::{Communicator, LocalFabric};
    use prema_mol::{Migratable, MolConfig, MolNode};

    struct Blob(u64);
    impl Migratable for Blob {
        fn pack(&self, buf: &mut Vec<u8>) {
            buf.extend_from_slice(&self.0.to_le_bytes());
        }
        fn unpack(b: &[u8]) -> Self {
            Blob(u64::from_le_bytes(b[..8].try_into().unwrap()))
        }
    }

    // A migration-heavy churn: the object hops around an 8-rank machine
    // while a fixed sender streams messages at it. Lazy updates trade
    // forwarding hops for fewer update messages; eager broadcast trades the
    // other way. The printed counters record the tradeoff; the bench times
    // the whole churn.
    let run = |cfg: MolConfig| -> (u64, u64) {
        let mut nodes: Vec<MolNode<Blob>> = LocalFabric::new(8)
            .into_iter()
            .map(|ep| MolNode::with_config(Communicator::new(Box::new(ep)), cfg))
            .collect();
        let ptr = nodes[0].register(Blob(0));
        for round in 0..50usize {
            let dst = (round * 3 + 1) % 8;
            if let Some(src) = nodes.iter().position(|n| n.is_local(ptr)) {
                if src != dst {
                    let _ = nodes[src].migrate(ptr, dst);
                }
            }
            nodes[7].message(ptr, 1, Bytes::from_static(b"m"));
            for _ in 0..3 {
                for n in nodes.iter_mut() {
                    let _ = n.poll();
                }
            }
        }
        let fwd: u64 = nodes.iter().map(|n| n.stats().forwarded).sum();
        let upd: u64 = nodes.iter().map(|n| n.stats().locupd_sent).sum();
        (fwd, upd)
    };

    println!("\n== ablate_forwarding (50 migrations, 8 ranks) ==");
    let mut group = c.benchmark_group("ablate_forwarding");
    group.sample_size(10);
    for (name, cfg) in [
        ("lazy_default", MolConfig::default()),
        (
            "fully_lazy",
            MolConfig {
                update_home_on_install: false,
                update_sender_on_forward: false,
                broadcast_on_install: false,
                // Keep the ablation about the legacy teaching paths: the
                // sharded directory would mask what this axis measures.
                sharded_directory: false,
                ..MolConfig::default()
            },
        ),
        (
            "eager_broadcast",
            MolConfig {
                broadcast_on_install: true,
                ..MolConfig::default()
            },
        ),
    ] {
        let (fwd, upd) = run(cfg);
        println!("{name:>16}: {fwd:>4} forwards, {upd:>4} location updates");
        group.bench_function(name, |b| b.iter(|| black_box(run(black_box(cfg)))));
    }
    group.finish();
}

criterion_group!(
    benches,
    ablate_poll_interval,
    ablate_watermark,
    ablate_alpha,
    ablate_sync_points,
    ablate_grant,
    ablate_forwarding
);
criterion_main!(benches);
