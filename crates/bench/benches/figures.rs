//! One bench group per evaluation figure (3–6): each regenerates the
//! figure's six configurations at a reduced machine scale and reports, via
//! Criterion, the cost of the full simulation. The *makespans* (the numbers
//! the figures plot) are printed once per group so `cargo bench` output
//! doubles as a figure regeneration record; the full-scale tables come from
//! `cargo run -p prema-harness --release --bin figure -- <n>`.
//!
//! The mesh-generation study (the §5 text's 42%/15% result) is included as
//! its own group.

use criterion::{criterion_group, criterion_main, Criterion};
use prema_harness::mesh_eval::{run_mesh_eval, MeshEvalSpec};
use prema_harness::runner::run_figure;
use prema_harness::{BenchSpec, Config};
use prema_sim::MachineConfig;
use std::hint::black_box;

/// Bench-scale spec: 32 processors, 40 units each — big enough for the
/// orderings to hold, small enough for Criterion's repeats.
fn bench_spec(figure: u32) -> BenchSpec {
    let m = MachineConfig::small(32);
    match figure {
        3 => BenchSpec::figure3(m, 40),
        4 => BenchSpec::figure4(m, 40),
        5 => BenchSpec::figure5(m, 40),
        6 => BenchSpec::figure6(m, 40),
        _ => unreachable!(),
    }
}

fn bench_figures(c: &mut Criterion) {
    for figure in [3u32, 4, 5, 6] {
        let spec = bench_spec(figure);
        // Print the regenerated series once, so bench output records it.
        let report = run_figure(figure, &spec);
        println!("\n{}", report.summary());

        let mut group = c.benchmark_group(format!("figure{figure}"));
        group.sample_size(10);
        // One config per figure is enough for timing; running all six
        // under `b.iter` would multiply bench time sixfold for no
        // information — the summary above already records every panel.
        if let Some(cfg) = Config::ALL.into_iter().next() {
            group.bench_function(format!("{:?}", cfg), |b| {
                b.iter(|| {
                    let r = run_figure(figure, black_box(&spec));
                    black_box(r.makespan_secs(cfg))
                })
            });
        }
        group.finish();
    }
}

fn bench_mesh_study(c: &mut Criterion) {
    let spec = MeshEvalSpec::test_scale();
    let result = run_mesh_eval(&spec);
    println!("\n{}", result.render());
    let mut group = c.benchmark_group("mesh_study");
    group.sample_size(10);
    group.bench_function("three_way_small", |b| {
        b.iter(|| {
            let r = run_mesh_eval(black_box(&spec));
            black_box(r.saving_vs_nolb())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_figures, bench_mesh_study);
criterion_main!(benches);
