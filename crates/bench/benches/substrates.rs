//! Microbenchmarks of the substrates underneath the evaluation: graph
//! partitioning, the mobile object layer (real threads), the discrete-event
//! engine, and the advancing-front mesher. These are the costs the runtime
//! models in the figures charge for, and the knobs a downstream user would
//! profile first.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};
use prema_dcs::{Communicator, LocalFabric};
use prema_mesh::{Point3, Subdomain, Uniform};
use prema_metis::{adaptive_repart, partition_kway, Graph, PartitionConfig};
use prema_mol::{Migratable, MolEvent, MolNode};
use std::hint::black_box;

struct Blob(Vec<u8>);
impl Migratable for Blob {
    fn pack(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.0);
    }
    fn unpack(b: &[u8]) -> Self {
        Blob(b.to_vec())
    }
}

fn bench_partitioning(c: &mut Criterion) {
    let mut group = c.benchmark_group("metis");
    let g = Graph::grid(64, 64); // 4096 vertices
    group.bench_function("partition_kway_4096v_k8", |b| {
        b.iter(|| {
            black_box(partition_kway(
                black_box(&g),
                8,
                &PartitionConfig::default(),
            ))
        })
    });
    let old: Vec<u32> = (0..g.nv()).map(|v| (v * 8 / g.nv()) as u32).collect();
    group.bench_function("adaptive_repart_4096v_k8", |b| {
        b.iter(|| {
            black_box(adaptive_repart(
                black_box(&g),
                &old,
                8,
                1.0,
                &PartitionConfig::default(),
            ))
        })
    });
    let small = Graph::grid(16, 16);
    group.bench_function("heavy_edge_matching_256v", |b| {
        b.iter(|| {
            black_box(prema_metis::coarsen::heavy_edge_matching(
                black_box(&small),
                7,
            ))
        })
    });
    group.finish();
}

fn bench_mol(c: &mut Criterion) {
    let mut group = c.benchmark_group("mol");
    // Single-node message delivery path (route → order → deliver).
    group.bench_function("local_message_roundtrip", |b| {
        let mut eps = LocalFabric::new(1);
        let mut node: MolNode<Blob> = MolNode::new(Communicator::new(Box::new(eps.pop().unwrap())));
        let ptr = node.register(Blob(vec![0; 64]));
        b.iter(|| {
            node.message(ptr, 1, Bytes::from_static(b"x"));
            let evs = node.poll();
            debug_assert!(matches!(evs.last(), Some(MolEvent::Object { .. })));
            black_box(evs.len())
        })
    });
    // Full migration round trip between two in-process ranks.
    group.bench_function("migrate_4KiB_roundtrip", |b| {
        let mut eps = LocalFabric::new(2);
        let ep1 = eps.pop().unwrap();
        let ep0 = eps.pop().unwrap();
        let mut n0: MolNode<Blob> = MolNode::new(Communicator::new(Box::new(ep0)));
        let mut n1: MolNode<Blob> = MolNode::new(Communicator::new(Box::new(ep1)));
        let ptr = n0.register(Blob(vec![7; 4096]));
        b.iter(|| {
            assert!(n0.migrate(ptr, 1));
            let _ = n1.poll();
            assert!(n1.migrate(ptr, 0));
            let _ = n0.poll();
            black_box(n0.is_local(ptr))
        })
    });
    group.finish();
}

fn bench_sim_engine(c: &mut Criterion) {
    use prema_sim::{Category, Ctx, Engine, MachineConfig, Process, SimTime};
    struct Worker {
        left: u32,
    }
    impl Process for Worker {
        fn on_start(&mut self, ctx: &mut Ctx) {
            ctx.schedule(SimTime::ZERO, 1);
        }
        fn on_timer(&mut self, ctx: &mut Ctx, _t: u64) {
            if self.left == 0 {
                ctx.finish();
                return;
            }
            self.left -= 1;
            ctx.consume(Category::Computation, SimTime::from_millis(1));
            if self.left.is_multiple_of(8) && ctx.pid() + 1 < ctx.num_procs() {
                ctx.send(ctx.pid() + 1, 1, 64, Box::new(()));
            }
            let _ = ctx.poll();
            ctx.schedule(SimTime::ZERO, 1);
        }
    }
    let mut group = c.benchmark_group("sim");
    group.bench_function("engine_32procs_1k_events_each", |b| {
        b.iter(|| {
            let report = Engine::build(MachineConfig::small(32), |_| {
                Box::new(Worker { left: 1000 })
            })
            .run();
            black_box(report.events)
        })
    });
    group.finish();
}

fn bench_mesher(c: &mut Criterion) {
    let mut group = c.benchmark_group("mesh");
    group.bench_function("mesh_unit_box_h0.2", |b| {
        b.iter(|| {
            let mut s = Subdomain::seed_box(
                1,
                Point3::new(0.0, 0.0, 0.0),
                Point3::new(1.0, 1.0, 1.0),
                0.05,
            );
            black_box(s.mesh_all(&Uniform(0.2)).tets_created)
        })
    });
    group.bench_function("pack_unpack_meshed_box", |b| {
        let mut s = Subdomain::seed_box(
            1,
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(1.0, 1.0, 1.0),
            0.05,
        );
        let _ = s.mesh_all(&Uniform(0.25));
        b.iter(|| {
            let mut buf = Vec::new();
            s.pack(&mut buf);
            black_box(Subdomain::unpack(&buf).tets.len())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_partitioning,
    bench_mol,
    bench_sim_engine,
    bench_mesher
);
criterion_main!(benches);
