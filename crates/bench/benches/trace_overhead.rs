//! Overhead of the event tracer on the substrate fast path.
//!
//! Run twice and compare:
//!
//! * default build — the `Tracer` is a ZST and `emit` compiles to nothing;
//!   these numbers must be indistinguishable from the `substrates` baseline.
//! * `--features trace` — measures both the dormant handle (installed but
//!   `Tracer::off()`, the cost every traced binary pays when not recording)
//!   and a live recording tracer (the cost while a dump is being captured).
//!
//! CI runs this in `--test` smoke mode so the harness itself stays verified.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};
use prema_dcs::{Communicator, HandlerId, LocalFabric, Tag};
use prema_mol::{Migratable, MolEvent, MolNode};
use std::hint::black_box;

/// Which build this binary measures; shows up in the benchmark names so the
/// two runs never get compared against the wrong baseline.
const MODE: &str = if cfg!(feature = "trace") {
    "trace-feature-on"
} else {
    "trace-feature-off"
};

struct Blob(Vec<u8>);
impl Migratable for Blob {
    fn pack(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.0);
    }
    fn unpack(b: &[u8]) -> Self {
        Blob(b.to_vec())
    }
}

const H_BENCH: HandlerId = HandlerId(64);

fn comm_self_loop() -> Communicator {
    let mut eps = LocalFabric::new(1);
    Communicator::new(Box::new(eps.pop().expect("fabric built with one endpoint")))
}

fn bench_dcs(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_overhead");
    group.bench_function(format!("dcs_send_recv/{MODE}"), |b| {
        let comm = comm_self_loop();
        b.iter(|| {
            comm.am_send(0, H_BENCH, Tag::App, Bytes::from_static(b"x"));
            black_box(comm.try_recv().is_some())
        })
    });
    // With the feature compiled in, also measure a live recording tracer —
    // the worst case: every send and recv claims a ring slot.
    #[cfg(feature = "trace")]
    group.bench_function(format!("dcs_send_recv/{MODE}-recording"), |b| {
        let sink = prema_trace::TraceSink::with_capacity(1, 1 << 22);
        let mut comm = comm_self_loop();
        comm.set_tracer(sink.tracer(0));
        b.iter(|| {
            comm.am_send(0, H_BENCH, Tag::App, Bytes::from_static(b"x"));
            black_box(comm.try_recv().is_some())
        })
    });
    group.finish();
}

fn bench_mol(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_overhead");
    group.bench_function(format!("mol_local_message/{MODE}"), |b| {
        let mut node: MolNode<Blob> = MolNode::new(comm_self_loop());
        let ptr = node.register(Blob(vec![0; 64]));
        b.iter(|| {
            node.message(ptr, 1, Bytes::from_static(b"x"));
            let evs = node.poll();
            debug_assert!(matches!(evs.last(), Some(MolEvent::Object { .. })));
            black_box(evs.len())
        })
    });
    #[cfg(feature = "trace")]
    group.bench_function(format!("mol_local_message/{MODE}-recording"), |b| {
        let sink = prema_trace::TraceSink::with_capacity(1, 1 << 22);
        let mut node: MolNode<Blob> = MolNode::new(comm_self_loop());
        node.set_tracer(sink.tracer(0));
        let ptr = node.register(Blob(vec![0; 64]));
        b.iter(|| {
            node.message(ptr, 1, Bytes::from_static(b"x"));
            let evs = node.poll();
            debug_assert!(matches!(evs.last(), Some(MolEvent::Object { .. })));
            black_box(evs.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_dcs, bench_mol);
criterion_main!(benches);
