//! The sharded mobile-object directory: what a location lookup costs on
//! each of its paths (DESIGN.md §16).
//!
//! * `resolve_hit` — the O(1) promise of the sender caches: resolving a
//!   warm pointer is a local lookup, no wire traffic. The acceptance bar
//!   for this PR is ≥ 5× faster per resolve than the per-message cost of
//!   `chase_4hop` below (in practice it is orders of magnitude).
//! * `resolve_miss` — the bounded fallback: a cold resolve mails the home
//!   shard one `DirLookup` and the answer lands in the cache on a later
//!   poll. Measured over a working set larger than the cache so every
//!   resolve is a genuine capacity miss plus its shard round trip.
//! * `chase_4hop` — the cost the directory removes: legacy home-forwarding
//!   with every teaching path disabled walks the full forward-pointer
//!   trail (home + 4 hops) on *every* send.
//! * `send_cached_direct` — end-to-end control for `chase_4hop`: the same
//!   sends with a warm sender cache take one transport leg each.
//! * `migrate_publish` — what keeping the shard authority fresh adds to a
//!   migration round trip (a `DirPublish` per move).
//! * `chain_collapse` at 8/32/128 ranks — the recovery path: after a
//!   migration invalidates the sender's entry, the first send pays one
//!   constant stale → shard → owner redirect and the piggybacked answer
//!   re-warms the cache for the rest. Flat in machine size, unlike a
//!   trail walk.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};
use prema_dcs::{Communicator, LocalFabric};
use prema_mol::{Migratable, MobilePtr, MolConfig, MolEvent, MolNode};
use std::hint::black_box;

struct Blob(Vec<u8>);
impl Migratable for Blob {
    fn pack(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.0);
    }
    fn unpack(b: &[u8]) -> Self {
        Blob(b.to_vec())
    }
}

fn sharded_machine(n: usize) -> Vec<MolNode<Blob>> {
    LocalFabric::new(n)
        .into_iter()
        .map(|ep| MolNode::with_config(Communicator::new(Box::new(ep)), MolConfig::default()))
        .collect()
}

/// Poll every node until `want` object messages have been delivered.
fn deliver(nodes: &mut [MolNode<Blob>], want: usize) -> usize {
    let mut delivered = 0;
    while delivered < want {
        for node in nodes.iter_mut() {
            delivered += node
                .poll()
                .iter()
                .filter(|e| matches!(e, MolEvent::Object { .. }))
                .count();
        }
    }
    delivered
}

/// Pump with no delivery target until a full quiet round (installs,
/// publishes, and teaching answers settled).
fn settle(nodes: &mut [MolNode<Blob>]) {
    loop {
        let before: u64 = nodes.iter().map(|n| n.comm().stats().msgs_recvd).sum();
        for node in nodes.iter_mut() {
            let _ = node.poll();
        }
        let after: u64 = nodes.iter().map(|n| n.comm().stats().msgs_recvd).sum();
        if after == before {
            break;
        }
    }
}

/// A 4-rank machine with one object migrated three hops from home and
/// rank 0's location cache warmed by a single taught send.
fn warm_machine() -> (Vec<MolNode<Blob>>, MobilePtr) {
    let mut nodes = sharded_machine(4);
    let ptr = nodes[1].register(Blob(vec![0; 64]));
    for dst in [2usize, 3, 2] {
        let src = nodes
            .iter()
            .position(|nd| nd.is_local(ptr))
            .expect("object resident");
        assert!(nodes[src].migrate(ptr, dst));
        settle(&mut nodes);
    }
    nodes[0].message(ptr, 0, Bytes::new());
    deliver(&mut nodes, 1);
    settle(&mut nodes);
    (nodes, ptr)
}

const SENDS: usize = 1_000;

fn bench_resolve_hit(c: &mut Criterion) {
    let mut group = c.benchmark_group("mol-directory");
    let (mut nodes, ptr) = warm_machine();
    assert_eq!(nodes[0].resolve(ptr), Some(2), "cache not warm");

    group.bench_function(format!("resolve_hit_x{SENDS}"), |b| {
        b.iter(|| {
            let mut owner = 0;
            for _ in 0..SENDS {
                owner = nodes[0].resolve(black_box(ptr)).expect("warm resolve");
            }
            black_box(owner)
        })
    });
    group.finish();
}

fn bench_resolve_miss(c: &mut Criterion) {
    const OBJS: usize = 1_024;
    let mut group = c.benchmark_group("mol-directory");
    // A cache far smaller than the working set: scanning all pointers in
    // order guarantees every resolve is a capacity miss, so each iteration
    // measures OBJS full miss round trips (DirLookup out, DirAnswer back).
    let tiny_cache = MolConfig {
        loc_cache: 64,
        ..MolConfig::default()
    };
    let mut nodes: Vec<MolNode<Blob>> = LocalFabric::new(4)
        .into_iter()
        .map(|ep| MolNode::with_config(Communicator::new(Box::new(ep)), tiny_cache))
        .collect();
    let ptrs: Vec<MobilePtr> = (0..OBJS)
        .map(|_| nodes[1].register(Blob(vec![0; 16])))
        .collect();

    group.bench_function(format!("resolve_miss_lookup_x{OBJS}"), |b| {
        b.iter(|| {
            for &ptr in &ptrs {
                black_box(nodes[0].resolve(ptr));
            }
            settle(&mut nodes);
        })
    });
    group.finish();
}

fn bench_chase_4hop(c: &mut Criterion) {
    let mut group = c.benchmark_group("mol-directory");
    // Legacy home-forwarding with teaching off: the trail never collapses,
    // so every send walks home plus four forward pointers.
    let legacy_mute = MolConfig {
        update_home_on_install: false,
        update_sender_on_forward: false,
        broadcast_on_install: false,
        sharded_directory: false,
        ..MolConfig::default()
    };
    let mut nodes: Vec<MolNode<Blob>> = LocalFabric::new(6)
        .into_iter()
        .map(|ep| MolNode::with_config(Communicator::new(Box::new(ep)), legacy_mute))
        .collect();
    let ptr = nodes[1].register(Blob(vec![0; 64]));
    for (src, dst) in [(1usize, 2usize), (2, 3), (3, 4), (4, 5)] {
        assert!(nodes[src].migrate(ptr, dst));
        let _ = nodes[dst].poll();
    }

    group.bench_function(format!("chase_4hop_x{SENDS}"), |b| {
        b.iter(|| {
            for i in 0..SENDS {
                nodes[0].message(ptr, i as u32, Bytes::new());
            }
            black_box(deliver(&mut nodes, SENDS))
        })
    });
    group.finish();
}

fn bench_send_cached_direct(c: &mut Criterion) {
    let mut group = c.benchmark_group("mol-directory");
    let (mut nodes, ptr) = warm_machine();

    group.bench_function(format!("send_cached_direct_x{SENDS}"), |b| {
        b.iter(|| {
            for i in 0..SENDS {
                nodes[0].message(ptr, i as u32, Bytes::new());
            }
            black_box(deliver(&mut nodes, SENDS))
        })
    });
    group.finish();
}

fn bench_migrate_publish(c: &mut Criterion) {
    let mut group = c.benchmark_group("mol-directory");
    // Ping-pong between ranks 1 and 2 on a 4-rank machine: each move ships
    // the packet, installs, and mails the pointer's shard a DirPublish.
    let mut nodes = sharded_machine(4);
    let ptr = nodes[1].register(Blob(vec![7; 1024]));
    group.bench_function("migrate_publish_1KiB_roundtrip", |b| {
        b.iter(|| {
            assert!(nodes[1].migrate(ptr, 2));
            settle(&mut nodes);
            assert!(nodes[2].migrate(ptr, 1));
            settle(&mut nodes);
            black_box(nodes[1].is_local(ptr))
        })
    });
    group.finish();
}

fn bench_chain_collapse(c: &mut Criterion) {
    const BATCH: usize = 100;
    let mut group = c.benchmark_group("mol-directory");
    for n in [8usize, 32, 128] {
        let mut nodes = sharded_machine(n);
        let ptr = nodes[1].register(Blob(vec![0; 64]));
        // Warm rank 0 once so the measured iterations start from a cached
        // (now invalidated-by-migration) entry, not a cold cache.
        nodes[0].message(ptr, 0, Bytes::new());
        deliver(&mut nodes, 1);
        settle(&mut nodes);
        group.bench_function(format!("chain_collapse_x{BATCH}_ranks{n}"), |b| {
            b.iter(|| {
                // Invalidate rank 0's entry: one migration hop (+3 is
                // coprime with every n here, so the walk cycles through the
                // machine instead of revisiting a rank).
                let src = nodes
                    .iter()
                    .position(|nd| nd.is_local(ptr))
                    .expect("object resident");
                let mut dst = (src + 3) % n;
                if dst == 0 {
                    dst = (dst + 3) % n;
                }
                assert!(nodes[src].migrate(ptr, dst));
                settle(&mut nodes);
                // The first send rides stale → redirect → owner; the
                // piggybacked answer collapses the chain and the rest of
                // the batch goes direct.
                for i in 0..BATCH {
                    nodes[0].message(ptr, i as u32, Bytes::new());
                }
                black_box(deliver(&mut nodes, BATCH))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_resolve_hit,
    bench_resolve_miss,
    bench_chase_4hop,
    bench_send_cached_direct,
    bench_migrate_publish,
    bench_chain_collapse
);
criterion_main!(benches);
