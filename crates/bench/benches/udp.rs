//! The UDP loopback transport (`prema_dcs::UdpTransport`), measured on
//! shapes comparable with the in-process substrates: a single-frame
//! round trip (syscall-path latency), a batched burst (amortization by
//! `sendmmsg`/`recvmmsg`), and the full reliable stack pushing a stream
//! end to end.
//!
//! UDP loopback drops datagrams under receive-buffer pressure, so the
//! plain-socket benches keep a bounded number of frames in flight (ping
//! pong and small bursts) instead of blasting an open-loop stream — only
//! the `reliable` bench, whose ack/retry absorbs loss, streams freely.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};
use prema_dcs::{Envelope, HandlerId, ReliableTransport, Tag, Transport, UdpTransport};
use std::hint::black_box;
use std::net::SocketAddr;
use std::time::Duration;

const PINGPONGS: usize = 1_000;
const BURST: usize = 64;
const BURST_ROUNDS: usize = 100;
const STREAM_MSGS: usize = 1_000;
/// Sender-side pacing window for the reliable stream: polling between
/// windows keeps in-flight bounded, so loss stays rare and the bench
/// measures throughput rather than retransmit-storm recovery.
const STREAM_WINDOW: usize = 64;

fn loopback() -> SocketAddr {
    "127.0.0.1:0".parse().expect("static addr")
}

/// A connected two-rank world over real loopback sockets.
fn pair(epoch: u64) -> (UdpTransport, UdpTransport) {
    let b0 = UdpTransport::bind(loopback()).expect("bind rank 0");
    let b1 = UdpTransport::bind(loopback()).expect("bind rank 1");
    let addrs = vec![b0.local_addr(), b1.local_addr()];
    let addrs1 = addrs.clone();
    let h = std::thread::spawn(move || {
        b1.connect(1, addrs1, epoch, Duration::from_secs(5))
            .expect("rank 1 join")
    });
    let t0 = b0
        .connect(0, addrs, epoch, Duration::from_secs(5))
        .expect("rank 0 join");
    let t1 = h.join().expect("rank 1 thread");
    (t0, t1)
}

fn env(src: usize, dst: usize, n: u32) -> Envelope {
    Envelope {
        src,
        dst,
        handler: HandlerId(n),
        tag: Tag::App,
        payload: Bytes::new(),
    }
}

/// Pump `rx` until a message arrives, polling `tx` too: sends stage until
/// the *sender's* next poll (the flush-on-poll contract), so a one-frame
/// exchange needs both endpoints pumped.
fn pump_recv(rx: &UdpTransport, tx: &UdpTransport) -> Envelope {
    loop {
        let _ = tx.try_recv();
        if let Some(e) = rx.try_recv() {
            return e;
        }
        std::hint::spin_loop();
    }
}

/// One frame in flight, both endpoints on the bench thread: the latency of
/// the full encode → sendmmsg → recvmmsg → decode path, twice per round.
fn bench_pingpong(c: &mut Criterion) {
    let mut group = c.benchmark_group("udp-loopback");
    group.sample_size(10);
    let (t0, t1) = pair(1);
    group.bench_function(format!("udp_pingpong_x{PINGPONGS}"), |b| {
        b.iter(|| {
            for i in 0..PINGPONGS {
                t0.send(env(0, 1, i as u32));
                black_box(pump_recv(&t1, &t0));
                t1.send(env(1, 0, i as u32));
                black_box(pump_recv(&t0, &t1));
            }
        })
    });
    group.finish();
}

/// A burst of [`BURST`] frames per round: the staged sends leave in
/// `sendmmsg` batches and the drain side gulps with `recvmmsg`, so the
/// per-datagram syscall cost is amortized. In flight stays a few KiB —
/// far below loopback's receive buffer.
fn bench_burst(c: &mut Criterion) {
    let mut group = c.benchmark_group("udp-loopback");
    group.sample_size(10);
    let (t0, t1) = pair(2);
    group.bench_function(format!("udp_burst{BURST}_x{BURST_ROUNDS}"), |b| {
        b.iter(|| {
            for round in 0..BURST_ROUNDS {
                for i in 0..BURST {
                    t0.send(env(0, 1, (round * BURST + i) as u32));
                }
                let mut got = 0;
                while got < BURST {
                    // Bursts can outrun the kernel momentarily; the
                    // flush-on-poll entry also pushes t0's remainder.
                    let _ = t0.try_recv();
                    if t1.try_recv().is_some() {
                        got += 1;
                    }
                }
            }
        })
    });
    group.finish();
}

/// The full out-of-process stack — `ReliableTransport(UdpTransport)` —
/// streaming [`STREAM_MSGS`] envelopes through real sockets under real
/// concurrency. Loopback loss (buffer overruns) is absorbed by ack/retry,
/// so this is the number that predicts `prema-launch` wire throughput.
fn bench_reliable_stream(c: &mut Criterion) {
    let mut group = c.benchmark_group("udp-loopback");
    group.sample_size(10);
    group.bench_function(format!("udp_reliable_p2p_2ranks_{STREAM_MSGS}msgs"), |b| {
        b.iter(|| {
            let (t0, t1) = pair(3);
            let (t0, t1) = (ReliableTransport::new(t0), ReliableTransport::new(t1));
            let sender = std::thread::spawn(move || {
                for i in 0..STREAM_MSGS {
                    t0.send(env(0, 1, i as u32));
                    if i % STREAM_WINDOW == STREAM_WINDOW - 1 {
                        let _ = t0.try_recv();
                    }
                }
                // Keep ticking until every frame is acknowledged: the
                // receive polls drive retransmits of lost datagrams.
                while !t0.all_acked() {
                    let _ = t0.try_recv();
                }
            });
            let mut got = 0;
            while got < STREAM_MSGS {
                if t1.recv_timeout(Duration::from_secs(5)).is_some() {
                    got += 1;
                }
            }
            // Linger: the receiver's last acks may still be staged
            // (flush-on-poll), and lost data frames are still being
            // retransmitted — keep polling until the sender has seen
            // every ack, or it would spin on a dead peer forever.
            while !sender.is_finished() {
                let _ = t1.try_recv();
            }
            sender.join().expect("sender thread panicked");
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pingpong, bench_burst, bench_reliable_stream);
criterion_main!(benches);
