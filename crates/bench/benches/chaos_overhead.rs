//! What fault injection costs — and proof that it costs nothing when off.
//!
//! With `PREMA_CHAOS_SEED` unset the runtime wires bare endpoints, so the
//! shipping fast path is *by construction* untouched: the `plain_*` benches
//! here are the same operations as `fastpath.rs` and must stay within noise
//! of `BENCH_substrate.json`. The `quiet_*` variants measure the decorator
//! tax paid only when chaos is explicitly enabled: a [`ChaosTransport`] with
//! all rates zero, and the full [`ReliableTransport`] ack/retry stack above
//! it.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};
use prema_dcs::{
    ChaosConfig, ChaosHandle, ChaosTransport, Envelope, HandlerId, LocalFabric, ReliableTransport,
    Tag, Transport,
};
use std::hint::black_box;
use std::time::Duration;

const EMPTY_POLLS: usize = 10_000;
const P2P_MSGS: usize = 50_000;

fn quiet_chaos_fabric(n: usize) -> Vec<ChaosTransport<prema_dcs::LocalEndpoint>> {
    let handle = ChaosHandle::new();
    LocalFabric::new(n)
        .into_iter()
        .map(|ep| ChaosTransport::new(ep, ChaosConfig::quiet(1), handle.clone()))
        .collect()
}

fn reliable_fabric(n: usize) -> Vec<ReliableTransport<ChaosTransport<prema_dcs::LocalEndpoint>>> {
    quiet_chaos_fabric(n)
        .into_iter()
        .map(ReliableTransport::new)
        .collect()
}

/// Steady-state polling-thread cost (`try_recv` on an empty machine) for the
/// bare endpoint vs. the quiet chaos stack.
fn bench_empty_poll(c: &mut Criterion) {
    let mut group = c.benchmark_group("chaos-overhead");
    for n in [8usize, 32] {
        let plain = LocalFabric::new(n);
        group.bench_function(format!("empty_poll_plain_ranks{n}_x10k"), |b| {
            b.iter(|| {
                for _ in 0..EMPTY_POLLS {
                    black_box(plain[0].try_recv());
                }
            })
        });
        let quiet = quiet_chaos_fabric(n);
        group.bench_function(format!("empty_poll_chaos_quiet_ranks{n}_x10k"), |b| {
            b.iter(|| {
                for _ in 0..EMPTY_POLLS {
                    black_box(quiet[0].try_recv());
                }
            })
        });
        let reliable = reliable_fabric(n);
        group.bench_function(format!("empty_poll_reliable_ranks{n}_x10k"), |b| {
            b.iter(|| {
                for _ in 0..EMPTY_POLLS {
                    black_box(reliable[0].try_recv());
                }
            })
        });
    }
    group.finish();
}

/// Point-to-point throughput under real concurrency, bare vs. wrapped.
fn bench_p2p_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("chaos-overhead");
    group.sample_size(10);

    fn run_p2p<T: Transport + 'static>(tx_ep: T, rx_ep: &T) {
        let sender = std::thread::spawn(move || {
            for i in 0..P2P_MSGS {
                tx_ep.send(Envelope {
                    src: tx_ep.rank(),
                    dst: 1,
                    handler: HandlerId(i as u32),
                    tag: Tag::App,
                    payload: Bytes::new(),
                });
            }
        });
        let mut got = 0;
        while got < P2P_MSGS {
            if rx_ep.recv_timeout(Duration::from_secs(5)).is_some() {
                got += 1;
            }
        }
        sender.join().expect("sender thread panicked");
    }

    group.bench_function(format!("p2p_plain_2ranks_{P2P_MSGS}msgs"), |b| {
        b.iter(|| {
            let mut eps = LocalFabric::new(2);
            let rx = eps.pop().expect("fabric returns one endpoint per rank");
            let tx = eps.pop().expect("fabric returns one endpoint per rank");
            run_p2p(tx, &rx);
        })
    });
    group.bench_function(format!("p2p_chaos_quiet_2ranks_{P2P_MSGS}msgs"), |b| {
        b.iter(|| {
            let mut eps = quiet_chaos_fabric(2);
            let rx = eps.pop().expect("fabric returns one endpoint per rank");
            let tx = eps.pop().expect("fabric returns one endpoint per rank");
            run_p2p(tx, &rx);
        })
    });
    group.bench_function(format!("p2p_reliable_2ranks_{P2P_MSGS}msgs"), |b| {
        b.iter(|| {
            let mut eps = reliable_fabric(2);
            let rx = eps.pop().expect("fabric returns one endpoint per rank");
            let tx = eps.pop().expect("fabric returns one endpoint per rank");
            run_p2p(tx, &rx);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_empty_poll, bench_p2p_throughput);
criterion_main!(benches);
