//! The substrate fast path: the costs PREMA pays *per message and per poll*,
//! measured against the transport design they replaced.
//!
//! The paper's implicit mode wakes a polling thread every few hundred
//! microseconds; almost every wake-up finds nothing (§4.2), so the cost of an
//! *empty* poll is pure overhead multiplied by machine size × run length.
//! Two retired transport designs are rebuilt here as faithful copies so
//! `BENCH_substrate.json` always carries the full lineage: [`ScanEndpoint`]
//! (one channel per ordered (src → dst) pair, O(n) scan per `try_recv`) and
//! [`InboxEndpoint`] (one shared MPSC inbox per rank, O(1) probe — the
//! design the `*_shared_*` ids have always measured). The current transport
//! — the SPSC ring mesh in `prema_dcs::transport` — is benched on the same
//! shapes under the `*_ring_*` ids in `benches/ring.rs`.
//!
//! The non-transport benches below (fan-out, pool, forwarding, migration)
//! run on the current `LocalFabric`, whatever it is — they measure layers
//! above the wire.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};
use crossbeam::channel::{unbounded, Receiver, Select, Sender};
use prema_dcs::{
    pool, BatchConfig, Communicator, Envelope, HandlerId, LocalFabric, Rank, Tag, Transport,
};
use prema_mol::{Migratable, MolConfig, MolEvent, MolNode};
use std::hint::black_box;
use std::time::Duration;

struct Blob(Vec<u8>);
impl Migratable for Blob {
    fn pack(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.0);
    }
    fn unpack(b: &[u8]) -> Self {
        Blob(b.to_vec())
    }
}

// ---- the inbox-scan baseline (previous transport design) -----------------

/// One endpoint of a [`scan_fabric`]: n inboxes, O(n) receive scan.
struct ScanEndpoint {
    rank: Rank,
    peers: Vec<Sender<Envelope>>,
    inboxes: Vec<Receiver<Envelope>>,
    cursor: std::cell::Cell<usize>,
}

impl Transport for ScanEndpoint {
    fn rank(&self) -> Rank {
        self.rank
    }

    fn nprocs(&self) -> usize {
        self.peers.len()
    }

    fn send(&self, env: Envelope) {
        let _ = self.peers[env.dst].send(env);
    }

    fn try_recv(&self) -> Option<Envelope> {
        let n = self.inboxes.len();
        let start = self.cursor.get();
        for i in 0..n {
            let idx = (start + i) % n;
            if let Ok(env) = self.inboxes[idx].try_recv() {
                self.cursor.set((idx + 1) % n);
                return Some(env);
            }
        }
        None
    }

    fn recv_timeout(&self, timeout: Duration) -> Option<Envelope> {
        if let Some(env) = self.try_recv() {
            return Some(env);
        }
        let mut sel = Select::new();
        for rx in &self.inboxes {
            sel.recv(rx);
        }
        match sel.select_timeout(timeout) {
            Ok(op) => {
                let idx = op.index();
                op.recv(&self.inboxes[idx]).ok()
            }
            Err(_) => None,
        }
    }
}

/// Build the previous n×n channel-mesh fabric: one endpoint per rank, one
/// channel per ordered (src → dst) pair.
fn scan_fabric(n: usize) -> Vec<ScanEndpoint> {
    let mut txs: Vec<Vec<Sender<Envelope>>> = (0..n).map(|_| Vec::with_capacity(n)).collect();
    let mut rxs: Vec<Vec<Receiver<Envelope>>> = (0..n).map(|_| Vec::with_capacity(n)).collect();
    for src_txs in &mut txs {
        for dst_rxs in &mut rxs {
            let (tx, rx) = unbounded();
            src_txs.push(tx);
            dst_rxs.push(rx);
        }
    }
    txs.into_iter()
        .zip(rxs)
        .enumerate()
        .map(|(rank, (peers, inboxes))| ScanEndpoint {
            rank,
            peers,
            inboxes,
            cursor: std::cell::Cell::new(0),
        })
        .collect()
}

// ---- the shared-inbox baseline (previous transport design) ---------------

/// One endpoint of an [`inbox_fabric`]: every peer sends into this rank's
/// single MPSC inbox, so receive is one channel probe regardless of machine
/// size. A faithful copy of the transport the ring mesh replaced.
struct InboxEndpoint {
    rank: Rank,
    peers: Vec<Sender<Envelope>>,
    inbox: Receiver<Envelope>,
}

impl Transport for InboxEndpoint {
    fn rank(&self) -> Rank {
        self.rank
    }

    fn nprocs(&self) -> usize {
        self.peers.len()
    }

    fn send(&self, env: Envelope) {
        let _ = self.peers[env.dst].send(env);
    }

    fn try_recv(&self) -> Option<Envelope> {
        self.inbox.try_recv().ok()
    }

    fn recv_timeout(&self, timeout: Duration) -> Option<Envelope> {
        self.inbox.recv_timeout(timeout).ok()
    }
}

/// Build the previous shared-inbox fabric: one MPSC channel per rank, every
/// endpoint holding a clone of every sender.
fn inbox_fabric(n: usize) -> Vec<InboxEndpoint> {
    let (txs, rxs): (Vec<_>, Vec<_>) = (0..n).map(|_| unbounded()).unzip();
    rxs.into_iter()
        .enumerate()
        .map(|(rank, inbox)| InboxEndpoint {
            rank,
            peers: txs.clone(),
            inbox,
        })
        .collect()
}

// ---- benches -------------------------------------------------------------

const EMPTY_POLLS: usize = 10_000;
const P2P_MSGS: usize = 50_000;

/// Cost of `try_recv` on an empty machine — the polling thread's steady-state
/// operation — for both transports across machine sizes. One iteration =
/// [`EMPTY_POLLS`] polls, so per-poll cost is `time / 10_000`.
fn bench_empty_poll(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate-fastpath");
    for n in [8usize, 32, 128] {
        let scan = scan_fabric(n);
        group.bench_function(format!("empty_poll_scan_ranks{n}_x10k"), |b| {
            b.iter(|| {
                for _ in 0..EMPTY_POLLS {
                    black_box(scan[0].try_recv());
                }
            })
        });
        let shared = inbox_fabric(n);
        group.bench_function(format!("empty_poll_shared_ranks{n}_x10k"), |b| {
            b.iter(|| {
                for _ in 0..EMPTY_POLLS {
                    black_box(shared[0].try_recv());
                }
            })
        });
    }
    group.finish();
}

/// Point-to-point throughput under real concurrency: a sender thread pushes
/// [`P2P_MSGS`] envelopes while the bench thread receives them all.
fn bench_p2p_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate-fastpath");
    group.sample_size(10);

    fn run_p2p<T: Transport + 'static>(tx_ep: T, rx_ep: &T) {
        let sender = std::thread::spawn(move || {
            for i in 0..P2P_MSGS {
                tx_ep.send(Envelope {
                    src: tx_ep.rank(),
                    dst: 1,
                    handler: HandlerId(i as u32),
                    tag: Tag::App,
                    payload: Bytes::new(),
                });
            }
        });
        let mut got = 0;
        while got < P2P_MSGS {
            if rx_ep.recv_timeout(Duration::from_secs(5)).is_some() {
                got += 1;
            }
        }
        sender.join().expect("sender thread panicked");
    }

    group.bench_function(format!("p2p_scan_2ranks_{P2P_MSGS}msgs"), |b| {
        b.iter(|| {
            let mut eps = scan_fabric(2);
            let rx = eps.pop().expect("fabric returns one endpoint per rank");
            let tx = eps.pop().expect("fabric returns one endpoint per rank");
            run_p2p(tx, &rx);
        })
    });
    group.bench_function(format!("p2p_shared_2ranks_{P2P_MSGS}msgs"), |b| {
        b.iter(|| {
            let mut eps = inbox_fabric(2);
            let rx = eps.pop().expect("fabric returns one endpoint per rank");
            let tx = eps.pop().expect("fabric returns one endpoint per rank");
            run_p2p(tx, &rx);
        })
    });
    // Same logical traffic, but through a pair of Communicators with
    // coalescing on (over the current transport): the sender stages and
    // flushes frames, the receiver's burst drain pulls a whole frame per
    // wire op. The acceptance bar for the batching layer is this bench
    // beating the unbatched p2p ids by ≥ 1.5×.
    group.bench_function(format!("p2p_batched_2ranks_{P2P_MSGS}msgs"), |b| {
        b.iter(|| {
            let mut eps = LocalFabric::new(2);
            let rx_ep = eps.pop().expect("fabric returns one endpoint per rank");
            let tx_ep = eps.pop().expect("fabric returns one endpoint per rank");
            let sender = std::thread::spawn(move || {
                let mut comm = Communicator::new(Box::new(tx_ep));
                comm.set_batch_config(BatchConfig::on(64, 8 * 1024));
                for i in 0..P2P_MSGS {
                    comm.am_send(1, HandlerId(i as u32), Tag::App, Bytes::new());
                }
                comm.flush();
            });
            let rx = Communicator::new(Box::new(rx_ep));
            let mut got = 0;
            while got < P2P_MSGS {
                if rx.recv_timeout(Duration::from_secs(5)).is_some() {
                    got += 1;
                }
            }
            sender.join().expect("sender thread panicked");
        })
    });
    group.finish();
}

/// One rank broadcasting small messages to 7 peers — the per-destination
/// staging case (load-balancer status fan-out, §4.1 traffic shape). Batched
/// and unbatched variants share the same logical traffic.
fn bench_fanout(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate-fastpath");
    group.sample_size(10);
    const RANKS: usize = 8;
    const ROUNDS: usize = 2_000;

    let mut run = |name: &str, batch: BatchConfig| {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut eps = LocalFabric::new(RANKS);
                let peers: Vec<Communicator> = eps
                    .split_off(1)
                    .into_iter()
                    .map(|ep| Communicator::new(Box::new(ep)))
                    .collect();
                let mut root = Communicator::new(Box::new(
                    eps.pop().expect("fabric returns one endpoint per rank"),
                ));
                root.set_batch_config(batch);
                for i in 0..ROUNDS {
                    for dst in 1..RANKS {
                        root.am_send(dst, HandlerId(i as u32), Tag::App, Bytes::new());
                    }
                }
                root.flush();
                let mut got = 0;
                for peer in &peers {
                    while peer.try_recv().is_some() {
                        got += 1;
                    }
                }
                assert_eq!(got, ROUNDS * (RANKS - 1));
                black_box(got)
            })
        });
    };
    run(
        &format!("fanout_{RANKS}ranks_broadcast"),
        BatchConfig::off(),
    );
    run(
        &format!("fanout_{RANKS}ranks_broadcast_batched"),
        BatchConfig::on(64, 8 * 1024),
    );
    group.finish();
}

/// The pool's steady-state loop: take a buffer, fill it, freeze, recycle. One
/// iteration = 10k cycles; after warm-up every take should hit the freelist
/// (the hit rate is asserted, not just timed).
fn bench_pool_hit_rate(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate-fastpath");
    const CYCLES: usize = 10_000;
    // Warm the freelist so the measured loop is the steady state.
    pool::recycle(pool::take(256).freeze());
    pool::reset_stats();
    group.bench_function(format!("pool_take_recycle_256B_x{}k", CYCLES / 1000), |b| {
        b.iter(|| {
            for i in 0..CYCLES {
                use bytes::BufMut;
                let mut buf = pool::take(256);
                buf.put_slice(&(i as u64).to_le_bytes());
                black_box(&buf);
                pool::recycle(buf.freeze());
            }
        })
    });
    let stats = pool::stats();
    assert!(
        stats.hits > stats.misses * 100,
        "steady-state pool loop must run ~all-hits: {stats:?}"
    );
    group.finish();
}

/// Messages chasing a twice-migrated object down its forwarding chain
/// (0 → home 1 → 2 → 3): the MOL routing fast path with two forward hops per
/// message. Location updates are disabled so the chain never collapses and
/// every message exercises the full chase.
fn bench_forwarding_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate-fastpath");
    // Legacy home-forwarding with every teaching path off: the chain stays
    // 3 hops long on every chase instead of collapsing after the first.
    let no_updates = MolConfig {
        update_home_on_install: false,
        update_sender_on_forward: false,
        broadcast_on_install: false,
        sharded_directory: false,
        ..MolConfig::default()
    };
    let mut nodes: Vec<MolNode<Blob>> = LocalFabric::new(4)
        .into_iter()
        .map(|ep| MolNode::with_config(Communicator::new(Box::new(ep)), no_updates))
        .collect();
    // Home the object on rank 1, then walk it to rank 3.
    let ptr = nodes[1].register(Blob(vec![0; 64]));
    assert!(nodes[1].migrate(ptr, 2));
    let _ = nodes[2].poll();
    assert!(nodes[2].migrate(ptr, 3));
    let _ = nodes[3].poll();

    const CHASES: usize = 1_000;
    group.bench_function(format!("forward_chain_3hop_x{CHASES}"), |b| {
        b.iter(|| {
            for i in 0..CHASES {
                nodes[0].message(ptr, i as u32, Bytes::new());
            }
            let mut delivered = 0;
            while delivered < CHASES {
                for node in nodes.iter_mut() {
                    delivered += node
                        .poll()
                        .iter()
                        .filter(|e| matches!(e, MolEvent::Object { .. }))
                        .count();
                }
            }
            black_box(delivered)
        })
    });
    group.finish();
}

/// Full migration round trip (pack, ship, install, location update) between
/// ranks 0 and 1 of machines of increasing size: the cost must stay flat in
/// machine size.
fn bench_migrate_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate-fastpath");
    for n in [8usize, 32, 128] {
        let mut eps = LocalFabric::new(n);
        // Keep the unused endpoints alive so sends to them stay valid.
        let _others: Vec<_> = eps.split_off(2);
        let ep1 = eps.pop().expect("fabric returns one endpoint per rank");
        let ep0 = eps.pop().expect("fabric returns one endpoint per rank");
        let mut n0: MolNode<Blob> = MolNode::new(Communicator::new(Box::new(ep0)));
        let mut n1: MolNode<Blob> = MolNode::new(Communicator::new(Box::new(ep1)));
        let ptr = n0.register(Blob(vec![7; 1024]));
        group.bench_function(format!("migrate_1KiB_roundtrip_ranks{n}"), |b| {
            b.iter(|| {
                assert!(n0.migrate(ptr, 1));
                let _ = n1.poll();
                assert!(n1.migrate(ptr, 0));
                let _ = n0.poll();
                black_box(n0.is_local(ptr))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_empty_poll,
    bench_p2p_throughput,
    bench_fanout,
    bench_pool_hit_rate,
    bench_forwarding_chain,
    bench_migrate_cost
);
criterion_main!(benches);
