//! The SPSC ring mesh transport (`prema_dcs::RingFabric`), measured on the
//! same shapes as `fastpath.rs` so its ids compare directly against the
//! `*_scan_*` (n×n channel mesh) and `*_shared_*` (shared MPSC inbox)
//! baselines kept there.
//!
//! This binary registers [`prema_bench::CountingAlloc`] as the global
//! allocator and **asserts** the transport's core invariant instead of just
//! timing it: a steady-state point-to-point send/receive touches the
//! allocator zero times (`p2p_ring_steady_state` below), and the batched
//! receive path recycles frame buffers back into `dcs::pool`. Both
//! assertions run under `cargo bench --bench ring -- --test`, which is what
//! CI's bench smoke executes — a regression fails the build, not a graph.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};
use prema_dcs::{pool, BatchConfig, Communicator, Envelope, HandlerId, RingFabric, Tag, Transport};
use std::hint::black_box;
use std::time::Duration;

#[global_allocator]
static ALLOC: prema_bench::CountingAlloc = prema_bench::CountingAlloc;

const EMPTY_POLLS: usize = 10_000;
const P2P_MSGS: usize = 50_000;
const STEADY_OPS: usize = 10_000;

/// Cost of `try_recv` on an empty machine across machine sizes — one
/// iteration is [`EMPTY_POLLS`] polls. The readiness bitmask makes this a
/// handful of relaxed word loads, so the per-poll cost must stay flat (and
/// within 10% of the shared-inbox baseline's single channel probe).
fn bench_empty_poll_ring(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate-ring");
    for n in [8usize, 32, 128] {
        let eps = RingFabric::new(n);
        group.bench_function(format!("empty_poll_ring_ranks{n}_x10k"), |b| {
            b.iter(|| {
                for _ in 0..EMPTY_POLLS {
                    black_box(eps[0].try_recv());
                }
            })
        });
    }
    group.finish();
}

/// Point-to-point throughput under real concurrency: a sender thread pushes
/// [`P2P_MSGS`] envelopes while the bench thread receives them all —
/// directly comparable to `p2p_scan` / `p2p_shared` in `fastpath.rs`.
fn bench_p2p_ring(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate-ring");
    group.sample_size(10);
    group.bench_function(format!("p2p_ring_2ranks_{P2P_MSGS}msgs"), |b| {
        b.iter(|| {
            let mut eps = RingFabric::new(2);
            let rx = eps.pop().expect("fabric returns one endpoint per rank");
            let tx = eps.pop().expect("fabric returns one endpoint per rank");
            let sender = std::thread::spawn(move || {
                for i in 0..P2P_MSGS {
                    tx.send(Envelope {
                        src: tx.rank(),
                        dst: 1,
                        handler: HandlerId(i as u32),
                        tag: Tag::App,
                        payload: Bytes::new(),
                    });
                }
            });
            let mut got = 0;
            while got < P2P_MSGS {
                if rx.recv_timeout(Duration::from_secs(5)).is_some() {
                    got += 1;
                }
            }
            sender.join().expect("sender thread panicked");
        })
    });
    group.finish();
}

/// The zero-allocation invariant, asserted. Send + receive on a warm pair of
/// endpoints from one thread (single-producer/single-consumer is the ring's
/// contract; same-thread keeps the count exact on any core count): after
/// warm-up, [`STEADY_OPS`] send/recv round trips must perform **zero** heap
/// allocations — envelopes ride preallocated ring slots, the readiness word
/// is a fetch_or, and an empty `Bytes` is a static handle.
fn bench_steady_state_allocs(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate-ring");
    let mut eps = RingFabric::new(2);
    let rx = eps.pop().expect("fabric returns one endpoint per rank");
    let tx = eps.pop().expect("fabric returns one endpoint per rank");
    let steady = |n: usize| {
        for i in 0..n {
            tx.send(Envelope {
                src: 0,
                dst: 1,
                handler: HandlerId(i as u32),
                tag: Tag::App,
                payload: Bytes::new(),
            });
            assert!(rx.try_recv().is_some(), "steady-state message lost");
        }
    };
    // Warm up (first touches of lazily-initialized thread state), then
    // measure the allocator over the steady state.
    steady(64);
    prema_bench::reset_alloc_count();
    steady(STEADY_OPS);
    let allocs = prema_bench::alloc_count();
    assert_eq!(
        allocs, 0,
        "steady-state p2p must not allocate: {allocs} allocs / {STEADY_OPS} ops"
    );
    group.bench_function(format!("p2p_ring_steady_state_x{STEADY_OPS}"), |b| {
        b.iter(|| steady(STEADY_OPS))
    });
    group.finish();
}

/// The receive side of frame recycling, asserted: draining batched traffic
/// hands each spent frame buffer back to `dcs::pool` (frames whose payload
/// slices are all detached — empty payloads here — reclaim immediately), so
/// a warmed sender allocates no fresh frame backing in the steady state.
fn bench_batched_recycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate-ring");
    group.sample_size(10);
    const ROUNDS: usize = 1_000;
    const PER_FLUSH: usize = 32;
    let mut eps = RingFabric::new(2);
    let rx = Communicator::new(Box::new(
        eps.pop().expect("fabric returns one endpoint per rank"),
    ));
    let mut tx = Communicator::new(Box::new(
        eps.pop().expect("fabric returns one endpoint per rank"),
    ));
    tx.set_batch_config(BatchConfig::on(PER_FLUSH, 1 << 20));
    let batched_round_trip = || {
        for round in 0..ROUNDS {
            for i in 0..PER_FLUSH {
                let id = HandlerId((round * PER_FLUSH + i) as u32);
                tx.am_send(1, id, Tag::App, Bytes::new());
            }
            tx.flush();
            for _ in 0..PER_FLUSH {
                assert!(rx.try_recv().is_some(), "batched message lost");
            }
        }
    };
    // Warm the pool's freelist, then require the steady state to recycle:
    // every decoded frame must hand its buffer back (recycled grows with the
    // frame count) and nearly every staged frame must draw a warm buffer.
    batched_round_trip();
    pool::reset_stats();
    batched_round_trip();
    let stats = pool::stats();
    assert!(
        stats.recycled >= (ROUNDS as u64) * 9 / 10,
        "receive side must recycle spent frame buffers: {stats:?}"
    );
    assert!(
        stats.hits > stats.misses * 10,
        "warmed frame staging must run ~all-hits: {stats:?}"
    );
    group.bench_function(
        format!("p2p_ring_batched_{}msgs_recycled", ROUNDS * PER_FLUSH),
        |b| b.iter(batched_round_trip),
    );
    group.finish();
}

criterion_group!(
    benches,
    bench_empty_poll_ring,
    bench_p2p_ring,
    bench_steady_state_allocs,
    bench_batched_recycle
);
criterion_main!(benches);
