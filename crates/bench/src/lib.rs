//! Criterion benches for the PREMA reproduction live in `benches/`:
//! `figures` (Figures 3–6 + the mesh study), `ablations` (design-knob
//! sweeps), and `substrates` (partitioner / MOL / engine / mesher
//! microbenchmarks). Run with `cargo bench`.
