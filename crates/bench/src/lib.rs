//! Criterion benches for the PREMA reproduction live in `benches/`:
//! `figures` (Figures 3–6 + the mesh study), `ablations` (design-knob
//! sweeps), `substrates` (partitioner / MOL / engine / mesher
//! microbenchmarks), `fastpath` (per-message and per-poll costs vs the
//! retired transport designs), and `ring` (the SPSC ring mesh, including the
//! zero-allocation steady-state check). Run with `cargo bench`.
//!
//! This lib exposes [`CountingAlloc`], a pass-through global allocator that
//! counts allocations so `benches/ring.rs` can *assert* — not just eyeball —
//! that the transport's steady-state send/receive path never touches the
//! allocator.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Heap allocations observed since the last [`reset_alloc_count`]. SeqCst:
/// the counter brackets measured regions across threads and its cost is
/// noise next to the allocation it counts.
static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-backed allocator that counts every allocation (including
/// grow-reallocations — each is a fresh chance to blow the zero-alloc
/// budget). Register it in a bench binary with `#[global_allocator]`:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: prema_bench::CountingAlloc = prema_bench::CountingAlloc;
/// ```
///
/// Frees are deliberately not counted: the invariant under test is "the
/// steady state allocates nothing", and a free implies a prior allocation
/// already counted.
pub struct CountingAlloc;

// SAFETY: pure pass-through to `System`; the counter has no effect on the
// returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

/// Allocations since the last [`reset_alloc_count`] (0 forever if no bench
/// binary registered [`CountingAlloc`]).
pub fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::SeqCst)
}

/// Zero the allocation counter (call immediately before a measured region).
pub fn reset_alloc_count() {
    ALLOCS.store(0, Ordering::SeqCst);
}
