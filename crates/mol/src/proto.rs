//! The Mobile Object Layer wire protocol.
//!
//! Seven message kinds ride on DCS:
//!
//! * `MOL_MSG` — an application message targeted at a mobile object,
//!   carrying a per-(sender, object) sequence number so delivery order is
//!   preserved even across migrations and forwarding chains;
//! * `MOL_MIGRATE` — a packed object moving to a new owner, together with its
//!   ordering state (per-sender expected sequence numbers), any accepted but
//!   not-yet-executed messages, and any out-of-order buffered messages;
//! * `MOL_LOCUPD` — a location update ("object X now lives at rank R, as of
//!   migration epoch E"), used by the legacy home-forwarding mode and by
//!   `broadcast_on_install`;
//! * `NODE_MSG` — a plain rank-targeted message (used by the load-balancing
//!   framework for status/request traffic; not object-routed);
//! * `MOL_DIR_PUBLISH` — a migration publishing `(ptr, new_rank, epoch)` to
//!   the pointer's home shard (DESIGN.md §16);
//! * `MOL_DIR_LOOKUP` — an explicit location query to the home shard (the
//!   [`crate::MolNode::resolve`] miss path);
//! * `MOL_DIR_ANSWER` — the shard's authoritative reply, also piggybacked to
//!   the original sender whenever a rank has to forward its message.

use crate::ptr::MobilePtr;
use bytes::Bytes;
use prema_dcs::{HandlerId, Rank, WireReader, WireWriter};

/// DCS handler id for object-targeted messages.
pub const H_MOL_MSG: HandlerId = HandlerId(HandlerId::SYSTEM_BASE + 16);
/// DCS handler id for object migrations.
pub const H_MOL_MIGRATE: HandlerId = HandlerId(HandlerId::SYSTEM_BASE + 17);
/// DCS handler id for location updates.
pub const H_MOL_LOCUPD: HandlerId = HandlerId(HandlerId::SYSTEM_BASE + 18);
/// DCS handler id for rank-targeted (non-object) messages.
pub const H_NODE_MSG: HandlerId = HandlerId(HandlerId::SYSTEM_BASE + 19);
/// DCS handler id for directory publishes (migration → home shard).
pub const H_MOL_DIR_PUBLISH: HandlerId = HandlerId(HandlerId::SYSTEM_BASE + 20);
/// DCS handler id for directory lookups (sender → home shard).
pub const H_MOL_DIR_LOOKUP: HandlerId = HandlerId(HandlerId::SYSTEM_BASE + 21);
/// DCS handler id for directory answers (home shard → sender).
pub const H_MOL_DIR_ANSWER: HandlerId = HandlerId(HandlerId::SYSTEM_BASE + 22);

/// An object-targeted application message, as routed by the MOL.
#[derive(Clone, Debug, PartialEq)]
pub struct MolEnvelope {
    /// The mobile object this message is for.
    pub target: MobilePtr,
    /// Original sender rank (not the last forwarder).
    pub sender: Rank,
    /// Per-(sender, target) sequence number, assigned at send time.
    pub seq: u64,
    /// Application-level handler id (dispatched by the layer above MOL).
    pub handler: u32,
    /// Times this message has been forwarded.
    pub hops: u32,
    /// Whether the home shard has already routed this message. Once set, a
    /// rank that still cannot deliver it follows its *own* knowledge instead
    /// of redirecting back through the shard — which is what keeps shard
    /// routing loop-free (DESIGN.md §16).
    pub anchored: bool,
    /// Migration epoch backing the current routing decision (meaningful only
    /// while `anchored`). A rank forwards an anchored message only along
    /// knowledge at least this fresh, and parks it otherwise (the object —
    /// or a fresher answer — is in flight toward this rank). Epochs along a
    /// chain are therefore monotone: no hop can walk backward in migration
    /// history, which is what makes the chain bound a constant instead of a
    /// trail-length walk.
    pub route_epoch: u64,
    /// Application-supplied computational weight hint for the work this
    /// message triggers. The load balancer sums hints to estimate queue
    /// load; the paper stresses that hints may be wildly inaccurate for
    /// adaptive applications, so nothing correctness-critical may depend on
    /// them.
    pub hint: f64,
    /// Application payload.
    pub payload: Bytes,
}

impl MolEnvelope {
    /// Encode for the wire (into a pooled buffer — this runs once per
    /// application message, the hottest encoder in the stack).
    pub fn encode(&self) -> Bytes {
        write_env(WireWriter::pooled(ENV_HEADER + self.payload.len()), self).finish()
    }

    /// Decode from the wire.
    pub fn decode(payload: Bytes) -> Self {
        let mut r = WireReader::new(payload);
        read_env(&mut r)
    }
}

/// Encoded size of a [`MolEnvelope`] minus its payload: 5×u64 + 3×u32 +
/// f64 + the payload length prefix.
const ENV_HEADER: usize = 8 * 5 + 4 * 3 + 8 + 4;

fn write_env(w: WireWriter, e: &MolEnvelope) -> WireWriter {
    w.u64(e.target.home as u64)
        .u64(e.target.index)
        .u64(e.sender as u64)
        .u64(e.seq)
        .u32(e.handler)
        .u32(e.hops)
        .u32(u32::from(e.anchored))
        .u64(e.route_epoch)
        .f64(e.hint)
        .bytes(&e.payload)
}

fn read_env(r: &mut WireReader) -> MolEnvelope {
    MolEnvelope {
        target: MobilePtr {
            home: r.u64() as usize,
            index: r.u64(),
        },
        sender: r.u64() as usize,
        seq: r.u64(),
        handler: r.u32(),
        hops: r.u32(),
        anchored: r.u32() != 0,
        route_epoch: r.u64(),
        hint: r.f64(),
        payload: r.bytes(),
    }
}

/// A migrating object plus its ordering state.
#[derive(Debug, PartialEq)]
pub struct MigratePacket {
    /// The object's name.
    pub ptr: MobilePtr,
    /// Migration epoch after this move (monotonically increasing per object).
    pub epoch: u64,
    /// The packed object.
    pub object: Bytes,
    /// Per-sender next-expected sequence numbers.
    pub expected: Vec<(Rank, u64)>,
    /// Messages already accepted in order but not yet executed; they must be
    /// delivered at the destination before anything else.
    pub pending: Vec<MolEnvelope>,
    /// Out-of-order buffered messages; re-enter sequence checking at the
    /// destination.
    pub buffered: Vec<MolEnvelope>,
}

impl MigratePacket {
    /// Encode for the wire.
    pub fn encode(&self) -> Bytes {
        let mut w = WireWriter::pooled(32 + self.object.len())
            .u64(self.ptr.home as u64)
            .u64(self.ptr.index)
            .u64(self.epoch)
            .bytes(&self.object)
            .u32(self.expected.len() as u32);
        for &(rank, seq) in &self.expected {
            w = w.u64(rank as u64).u64(seq);
        }
        w = w.u32(self.pending.len() as u32);
        for e in &self.pending {
            w = write_env(w, e);
        }
        w = w.u32(self.buffered.len() as u32);
        for e in &self.buffered {
            w = write_env(w, e);
        }
        w.finish()
    }

    /// Decode from the wire.
    pub fn decode(payload: Bytes) -> Self {
        let mut r = WireReader::new(payload);
        let ptr = MobilePtr {
            home: r.u64() as usize,
            index: r.u64(),
        };
        let epoch = r.u64();
        let object = r.bytes();
        let n_exp = r.u32() as usize;
        let expected = (0..n_exp).map(|_| (r.u64() as usize, r.u64())).collect();
        let n_pend = r.u32() as usize;
        let pending = (0..n_pend).map(|_| read_env(&mut r)).collect();
        let n_buf = r.u32() as usize;
        let buffered = (0..n_buf).map(|_| read_env(&mut r)).collect();
        MigratePacket {
            ptr,
            epoch,
            object,
            expected,
            pending,
            buffered,
        }
    }
}

/// A location update.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LocUpdate {
    /// Which object moved.
    pub ptr: MobilePtr,
    /// Where it lives (as of `epoch`).
    pub owner: Rank,
    /// Migration epoch of this information; receivers keep the max.
    pub epoch: u64,
}

impl LocUpdate {
    /// Encode for the wire.
    pub fn encode(&self) -> Bytes {
        WireWriter::pooled(32)
            .u64(self.ptr.home as u64)
            .u64(self.ptr.index)
            .u64(self.owner as u64)
            .u64(self.epoch)
            .finish()
    }

    /// Decode from the wire.
    pub fn decode(payload: Bytes) -> Self {
        let mut r = WireReader::new(payload);
        LocUpdate {
            ptr: MobilePtr {
                home: r.u64() as usize,
                index: r.u64(),
            },
            owner: r.u64() as usize,
            epoch: r.u64(),
        }
    }
}

/// A migration publishing its outcome to the pointer's home shard: "object
/// `ptr` now lives at `owner`, as of migration epoch `epoch`". Shards merge
/// by epoch-max, so duplicated or reordered publishes are harmless.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DirPublish {
    /// Which object moved.
    pub ptr: MobilePtr,
    /// Where it now lives (as of `epoch`).
    pub owner: Rank,
    /// Migration epoch of this information.
    pub epoch: u64,
}

impl DirPublish {
    /// Encode for the wire.
    pub fn encode(&self) -> Bytes {
        WireWriter::pooled(32)
            .u64(self.ptr.home as u64)
            .u64(self.ptr.index)
            .u64(self.owner as u64)
            .u64(self.epoch)
            .finish()
    }

    /// Decode from the wire.
    pub fn decode(payload: Bytes) -> Self {
        let mut r = WireReader::new(payload);
        DirPublish {
            ptr: MobilePtr {
                home: r.u64() as usize,
                index: r.u64(),
            },
            owner: r.u64() as usize,
            epoch: r.u64(),
        }
    }
}

/// An explicit location query to a pointer's home shard.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DirLookup {
    /// Which object the inquirer wants resolved.
    pub ptr: MobilePtr,
    /// The freshest epoch the inquirer already holds for the object (0 if
    /// none) — lets the shard mark its answer as a stale-cache correction.
    pub epoch: u64,
}

impl DirLookup {
    /// Encode for the wire.
    pub fn encode(&self) -> Bytes {
        WireWriter::pooled(24)
            .u64(self.ptr.home as u64)
            .u64(self.ptr.index)
            .u64(self.epoch)
            .finish()
    }

    /// Decode from the wire.
    pub fn decode(payload: Bytes) -> Self {
        let mut r = WireReader::new(payload);
        DirLookup {
            ptr: MobilePtr {
                home: r.u64() as usize,
                index: r.u64(),
            },
            epoch: r.u64(),
        }
    }
}

/// The home shard's location answer — sent in reply to a [`DirLookup`] and
/// piggybacked to the original sender whenever a rank forwards its message.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DirAnswer {
    /// Which object this answers for.
    pub ptr: MobilePtr,
    /// Best-known owner (as of `epoch`).
    pub owner: Rank,
    /// Migration epoch of this information; receivers keep the max.
    pub epoch: u64,
    /// Whether the receiver's earlier guess was stale (it sent a message
    /// that had to be forwarded, or looked up with an older epoch).
    pub stale: bool,
}

impl DirAnswer {
    /// Encode for the wire.
    pub fn encode(&self) -> Bytes {
        WireWriter::pooled(40)
            .u64(self.ptr.home as u64)
            .u64(self.ptr.index)
            .u64(self.owner as u64)
            .u64(self.epoch)
            .u32(u32::from(self.stale))
            .finish()
    }

    /// Decode from the wire.
    pub fn decode(payload: Bytes) -> Self {
        let mut r = WireReader::new(payload);
        DirAnswer {
            ptr: MobilePtr {
                home: r.u64() as usize,
                index: r.u64(),
            },
            owner: r.u64() as usize,
            epoch: r.u64(),
            stale: r.u32() != 0,
        }
    }
}

/// A rank-targeted message (load-balancer traffic and the like).
#[derive(Clone, Debug, PartialEq)]
pub struct NodeMsg {
    /// Application/runtime-level handler id.
    pub handler: u32,
    /// Payload.
    pub payload: Bytes,
}

impl NodeMsg {
    /// Encode for the wire.
    pub fn encode(&self) -> Bytes {
        WireWriter::pooled(8 + self.payload.len())
            .u32(self.handler)
            .bytes(&self.payload)
            .finish()
    }

    /// Decode from the wire.
    pub fn decode(payload: Bytes) -> Self {
        let mut r = WireReader::new(payload);
        NodeMsg {
            handler: r.u32(),
            payload: r.bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(seq: u64) -> MolEnvelope {
        MolEnvelope {
            target: MobilePtr { home: 3, index: 9 },
            sender: 5,
            seq,
            handler: 2,
            hops: 1,
            anchored: true,
            route_epoch: 7,
            hint: 2.5,
            payload: Bytes::from_static(b"payload"),
        }
    }

    #[test]
    fn envelope_roundtrip() {
        let e = env(77);
        assert_eq!(MolEnvelope::decode(e.encode()), e);
    }

    #[test]
    fn migrate_packet_roundtrip() {
        let p = MigratePacket {
            ptr: MobilePtr { home: 1, index: 2 },
            epoch: 4,
            object: Bytes::from_static(&[9, 8, 7]),
            expected: vec![(0, 5), (3, 1)],
            pending: vec![env(1), env(2)],
            buffered: vec![env(10)],
        };
        assert_eq!(MigratePacket::decode(p.encode()), p);
    }

    #[test]
    fn empty_migrate_packet_roundtrip() {
        let p = MigratePacket {
            ptr: MobilePtr { home: 0, index: 1 },
            epoch: 1,
            object: Bytes::new(),
            expected: vec![],
            pending: vec![],
            buffered: vec![],
        };
        assert_eq!(MigratePacket::decode(p.encode()), p);
    }

    #[test]
    fn directory_messages_roundtrip() {
        let p = DirPublish {
            ptr: MobilePtr { home: 1, index: 44 },
            owner: 6,
            epoch: 9,
        };
        assert_eq!(DirPublish::decode(p.encode()), p);
        let l = DirLookup {
            ptr: MobilePtr { home: 0, index: 12 },
            epoch: 3,
        };
        assert_eq!(DirLookup::decode(l.encode()), l);
        for stale in [false, true] {
            let a = DirAnswer {
                ptr: MobilePtr { home: 2, index: 7 },
                owner: 4,
                epoch: 15,
                stale,
            };
            assert_eq!(DirAnswer::decode(a.encode()), a);
        }
    }

    #[test]
    fn locupdate_and_nodemsg_roundtrip() {
        let l = LocUpdate {
            ptr: MobilePtr { home: 2, index: 3 },
            owner: 7,
            epoch: 11,
        };
        assert_eq!(LocUpdate::decode(l.encode()), l);
        let n = NodeMsg {
            handler: 6,
            payload: Bytes::from_static(b"lb"),
        };
        assert_eq!(NodeMsg::decode(n.encode()), n);
    }
}
