//! # prema-mol — the Mobile Object Layer
//!
//! The global-namespace and migration substrate of PREMA (Chrisochoides,
//! Barker, Nave, Hawblitzel — *Mobile object layer: a runtime substrate for
//! parallel adaptive and irregular computations*, 2000; reference [6] of the
//! SC'03 paper).
//!
//! Applications decompose their data domain into **mobile objects** (mesh
//! subdomains, tree nodes, ...), register them to obtain **mobile pointers**
//! ([`MobilePtr`]), and thereafter address all communication to pointers
//! rather than ranks. The MOL routes each message to wherever its target
//! object currently lives, forwarding along migration trails and preserving
//! per-sender delivery order — so the load balancer above may move objects at
//! will without the application noticing.
//!
//! * [`ptr`] — mobile pointers and per-rank allocation.
//! * [`migrate`] — the [`Migratable`] pack/unpack trait.
//! * [`proto`] — the wire protocol (messages, migration packets, location
//!   updates, directory publishes/lookups/answers).
//! * [`directory`] — the sharded location directory: the pointer→shard map,
//!   the bounded sender-side location cache, and the shard authority table
//!   (DESIGN.md §16).
//! * [`node`] — the per-rank runtime: routing, ordering, migration,
//!   application vs. system polling.

#![warn(missing_docs)]

pub mod directory;
pub mod migrate;
pub mod node;
#[cfg(feature = "check-invariants")]
pub(crate) mod oracle;
pub mod proto;
pub mod ptr;

pub use directory::{shard_of, LocCache, ShardAuthority, HARD_CHAIN_LIMIT, MAX_CHAIN};
pub use migrate::{pack_to_vec, Migratable};
pub use node::{MolConfig, MolEvent, MolNode, MolStats, WorkItem};
pub use proto::MolEnvelope;
pub use ptr::{MobilePtr, PtrAllocator};
