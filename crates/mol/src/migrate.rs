//! Object serialization for migration.
//!
//! PREMA's C implementation asked applications to supply pack/unpack
//! callbacks for their mobile objects; [`Migratable`] is the Rust analogue.
//! An object must be able to flatten itself into bytes at the source and be
//! reconstituted at the destination. Applications with heterogeneous object
//! kinds use an `enum` implementing `Migratable`.

/// An application object that can be registered with the Mobile Object Layer
/// and transparently migrated between ranks.
pub trait Migratable: Send + 'static {
    /// Serialize into `buf` (append-only).
    fn pack(&self, buf: &mut Vec<u8>);

    /// Reconstruct from bytes produced by [`Migratable::pack`].
    fn unpack(buf: &[u8]) -> Self
    where
        Self: Sized;

    /// Approximate serialized size in bytes, used by cost models to estimate
    /// migration expense before packing. The default packs and measures —
    /// override for large objects.
    fn packed_size(&self) -> usize {
        let mut buf = Vec::new();
        self.pack(&mut buf);
        buf.len()
    }
}

/// Pack an object into a fresh buffer.
pub fn pack_to_vec<O: Migratable>(obj: &O) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    obj.pack(&mut buf);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Clone)]
    struct Blob {
        id: u64,
        data: Vec<u8>,
    }

    impl Migratable for Blob {
        fn pack(&self, buf: &mut Vec<u8>) {
            buf.extend_from_slice(&self.id.to_le_bytes());
            buf.extend_from_slice(&(self.data.len() as u64).to_le_bytes());
            buf.extend_from_slice(&self.data);
        }
        fn unpack(buf: &[u8]) -> Self {
            let id = u64::from_le_bytes(buf[..8].try_into().unwrap());
            let len = u64::from_le_bytes(buf[8..16].try_into().unwrap()) as usize;
            Blob {
                id,
                data: buf[16..16 + len].to_vec(),
            }
        }
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let b = Blob {
            id: 42,
            data: vec![1, 2, 3, 4, 5],
        };
        let bytes = pack_to_vec(&b);
        assert_eq!(Blob::unpack(&bytes), b);
    }

    #[test]
    fn default_packed_size_matches_pack() {
        let b = Blob {
            id: 1,
            data: vec![0; 100],
        };
        assert_eq!(b.packed_size(), pack_to_vec(&b).len());
    }

    #[test]
    fn empty_payload_roundtrip() {
        let b = Blob {
            id: 0,
            data: vec![],
        };
        assert_eq!(Blob::unpack(&pack_to_vec(&b)), b);
    }
}
