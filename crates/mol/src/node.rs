//! The per-rank Mobile Object Layer node.
//!
//! [`MolNode`] owns a rank's [`Communicator`] and implements the three MOL
//! guarantees the paper relies on (§4):
//!
//! 1. **Global name space** — [`MolNode::register`] assigns fresh
//!    [`MobilePtr`]s; a pointer works from any rank, forever.
//! 2. **Transparent migration** — [`MolNode::migrate`] packs an object (plus
//!    its in-flight ordering state) and ships it; the source keeps a forward
//!    pointer so the name never dangles.
//! 3. **Automatic forwarding with preserved order** — messages chase the
//!    object along forward pointers; per-(sender, object) sequence numbers
//!    make delivery order identical to send order regardless of the path
//!    each message took. Lazy location updates collapse forwarding chains.
//!
//! Everything a rank knows about one mobile pointer — residency, the cached
//! location, the forward pointer, the outgoing sequence counter, parked
//! messages — lives in a single [`DirEntry`] inside one Fx-hashed directory,
//! so the per-message fast paths (send, receive, forward) pay **one** map
//! probe instead of one per concern. This is the MOL half of the O(1)
//! message fast path; the transport half is `prema_dcs::transport`.
//!
//! The node is deliberately *mechanism only*: [`MolNode::poll`] returns
//! [`MolEvent`]s and the layer above (the ILB scheduler / the `prema` facade)
//! decides when to execute them. That split is what lets PREMA process
//! system-generated load-balancing traffic preemptively
//! ([`MolNode::poll_system`]) without ever running application handlers
//! behind the application's back.

use crate::migrate::Migratable;
use crate::proto::{
    LocUpdate, MigratePacket, MolEnvelope, NodeMsg, H_MOL_LOCUPD, H_MOL_MIGRATE, H_MOL_MSG,
    H_NODE_MSG,
};
use crate::ptr::{MobilePtr, PtrAllocator};
use bytes::Bytes;
use prema_dcs::{pool, Communicator, Envelope, FxHashMap, Rank, Tag};
use prema_trace::{TraceEvent, Tracer};
use std::collections::{BTreeMap, VecDeque};

/// Location-update strategy knobs (the forwarding-vs-updates tradeoff).
///
/// The MOL always forwards along migration trails, so any setting is
/// *correct*; these knobs trade update traffic against forwarding-chain
/// length. The defaults are the paper's lazy scheme.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MolConfig {
    /// Notify the object's *home* rank on every installation (keeps the
    /// home's guess fresh so cold senders take at most one extra hop).
    pub update_home_on_install: bool,
    /// When forwarding a message, lazily teach the original sender where the
    /// object went, collapsing its chain for subsequent sends.
    pub update_sender_on_forward: bool,
    /// Eagerly broadcast every installation to all ranks. Shortest chains,
    /// highest update traffic — O(P) messages per migration.
    pub broadcast_on_install: bool,
}

impl Default for MolConfig {
    fn default() -> Self {
        MolConfig {
            update_home_on_install: true,
            update_sender_on_forward: true,
            broadcast_on_install: false,
        }
    }
}

/// Counters describing a node's MOL activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MolStats {
    /// Object messages sent from this rank.
    pub sent: u64,
    /// Object messages delivered to local objects.
    pub delivered: u64,
    /// Object messages forwarded because the target had migrated away.
    pub forwarded: u64,
    /// Objects migrated out.
    pub migrations_out: u64,
    /// Objects installed via migration.
    pub migrations_in: u64,
    /// Location updates sent.
    pub locupd_sent: u64,
    /// Messages buffered out-of-order (sequence gap) at arrival.
    pub reordered: u64,
    /// Duplicate object messages dropped (sequence number already consumed).
    /// Always zero on a reliable wire.
    pub duplicates: u64,
    /// Migration packets dropped because their epoch was not newer than what
    /// this rank already knew (a replayed or duplicated packet). Always zero
    /// on a reliable wire.
    pub stale_installs: u64,
}

/// What [`MolNode::poll`] hands to the layer above.
#[derive(Debug)]
pub enum MolEvent {
    /// A message for a local object, delivered in per-sender send order.
    /// Execute it with [`MolNode::with_object`].
    Object {
        /// Target object.
        ptr: MobilePtr,
        /// Original sender.
        sender: Rank,
        /// Application handler id.
        handler: u32,
        /// Application payload.
        payload: Bytes,
    },
    /// A rank-targeted message (e.g. load-balancer traffic).
    Node {
        /// Sender rank.
        src: Rank,
        /// Application/runtime handler id.
        handler: u32,
        /// Payload.
        payload: Bytes,
        /// Whether it was sent with [`Tag::System`].
        system: bool,
    },
    /// An object just arrived via migration and is now local.
    Installed {
        /// The object.
        ptr: MobilePtr,
        /// The rank it came from.
        from: Rank,
    },
}

/// Residency state of a *local* object: the object itself plus the in-flight
/// ordering state that travels with it on migration.
struct Entry<O> {
    /// The object itself; `None` while detached for execution
    /// ([`MolNode::take_object`]). A detached object still receives and
    /// orders messages, but cannot migrate — PREMA never migrates an
    /// executing work unit (§4.2).
    obj: Option<O>,
    /// Migration epoch: number of times this object has moved.
    epoch: u64,
    /// Next expected sequence number per original sender.
    expected: FxHashMap<Rank, u64>,
    /// Out-of-order buffer per original sender.
    ooo: FxHashMap<Rank, BTreeMap<u64, MolEnvelope>>,
}

/// Everything this rank knows about one mobile pointer, unified so the
/// per-message paths pay a single directory probe. An earlier design kept
/// four parallel maps (`objects`, `location`, `forwards`, `seq_out`) and
/// probed each per message.
struct DirEntry<O> {
    /// `Some` iff the object is resident on this rank.
    entry: Option<Entry<O>>,
    /// Best-known location of the (remote) object, with the epoch of the
    /// information.
    location: Option<(Rank, u64)>,
    /// Forward pointer left behind when the object migrated away from here.
    forward: Option<(Rank, u64)>,
    /// Outgoing sequence counter for messages this rank sends to the object.
    /// Survives migrations — the counter is per (sender rank, object), not
    /// per residency.
    seq_out: u64,
    /// Messages parked at the home rank until the object's location is known.
    limbo: Vec<MolEnvelope>,
}

// Manual impl: `derive(Default)` would needlessly require `O: Default`.
impl<O> Default for DirEntry<O> {
    fn default() -> Self {
        DirEntry {
            entry: None,
            location: None,
            forward: None,
            seq_out: 0,
            limbo: Vec::new(),
        }
    }
}

impl<O> DirEntry<O> {
    /// Where this rank would currently route a message for `ptr`: the forward
    /// pointer if we once owned it, else the freshest cached location, else
    /// its home. `None` means "here is the home and we know nothing" (limbo).
    fn guess(&self, ptr: MobilePtr, me: Rank) -> Option<Rank> {
        match (self.forward, self.location) {
            (Some((fr, fe)), Some((lr, le))) => Some(if fe >= le { fr } else { lr }),
            (Some((fr, _)), None) => Some(fr),
            (None, Some((lr, _))) => Some(lr),
            (None, None) => {
                if ptr.home == me {
                    None
                } else {
                    Some(ptr.home)
                }
            }
        }
    }
}

/// The per-rank MOL runtime. Generic over the application's mobile object
/// type `O`; applications with several kinds of objects use an enum.
///
/// ```
/// use prema_dcs::{Communicator, LocalFabric};
/// use prema_mol::{Migratable, MolEvent, MolNode};
/// use bytes::Bytes;
///
/// struct Counter(u64);
/// impl Migratable for Counter {
///     fn pack(&self, buf: &mut Vec<u8>) { buf.extend(self.0.to_le_bytes()); }
///     fn unpack(b: &[u8]) -> Self { Counter(u64::from_le_bytes(b[..8].try_into().unwrap())) }
/// }
///
/// // Two ranks on one thread for illustration.
/// let mut eps = LocalFabric::new(2).into_iter();
/// let mut a: MolNode<Counter> = MolNode::new(Communicator::new(Box::new(eps.next().unwrap())));
/// let mut b: MolNode<Counter> = MolNode::new(Communicator::new(Box::new(eps.next().unwrap())));
///
/// let ptr = a.register(Counter(0));
/// assert!(a.migrate(ptr, 1));              // move the object to rank 1...
/// a.message(ptr, 7, Bytes::new());          // ...and message it by name.
/// let _ = a.poll();                         // (routes the send)
/// let events = b.poll();                    // rank 1 installs + receives
/// assert!(events.iter().any(|e| matches!(e, MolEvent::Object { handler: 7, .. })));
/// assert!(b.is_local(ptr));
/// ```
pub struct MolNode<O: Migratable> {
    comm: Communicator,
    cfg: MolConfig,
    alloc: PtrAllocator,
    /// The unified per-pointer directory (see [`DirEntry`]).
    directory: FxHashMap<MobilePtr, DirEntry<O>>,
    /// Number of directory entries with a resident object (kept so
    /// [`MolNode::local_count`] — called per scheduling decision — does not
    /// scan the directory).
    resident: usize,
    /// In-order messages awaiting execution.
    ready: VecDeque<MolEnvelope>,
    stats: MolStats,
    tracer: Tracer,
    /// Shadow state asserting ordering/conservation invariants (see
    /// [`crate::oracle`]).
    #[cfg(feature = "check-invariants")]
    oracle: crate::oracle::NodeOracle,
}

impl<O: Migratable> MolNode<O> {
    /// Build a node over a communicator endpoint with the default (lazy)
    /// location-update strategy.
    pub fn new(comm: Communicator) -> Self {
        Self::with_config(comm, MolConfig::default())
    }

    /// Build a node with an explicit location-update strategy.
    pub fn with_config(comm: Communicator, cfg: MolConfig) -> Self {
        let rank = comm.rank();
        MolNode {
            comm,
            cfg,
            alloc: PtrAllocator::new(rank),
            directory: FxHashMap::default(),
            resident: 0,
            ready: VecDeque::new(),
            stats: MolStats::default(),
            tracer: Tracer::off(),
            #[cfg(feature = "check-invariants")]
            oracle: crate::oracle::NodeOracle::default(),
        }
    }

    /// Attach a trace recorder, propagated down to the communicator so the
    /// rank's substrate traffic is recorded too. A no-op handle unless
    /// `prema-trace` is built with its `enabled` feature.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.comm.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// This rank.
    pub fn rank(&self) -> Rank {
        self.comm.rank()
    }

    /// Machine size.
    pub fn nprocs(&self) -> usize {
        self.comm.nprocs()
    }

    /// MOL activity counters.
    pub fn stats(&self) -> MolStats {
        self.stats
    }

    /// Access the underlying communicator (traffic counters etc.).
    pub fn comm(&self) -> &Communicator {
        &self.comm
    }

    // ---- name space & object store -------------------------------------

    /// Register a new mobile object, returning its global name.
    pub fn register(&mut self, obj: O) -> MobilePtr {
        let ptr = self.alloc.alloc();
        let d = self.directory.entry(ptr).or_default();
        d.entry = Some(Entry {
            obj: Some(obj),
            epoch: 0,
            expected: FxHashMap::default(),
            ooo: FxHashMap::default(),
        });
        self.resident += 1;
        ptr
    }

    /// Whether `ptr` currently lives on this rank.
    pub fn is_local(&self, ptr: MobilePtr) -> bool {
        self.directory.get(&ptr).is_some_and(|d| d.entry.is_some())
    }

    /// Number of local objects.
    pub fn local_count(&self) -> usize {
        self.resident
    }

    /// The names of all local objects (unspecified order).
    pub fn local_ptrs(&self) -> Vec<MobilePtr> {
        self.directory
            .iter()
            .filter(|(_, d)| d.entry.is_some())
            .map(|(p, _)| *p)
            .collect()
    }

    /// Borrow a local object (`None` if remote or currently detached).
    pub fn get(&self, ptr: MobilePtr) -> Option<&O> {
        self.directory
            .get(&ptr)
            .and_then(|d| d.entry.as_ref())
            .and_then(|e| e.obj.as_ref())
    }

    /// Mutably borrow a local object (`None` if remote or detached).
    pub fn get_mut(&mut self, ptr: MobilePtr) -> Option<&mut O> {
        self.directory
            .get_mut(&ptr)
            .and_then(|d| d.entry.as_mut())
            .and_then(|e| e.obj.as_mut())
    }

    /// Detach a local object for execution. While detached the object keeps
    /// receiving (and ordering) messages but [`MolNode::migrate`] refuses to
    /// move it — PREMA never migrates an executing work unit (§4.2). Pair
    /// with [`MolNode::put_object`].
    pub fn take_object(&mut self, ptr: MobilePtr) -> Option<O> {
        self.directory
            .get_mut(&ptr)
            .and_then(|d| d.entry.as_mut())
            .and_then(|e| e.obj.take())
    }

    /// Re-attach an object detached by [`MolNode::take_object`].
    pub fn put_object(&mut self, ptr: MobilePtr, obj: O) {
        let entry = self
            .directory
            .get_mut(&ptr)
            .and_then(|d| d.entry.as_mut())
            .expect("put_object for an object that is not resident");
        assert!(entry.obj.is_none(), "put_object over a present object");
        entry.obj = Some(obj);
    }

    /// Run `f` with mutable access to a local object *and* the node, so the
    /// body can send further MOL messages (the paper's handler execution
    /// model). Returns `None` if `ptr` is not local or already detached.
    ///
    /// The body must not migrate `ptr` itself — [`MolNode::migrate`] will
    /// return `false` for a detached object.
    pub fn with_object<R>(
        &mut self,
        ptr: MobilePtr,
        f: impl FnOnce(&mut Self, &mut O) -> R,
    ) -> Option<R> {
        let mut obj = self.take_object(ptr)?;
        let r = f(self, &mut obj);
        self.put_object(ptr, obj);
        Some(r)
    }

    // ---- messaging ------------------------------------------------------

    /// Send an application message to a mobile object, wherever it lives.
    /// `handler` is an application-level id dispatched by the caller when the
    /// message comes back out of [`MolNode::poll`] at the destination.
    pub fn message(&mut self, ptr: MobilePtr, handler: u32, payload: Bytes) {
        self.message_with_hint(ptr, handler, 1.0, payload);
    }

    /// [`MolNode::message`] with an explicit computational-weight hint for
    /// the load balancer (the paper's programmer-supplied hints, §2).
    ///
    /// One directory probe covers the sequence-number bump *and* the routing
    /// decision (local accept / remote send / limbo).
    pub fn message_with_hint(&mut self, ptr: MobilePtr, handler: u32, hint: f64, payload: Bytes) {
        assert!(!ptr.is_null(), "message to NULL mobile pointer");
        let me = self.comm.rank();
        let d = self.directory.entry(ptr).or_default();
        let seq = d.seq_out;
        d.seq_out += 1;
        let env = MolEnvelope {
            target: ptr,
            sender: me,
            seq,
            handler,
            hops: 0,
            hint,
            payload,
        };
        self.stats.sent += 1;
        if d.entry.is_some() {
            self.accept_local(env);
        } else if let Some(dst) = d.guess(ptr, me) {
            let wire = env.encode();
            self.comm.am_send(dst, H_MOL_MSG, Tag::App, wire);
        } else {
            // We are the home rank and have never seen the object: park the
            // message until a location update or installation.
            d.limbo.push(env);
        }
    }

    /// Send a rank-targeted message (bypasses object routing). System-tagged
    /// messages are visible to [`MolNode::poll_system`].
    pub fn node_message(&mut self, dst: Rank, handler: u32, tag: Tag, payload: Bytes) {
        let body = NodeMsg { handler, payload }.encode();
        self.comm.am_send(dst, H_NODE_MSG, tag, body);
    }

    /// Route a (re-)considered envelope: accept locally, send toward the best
    /// guess, or park in limbo. Used when limbo messages are unlocked; the
    /// send path inlines the same logic next to its sequence bump.
    fn route(&mut self, env: MolEnvelope) {
        let ptr = env.target;
        let me = self.comm.rank();
        let d = self.directory.entry(ptr).or_default();
        if d.entry.is_some() {
            self.accept_local(env);
        } else if let Some(dst) = d.guess(ptr, me) {
            let wire = env.encode();
            self.comm.am_send(dst, H_MOL_MSG, Tag::App, wire);
        } else {
            d.limbo.push(env);
        }
    }

    fn accept_local(&mut self, env: MolEnvelope) {
        let entry = self
            .directory
            .get_mut(&env.target)
            .and_then(|d| d.entry.as_mut())
            .expect("accept_local on non-local object");
        let exp = entry.expected.entry(env.sender).or_insert(0);
        use std::cmp::Ordering::*;
        match env.seq.cmp(exp) {
            Equal => {
                *exp += 1;
                let sender = env.sender;
                self.ready.push_back(env);
                #[cfg(feature = "check-invariants")]
                self.oracle.on_accept();
                // Drain any now-in-order buffered messages from this sender.
                if let Some(buf) = entry.ooo.get_mut(&sender) {
                    while let Some(next) = buf.remove(exp) {
                        *exp += 1;
                        self.ready.push_back(next);
                        #[cfg(feature = "check-invariants")]
                        self.oracle.on_accept();
                    }
                    if buf.is_empty() {
                        entry.ooo.remove(&sender);
                    }
                }
            }
            Greater => {
                self.stats.reordered += 1;
                entry
                    .ooo
                    .entry(env.sender)
                    .or_default()
                    .insert(env.seq, env);
            }
            Less => {
                // Duplicate: this sequence number was already consumed. On a
                // reliable wire this cannot happen; under an unreliable one
                // (chaos without the reliable shim) dropping it is exactly
                // the idempotency the sequence numbers exist to provide.
                self.stats.duplicates += 1;
                let peer = env.sender;
                self.tracer.emit(|| TraceEvent::DcsDuplicate {
                    peer,
                    handler: env.handler,
                });
            }
        }
    }

    // ---- migration ------------------------------------------------------

    /// Uninstall a local object and ship it to `dst`. In-flight ordering
    /// state and queued messages travel with it (moved, not copied); this
    /// rank keeps a forward pointer so stale sends still find the object.
    ///
    /// Returns `false` if `ptr` is not local (e.g. it already migrated) or is
    /// currently detached for execution — an executing work unit must finish
    /// before it can move (§4.2).
    pub fn migrate(&mut self, ptr: MobilePtr, dst: Rank) -> bool {
        assert_ne!(dst, self.comm.rank(), "migrate to self");
        let Some(d) = self.directory.get_mut(&ptr) else {
            return false;
        };
        if d.entry.as_ref().is_none_or(|e| e.obj.is_none()) {
            return false;
        }
        let entry = d
            .entry
            .take()
            .expect("presence checked just above with no intervening mutation");
        self.resident -= 1;
        // Pull this object's accepted-but-unexecuted messages out of the
        // ready queue, preserving their order: rotate the queue once in
        // place, moving (not cloning) matching envelopes out.
        let mut pending = Vec::new();
        for _ in 0..self.ready.len() {
            let e = self
                .ready
                .pop_front()
                .expect("queue length fixed before the rotation");
            if e.target == ptr {
                pending.push(e);
            } else {
                self.ready.push_back(e);
            }
        }
        let buffered: Vec<MolEnvelope> = entry
            .ooo
            .into_values()
            .flat_map(|m| m.into_values())
            .collect();
        #[cfg(feature = "check-invariants")]
        self.oracle.on_migrate_out(ptr, pending.len());
        let epoch = entry.epoch + 1;
        let obj = entry
            .obj
            .as_ref()
            .expect("obj is Some: is_none_or guard above");
        let packet = MigratePacket {
            ptr,
            epoch,
            // Packed into a pooled scratch buffer: migrations under churn
            // reuse the same allocation instead of growing a fresh Vec.
            object: pool::build(64, |buf| obj.pack(buf)),
            expected: entry.expected.into_iter().collect(),
            pending,
            buffered,
        };
        d.forward = Some((dst, epoch));
        d.location = Some((dst, epoch));
        self.stats.migrations_out += 1;
        self.tracer.emit(|| TraceEvent::Migrate {
            home: ptr.home,
            index: ptr.index,
            dst,
        });
        self.comm
            .am_send(dst, H_MOL_MIGRATE, Tag::System, packet.encode());
        #[cfg(feature = "check-invariants")]
        self.verify_conservation();
        true
    }

    fn install(&mut self, from: Rank, packet: MigratePacket) -> Option<MolEvent> {
        let ptr = packet.ptr;
        // Replay guard: every genuine migration carries a strictly newer
        // epoch, so a packet whose epoch is not beyond everything this rank
        // knows about the object is a duplicate or a stale retransmission.
        // Installing it would resurrect an object that already moved on (or
        // double-install one that is resident) — drop it before the oracle,
        // whose history model assumes only genuine installs.
        let prior_epoch = self.directory.get(&ptr).and_then(|d| {
            d.forward
                .map(|(_, e)| e)
                .into_iter()
                .chain(d.location.map(|(_, e)| e))
                .chain(d.entry.as_ref().map(|e| e.epoch))
                .max()
        });
        if prior_epoch.is_some_and(|prior| packet.epoch <= prior) {
            self.stats.stale_installs += 1;
            self.tracer.emit(|| TraceEvent::DcsDuplicate {
                peer: from,
                handler: H_MOL_MIGRATE.0,
            });
            return None;
        }
        let obj = O::unpack(&packet.object);
        #[cfg(feature = "check-invariants")]
        self.oracle.on_install(
            ptr,
            packet.epoch,
            prior_epoch,
            &packet.expected,
            &packet.pending,
        );
        let d = self.directory.entry(ptr).or_default();
        // If this object once lived here and left, the stale forward pointer
        // must die: it is local again.
        d.forward = None;
        d.location = None;
        if d.entry
            .replace(Entry {
                obj: Some(obj),
                epoch: packet.epoch,
                expected: packet.expected.into_iter().collect(),
                ooo: FxHashMap::default(),
            })
            .is_none()
        {
            self.resident += 1;
        }
        // Any messages parked here (we may be the home) can be routed once
        // installation finishes below.
        let parked = std::mem::take(&mut d.limbo);
        self.stats.migrations_in += 1;
        for env in packet.pending {
            self.ready.push_back(env);
        }
        // (Conservation: these re-queued messages were counted by the
        // oracle's on_install as `installed`, not `accepted`.)
        for env in packet.buffered {
            self.accept_local(env);
        }
        // Location dissemination per the configured strategy.
        let upd = LocUpdate {
            ptr,
            owner: self.rank(),
            epoch: packet.epoch,
        };
        if self.cfg.broadcast_on_install {
            for dst in 0..self.nprocs() {
                if dst != self.rank() {
                    self.stats.locupd_sent += 1;
                    self.comm
                        .am_send(dst, H_MOL_LOCUPD, Tag::System, upd.encode());
                }
            }
        } else if self.cfg.update_home_on_install && ptr.home != self.rank() {
            self.stats.locupd_sent += 1;
            self.comm
                .am_send(ptr.home, H_MOL_LOCUPD, Tag::System, upd.encode());
        }
        for env in parked {
            self.route(env);
        }
        self.tracer.emit(|| TraceEvent::Install {
            home: ptr.home,
            index: ptr.index,
            from,
        });
        Some(MolEvent::Installed { ptr, from })
    }

    // ---- polling ---------------------------------------------------------

    /// Process every queued incoming message and return the resulting events:
    /// in-order application messages for local objects, node messages, and
    /// installation notices. This is PREMA's *application-posted* polling
    /// operation.
    ///
    /// **Contract:** every [`MolEvent::Object`] in the returned batch must be
    /// executed (or deliberately discarded) *before* its object migrates
    /// again — the deliveries have left the runtime's custody and would not
    /// travel with the object. The [`MolNode::pump`]/[`MolNode::pop_work`]
    /// pair (used by the ILB scheduler) sidesteps the issue by keeping
    /// undelivered work inside the node.
    pub fn poll(&mut self) -> Vec<MolEvent> {
        // Poll-boundary flush (DESIGN.md §11): anything the application
        // staged since the last poll goes out before we look for input.
        self.comm.flush();
        let mut events = Vec::new();
        while let Some(env) = self.comm.try_recv() {
            self.handle_wire(env, &mut events);
        }
        self.drain_ready(&mut events);
        // Forwards/routes performed while handling the wire stage too.
        self.comm.flush();
        #[cfg(feature = "check-invariants")]
        self.verify_conservation();
        events
    }

    /// Process only *system-generated* traffic — migrations, location
    /// updates, and system-tagged node messages — sidelining application
    /// messages untouched (their order is preserved for the next
    /// [`MolNode::poll`]). This is what PREMA's preemptive polling thread
    /// runs at its periodic wake-ups (§4.2): load-balancing messages are seen
    /// promptly, yet no application handler ever runs preemptively.
    pub fn poll_system(&mut self) -> Vec<MolEvent> {
        // The preemptive poll is also a flush boundary: staged application
        // batches ship even if the worker is stuck in a long handler.
        self.comm.flush();
        let mut events = Vec::new();
        while let Some(env) = self.comm.try_recv_transport() {
            let is_system = env.tag == Tag::System;
            if is_system {
                self.handle_wire(env, &mut events);
            } else {
                self.comm.sideline(env);
            }
        }
        // An install may have routed parked messages (application traffic);
        // push those out rather than leaving them for the next poll.
        self.comm.flush();
        #[cfg(feature = "check-invariants")]
        self.verify_conservation();
        events
    }

    fn handle_wire(&mut self, env: Envelope, events: &mut Vec<MolEvent>) {
        match env.handler {
            h if h == H_MOL_MSG => {
                let menv = MolEnvelope::decode(env.payload);
                if self.is_local(menv.target) {
                    self.accept_local(menv);
                } else {
                    self.forward(menv);
                }
            }
            h if h == H_MOL_MIGRATE => {
                let packet = MigratePacket::decode(env.payload);
                if let Some(ev) = self.install(env.src, packet) {
                    events.push(ev);
                }
            }
            h if h == H_MOL_LOCUPD => {
                let upd = LocUpdate::decode(env.payload);
                self.learn_location(upd);
            }
            h if h == H_NODE_MSG => {
                let body = NodeMsg::decode(env.payload);
                events.push(MolEvent::Node {
                    src: env.src,
                    handler: body.handler,
                    payload: body.payload,
                    system: env.tag == Tag::System,
                });
            }
            other => panic!("MOL received unknown DCS handler {other:?}"),
        }
    }

    fn forward(&mut self, mut menv: MolEnvelope) {
        let ptr = menv.target;
        let sender = menv.sender;
        let me = self.comm.rank();
        let d = self.directory.entry(ptr).or_default();
        match d.guess(ptr, me) {
            Some(next) => {
                menv.hops += 1;
                self.stats.forwarded += 1;
                self.tracer.emit(|| TraceEvent::ForwardHop {
                    home: ptr.home,
                    index: ptr.index,
                    next,
                    hops: menv.hops,
                });
                #[cfg(feature = "check-invariants")]
                self.oracle.on_forward(me, next, menv.hops);
                // Lazily teach the original sender where the object went so
                // its next message takes the short path.
                if let Some((owner, epoch)) = d.forward.or(d.location) {
                    if self.cfg.update_sender_on_forward && sender != me && sender != owner {
                        let upd = LocUpdate { ptr, owner, epoch };
                        self.stats.locupd_sent += 1;
                        self.comm
                            .am_send(sender, H_MOL_LOCUPD, Tag::System, upd.encode());
                    }
                }
                let wire = menv.encode();
                self.comm.am_send(next, H_MOL_MSG, Tag::App, wire);
            }
            None => d.limbo.push(menv),
        }
    }

    fn learn_location(&mut self, upd: LocUpdate) {
        let d = self.directory.entry(upd.ptr).or_default();
        if d.entry.is_some() {
            return; // it's here; any cached location is stale by definition
        }
        if d.location.is_none_or(|(_, e)| upd.epoch > e) {
            d.location = Some((upd.owner, upd.epoch));
        }
        if let Some((_, fe)) = d.forward {
            if upd.epoch > fe {
                d.forward = Some((upd.owner, upd.epoch));
            }
        }
        let parked = std::mem::take(&mut d.limbo);
        for env in parked {
            self.route(env);
        }
    }

    fn drain_ready(&mut self, events: &mut Vec<MolEvent>) {
        while let Some(env) = self.ready.pop_front() {
            self.stats.delivered += 1;
            #[cfg(feature = "check-invariants")]
            self.oracle.on_deliver(env.sender, env.target, env.seq);
            events.push(MolEvent::Object {
                ptr: env.target,
                sender: env.sender,
                handler: env.handler,
                payload: env.payload,
            });
        }
    }

    /// Number of in-order messages queued for local execution.
    pub fn ready_len(&self) -> usize {
        self.ready.len()
    }

    /// Assert the work-conservation invariant: every message accepted on (or
    /// installed into) this node has either been delivered, shipped out with
    /// a migration, or is still in the ready queue. Called internally after
    /// every poll/pump/migrate; public so schedulers and tests can check at
    /// their own boundaries too. Panics on violation.
    #[cfg(feature = "check-invariants")]
    pub fn verify_conservation(&self) {
        self.oracle.verify(self.ready.len());
    }

    /// Sum of the weight hints of all queued work (the load estimate PREMA's
    /// balancer compares against its water-mark).
    pub fn ready_load(&self) -> f64 {
        self.ready.iter().map(|e| e.hint).sum()
    }

    /// Process incoming wire traffic *without* draining the work queue:
    /// routed application messages stay queued (visible via
    /// [`MolNode::pop_work`]); only node messages and installation notices
    /// are returned. This is the scheduler's ingest step.
    pub fn pump(&mut self) -> Vec<MolEvent> {
        self.comm.flush();
        let mut events = Vec::new();
        while let Some(env) = self.comm.try_recv() {
            self.handle_wire(env, &mut events);
        }
        self.comm.flush();
        #[cfg(feature = "check-invariants")]
        self.verify_conservation();
        events
    }

    /// Pop the oldest queued work unit (an in-order application message for a
    /// local object), if any.
    pub fn pop_work(&mut self) -> Option<WorkItem> {
        let env = self.ready.pop_front()?;
        self.stats.delivered += 1;
        #[cfg(feature = "check-invariants")]
        self.oracle.on_deliver(env.sender, env.target, env.seq);
        Some(WorkItem {
            ptr: env.target,
            sender: env.sender,
            handler: env.handler,
            hint: env.hint,
            payload: env.payload,
        })
    }

    /// Per-object summary of queued work: `(object, queued messages, summed
    /// weight hints)`, heaviest first. The load balancer uses this to decide
    /// which mobile objects to hand over when granting a work request.
    pub fn ready_summary(&self) -> Vec<(MobilePtr, usize, f64)> {
        let mut acc: FxHashMap<MobilePtr, (usize, f64)> = FxHashMap::default();
        for e in &self.ready {
            let slot = acc.entry(e.target).or_insert((0, 0.0));
            slot.0 += 1;
            slot.1 += e.hint;
        }
        let mut out: Vec<(MobilePtr, usize, f64)> =
            acc.into_iter().map(|(p, (n, w))| (p, n, w)).collect();
        out.sort_by(|a, b| b.2.total_cmp(&a.2).then(a.0.cmp(&b.0)));
        out
    }

    /// Messages the resident object `ptr` has consumed from rank `src` over
    /// its lifetime — the object-interaction counter behind
    /// communication-aware load balancing (DESIGN.md §14). Read straight off
    /// the per-sender sequence state that already travels with the object on
    /// migration, so it costs no extra bookkeeping or wire bytes. Zero for
    /// non-resident objects.
    pub fn interactions_from(&self, ptr: MobilePtr, src: Rank) -> u64 {
        self.directory
            .get(&ptr)
            .and_then(|d| d.entry.as_ref())
            .and_then(|e| e.expected.get(&src))
            .copied()
            .unwrap_or(0)
    }

    /// Per-peer interaction totals across all resident objects: how many
    /// messages this rank's objects have consumed from each sender rank
    /// (including this rank itself — callers filter as needed). The load
    /// balancer folds this into its communication-affinity summary.
    pub fn interaction_summary(&self) -> Vec<(Rank, u64)> {
        let mut acc: FxHashMap<Rank, u64> = FxHashMap::default();
        for d in self.directory.values() {
            let Some(entry) = d.entry.as_ref() else {
                continue;
            };
            for (&src, &consumed) in &entry.expected {
                if consumed > 0 {
                    *acc.entry(src).or_insert(0) += consumed;
                }
            }
        }
        let mut out: Vec<(Rank, u64)> = acc.into_iter().collect();
        out.sort_unstable();
        out
    }
}

/// A unit of queued work: one in-order message for one local object.
#[derive(Debug, Clone)]
pub struct WorkItem {
    /// Target object (guaranteed resident when popped, though it may be
    /// detached if the caller interleaves).
    pub ptr: MobilePtr,
    /// Original sender.
    pub sender: Rank,
    /// Application handler id.
    pub handler: u32,
    /// Computational weight hint.
    pub hint: f64,
    /// Payload.
    pub payload: Bytes,
}
