//! The per-rank Mobile Object Layer node.
//!
//! [`MolNode`] owns a rank's [`Communicator`] and implements the three MOL
//! guarantees the paper relies on (§4):
//!
//! 1. **Global name space** — [`MolNode::register`] assigns fresh
//!    [`MobilePtr`]s; a pointer works from any rank, forever.
//! 2. **Transparent migration** — [`MolNode::migrate`] packs an object (plus
//!    its in-flight ordering state) and ships it; the source keeps a forward
//!    pointer so the name never dangles.
//! 3. **Automatic forwarding with preserved order** — messages chase the
//!    object along forward pointers; per-(sender, object) sequence numbers
//!    make delivery order identical to send order regardless of the path
//!    each message took. Lazy location updates collapse forwarding chains.
//!
//! Everything a rank knows about one mobile pointer — residency, the cached
//! location, the forward pointer, the outgoing sequence counter, parked
//! messages — lives in a single [`DirEntry`] inside one Fx-hashed directory,
//! so the per-message fast paths (send, receive, forward) pay **one** map
//! probe instead of one per concern. This is the MOL half of the O(1)
//! message fast path; the transport half is `prema_dcs::transport`.
//!
//! The node is deliberately *mechanism only*: [`MolNode::poll`] returns
//! [`MolEvent`]s and the layer above (the ILB scheduler / the `prema` facade)
//! decides when to execute them. That split is what lets PREMA process
//! system-generated load-balancing traffic preemptively
//! ([`MolNode::poll_system`]) without ever running application handlers
//! behind the application's back.

use crate::directory::{
    shard_of, LocCache, ShardAuthority, CHAIN_HIST_BUCKETS, LOC_CACHE_DEFAULT, REPAIR_HOPS,
};
use crate::migrate::Migratable;
use crate::proto::{
    DirAnswer, DirLookup, DirPublish, LocUpdate, MigratePacket, MolEnvelope, NodeMsg,
    H_MOL_DIR_ANSWER, H_MOL_DIR_LOOKUP, H_MOL_DIR_PUBLISH, H_MOL_LOCUPD, H_MOL_MIGRATE, H_MOL_MSG,
    H_NODE_MSG,
};
use crate::ptr::{MobilePtr, PtrAllocator};
use bytes::Bytes;
use prema_dcs::{env, pool, Communicator, Envelope, FxHashMap, Rank, Tag};
use prema_trace::{TraceEvent, Tracer};
use std::collections::{BTreeMap, VecDeque};

/// Location-resolution strategy knobs.
///
/// The MOL always forwards along migration trails, so any setting is
/// *correct*; these knobs trade update traffic against forwarding-chain
/// length. The default is the sharded directory of DESIGN.md §16 (constant
/// chain bound); turning `sharded_directory` off restores the paper's
/// home-forwarding scheme, kept as the comparison baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MolConfig {
    /// Keep the directory authority fresh: in sharded mode every migration
    /// publishes `(ptr, new_rank, epoch)` to the pointer's home shard; in
    /// legacy mode every installation notifies the object's *home* rank.
    pub update_home_on_install: bool,
    /// When forwarding a message, lazily teach the original sender where the
    /// object went, collapsing its chain for subsequent sends. In sharded
    /// mode the home shard's piggybacked answer is authoritative.
    pub update_sender_on_forward: bool,
    /// Eagerly broadcast every installation to all ranks. Shortest chains,
    /// highest update traffic — O(P) messages per migration.
    pub broadcast_on_install: bool,
    /// Shard location authority across ranks by pointer hash
    /// ([`crate::directory::shard_of`]); cold senders consult the shard
    /// instead of the object's birth rank, and stale sends are redirected
    /// through it, bounding forwarding chains by a constant
    /// ([`crate::directory::MAX_CHAIN`]) instead of migration history.
    pub sharded_directory: bool,
    /// Capacity (entries) of the bounded sender-side location cache.
    /// Overridden by `PREMA_LOC_CACHE` in [`MolNode::new`].
    pub loc_cache: usize,
    /// Lazy epoch propagation (the default): senders learn fresh locations
    /// only from piggybacked answers and NACK-style corrections. When off
    /// (`PREMA_LOC_EPOCH_LAZY=0`), the home shard eagerly pushes each newer
    /// publish to every rank whose lookup it has answered.
    pub lazy_epochs: bool,
}

impl Default for MolConfig {
    fn default() -> Self {
        MolConfig {
            update_home_on_install: true,
            update_sender_on_forward: true,
            broadcast_on_install: false,
            sharded_directory: true,
            loc_cache: LOC_CACHE_DEFAULT,
            lazy_epochs: true,
        }
    }
}

impl MolConfig {
    /// Apply the environment knobs (`PREMA_LOC_CACHE`,
    /// `PREMA_LOC_EPOCH_LAZY`) on top of this config, through `dcs::env`'s
    /// validated warn-once parsers. Called by [`MolNode::new`];
    /// [`MolNode::with_config`] deliberately does not, so tests and benches
    /// that pass an explicit config stay environment-independent.
    pub fn from_env(mut self) -> Self {
        if let Some(cap) = env::usize_var("PREMA_LOC_CACHE") {
            // Floor of 2: the two-generation cache needs one entry per
            // generation to function at all.
            self.loc_cache = cap.max(2);
        }
        if let Some(lazy) = env::flag_var("PREMA_LOC_EPOCH_LAZY") {
            self.lazy_epochs = lazy;
        }
        self
    }
}

/// Counters describing a node's MOL activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MolStats {
    /// Object messages sent from this rank.
    pub sent: u64,
    /// Object messages delivered to local objects.
    pub delivered: u64,
    /// Object messages forwarded because the target had migrated away.
    pub forwarded: u64,
    /// Objects migrated out.
    pub migrations_out: u64,
    /// Objects installed via migration.
    pub migrations_in: u64,
    /// Location updates sent.
    pub locupd_sent: u64,
    /// Messages buffered out-of-order (sequence gap) at arrival.
    pub reordered: u64,
    /// Duplicate object messages dropped (sequence number already consumed).
    /// Always zero on a reliable wire.
    pub duplicates: u64,
    /// Migration packets dropped because their epoch was not newer than what
    /// this rank already knew (a replayed or duplicated packet). Always zero
    /// on a reliable wire.
    pub stale_installs: u64,
    /// Sends/resolves answered by local knowledge (location cache or a
    /// forward pointer) — the message went out directly.
    pub loc_cache_hits: u64,
    /// Sends/resolves with no local knowledge — routed through the home
    /// shard (or the object's home rank in legacy mode).
    pub loc_cache_misses: u64,
    /// Times this rank's cached guess proved stale (a forwarder or the home
    /// shard sent back a newer-epoch correction).
    pub loc_cache_stale: u64,
    /// Explicit `DirLookup` queries sent to a home shard.
    pub home_lookups: u64,
    /// `DirPublish` messages sent to home shards (migrations + repairs).
    pub dir_publishes: u64,
    /// Longest forwarding chain of any message delivered on this rank.
    pub max_chain: u32,
    /// Histogram of delivered forwarding-chain lengths: bucket `i` counts
    /// messages accepted after exactly `i` hops; the last bucket counts
    /// "that long or longer".
    pub chain_hist: [u64; CHAIN_HIST_BUCKETS],
}

impl MolStats {
    fn note_chain(&mut self, hops: u32) {
        self.max_chain = self.max_chain.max(hops);
        self.chain_hist[(hops as usize).min(CHAIN_HIST_BUCKETS - 1)] += 1;
    }

    /// The `q`-quantile (`0.0..=1.0`) of the delivered chain-length
    /// histogram, in hops. Returns 0 when nothing has been delivered. The
    /// last bucket is open-ended, so a result of
    /// `CHAIN_HIST_BUCKETS - 1` means "at least that many".
    pub fn chain_percentile(&self, q: f64) -> u32 {
        let total: u64 = self.chain_hist.iter().sum();
        if total == 0 {
            return 0;
        }
        let want = ((total as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (hops, &n) in self.chain_hist.iter().enumerate() {
            seen += n;
            if seen >= want {
                return hops as u32;
            }
        }
        (CHAIN_HIST_BUCKETS - 1) as u32
    }

    /// Fraction of location consultations answered locally
    /// (`hits / (hits + misses)`); 1.0 when nothing was consulted.
    pub fn loc_hit_rate(&self) -> f64 {
        let total = self.loc_cache_hits + self.loc_cache_misses;
        if total == 0 {
            1.0
        } else {
            self.loc_cache_hits as f64 / total as f64
        }
    }
}

/// What [`MolNode::poll`] hands to the layer above.
#[derive(Debug)]
pub enum MolEvent {
    /// A message for a local object, delivered in per-sender send order.
    /// Execute it with [`MolNode::with_object`].
    Object {
        /// Target object.
        ptr: MobilePtr,
        /// Original sender.
        sender: Rank,
        /// Application handler id.
        handler: u32,
        /// Application payload.
        payload: Bytes,
    },
    /// A rank-targeted message (e.g. load-balancer traffic).
    Node {
        /// Sender rank.
        src: Rank,
        /// Application/runtime handler id.
        handler: u32,
        /// Payload.
        payload: Bytes,
        /// Whether it was sent with [`Tag::System`].
        system: bool,
    },
    /// An object just arrived via migration and is now local.
    Installed {
        /// The object.
        ptr: MobilePtr,
        /// The rank it came from.
        from: Rank,
    },
}

/// Residency state of a *local* object: the object itself plus the in-flight
/// ordering state that travels with it on migration.
struct Entry<O> {
    /// The object itself; `None` while detached for execution
    /// ([`MolNode::take_object`]). A detached object still receives and
    /// orders messages, but cannot migrate — PREMA never migrates an
    /// executing work unit (§4.2).
    obj: Option<O>,
    /// Migration epoch: number of times this object has moved.
    epoch: u64,
    /// Next expected sequence number per original sender.
    expected: FxHashMap<Rank, u64>,
    /// Out-of-order buffer per original sender.
    ooo: FxHashMap<Rank, BTreeMap<u64, MolEnvelope>>,
}

/// Everything this rank knows about one mobile pointer, unified so the
/// per-message paths pay a single directory probe. An earlier design kept
/// four parallel maps (`objects`, `location`, `forwards`, `seq_out`) and
/// probed each per message.
struct DirEntry<O> {
    /// `Some` iff the object is resident on this rank.
    entry: Option<Entry<O>>,
    /// Forward pointer left behind when the object migrated away from here.
    /// Correctness state (the trail that makes every name reachable even
    /// when all caches and publishes are lost), so it is never evicted —
    /// unlike cached third-party locations, which live in the bounded
    /// [`LocCache`].
    forward: Option<(Rank, u64)>,
    /// Outgoing sequence counter for messages this rank sends to the object.
    /// Survives migrations — the counter is per (sender rank, object), not
    /// per residency.
    seq_out: u64,
    /// Messages parked (at the home rank or home shard) until the object's
    /// location is known.
    limbo: Vec<MolEnvelope>,
}

// Manual impl: `derive(Default)` would needlessly require `O: Default`.
impl<O> Default for DirEntry<O> {
    fn default() -> Self {
        DirEntry {
            entry: None,
            forward: None,
            seq_out: 0,
            limbo: Vec::new(),
        }
    }
}

/// A routing decision for a message that is not deliverable locally.
#[derive(Clone, Copy, Debug)]
struct Route {
    /// Where to send it.
    dst: Rank,
    /// The `(owner, epoch)` knowledge backing the choice, if any — what a
    /// forwarder piggybacks back to the original sender.
    know: Option<(Rank, u64)>,
    /// Whether authoritative shard information has now routed this message
    /// (propagated into [`MolEnvelope::anchored`]).
    anchored: bool,
    /// Epoch of the knowledge backing this decision (propagated into
    /// [`MolEnvelope::route_epoch`]): later hops may only follow knowledge
    /// at least this fresh, keeping chains monotone in migration history.
    epoch: u64,
}

/// Freshest of two optional `(owner, epoch)` facts.
fn fresher(a: Option<(Rank, u64)>, b: Option<(Rank, u64)>) -> Option<(Rank, u64)> {
    match (a, b) {
        (Some((ar, ae)), Some((_, be))) if ae >= be => Some((ar, ae)),
        (_, Some(b)) => Some(b),
        (a, None) => a,
    }
}

/// The per-rank MOL runtime. Generic over the application's mobile object
/// type `O`; applications with several kinds of objects use an enum.
///
/// ```
/// use prema_dcs::{Communicator, LocalFabric};
/// use prema_mol::{Migratable, MolEvent, MolNode};
/// use bytes::Bytes;
///
/// struct Counter(u64);
/// impl Migratable for Counter {
///     fn pack(&self, buf: &mut Vec<u8>) { buf.extend(self.0.to_le_bytes()); }
///     fn unpack(b: &[u8]) -> Self { Counter(u64::from_le_bytes(b[..8].try_into().unwrap())) }
/// }
///
/// // Two ranks on one thread for illustration.
/// let mut eps = LocalFabric::new(2).into_iter();
/// let mut a: MolNode<Counter> = MolNode::new(Communicator::new(Box::new(eps.next().unwrap())));
/// let mut b: MolNode<Counter> = MolNode::new(Communicator::new(Box::new(eps.next().unwrap())));
///
/// let ptr = a.register(Counter(0));
/// assert!(a.migrate(ptr, 1));              // move the object to rank 1...
/// a.message(ptr, 7, Bytes::new());          // ...and message it by name.
/// let _ = a.poll();                         // (routes the send)
/// let events = b.poll();                    // rank 1 installs + receives
/// assert!(events.iter().any(|e| matches!(e, MolEvent::Object { handler: 7, .. })));
/// assert!(b.is_local(ptr));
/// ```
pub struct MolNode<O: Migratable> {
    comm: Communicator,
    cfg: MolConfig,
    alloc: PtrAllocator,
    /// The unified per-pointer directory (see [`DirEntry`]).
    directory: FxHashMap<MobilePtr, DirEntry<O>>,
    /// Bounded sender-side location cache (DESIGN.md §16).
    cache: LocCache,
    /// Shard-side location authority for the pointers this rank is the home
    /// shard of.
    authority: ShardAuthority,
    /// Number of directory entries with a resident object (kept so
    /// [`MolNode::local_count`] — called per scheduling decision — does not
    /// scan the directory).
    resident: usize,
    /// In-order messages awaiting execution.
    ready: VecDeque<MolEnvelope>,
    stats: MolStats,
    tracer: Tracer,
    /// Shadow state asserting ordering/conservation invariants (see
    /// [`crate::oracle`]).
    #[cfg(feature = "check-invariants")]
    oracle: crate::oracle::NodeOracle,
}

impl<O: Migratable> MolNode<O> {
    /// Build a node over a communicator endpoint with the default (sharded
    /// directory, lazy updates) strategy, with the `PREMA_LOC_CACHE` /
    /// `PREMA_LOC_EPOCH_LAZY` environment knobs applied.
    pub fn new(comm: Communicator) -> Self {
        Self::with_config(comm, MolConfig::default().from_env())
    }

    /// Build a node with an explicit location-resolution strategy (no
    /// environment overrides — what you pass is what runs).
    pub fn with_config(comm: Communicator, cfg: MolConfig) -> Self {
        let rank = comm.rank();
        MolNode {
            comm,
            cfg,
            alloc: PtrAllocator::new(rank),
            directory: FxHashMap::default(),
            cache: LocCache::new(cfg.loc_cache),
            authority: ShardAuthority::default(),
            resident: 0,
            ready: VecDeque::new(),
            stats: MolStats::default(),
            tracer: Tracer::off(),
            #[cfg(feature = "check-invariants")]
            oracle: crate::oracle::NodeOracle::default(),
        }
    }

    /// Attach a trace recorder, propagated down to the communicator so the
    /// rank's substrate traffic is recorded too. A no-op handle unless
    /// `prema-trace` is built with its `enabled` feature.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.comm.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// This rank.
    pub fn rank(&self) -> Rank {
        self.comm.rank()
    }

    /// Machine size.
    pub fn nprocs(&self) -> usize {
        self.comm.nprocs()
    }

    /// MOL activity counters.
    pub fn stats(&self) -> MolStats {
        self.stats
    }

    /// Access the underlying communicator (traffic counters etc.).
    pub fn comm(&self) -> &Communicator {
        &self.comm
    }

    // ---- name space & object store -------------------------------------

    /// Register a new mobile object, returning its global name.
    pub fn register(&mut self, obj: O) -> MobilePtr {
        let ptr = self.alloc.alloc();
        let d = self.directory.entry(ptr).or_default();
        d.entry = Some(Entry {
            obj: Some(obj),
            epoch: 0,
            expected: FxHashMap::default(),
            ooo: FxHashMap::default(),
        });
        self.resident += 1;
        ptr
    }

    /// Whether `ptr` currently lives on this rank.
    pub fn is_local(&self, ptr: MobilePtr) -> bool {
        self.directory.get(&ptr).is_some_and(|d| d.entry.is_some())
    }

    /// Number of local objects.
    pub fn local_count(&self) -> usize {
        self.resident
    }

    /// The names of all local objects (unspecified order).
    pub fn local_ptrs(&self) -> Vec<MobilePtr> {
        self.directory
            .iter()
            .filter(|(_, d)| d.entry.is_some())
            .map(|(p, _)| *p)
            .collect()
    }

    /// Borrow a local object (`None` if remote or currently detached).
    pub fn get(&self, ptr: MobilePtr) -> Option<&O> {
        self.directory
            .get(&ptr)
            .and_then(|d| d.entry.as_ref())
            .and_then(|e| e.obj.as_ref())
    }

    /// Mutably borrow a local object (`None` if remote or detached).
    pub fn get_mut(&mut self, ptr: MobilePtr) -> Option<&mut O> {
        self.directory
            .get_mut(&ptr)
            .and_then(|d| d.entry.as_mut())
            .and_then(|e| e.obj.as_mut())
    }

    /// Detach a local object for execution. While detached the object keeps
    /// receiving (and ordering) messages but [`MolNode::migrate`] refuses to
    /// move it — PREMA never migrates an executing work unit (§4.2). Pair
    /// with [`MolNode::put_object`].
    pub fn take_object(&mut self, ptr: MobilePtr) -> Option<O> {
        self.directory
            .get_mut(&ptr)
            .and_then(|d| d.entry.as_mut())
            .and_then(|e| e.obj.take())
    }

    /// Re-attach an object detached by [`MolNode::take_object`].
    pub fn put_object(&mut self, ptr: MobilePtr, obj: O) {
        let entry = self
            .directory
            .get_mut(&ptr)
            .and_then(|d| d.entry.as_mut())
            .expect("put_object for an object that is not resident");
        assert!(entry.obj.is_none(), "put_object over a present object");
        entry.obj = Some(obj);
    }

    /// Run `f` with mutable access to a local object *and* the node, so the
    /// body can send further MOL messages (the paper's handler execution
    /// model). Returns `None` if `ptr` is not local or already detached.
    ///
    /// The body must not migrate `ptr` itself — [`MolNode::migrate`] will
    /// return `false` for a detached object.
    pub fn with_object<R>(
        &mut self,
        ptr: MobilePtr,
        f: impl FnOnce(&mut Self, &mut O) -> R,
    ) -> Option<R> {
        let mut obj = self.take_object(ptr)?;
        let r = f(self, &mut obj);
        self.put_object(ptr, obj);
        Some(r)
    }

    // ---- messaging ------------------------------------------------------

    /// Send an application message to a mobile object, wherever it lives.
    /// `handler` is an application-level id dispatched by the caller when the
    /// message comes back out of [`MolNode::poll`] at the destination.
    pub fn message(&mut self, ptr: MobilePtr, handler: u32, payload: Bytes) {
        self.message_with_hint(ptr, handler, 1.0, payload);
    }

    /// [`MolNode::message`] with an explicit computational-weight hint for
    /// the load balancer (the paper's programmer-supplied hints, §2).
    ///
    /// One directory probe covers the sequence-number bump, residency, and
    /// the trail knowledge feeding the routing decision; the bounded
    /// location cache is one further O(1) probe on the remote path.
    pub fn message_with_hint(&mut self, ptr: MobilePtr, handler: u32, hint: f64, payload: Bytes) {
        assert!(!ptr.is_null(), "message to NULL mobile pointer");
        let me = self.comm.rank();
        let d = self.directory.entry(ptr).or_default();
        let seq = d.seq_out;
        d.seq_out += 1;
        let local = d.entry.is_some();
        let fwd = d.forward;
        let mut env = MolEnvelope {
            target: ptr,
            sender: me,
            seq,
            handler,
            hops: 0,
            anchored: false,
            route_epoch: 0,
            hint,
            payload,
        };
        self.stats.sent += 1;
        if local {
            self.accept_local(env);
            return;
        }
        match self.plan_route(ptr, fwd, false, 0, true) {
            Some(route) => {
                if route.know.is_some() {
                    self.stats.loc_cache_hits += 1;
                    self.tracer.emit(|| TraceEvent::LocCacheHit {
                        home: ptr.home,
                        index: ptr.index,
                        owner: route.dst,
                    });
                } else {
                    self.stats.loc_cache_misses += 1;
                    self.tracer.emit(|| TraceEvent::LocCacheMiss {
                        home: ptr.home,
                        index: ptr.index,
                        shard: route.dst,
                    });
                }
                env.anchored = route.anchored;
                env.route_epoch = route.epoch;
                let wire = env.encode();
                self.comm.am_send(route.dst, H_MOL_MSG, Tag::App, wire);
            }
            None => {
                // We are the home (and shard) and have never seen the
                // object: park the message until a publish or installation.
                self.directory
                    .get_mut(&ptr)
                    .expect("entry created above")
                    .limbo
                    .push(env);
            }
        }
    }

    /// Resolve a mobile pointer to this rank's best idea of its current
    /// owner. Resident objects and cache/trail hits answer immediately; a
    /// miss under the sharded directory sends a [`DirLookup`] to the
    /// pointer's home shard and returns `None` — the answer lands in the
    /// cache during a later poll, after which `resolve` hits. (Legacy mode
    /// answers `ptr.home`, the only fallback it has.)
    pub fn resolve(&mut self, ptr: MobilePtr) -> Option<Rank> {
        assert!(!ptr.is_null(), "resolve of NULL mobile pointer");
        let me = self.comm.rank();
        if self.is_local(ptr) {
            return Some(me);
        }
        let fwd = self.directory.get(&ptr).and_then(|d| d.forward);
        if let Some((owner, _)) = fresher(fwd, self.cache.get(ptr)) {
            if owner != me {
                self.stats.loc_cache_hits += 1;
                self.tracer.emit(|| TraceEvent::LocCacheHit {
                    home: ptr.home,
                    index: ptr.index,
                    owner,
                });
                return Some(owner);
            }
            // Knowledge says "here" but the object is not resident: it is in
            // flight toward us — fall through to the miss path.
        }
        self.stats.loc_cache_misses += 1;
        if !self.cfg.sharded_directory {
            return Some(ptr.home).filter(|&h| h != me);
        }
        let shard = shard_of(ptr, self.comm.nprocs());
        self.tracer.emit(|| TraceEvent::LocCacheMiss {
            home: ptr.home,
            index: ptr.index,
            shard,
        });
        if shard == me {
            return match self.authority.lookup(ptr) {
                Some((owner, _)) if owner != me => Some(owner),
                Some(_) => None,
                None => Some(ptr.home).filter(|&h| h != me),
            };
        }
        self.stats.home_lookups += 1;
        self.tracer.emit(|| TraceEvent::HomeLookup {
            home: ptr.home,
            index: ptr.index,
            shard,
        });
        let q = DirLookup { ptr, epoch: 0 };
        self.comm
            .am_send(shard, H_MOL_DIR_LOOKUP, Tag::System, q.encode());
        None
    }

    /// Send a rank-targeted message (bypasses object routing). System-tagged
    /// messages are visible to [`MolNode::poll_system`].
    pub fn node_message(&mut self, dst: Rank, handler: u32, tag: Tag, payload: Bytes) {
        let body = NodeMsg { handler, payload }.encode();
        self.comm.am_send(dst, H_NODE_MSG, tag, body);
    }

    /// Route a (re-)considered envelope: accept locally, send toward the best
    /// guess, or park in limbo. Used when limbo messages are unlocked; the
    /// send path inlines the same logic next to its sequence bump.
    fn route(&mut self, mut env: MolEnvelope) {
        let ptr = env.target;
        let d = self.directory.entry(ptr).or_default();
        if d.entry.is_some() {
            self.accept_local(env);
            return;
        }
        let fwd = d.forward;
        match self.plan_route(ptr, fwd, env.anchored, env.route_epoch, true) {
            Some(route) => {
                env.anchored = route.anchored;
                env.route_epoch = route.epoch;
                let wire = env.encode();
                self.comm.am_send(route.dst, H_MOL_MSG, Tag::App, wire);
            }
            None => self
                .directory
                .get_mut(&ptr)
                .expect("entry created above")
                .limbo
                .push(env),
        }
    }

    /// The routing decision for a message (or resolve) whose target is not
    /// resident here. `fwd` is this rank's forward pointer for the target
    /// (from the directory probe the caller already paid), `anchored` /
    /// `route_epoch` the envelope's routing state, and `origin` whether this
    /// rank is sending fresh / re-routing parked traffic (as opposed to
    /// forwarding a message received off the wire).
    ///
    /// Sharded-mode shape (DESIGN.md §16):
    /// * at the home shard, the authority answers — and the message becomes
    ///   *anchored*, stamped with the answer's epoch;
    /// * an anchored message that still misses follows this rank's own
    ///   knowledge, but only if it is at least as fresh as the stamp — older
    ///   knowledge would walk *backward* in migration history (the
    ///   ping-pong a stale cache entry can cause), so the message parks in
    ///   limbo instead until the in-flight install or a fresher answer
    ///   arrives. Anchored messages never return to the shard, which is
    ///   what keeps shard routing loop-free;
    /// * an unanchored *forwarded* message is redirected through the shard
    ///   rather than down this rank's trail — one bounded redirect instead
    ///   of a history-length walk;
    /// * an unanchored *fresh* send uses local knowledge (cache/trail hit),
    ///   falling back on a cold miss to the birth rank — always a safe
    ///   epoch-0 guess, cached at the sender so it pays at most one miss
    ///   per object: either the guess is right (the 1-hop fast path) or
    ///   the birth rank heads the forwarding trail and the shard's
    ///   correction overwrites it.
    ///
    /// `None` means "park in limbo": this rank is where the knowledge chain
    /// ends (home/shard with nothing recorded, or the object is in flight
    /// toward this very rank).
    fn plan_route(
        &mut self,
        ptr: MobilePtr,
        fwd: Option<(Rank, u64)>,
        anchored: bool,
        route_epoch: u64,
        origin: bool,
    ) -> Option<Route> {
        let me = self.comm.rank();
        let know = fresher(fwd, self.cache.get(ptr));
        if !self.cfg.sharded_directory {
            // Legacy home-forwarding: best local knowledge, else the birth
            // rank, else limbo (we are the birth rank).
            return match know {
                Some((r, e)) if r != me => Some(Route {
                    dst: r,
                    know,
                    anchored: false,
                    epoch: e,
                }),
                Some(_) => None,
                None => Some(Route {
                    dst: ptr.home,
                    know: None,
                    anchored: false,
                    epoch: 0,
                })
                .filter(|r| r.dst != me),
            };
        }
        let shard = shard_of(ptr, self.comm.nprocs());
        if me == shard {
            let best = fresher(know, self.authority.lookup(ptr));
            return match best {
                Some((r, e)) if r != me => Some(Route {
                    dst: r,
                    know: best,
                    anchored: true,
                    epoch: e,
                }),
                Some(_) => None, // in flight toward us: limbo until install
                // Nothing recorded means the object never migrated, so it
                // lives at its birth rank — an authoritative answer (the
                // same fallback `answer_lookup` gives), carried as `know`
                // so the forward path teaches the sender and its next
                // message skips the shard entirely.
                None => Some(Route {
                    dst: ptr.home,
                    know: Some((ptr.home, 0)),
                    anchored: true,
                    epoch: 0,
                })
                .filter(|r| r.dst != me),
            };
        }
        if anchored {
            return match know {
                Some((r, e)) if r != me && e >= route_epoch => Some(Route {
                    dst: r,
                    know,
                    anchored: true,
                    epoch: e,
                }),
                Some(_) => None,
                None if route_epoch == 0 => Some(Route {
                    dst: ptr.home,
                    know: None,
                    anchored: true,
                    epoch: 0,
                })
                .filter(|r| r.dst != me),
                // The stamp names an owner this rank has not heard of yet:
                // the install (or a fresher answer) is in flight. Park.
                None => None,
            };
        }
        if origin {
            return match know {
                Some((r, e)) if r != me => Some(Route {
                    dst: r,
                    know,
                    anchored: false,
                    epoch: e,
                }),
                Some(_) => None,
                // Cold miss: "never migrated, so it lives at its birth
                // rank" is always a safe epoch-0 guess — cache it so the
                // next send hits. Right, it is the 1-hop fast path; wrong,
                // the birth rank heads the trail and redirects through the
                // shard, whose answer overwrites the guess.
                None => {
                    if ptr.home != me {
                        self.cache.insert_max(ptr, ptr.home, 0);
                    }
                    Some(Route {
                        dst: ptr.home,
                        know: None,
                        anchored: false,
                        epoch: 0,
                    })
                    .filter(|r| r.dst != me)
                }
            };
        }
        // Forwarding an unanchored message: the sender's guess was stale.
        // Redirect through the shard — the constant-bound step.
        Some(Route {
            dst: shard,
            know,
            anchored: false,
            epoch: 0,
        })
    }

    fn accept_local(&mut self, env: MolEnvelope) {
        let entry = self
            .directory
            .get_mut(&env.target)
            .and_then(|d| d.entry.as_mut())
            .expect("accept_local on non-local object");
        let exp = entry.expected.entry(env.sender).or_insert(0);
        use std::cmp::Ordering::*;
        match env.seq.cmp(exp) {
            Equal => {
                *exp += 1;
                let sender = env.sender;
                self.stats.note_chain(env.hops);
                self.ready.push_back(env);
                #[cfg(feature = "check-invariants")]
                self.oracle.on_accept();
                // Drain any now-in-order buffered messages from this sender.
                if let Some(buf) = entry.ooo.get_mut(&sender) {
                    while let Some(next) = buf.remove(exp) {
                        *exp += 1;
                        self.stats.note_chain(next.hops);
                        self.ready.push_back(next);
                        #[cfg(feature = "check-invariants")]
                        self.oracle.on_accept();
                    }
                    if buf.is_empty() {
                        entry.ooo.remove(&sender);
                    }
                }
            }
            Greater => {
                self.stats.reordered += 1;
                entry
                    .ooo
                    .entry(env.sender)
                    .or_default()
                    .insert(env.seq, env);
            }
            Less => {
                // Duplicate: this sequence number was already consumed. On a
                // reliable wire this cannot happen; under an unreliable one
                // (chaos without the reliable shim) dropping it is exactly
                // the idempotency the sequence numbers exist to provide.
                self.stats.duplicates += 1;
                let peer = env.sender;
                self.tracer.emit(|| TraceEvent::DcsDuplicate {
                    peer,
                    handler: env.handler,
                });
            }
        }
    }

    // ---- migration ------------------------------------------------------

    /// Uninstall a local object and ship it to `dst`. In-flight ordering
    /// state and queued messages travel with it (moved, not copied); this
    /// rank keeps a forward pointer so stale sends still find the object.
    ///
    /// Returns `false` if `ptr` is not local (e.g. it already migrated) or is
    /// currently detached for execution — an executing work unit must finish
    /// before it can move (§4.2).
    pub fn migrate(&mut self, ptr: MobilePtr, dst: Rank) -> bool {
        assert_ne!(dst, self.comm.rank(), "migrate to self");
        let Some(d) = self.directory.get_mut(&ptr) else {
            return false;
        };
        if d.entry.as_ref().is_none_or(|e| e.obj.is_none()) {
            return false;
        }
        let entry = d
            .entry
            .take()
            .expect("presence checked just above with no intervening mutation");
        self.resident -= 1;
        // Pull this object's accepted-but-unexecuted messages out of the
        // ready queue, preserving their order: rotate the queue once in
        // place, moving (not cloning) matching envelopes out.
        let mut pending = Vec::new();
        for _ in 0..self.ready.len() {
            let e = self
                .ready
                .pop_front()
                .expect("queue length fixed before the rotation");
            if e.target == ptr {
                pending.push(e);
            } else {
                self.ready.push_back(e);
            }
        }
        let buffered: Vec<MolEnvelope> = entry
            .ooo
            .into_values()
            .flat_map(|m| m.into_values())
            .collect();
        #[cfg(feature = "check-invariants")]
        self.oracle.on_migrate_out(ptr, pending.len());
        let epoch = entry.epoch + 1;
        let obj = entry
            .obj
            .as_ref()
            .expect("obj is Some: is_none_or guard above");
        let packet = MigratePacket {
            ptr,
            epoch,
            // Packed into a pooled scratch buffer: migrations under churn
            // reuse the same allocation instead of growing a fresh Vec.
            object: pool::build(64, |buf| obj.pack(buf)),
            expected: entry.expected.into_iter().collect(),
            pending,
            buffered,
        };
        d.forward = Some((dst, epoch));
        self.cache.remove(ptr);
        self.stats.migrations_out += 1;
        self.tracer.emit(|| TraceEvent::Migrate {
            home: ptr.home,
            index: ptr.index,
            dst,
        });
        self.comm
            .am_send(dst, H_MOL_MIGRATE, Tag::System, packet.encode());
        // Publish the move to the pointer's home shard so cold senders and
        // stale-send redirects resolve in one bounded hop (DESIGN.md §16).
        if self.cfg.sharded_directory && self.cfg.update_home_on_install {
            let me = self.comm.rank();
            let shard = shard_of(ptr, self.comm.nprocs());
            if shard == me {
                self.publish_local(ptr, dst, epoch);
            } else {
                self.stats.dir_publishes += 1;
                let pu = DirPublish {
                    ptr,
                    owner: dst,
                    epoch,
                };
                self.comm
                    .am_send(shard, H_MOL_DIR_PUBLISH, Tag::System, pu.encode());
            }
        }
        #[cfg(feature = "check-invariants")]
        self.verify_conservation();
        true
    }

    /// Merge a publish into this rank's shard authority; a freshly advanced
    /// location releases limbo traffic and — in eager mode — pushes the
    /// answer to every recorded inquirer.
    fn publish_local(&mut self, ptr: MobilePtr, owner: Rank, epoch: u64) {
        if !self.authority.publish(ptr, owner, epoch) {
            return;
        }
        if !self.cfg.lazy_epochs {
            let me = self.comm.rank();
            for rank in self.authority.take_inquirers(ptr) {
                if rank != me && rank != owner {
                    self.stats.locupd_sent += 1;
                    let ans = DirAnswer {
                        ptr,
                        owner,
                        epoch,
                        stale: false,
                    };
                    self.comm
                        .am_send(rank, H_MOL_DIR_ANSWER, Tag::System, ans.encode());
                }
            }
        }
        if let Some(d) = self.directory.get_mut(&ptr) {
            let parked = std::mem::take(&mut d.limbo);
            for env in parked {
                self.route(env);
            }
        }
    }

    fn install(&mut self, from: Rank, packet: MigratePacket) -> Option<MolEvent> {
        let ptr = packet.ptr;
        // Replay guard: every genuine migration carries a strictly newer
        // epoch, so a packet whose epoch is not beyond everything this rank
        // knows about the object is a duplicate or a stale retransmission.
        // Installing it would resurrect an object that already moved on (or
        // double-install one that is resident) — drop it before the oracle,
        // whose history model assumes only genuine installs.
        let prior_epoch = {
            // Cached knowledge naming *this* rank at exactly the packet's
            // epoch is the publish or answer for this very install racing
            // ahead of the packet — it predicts the install rather than
            // superseding it, so it must not trip the replay guard.
            let me = self.comm.rank();
            let cached = self
                .cache
                .peek(ptr)
                .filter(|&(owner, e)| !(owner == me && e == packet.epoch))
                .map(|(_, e)| e);
            self.directory
                .get(&ptr)
                .and_then(|d| {
                    d.forward
                        .map(|(_, e)| e)
                        .into_iter()
                        .chain(d.entry.as_ref().map(|e| e.epoch))
                        .max()
                })
                .into_iter()
                .chain(cached)
                .max()
        };
        if prior_epoch.is_some_and(|prior| packet.epoch <= prior) {
            self.stats.stale_installs += 1;
            self.tracer.emit(|| TraceEvent::DcsDuplicate {
                peer: from,
                handler: H_MOL_MIGRATE.0,
            });
            return None;
        }
        let obj = O::unpack(&packet.object);
        #[cfg(feature = "check-invariants")]
        self.oracle.on_install(
            ptr,
            packet.epoch,
            prior_epoch,
            &packet.expected,
            &packet.pending,
        );
        let d = self.directory.entry(ptr).or_default();
        // If this object once lived here and left, the stale forward pointer
        // must die: it is local again — and any cached location for it too.
        d.forward = None;
        self.cache.remove(ptr);
        if d.entry
            .replace(Entry {
                obj: Some(obj),
                epoch: packet.epoch,
                expected: packet.expected.into_iter().collect(),
                ooo: FxHashMap::default(),
            })
            .is_none()
        {
            self.resident += 1;
        }
        // Any messages parked here (we may be the home) can be routed once
        // installation finishes below.
        let parked = std::mem::take(&mut d.limbo);
        self.stats.migrations_in += 1;
        for env in packet.pending {
            self.ready.push_back(env);
        }
        // (Conservation: these re-queued messages were counted by the
        // oracle's on_install as `installed`, not `accepted`.)
        for env in packet.buffered {
            self.accept_local(env);
        }
        // Location dissemination per the configured strategy. In sharded
        // mode the migration *source* already published the move; the shard
        // itself just folds the installation into its own authority.
        let upd = LocUpdate {
            ptr,
            owner: self.rank(),
            epoch: packet.epoch,
        };
        if self.cfg.broadcast_on_install {
            for dst in 0..self.nprocs() {
                if dst != self.rank() {
                    self.stats.locupd_sent += 1;
                    self.comm
                        .am_send(dst, H_MOL_LOCUPD, Tag::System, upd.encode());
                }
            }
        } else if self.cfg.sharded_directory {
            if shard_of(ptr, self.nprocs()) == self.rank() {
                self.publish_local(ptr, self.rank(), packet.epoch);
            }
        } else if self.cfg.update_home_on_install && ptr.home != self.rank() {
            self.stats.locupd_sent += 1;
            self.comm
                .am_send(ptr.home, H_MOL_LOCUPD, Tag::System, upd.encode());
        }
        for env in parked {
            self.route(env);
        }
        self.tracer.emit(|| TraceEvent::Install {
            home: ptr.home,
            index: ptr.index,
            from,
        });
        Some(MolEvent::Installed { ptr, from })
    }

    // ---- polling ---------------------------------------------------------

    /// Process every queued incoming message and return the resulting events:
    /// in-order application messages for local objects, node messages, and
    /// installation notices. This is PREMA's *application-posted* polling
    /// operation.
    ///
    /// **Contract:** every [`MolEvent::Object`] in the returned batch must be
    /// executed (or deliberately discarded) *before* its object migrates
    /// again — the deliveries have left the runtime's custody and would not
    /// travel with the object. The [`MolNode::pump`]/[`MolNode::pop_work`]
    /// pair (used by the ILB scheduler) sidesteps the issue by keeping
    /// undelivered work inside the node.
    pub fn poll(&mut self) -> Vec<MolEvent> {
        // Poll-boundary flush (DESIGN.md §11): anything the application
        // staged since the last poll goes out before we look for input.
        self.comm.flush();
        let mut events = Vec::new();
        while let Some(env) = self.comm.try_recv() {
            self.handle_wire(env, &mut events);
        }
        self.drain_ready(&mut events);
        // Forwards/routes performed while handling the wire stage too.
        self.comm.flush();
        #[cfg(feature = "check-invariants")]
        self.verify_conservation();
        events
    }

    /// Process only *system-generated* traffic — migrations, location
    /// updates, and system-tagged node messages — sidelining application
    /// messages untouched (their order is preserved for the next
    /// [`MolNode::poll`]). This is what PREMA's preemptive polling thread
    /// runs at its periodic wake-ups (§4.2): load-balancing messages are seen
    /// promptly, yet no application handler ever runs preemptively.
    pub fn poll_system(&mut self) -> Vec<MolEvent> {
        // The preemptive poll is also a flush boundary: staged application
        // batches ship even if the worker is stuck in a long handler.
        self.comm.flush();
        let mut events = Vec::new();
        while let Some(env) = self.comm.try_recv_transport() {
            let is_system = env.tag == Tag::System;
            if is_system {
                self.handle_wire(env, &mut events);
            } else {
                self.comm.sideline(env);
            }
        }
        // An install may have routed parked messages (application traffic);
        // push those out rather than leaving them for the next poll.
        self.comm.flush();
        #[cfg(feature = "check-invariants")]
        self.verify_conservation();
        events
    }

    fn handle_wire(&mut self, env: Envelope, events: &mut Vec<MolEvent>) {
        match env.handler {
            h if h == H_MOL_MSG => {
                let menv = MolEnvelope::decode(env.payload);
                if self.is_local(menv.target) {
                    self.accept_local(menv);
                } else {
                    self.forward(menv);
                }
            }
            h if h == H_MOL_MIGRATE => {
                let packet = MigratePacket::decode(env.payload);
                if let Some(ev) = self.install(env.src, packet) {
                    events.push(ev);
                }
            }
            h if h == H_MOL_LOCUPD => {
                let upd = LocUpdate::decode(env.payload);
                self.learn_location(upd.ptr, upd.owner, upd.epoch);
            }
            h if h == H_MOL_DIR_PUBLISH => {
                let pu = DirPublish::decode(env.payload);
                self.publish_local(pu.ptr, pu.owner, pu.epoch);
            }
            h if h == H_MOL_DIR_LOOKUP => {
                let q = DirLookup::decode(env.payload);
                self.answer_lookup(env.src, q);
            }
            h if h == H_MOL_DIR_ANSWER => {
                let ans = DirAnswer::decode(env.payload);
                if ans.stale {
                    self.stats.loc_cache_stale += 1;
                    self.tracer.emit(|| TraceEvent::LocCacheStale {
                        home: ans.ptr.home,
                        index: ans.ptr.index,
                        owner: ans.owner,
                        epoch: ans.epoch,
                    });
                }
                self.learn_location(ans.ptr, ans.owner, ans.epoch);
            }
            h if h == H_NODE_MSG => {
                let body = NodeMsg::decode(env.payload);
                events.push(MolEvent::Node {
                    src: env.src,
                    handler: body.handler,
                    payload: body.payload,
                    system: env.tag == Tag::System,
                });
            }
            other => panic!("MOL received unknown DCS handler {other:?}"),
        }
    }

    fn forward(&mut self, mut menv: MolEnvelope) {
        let ptr = menv.target;
        let sender = menv.sender;
        let me = self.comm.rank();
        let d = self.directory.entry(ptr).or_default();
        let fwd = d.forward;
        match self.plan_route(ptr, fwd, menv.anchored, menv.route_epoch, false) {
            Some(route) => {
                let next = route.dst;
                menv.hops += 1;
                menv.anchored = route.anchored;
                menv.route_epoch = route.epoch;
                self.stats.forwarded += 1;
                self.tracer.emit(|| TraceEvent::ForwardHop {
                    home: ptr.home,
                    index: ptr.index,
                    next,
                    hops: menv.hops,
                });
                #[cfg(feature = "check-invariants")]
                self.oracle.on_forward(me, next, menv.hops);
                // Lazily teach the original sender where the object went so
                // its next message takes the short path. At the home shard
                // this piggybacked answer is authoritative.
                if let Some((owner, epoch)) = route.know {
                    if self.cfg.update_sender_on_forward && sender != me && sender != owner {
                        self.stats.locupd_sent += 1;
                        if self.cfg.sharded_directory {
                            // Epoch 0 is a cold fill ("never migrated,
                            // lives at home"), not a stale correction.
                            let ans = DirAnswer {
                                ptr,
                                owner,
                                epoch,
                                stale: epoch > 0,
                            };
                            self.comm
                                .am_send(sender, H_MOL_DIR_ANSWER, Tag::System, ans.encode());
                        } else {
                            let upd = LocUpdate { ptr, owner, epoch };
                            self.comm
                                .am_send(sender, H_MOL_LOCUPD, Tag::System, upd.encode());
                        }
                    }
                    // A chase this deep means the shard missed a publish
                    // (lost under chaos): repair it with our knowledge.
                    let shard = shard_of(ptr, self.comm.nprocs());
                    if self.cfg.sharded_directory && menv.hops >= REPAIR_HOPS && shard != me {
                        self.stats.dir_publishes += 1;
                        let pu = DirPublish { ptr, owner, epoch };
                        self.comm
                            .am_send(shard, H_MOL_DIR_PUBLISH, Tag::System, pu.encode());
                    }
                }
                let wire = menv.encode();
                self.comm.am_send(next, H_MOL_MSG, Tag::App, wire);
            }
            None => self
                .directory
                .get_mut(&ptr)
                .expect("entry created above")
                .limbo
                .push(menv),
        }
    }

    /// Answer a [`DirLookup`] with this shard's freshest knowledge: the
    /// authority table, residency, or the trail — falling back to "never
    /// migrated, so it is at its birth rank" (epoch 0), which is always a
    /// safe answer because the birth rank either hosts the object or heads
    /// its forwarding trail.
    fn answer_lookup(&mut self, src: Rank, q: DirLookup) {
        let ptr = q.ptr;
        let me = self.comm.rank();
        let resident = self
            .directory
            .get(&ptr)
            .and_then(|d| d.entry.as_ref())
            .map(|e| (me, e.epoch));
        let fwd = self.directory.get(&ptr).and_then(|d| d.forward);
        let best = fresher(
            resident,
            fresher(
                fwd,
                fresher(self.cache.get(ptr), self.authority.lookup(ptr)),
            ),
        );
        let (owner, epoch) = best.unwrap_or((ptr.home, 0));
        if !self.cfg.lazy_epochs {
            self.authority.note_inquirer(ptr, src);
        }
        self.stats.locupd_sent += 1;
        let ans = DirAnswer {
            ptr,
            owner,
            epoch,
            stale: q.epoch > 0 && epoch > q.epoch,
        };
        self.comm
            .am_send(src, H_MOL_DIR_ANSWER, Tag::System, ans.encode());
    }

    /// Merge a location fact learned from the wire (a legacy `LocUpdate` or
    /// a sharded `DirAnswer`) and release anything it unblocks.
    fn learn_location(&mut self, ptr: MobilePtr, owner: Rank, epoch: u64) {
        let d = self.directory.entry(ptr).or_default();
        if d.entry.is_some() {
            return; // it's here; any cached location is stale by definition
        }
        if let Some((_, fe)) = d.forward {
            if epoch > fe {
                d.forward = Some((owner, epoch));
            }
        }
        self.cache.insert_max(ptr, owner, epoch);
        if self.cfg.sharded_directory && shard_of(ptr, self.comm.nprocs()) == self.comm.rank() {
            self.authority.publish(ptr, owner, epoch);
        }
        let parked = std::mem::take(
            &mut self
                .directory
                .get_mut(&ptr)
                .expect("entry created above")
                .limbo,
        );
        for env in parked {
            self.route(env);
        }
    }

    fn drain_ready(&mut self, events: &mut Vec<MolEvent>) {
        while let Some(env) = self.ready.pop_front() {
            self.stats.delivered += 1;
            #[cfg(feature = "check-invariants")]
            self.oracle.on_deliver(env.sender, env.target, env.seq);
            events.push(MolEvent::Object {
                ptr: env.target,
                sender: env.sender,
                handler: env.handler,
                payload: env.payload,
            });
        }
    }

    /// Number of in-order messages queued for local execution.
    pub fn ready_len(&self) -> usize {
        self.ready.len()
    }

    /// Assert the work-conservation invariant: every message accepted on (or
    /// installed into) this node has either been delivered, shipped out with
    /// a migration, or is still in the ready queue. Called internally after
    /// every poll/pump/migrate; public so schedulers and tests can check at
    /// their own boundaries too. Panics on violation.
    #[cfg(feature = "check-invariants")]
    pub fn verify_conservation(&self) {
        self.oracle.verify(self.ready.len());
    }

    /// Sum of the weight hints of all queued work (the load estimate PREMA's
    /// balancer compares against its water-mark).
    pub fn ready_load(&self) -> f64 {
        self.ready.iter().map(|e| e.hint).sum()
    }

    /// Process incoming wire traffic *without* draining the work queue:
    /// routed application messages stay queued (visible via
    /// [`MolNode::pop_work`]); only node messages and installation notices
    /// are returned. This is the scheduler's ingest step.
    pub fn pump(&mut self) -> Vec<MolEvent> {
        self.comm.flush();
        let mut events = Vec::new();
        while let Some(env) = self.comm.try_recv() {
            self.handle_wire(env, &mut events);
        }
        self.comm.flush();
        #[cfg(feature = "check-invariants")]
        self.verify_conservation();
        events
    }

    /// Pop the oldest queued work unit (an in-order application message for a
    /// local object), if any.
    pub fn pop_work(&mut self) -> Option<WorkItem> {
        let env = self.ready.pop_front()?;
        self.stats.delivered += 1;
        #[cfg(feature = "check-invariants")]
        self.oracle.on_deliver(env.sender, env.target, env.seq);
        Some(WorkItem {
            ptr: env.target,
            sender: env.sender,
            handler: env.handler,
            hint: env.hint,
            payload: env.payload,
        })
    }

    /// Per-object summary of queued work: `(object, queued messages, summed
    /// weight hints)`, heaviest first. The load balancer uses this to decide
    /// which mobile objects to hand over when granting a work request.
    pub fn ready_summary(&self) -> Vec<(MobilePtr, usize, f64)> {
        let mut acc: FxHashMap<MobilePtr, (usize, f64)> = FxHashMap::default();
        for e in &self.ready {
            let slot = acc.entry(e.target).or_insert((0, 0.0));
            slot.0 += 1;
            slot.1 += e.hint;
        }
        let mut out: Vec<(MobilePtr, usize, f64)> =
            acc.into_iter().map(|(p, (n, w))| (p, n, w)).collect();
        out.sort_by(|a, b| b.2.total_cmp(&a.2).then(a.0.cmp(&b.0)));
        out
    }

    /// Messages the resident object `ptr` has consumed from rank `src` over
    /// its lifetime — the object-interaction counter behind
    /// communication-aware load balancing (DESIGN.md §14). Read straight off
    /// the per-sender sequence state that already travels with the object on
    /// migration, so it costs no extra bookkeeping or wire bytes. Zero for
    /// non-resident objects.
    pub fn interactions_from(&self, ptr: MobilePtr, src: Rank) -> u64 {
        self.directory
            .get(&ptr)
            .and_then(|d| d.entry.as_ref())
            .and_then(|e| e.expected.get(&src))
            .copied()
            .unwrap_or(0)
    }

    /// Per-peer interaction totals across all resident objects: how many
    /// messages this rank's objects have consumed from each sender rank
    /// (including this rank itself — callers filter as needed). The load
    /// balancer folds this into its communication-affinity summary.
    pub fn interaction_summary(&self) -> Vec<(Rank, u64)> {
        let mut acc: FxHashMap<Rank, u64> = FxHashMap::default();
        for d in self.directory.values() {
            let Some(entry) = d.entry.as_ref() else {
                continue;
            };
            for (&src, &consumed) in &entry.expected {
                if consumed > 0 {
                    *acc.entry(src).or_insert(0) += consumed;
                }
            }
        }
        let mut out: Vec<(Rank, u64)> = acc.into_iter().collect();
        out.sort_unstable();
        out
    }
}

/// A unit of queued work: one in-order message for one local object.
#[derive(Debug, Clone)]
pub struct WorkItem {
    /// Target object (guaranteed resident when popped, though it may be
    /// detached if the caller interleaves).
    pub ptr: MobilePtr,
    /// Original sender.
    pub sender: Rank,
    /// Application handler id.
    pub handler: u32,
    /// Computational weight hint.
    pub hint: f64,
    /// Payload.
    pub payload: Bytes,
}
