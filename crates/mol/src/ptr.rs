//! Mobile pointers: the global name space.
//!
//! A [`MobilePtr`] is a location-independent name for a mobile object
//! (Chrisochoides et al., *Advances in Engineering Software* 31(8-9), 2000 —
//! reference [6] of the SC'03 paper). It encodes the *home* rank that
//! allocated the name plus a per-home index; the pair is unique machine-wide
//! without any coordination. A mobile pointer stays valid as the object
//! migrates — the Mobile Object Layer routes messages to wherever the object
//! currently lives.

use std::fmt;

/// A globally unique, location-independent handle to a mobile object.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MobilePtr {
    /// Rank that allocated this name (not necessarily the current owner).
    pub home: usize,
    /// Allocation index within the home rank. Index 0 is reserved for NULL.
    pub index: u64,
}

impl MobilePtr {
    /// The null mobile pointer (`mol_mobile_ptr_is_null` in the paper's API).
    pub const NULL: MobilePtr = MobilePtr { home: 0, index: 0 };

    /// Whether this is the null pointer.
    pub fn is_null(self) -> bool {
        self == Self::NULL
    }

    /// Encode into 16 little-endian bytes (stable wire format).
    pub fn to_bytes(self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&(self.home as u64).to_le_bytes());
        out[8..].copy_from_slice(&self.index.to_le_bytes());
        out
    }

    /// Decode from the wire format.
    pub fn from_bytes(b: [u8; 16]) -> Self {
        let (home, index) = b.split_at(8);
        MobilePtr {
            home: u64::from_le_bytes(home.try_into().expect("split_at(8) of a 16-byte array"))
                as usize,
            index: u64::from_le_bytes(index.try_into().expect("split_at(8) of a 16-byte array")),
        }
    }
}

impl fmt::Debug for MobilePtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for MobilePtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "mp(NULL)")
        } else {
            write!(f, "mp({}:{})", self.home, self.index)
        }
    }
}

/// Allocates fresh mobile pointers for one rank.
#[derive(Debug)]
pub struct PtrAllocator {
    home: usize,
    next: u64,
}

impl PtrAllocator {
    /// Allocator for `home`'s name space.
    pub fn new(home: usize) -> Self {
        // Index 0 of rank 0 is NULL; skip index 0 everywhere for uniformity.
        PtrAllocator { home, next: 1 }
    }

    /// Allocate a fresh, never-before-seen mobile pointer.
    pub fn alloc(&mut self) -> MobilePtr {
        let p = MobilePtr {
            home: self.home,
            index: self.next,
        };
        self.next += 1;
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn null_detection() {
        assert!(MobilePtr::NULL.is_null());
        assert!(!MobilePtr { home: 0, index: 1 }.is_null());
        assert!(!MobilePtr { home: 1, index: 0 }.is_null());
    }

    #[test]
    fn wire_roundtrip() {
        let p = MobilePtr {
            home: 77,
            index: u64::MAX - 3,
        };
        assert_eq!(MobilePtr::from_bytes(p.to_bytes()), p);
        assert_eq!(
            MobilePtr::from_bytes(MobilePtr::NULL.to_bytes()),
            MobilePtr::NULL
        );
    }

    #[test]
    fn allocators_never_collide_across_ranks() {
        let mut seen = HashSet::new();
        for home in 0..8 {
            let mut a = PtrAllocator::new(home);
            for _ in 0..100 {
                let p = a.alloc();
                assert!(!p.is_null());
                assert!(seen.insert(p), "duplicate {p}");
            }
        }
        assert_eq!(seen.len(), 800);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", MobilePtr::NULL), "mp(NULL)");
        assert_eq!(format!("{}", MobilePtr { home: 2, index: 9 }), "mp(2:9)");
    }
}
