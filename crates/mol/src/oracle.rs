//! Runtime invariant oracles (the `check-invariants` feature).
//!
//! These are *oracles*, not error handling: each method asserts a property
//! the MOL guarantees by construction, so any violation is a bug in the
//! runtime (or a regression introduced by a future change), caught at the
//! moment it happens instead of as a corrupted answer much later. The
//! feature is on by default — `cargo test` exercises every oracle through
//! the ordinary integration suites — and costs O(1) per message plus one
//! hash-map entry per active (sender, object) pair; release builds that
//! want the last few percent can disable default features.
//!
//! Three properties are checked (§4 of the paper):
//!
//! 1. **Delivery-order monotonicity** — for every (sender, object) pair,
//!    messages are delivered in exactly send order: seq 0, 1, 2, … with no
//!    gap, duplicate, or reordering, across any number of migrations. The
//!    oracle keeps an independent shadow cursor per pair, advanced at the
//!    two delivery points ([`MolNode::drain_ready`]/[`MolNode::pop_work`])
//!    and re-derived from a migration packet's ordering state on install.
//! 2. **Forwarding-chain sanity** — a migration packet's epoch strictly
//!    exceeds every epoch this rank has recorded for the object (forward
//!    pointer, cached location, or stale local entry): forwarding chains
//!    always walk *forward* in migration history, so no cycle can form. A
//!    generous hop bound catches routing loops that epoch bookkeeping
//!    would miss.
//! 3. **Work conservation** — queued work is neither lost nor duplicated:
//!    `accepted + installed − delivered − shipped == ready.len()`, checked
//!    after every poll/pump/migrate.
//!
//! [`MolNode::drain_ready`]: crate::MolNode::poll
//! [`MolNode::pop_work`]: crate::MolNode::pop_work

use crate::directory::HARD_CHAIN_LIMIT;
use crate::proto::MolEnvelope;
use crate::ptr::MobilePtr;
use prema_dcs::Rank;
use std::collections::HashMap;

/// Per-node shadow state verifying the MOL's ordering and conservation
/// guarantees. Owned by [`crate::MolNode`]; all methods panic on violation.
#[derive(Debug, Default)]
pub(crate) struct NodeOracle {
    /// Next sequence number this node must deliver, per (sender, object).
    next_deliver: HashMap<(Rank, MobilePtr), u64>,
    /// Messages accepted into the ready queue on this node.
    accepted: u64,
    /// Messages handed to the executor (drained or popped).
    delivered: u64,
    /// Accepted-but-undelivered messages shipped out with a migration.
    shipped: u64,
    /// Accepted-but-undelivered messages received with a migration.
    installed: u64,
}

impl NodeOracle {
    /// A message entered the ready queue (either fresh from the wire or
    /// drained from the out-of-order buffer).
    pub fn on_accept(&mut self) {
        self.accepted += 1;
    }

    /// A message is being delivered to the executor. Asserts per-pair
    /// sequence contiguity: exactly send order, no gaps, no duplicates.
    pub fn on_deliver(&mut self, sender: Rank, target: MobilePtr, seq: u64) {
        self.delivered += 1;
        let cursor = self.next_deliver.entry((sender, target)).or_insert(0);
        assert_eq!(
            seq, *cursor,
            "delivery-order oracle: object {target:?} got seq {seq} from rank \
             {sender} but expected {cursor} — messages reordered, lost, or \
             duplicated"
        );
        *cursor += 1;
    }

    /// An object is leaving with `pending` accepted-but-undelivered
    /// messages. Its delivery cursors leave with it (the destination
    /// re-derives them from the packet).
    pub fn on_migrate_out(&mut self, ptr: MobilePtr, pending: usize) {
        self.shipped += pending as u64;
        self.next_deliver.retain(|(_, p), _| *p != ptr);
    }

    /// An object is being installed from a migration packet.
    ///
    /// * `prior_epoch` — the freshest epoch this rank had recorded for the
    ///   object before the packet arrived (forward pointer, location cache,
    ///   or stale entry), if any. The packet must be strictly newer.
    /// * `expected`/`pending` — the packet's ordering state. For each
    ///   sender, the next sequence to *deliver* is the next to *accept*
    ///   minus the accepted-but-undelivered messages travelling in
    ///   `pending`, which re-derives the shadow cursor exactly.
    pub fn on_install(
        &mut self,
        ptr: MobilePtr,
        epoch: u64,
        prior_epoch: Option<u64>,
        expected: &[(Rank, u64)],
        pending: &[MolEnvelope],
    ) {
        if let Some(prior) = prior_epoch {
            assert!(
                epoch > prior,
                "forwarding oracle: object {ptr:?} installed at epoch {epoch} \
                 but this rank already saw epoch {prior} — migration history \
                 went backwards (forwarding cycle?)"
            );
        }
        self.installed += pending.len() as u64;
        for &(sender, next_accept) in expected {
            let in_pending = pending.iter().filter(|e| e.sender == sender).count() as u64;
            assert!(
                in_pending <= next_accept,
                "migration packet for {ptr:?} carries {in_pending} pending \
                 messages from rank {sender} but only {next_accept} were ever \
                 accepted"
            );
            self.next_deliver
                .insert((sender, ptr), next_accept - in_pending);
        }
        // Pending messages from a sender absent from `expected` would have
        // been accepted without an expected-counter — impossible.
        for env in pending {
            assert!(
                expected.iter().any(|&(s, _)| s == env.sender),
                "migration packet for {ptr:?} has a pending message from rank \
                 {} with no ordering state",
                env.sender
            );
        }
    }

    /// A message is being forwarded. `next` is the chosen next hop, `hops`
    /// the message's hop count *after* the increment.
    pub fn on_forward(&mut self, here: Rank, next: Rank, hops: u32) {
        assert_ne!(
            next, here,
            "forwarding oracle: rank {here} would forward to itself — \
             forward pointer or location cache points home"
        );
        assert!(
            hops < HARD_CHAIN_LIMIT,
            "forwarding oracle: message has taken {hops} hops (hard limit \
             {HARD_CHAIN_LIMIT}) — routing loop. Steady-state chains are \
             bounded by crate::directory::MAX_CHAIN; even degraded \
             trail-walking under chaos is bounded by migration history, so \
             only a genuine loop reaches the hard limit."
        );
    }

    /// Work conservation: everything accepted or installed is still queued,
    /// was delivered, or left with a migration.
    pub fn verify(&self, ready_len: usize) {
        let expect = self.accepted + self.installed - self.delivered - self.shipped;
        assert_eq!(
            expect, ready_len as u64,
            "conservation oracle: accepted {} + installed {} - delivered {} - \
             shipped {} = {} queued work units, but the ready queue holds {}",
            self.accepted, self.installed, self.delivered, self.shipped, expect, ready_len
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn ptr(i: u64) -> MobilePtr {
        MobilePtr { home: 0, index: i }
    }

    fn env(sender: Rank, target: MobilePtr, seq: u64) -> MolEnvelope {
        MolEnvelope {
            target,
            sender,
            seq,
            handler: 0,
            hops: 0,
            anchored: false,
            route_epoch: 0,
            hint: 1.0,
            payload: Bytes::new(),
        }
    }

    #[test]
    fn in_order_delivery_passes() {
        let mut o = NodeOracle::default();
        for seq in 0..4 {
            o.on_accept();
            o.on_deliver(1, ptr(7), seq);
        }
        o.verify(0);
    }

    #[test]
    #[should_panic(expected = "delivery-order oracle")]
    fn skipped_sequence_panics() {
        let mut o = NodeOracle::default();
        o.on_deliver(1, ptr(7), 0);
        o.on_deliver(1, ptr(7), 2); // seq 1 lost
    }

    #[test]
    #[should_panic(expected = "delivery-order oracle")]
    fn duplicate_sequence_panics() {
        let mut o = NodeOracle::default();
        o.on_deliver(1, ptr(7), 0);
        o.on_deliver(1, ptr(7), 0);
    }

    #[test]
    fn install_rederives_cursor_past_shipped_pending() {
        let mut o = NodeOracle::default();
        // Sender 2 had 5 accepted, 2 of them still pending: deliveries on
        // this node must resume at seq 3.
        let p = ptr(9);
        let pending = vec![env(2, p, 3), env(2, p, 4)];
        o.on_install(p, 1, None, &[(2, 5)], &pending);
        o.on_accept();
        o.on_accept();
        o.on_deliver(2, p, 3);
        o.on_deliver(2, p, 4);
        o.verify(2); // installed 2, accepted 2, delivered 2
    }

    #[test]
    #[should_panic(expected = "migration history went backwards")]
    fn epoch_regression_panics() {
        let mut o = NodeOracle::default();
        o.on_install(ptr(1), 2, Some(3), &[], &[]);
    }

    #[test]
    #[should_panic(expected = "forward to itself")]
    fn self_forward_panics() {
        let mut o = NodeOracle::default();
        o.on_forward(4, 4, 1);
    }

    #[test]
    #[should_panic(expected = "routing loop")]
    fn unbounded_chain_panics() {
        let mut o = NodeOracle::default();
        o.on_forward(4, 5, HARD_CHAIN_LIMIT);
    }

    #[test]
    fn degraded_chain_below_hard_limit_passes() {
        // Chains beyond MAX_CHAIN are legal in degraded (chaos) mode; only
        // the hard limit is unconditional.
        let mut o = NodeOracle::default();
        o.on_forward(4, 5, HARD_CHAIN_LIMIT - 1);
    }

    #[test]
    #[should_panic(expected = "conservation oracle")]
    fn lost_work_unit_panics() {
        let mut o = NodeOracle::default();
        o.on_accept();
        o.verify(0); // accepted one, queue empty, never delivered: lost
    }

    #[test]
    fn migrate_out_moves_custody() {
        let mut o = NodeOracle::default();
        o.on_accept();
        o.on_accept();
        o.on_deliver(1, ptr(3), 0);
        o.on_migrate_out(ptr(3), 1);
        o.verify(0);
        // After the object left, its cursor must be gone: a later
        // re-install starts from the packet state, not stale local state.
        assert!(o.next_deliver.is_empty());
    }
}
