//! The sharded mobile-object directory (DESIGN.md §16).
//!
//! The original MOL resolves a stale mobile pointer by chasing forward
//! pointers along the object's migration trail — correct, but the chain grows
//! with migration history, and the object's *birth* rank (`ptr.home`) is the
//! only rank every cold sender falls back to, making it a hotspot. This
//! module shards location authority across ranks instead:
//!
//! * [`shard_of`] maps every [`MobilePtr`] to one deterministic **home
//!   shard** by hashing its id. The map is a pure function of the pointer and
//!   the fixed rank count — no state, no messages, nothing to rebalance.
//!   (Elastic membership — ranks joining/leaving and pointers re-homing — is
//!   deliberately out of scope; a rendezvous or Kademlia-style map can slot
//!   in behind this function later without touching the protocol.)
//! * [`ShardAuthority`] is the shard-side table: the freshest published
//!   `(owner, epoch)` per pointer. Only objects that have *migrated* occupy
//!   an entry — a never-migrated object is implicitly at `ptr.home`, so
//!   registration costs zero messages and zero authority state. At millions
//!   of mostly-stationary objects each rank holds roughly
//!   `migrated_objects / nprocs` entries.
//! * [`LocCache`] is the sender-side bounded cache: epoch-stamped
//!   `(owner, epoch)` guesses, LRU-evicted (two-generation approximation),
//!   sized by `PREMA_LOC_CACHE`. A hit sends directly; a miss or stale guess
//!   costs one bounded redirect through the home shard, never an unbounded
//!   trail walk.
//!
//! # The chain bound
//!
//! With the shard in the loop, a message's forwarding chain is bounded by a
//! constant instead of by migration history. On a reliable wire with no
//! migration in flight:
//!
//! * cache hit, fresh: **0** hops;
//! * cache miss: sender → shard → owner = **1** forward;
//! * cache hit, stale: sender → old owner → shard → owner = **2** forwards
//!   (the stale rank redirects through the shard rather than walking its
//!   trail — that redirect is what makes the bound constant).
//!
//! Every migration that commits *while the message is in flight* can add one
//! more hop (the shard's answer goes stale under the message, and the
//! departed rank's forward pointer — strictly newer than the shard's answer —
//! covers the gap). [`MAX_CHAIN`] documents the steady-state bound with slack
//! for two in-flight migrations; regression tests and CI assert the p99 chain
//! length against it. [`HARD_CHAIN_LIMIT`] is the invariant oracle's
//! routing-loop backstop: under seeded loss of publishes the protocol
//! *degrades* to trail forwarding (never wedges), so chains may legitimately
//! exceed [`MAX_CHAIN`] there, but a genuine routing loop blows through the
//! hard limit within one poll.

use crate::ptr::MobilePtr;
use prema_dcs::{FxHashMap, Rank};

/// Steady-state forwarding-chain bound: at most 2 hops on a quiescent
/// reliable wire (stale cache → shard redirect → owner), plus slack for two
/// migrations committing while the message is in flight. Scenario tests and
/// the CI chain-bound regression assert the delivered p99 chain length
/// against this constant.
pub const MAX_CHAIN: u32 = 4;

/// Routing-loop backstop asserted unconditionally by the invariant oracle on
/// every forward. Distinct from [`MAX_CHAIN`]: under chaos (lost publishes /
/// lost answers) the protocol degrades to walking migration trails, whose
/// length is bounded by migration history, not by a constant — but a real
/// routing loop revisits ranks forever and trips this limit within one poll.
pub const HARD_CHAIN_LIMIT: u32 = 512;

/// Default [`LocCache`] capacity (entries) when `PREMA_LOC_CACHE` is unset.
pub const LOC_CACHE_DEFAULT: usize = 4096;

/// Buckets in the delivered chain-length histogram kept by
/// [`crate::MolStats`]; the last bucket counts "that long or longer".
pub const CHAIN_HIST_BUCKETS: usize = 16;

/// A rank forwarding a message whose chase has already run this many hops
/// also re-publishes its own best knowledge to the home shard: a deep chase
/// means some publish was lost, and the repair heals the shard without any
/// extra protocol machinery.
pub const REPAIR_HOPS: u32 = 3;

/// The deterministic home shard of a pointer at a fixed rank count: a
/// splitmix64-style hash of the pointer id reduced mod `nprocs`. Pure
/// function — every rank computes the same shard with no coordination.
pub fn shard_of(ptr: MobilePtr, nprocs: usize) -> Rank {
    debug_assert!(nprocs > 0, "shard_of over an empty machine");
    let mut x = ptr.index ^ (ptr.home as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x % nprocs as u64) as Rank
}

/// Bounded sender-side location cache: epoch-stamped `(owner, epoch)`
/// guesses with two-generation LRU eviction.
///
/// Lookups probe the *hot* generation, then the *cold* one (promoting on
/// hit). When the hot generation fills, it becomes the cold one and the old
/// cold generation — everything not touched for a full generation — is
/// dropped wholesale. O(1) amortized per operation, never more than
/// `capacity` entries total, and no per-entry clock or linked list.
#[derive(Debug)]
pub struct LocCache {
    /// Per-generation entry limit (half the total capacity).
    gen_cap: usize,
    hot: FxHashMap<MobilePtr, (Rank, u64)>,
    cold: FxHashMap<MobilePtr, (Rank, u64)>,
}

impl LocCache {
    /// A cache bounded at `capacity` total entries (floored at 2).
    pub fn new(capacity: usize) -> Self {
        LocCache {
            gen_cap: (capacity.max(2)) / 2,
            hot: FxHashMap::default(),
            cold: FxHashMap::default(),
        }
    }

    /// Total entry bound.
    pub fn capacity(&self) -> usize {
        self.gen_cap * 2
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.hot.len() + self.cold.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.hot.is_empty() && self.cold.is_empty()
    }

    /// Look up a pointer, promoting a cold hit into the hot generation.
    pub fn get(&mut self, ptr: MobilePtr) -> Option<(Rank, u64)> {
        if let Some(&v) = self.hot.get(&ptr) {
            return Some(v);
        }
        let v = self.cold.remove(&ptr)?;
        self.insert_hot(ptr, v);
        Some(v)
    }

    /// Look up without touching recency (used by epoch guards, not routing).
    pub fn peek(&self, ptr: MobilePtr) -> Option<(Rank, u64)> {
        self.hot.get(&ptr).or_else(|| self.cold.get(&ptr)).copied()
    }

    /// Merge a location fact, keeping the freshest epoch. Returns `true` if
    /// the cache advanced (new entry or strictly newer epoch).
    pub fn insert_max(&mut self, ptr: MobilePtr, owner: Rank, epoch: u64) -> bool {
        if let Some((_, have)) = self.peek(ptr) {
            if have >= epoch {
                return false;
            }
        }
        self.cold.remove(&ptr);
        self.insert_hot(ptr, (owner, epoch));
        true
    }

    /// Drop a pointer (it became resident here — any cached location for it
    /// is stale by definition).
    pub fn remove(&mut self, ptr: MobilePtr) {
        self.hot.remove(&ptr);
        self.cold.remove(&ptr);
    }

    fn insert_hot(&mut self, ptr: MobilePtr, v: (Rank, u64)) {
        if self.hot.len() >= self.gen_cap && !self.hot.contains_key(&ptr) {
            self.cold = std::mem::take(&mut self.hot);
        }
        self.hot.insert(ptr, v);
    }
}

/// Shard-side location authority: the freshest published `(owner, epoch)`
/// per pointer this rank is the home shard for, plus — in eager mode
/// (`PREMA_LOC_EPOCH_LAZY=0`) — the ranks whose lookups this shard has
/// answered, so a newer publish can be pushed to them proactively.
#[derive(Debug, Default)]
pub struct ShardAuthority {
    published: FxHashMap<MobilePtr, (Rank, u64)>,
    inquirers: FxHashMap<MobilePtr, Vec<Rank>>,
}

impl ShardAuthority {
    /// Merge a published location, keeping the freshest epoch. Returns `true`
    /// if the authority advanced. Publishes are idempotent and commutative
    /// (epoch-max), so duplicated or reordered wire delivery is harmless.
    pub fn publish(&mut self, ptr: MobilePtr, owner: Rank, epoch: u64) -> bool {
        match self.published.get_mut(&ptr) {
            Some(slot) if slot.1 >= epoch => false,
            Some(slot) => {
                *slot = (owner, epoch);
                true
            }
            None => {
                self.published.insert(ptr, (owner, epoch));
                true
            }
        }
    }

    /// The freshest published location, if any object under this shard's
    /// authority has ever migrated. `None` means "never published" — the
    /// object (if it exists) is implicitly at `ptr.home`.
    pub fn lookup(&self, ptr: MobilePtr) -> Option<(Rank, u64)> {
        self.published.get(&ptr).copied()
    }

    /// Record a rank that asked about `ptr` (eager mode only).
    pub fn note_inquirer(&mut self, ptr: MobilePtr, rank: Rank) {
        let list = self.inquirers.entry(ptr).or_default();
        if !list.contains(&rank) {
            list.push(rank);
        }
    }

    /// Drain the recorded inquirers for `ptr` (consumed by an eager push).
    pub fn take_inquirers(&mut self, ptr: MobilePtr) -> Vec<Rank> {
        self.inquirers.remove(&ptr).unwrap_or_default()
    }

    /// Number of pointers with a published location.
    pub fn len(&self) -> usize {
        self.published.len()
    }

    /// Whether nothing has been published to this shard.
    pub fn is_empty(&self) -> bool {
        self.published.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ptr(home: usize, index: u64) -> MobilePtr {
        MobilePtr { home, index }
    }

    #[test]
    fn shard_map_is_deterministic_and_in_range() {
        for n in [1usize, 2, 3, 8, 32, 128] {
            for home in 0..4 {
                for index in 1..200 {
                    let p = ptr(home, index);
                    let s = shard_of(p, n);
                    assert!(s < n);
                    assert_eq!(s, shard_of(p, n), "pure function of (ptr, nprocs)");
                }
            }
        }
    }

    #[test]
    fn shard_map_spreads_across_ranks() {
        // 800 pointers over 8 ranks: every rank must be somebody's shard and
        // no rank may be the shard for the majority (the anti-hotspot point).
        let n = 8;
        let mut counts = vec![0usize; n];
        for home in 0..4 {
            for index in 1..201 {
                counts[shard_of(ptr(home, index), n)] += 1;
            }
        }
        assert!(counts.iter().all(|&c| c > 0), "unused shard: {counts:?}");
        assert!(counts.iter().all(|&c| c < 400), "hotspot shard: {counts:?}");
    }

    #[test]
    fn cache_keeps_freshest_epoch() {
        let mut c = LocCache::new(8);
        assert!(c.insert_max(ptr(0, 1), 3, 5));
        assert!(!c.insert_max(ptr(0, 1), 9, 4), "older epoch must lose");
        assert!(!c.insert_max(ptr(0, 1), 9, 5), "equal epoch must lose");
        assert_eq!(c.get(ptr(0, 1)), Some((3, 5)));
        assert!(c.insert_max(ptr(0, 1), 9, 6));
        assert_eq!(c.get(ptr(0, 1)), Some((9, 6)));
    }

    #[test]
    fn cache_is_bounded_and_evicts_cold_entries() {
        let cap = 8;
        let mut c = LocCache::new(cap);
        for i in 1..=100 {
            c.insert_max(ptr(0, i), 1, 1);
            assert!(c.len() <= c.capacity(), "len {} > cap {}", c.len(), cap);
        }
        // The most recent insert always survives; something old was evicted.
        assert_eq!(c.get(ptr(0, 100)), Some((1, 1)));
        assert!(
            c.get(ptr(0, 1)).is_none(),
            "ancient entry survived eviction"
        );
    }

    #[test]
    fn cache_promotes_recently_used_entries() {
        let mut c = LocCache::new(4); // generations of 2
        c.insert_max(ptr(0, 1), 1, 1);
        c.insert_max(ptr(0, 2), 1, 1); // hot full: {1,2}
        c.insert_max(ptr(0, 3), 1, 1); // rotate: cold={1,2}, hot={3}
        assert_eq!(c.get(ptr(0, 1)), Some((1, 1))); // promote 1: hot={3,1}
        c.insert_max(ptr(0, 4), 1, 1); // rotate: cold={3,1}, hot={4}
        c.insert_max(ptr(0, 5), 1, 1); // hot={4,5}; old cold {2} long gone
        assert_eq!(
            c.get(ptr(0, 1)),
            Some((1, 1)),
            "recently-used entry evicted"
        );
        assert!(c.get(ptr(0, 2)).is_none());
    }

    #[test]
    fn cache_remove_clears_both_generations() {
        let mut c = LocCache::new(4);
        c.insert_max(ptr(0, 1), 1, 1);
        c.insert_max(ptr(0, 2), 1, 1);
        c.insert_max(ptr(0, 3), 1, 1); // 1 and 2 now cold
        c.remove(ptr(0, 1));
        c.remove(ptr(0, 3));
        assert!(c.get(ptr(0, 1)).is_none());
        assert!(c.get(ptr(0, 3)).is_none());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn authority_is_epoch_monotonic() {
        let mut a = ShardAuthority::default();
        assert_eq!(a.lookup(ptr(0, 1)), None);
        assert!(a.publish(ptr(0, 1), 2, 1));
        assert!(!a.publish(ptr(0, 1), 7, 1), "replayed publish must not win");
        assert!(!a.publish(ptr(0, 1), 7, 0), "older publish must not win");
        assert_eq!(a.lookup(ptr(0, 1)), Some((2, 1)));
        assert!(a.publish(ptr(0, 1), 7, 3), "out-of-order newer epoch wins");
        assert_eq!(a.lookup(ptr(0, 1)), Some((7, 3)));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn authority_inquirers_dedup_and_drain() {
        let mut a = ShardAuthority::default();
        a.note_inquirer(ptr(0, 1), 3);
        a.note_inquirer(ptr(0, 1), 5);
        a.note_inquirer(ptr(0, 1), 3);
        assert_eq!(a.take_inquirers(ptr(0, 1)), vec![3, 5]);
        assert!(a.take_inquirers(ptr(0, 1)).is_empty());
    }
}
