//! Regression bound for the sharded directory (CI-enforced).
//!
//! Runs an interact-shaped workload (Fig. 3 of the paper: every rank
//! repeatedly messages a fixed partner set while a few hot objects migrate
//! aggressively) twice on identical schedules — once with the sharded
//! directory, once with the legacy home-forwarding baseline — and asserts
//! the three properties the directory exists to provide:
//!
//! 1. forwarding chains stay at or below [`MAX_CHAIN`] at the 99th
//!    percentile (and at the max, since the schedule settles each
//!    migration before the next),
//! 2. the sender location caches stay hot: ≥ 90% aggregate hit rate,
//! 3. the sharded run spends strictly fewer wire messages than the legacy
//!    baseline — trail walks grow with migration count, shard redirects
//!    don't.

use bytes::Bytes;
use prema_dcs::{Communicator, LocalFabric};
use prema_mol::{MobilePtr, MolConfig, MolEvent, MolNode, MAX_CHAIN};

const NPROCS: usize = 8;
const OBJS_PER_RANK: usize = 4;
const NOBJS: usize = NPROCS * OBJS_PER_RANK;
const ROUNDS: usize = 20;
/// Hot objects migrate this many times per round — more than one, so the
/// legacy baseline must walk a multi-hop trail while the sharded run pays
/// one bounded shard redirect.
const MIGRATIONS_PER_ROUND: usize = 5;
const H_ADD: u32 = 1;

#[derive(Debug, PartialEq)]
struct Counter {
    value: i64,
}

impl prema_mol::Migratable for Counter {
    fn pack(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.value.to_le_bytes());
    }
    fn unpack(buf: &[u8]) -> Self {
        Counter {
            value: i64::from_le_bytes(buf[..8].try_into().unwrap()),
        }
    }
}

fn machine(cfg: MolConfig) -> Vec<MolNode<Counter>> {
    LocalFabric::new(NPROCS)
        .into_iter()
        .map(|ep| MolNode::with_config(Communicator::new(Box::new(ep)), cfg))
        .collect()
}

fn apply_events(node: &mut MolNode<Counter>, events: Vec<MolEvent>) -> bool {
    let mut any = false;
    for ev in events {
        if let MolEvent::Object { ptr, payload, .. } = ev {
            let add = i64::from_le_bytes(payload[..8].try_into().unwrap());
            node.with_object(ptr, |_, c| c.value += add).unwrap();
            any = true;
        }
    }
    any
}

/// Pump until three rounds pass with no deliveries *and* no wire traffic.
/// Forward hops produce no `MolEvent`s, so quiet detection must watch the
/// communicator's receive counters too.
fn drain(nodes: &mut [MolNode<Counter>]) {
    let mut quiet = 0;
    while quiet < 3 {
        let before: u64 = nodes.iter().map(|n| n.comm().stats().msgs_recvd).sum();
        let mut any = false;
        for node in nodes.iter_mut() {
            let events = node.poll();
            any |= apply_events(node, events);
        }
        let after: u64 = nodes.iter().map(|n| n.comm().stats().msgs_recvd).sum();
        if any || after != before {
            quiet = 0;
        } else {
            quiet += 1;
        }
    }
}

struct RunResult {
    wire_msgs: u64,
    hit_rate: f64,
    p99_chain: u32,
    max_chain: u32,
    dir_publishes: u64,
    expected: Vec<i64>,
}

/// The interact schedule, fully deterministic: identical for both configs.
fn run_interact(mut nodes: Vec<MolNode<Counter>>) -> RunResult {
    let mut ptrs: Vec<MobilePtr> = Vec::with_capacity(NOBJS);
    for node in nodes.iter_mut() {
        for _ in 0..OBJS_PER_RANK {
            ptrs.push(node.register(Counter { value: 0 }));
        }
    }
    // Four hot objects on distinct ranks migrate every round; the rest are
    // stable partners that keep the caches exercised on the fast path.
    let hot = [0usize, 9, 18, 27];
    let mut expected = vec![0i64; NOBJS];

    for _round in 0..ROUNDS {
        // Hot objects take a short migration burst, each move settled
        // before the next so the legacy trail is real (and so at most one
        // migration overlaps any message's flight).
        for &obj in hot.iter() {
            for _ in 0..MIGRATIONS_PER_ROUND {
                let src = nodes
                    .iter()
                    .position(|nd| nd.is_local(ptrs[obj]))
                    .expect("hot object lost");
                // +3 is coprime with NPROCS: a burst never revisits a rank,
                // so the legacy trail is a genuine MIGRATIONS_PER_ROUND-hop
                // walk (revisits would overwrite forward pointers with
                // fresher epochs and compress it).
                let dst = (src + 3) % NPROCS;
                assert!(nodes[src].migrate(ptrs[obj], dst));
                drain(&mut nodes);
            }
        }
        // Every rank messages every hot object plus four stable partners.
        for (r, node) in nodes.iter_mut().enumerate() {
            let mut targets: Vec<usize> = hot.to_vec();
            for k in 0..4 {
                let stable = (r * OBJS_PER_RANK + 1 + k * 7) % NOBJS;
                if !hot.contains(&stable) {
                    targets.push(stable);
                }
            }
            for obj in targets {
                node.message(ptrs[obj], H_ADD, Bytes::from(1i64.to_le_bytes().to_vec()));
                expected[obj] += 1;
            }
        }
        drain(&mut nodes);
    }
    drain(&mut nodes);

    // Exactly-once: every counter holds exactly the adds sent to it.
    for (obj, ptr) in ptrs.iter().enumerate() {
        let holder = nodes
            .iter()
            .find(|nd| nd.get(*ptr).is_some())
            .unwrap_or_else(|| panic!("object {obj} lost"));
        assert_eq!(
            holder.get(*ptr).unwrap().value,
            expected[obj],
            "object {obj} lost or duplicated messages"
        );
    }

    let wire_msgs: u64 = nodes.iter().map(|n| n.comm().stats().msgs_sent).sum();
    let (hits, misses): (u64, u64) = nodes.iter().fold((0, 0), |(h, m), n| {
        (h + n.stats().loc_cache_hits, m + n.stats().loc_cache_misses)
    });
    let hit_rate = if hits + misses == 0 {
        1.0
    } else {
        hits as f64 / (hits + misses) as f64
    };
    RunResult {
        wire_msgs,
        hit_rate,
        p99_chain: nodes
            .iter()
            .map(|n| n.stats().chain_percentile(0.99))
            .max()
            .unwrap(),
        max_chain: nodes.iter().map(|n| n.stats().max_chain).max().unwrap(),
        dir_publishes: nodes.iter().map(|n| n.stats().dir_publishes).sum(),
        expected,
    }
}

#[test]
fn interact_chain_bound_and_cache_rate() {
    let sharded = run_interact(machine(MolConfig::default()));
    let legacy = run_interact(machine(MolConfig {
        sharded_directory: false,
        ..MolConfig::default()
    }));

    // Both runs executed the identical schedule.
    assert_eq!(sharded.expected, legacy.expected);
    // The directory protocol was actually exercised.
    assert!(
        sharded.dir_publishes > 0,
        "no publishes: directory inactive"
    );

    // (1) chain bound: p99 and max both within the documented constant.
    assert!(
        sharded.p99_chain <= MAX_CHAIN,
        "p99 forwarding chain {} exceeds MAX_CHAIN {}",
        sharded.p99_chain,
        MAX_CHAIN
    );
    assert!(
        sharded.max_chain <= MAX_CHAIN,
        "max forwarding chain {} exceeds MAX_CHAIN {} on a settled schedule",
        sharded.max_chain,
        MAX_CHAIN
    );

    // (2) sender caches stay hot.
    assert!(
        sharded.hit_rate >= 0.90,
        "location cache hit rate {:.3} below 0.90",
        sharded.hit_rate
    );

    // (3) fewer wire messages than home-forwarding on the same schedule.
    assert!(
        sharded.wire_msgs < legacy.wire_msgs,
        "sharded directory sent {} wire messages, legacy baseline {}",
        sharded.wire_msgs,
        legacy.wire_msgs
    );
}
