//! MOL under an unreliable wire: duplicated migration packets must install
//! exactly once, duplicated messages must execute exactly once, and a lost
//! location update must degrade to forwarding — never to lost delivery.

use bytes::Bytes;
use prema_dcs::{ChaosConfig, ChaosHandle, ChaosTransport, Communicator, LocalFabric};
use prema_mol::{MobilePtr, MolEvent, MolNode};

#[derive(Debug, PartialEq)]
struct Counter {
    id: u64,
    value: i64,
}

impl prema_mol::Migratable for Counter {
    fn pack(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.id.to_le_bytes());
        buf.extend_from_slice(&self.value.to_le_bytes());
    }
    fn unpack(buf: &[u8]) -> Self {
        Counter {
            id: u64::from_le_bytes(buf[..8].try_into().unwrap()),
            value: i64::from_le_bytes(buf[8..16].try_into().unwrap()),
        }
    }
}

const H_ADD: u32 = 1;

/// An N-rank machine whose wire is wrapped in [`ChaosTransport`]s sharing
/// one [`ChaosHandle`].
fn chaos_machine(n: usize, cfg: ChaosConfig) -> (Vec<MolNode<Counter>>, ChaosHandle) {
    let handle = ChaosHandle::new();
    let nodes = LocalFabric::new(n)
        .into_iter()
        .map(|ep| {
            let chaos = ChaosTransport::new(ep, cfg, handle.clone());
            MolNode::new(Communicator::new(Box::new(chaos)))
        })
        .collect();
    (nodes, handle)
}

/// Pump every node until a full quiet round; returns (rank, ptr, handler,
/// payload) for every delivered object message.
fn pump(nodes: &mut [MolNode<Counter>]) -> Vec<(usize, MobilePtr, u32, Bytes)> {
    let mut out = Vec::new();
    loop {
        let mut quiet = true;
        for (rank, node) in nodes.iter_mut().enumerate() {
            for ev in node.poll() {
                quiet = false;
                if let MolEvent::Object {
                    ptr,
                    handler,
                    payload,
                    ..
                } = ev
                {
                    out.push((rank, ptr, handler, payload));
                }
            }
        }
        if quiet {
            break;
        }
    }
    out
}

fn apply_add(node: &mut MolNode<Counter>, ptr: MobilePtr, payload: &Bytes) {
    let delta = i64::from_le_bytes(payload[..8].try_into().unwrap());
    node.with_object(ptr, |_, obj| obj.value += delta).unwrap();
}

#[test]
fn duplicated_wire_is_idempotent() {
    // dup_p = 1.0: every envelope is delivered twice. Message sequence
    // numbers must discard the replays, and the migration epoch guard must
    // discard the second MigratePacket instead of double-installing.
    let cfg = ChaosConfig {
        dup_p: 1.0,
        ..ChaosConfig::quiet(11)
    };
    let (mut nodes, _handle) = chaos_machine(2, cfg);
    let ptr = nodes[0].register(Counter { id: 3, value: 0 });

    // Two remote messages, each doubled on the wire: applied exactly once.
    for delta in [5i64, 7] {
        nodes[1].message(ptr, H_ADD, Bytes::copy_from_slice(&delta.to_le_bytes()));
    }
    let evs = pump(&mut nodes);
    assert_eq!(evs.len(), 2, "duplicates leaked through: {evs:?}");
    for (rank, p, _h, payload) in &evs {
        apply_add(&mut nodes[*rank], *p, payload);
    }
    assert_eq!(nodes[0].get(ptr).unwrap().value, 12);
    assert_eq!(nodes[0].stats().duplicates, 2);

    // Migrate under the same wire: the doubled MigratePacket must install
    // once and count the replay as stale, not clone the object.
    assert!(nodes[0].migrate(ptr, 1));
    let _ = pump(&mut nodes);
    assert!(nodes[1].is_local(ptr));
    assert_eq!(nodes[1].get(ptr).unwrap().value, 12);
    assert_eq!(nodes[1].stats().migrations_in, 1);
    assert_eq!(nodes[1].stats().stale_installs, 1);

    // Post-migration delivery still exactly-once.
    nodes[0].message(ptr, H_ADD, Bytes::copy_from_slice(&1i64.to_le_bytes()));
    let evs = pump(&mut nodes);
    assert_eq!(evs.len(), 1);
    assert_eq!(evs[0].0, 1);
    nodes[0].verify_conservation();
    nodes[1].verify_conservation();
}

#[test]
fn lost_location_update_degrades_to_forwarding() {
    // The lazy location update taught to a sender after a forward hop is an
    // optimization, not a correctness dependency: when the wire eats it, the
    // sender keeps routing via the home rank's forwarding pointer and every
    // message still arrives, in order.
    let (mut nodes, handle) = chaos_machine(3, ChaosConfig::quiet(13));
    let ptr = nodes[0].register(Counter { id: 1, value: 0 });
    assert!(nodes[0].migrate(ptr, 2));
    let _ = pump(&mut nodes); // install on 2, home learns the new location

    // Rank 1 (which knows nothing) sends via home; rank 0 forwards to 2 and
    // mails rank 1 a location update — which we then eat with a partition
    // before rank 1 drains it.
    nodes[1].message(ptr, H_ADD, Bytes::copy_from_slice(&4i64.to_le_bytes()));
    let _ = nodes[0].poll(); // forward hop + LocUpdate now in rank 1's inbox
    handle.partition(0, 1);
    let _ = nodes[1].poll(); // admission drops the in-flight LocUpdate
    assert_eq!(
        handle.stats().partitioned,
        1,
        "expected exactly the LocUpdate to be eaten"
    );
    handle.heal_all();

    // The first message was already past the partition: it arrives.
    let evs = pump(&mut nodes);
    assert_eq!(evs.len(), 1);
    assert_eq!(evs[0].0, 2, "delivered at the object's actual rank");
    apply_add(&mut nodes[2], ptr, &evs[0].3);

    // Rank 1 never learned the location, so the next message takes the
    // forwarding chain again — and must still arrive.
    nodes[1].message(ptr, H_ADD, Bytes::copy_from_slice(&2i64.to_le_bytes()));
    let evs = pump(&mut nodes);
    assert_eq!(evs.len(), 1);
    assert_eq!(evs[0].0, 2);
    apply_add(&mut nodes[2], ptr, &evs[0].3);
    assert_eq!(nodes[2].get(ptr).unwrap().value, 6);
    assert_eq!(
        nodes[0].stats().forwarded,
        2,
        "second send should have ridden the forwarding chain"
    );
    for n in &nodes {
        n.verify_conservation();
    }
}
