//! MOL under an unreliable wire: duplicated migration packets must install
//! exactly once, duplicated messages must execute exactly once, and a lost
//! location update must degrade to forwarding — never to lost delivery.

use bytes::Bytes;
use prema_dcs::{ChaosConfig, ChaosHandle, ChaosTransport, Communicator, LocalFabric};
use prema_mol::{shard_of, MobilePtr, MolConfig, MolEvent, MolNode, MAX_CHAIN};

#[derive(Debug, PartialEq)]
struct Counter {
    id: u64,
    value: i64,
}

impl prema_mol::Migratable for Counter {
    fn pack(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.id.to_le_bytes());
        buf.extend_from_slice(&self.value.to_le_bytes());
    }
    fn unpack(buf: &[u8]) -> Self {
        Counter {
            id: u64::from_le_bytes(buf[..8].try_into().unwrap()),
            value: i64::from_le_bytes(buf[8..16].try_into().unwrap()),
        }
    }
}

const H_ADD: u32 = 1;

/// An N-rank machine whose wire is wrapped in [`ChaosTransport`]s sharing
/// one [`ChaosHandle`].
fn chaos_machine(n: usize, cfg: ChaosConfig) -> (Vec<MolNode<Counter>>, ChaosHandle) {
    chaos_machine_with(n, cfg, MolConfig::default())
}

fn chaos_machine_with(
    n: usize,
    cfg: ChaosConfig,
    mol: MolConfig,
) -> (Vec<MolNode<Counter>>, ChaosHandle) {
    let handle = ChaosHandle::new();
    let nodes = LocalFabric::new(n)
        .into_iter()
        .map(|ep| {
            let chaos = ChaosTransport::new(ep, cfg, handle.clone());
            MolNode::with_config(Communicator::new(Box::new(chaos)), mol)
        })
        .collect();
    (nodes, handle)
}

/// Pump every node until a full quiet round; returns (rank, ptr, handler,
/// payload) for every delivered object message.
fn pump(nodes: &mut [MolNode<Counter>]) -> Vec<(usize, MobilePtr, u32, Bytes)> {
    let mut out = Vec::new();
    loop {
        // Quiet means *nothing moved*: no events delivered and no envelope
        // received anywhere — a forwarding hop produces no MolEvent but must
        // still count as progress or a chain through a lower-ranked node
        // would strand mid-pump.
        let before: u64 = nodes.iter().map(|n| n.comm().stats().msgs_recvd).sum();
        let mut quiet = true;
        for (rank, node) in nodes.iter_mut().enumerate() {
            for ev in node.poll() {
                quiet = false;
                if let MolEvent::Object {
                    ptr,
                    handler,
                    payload,
                    ..
                } = ev
                {
                    out.push((rank, ptr, handler, payload));
                }
            }
        }
        let after: u64 = nodes.iter().map(|n| n.comm().stats().msgs_recvd).sum();
        if quiet && after == before {
            break;
        }
    }
    out
}

fn apply_add(node: &mut MolNode<Counter>, ptr: MobilePtr, payload: &Bytes) {
    let delta = i64::from_le_bytes(payload[..8].try_into().unwrap());
    node.with_object(ptr, |_, obj| obj.value += delta).unwrap();
}

#[test]
fn duplicated_wire_is_idempotent() {
    // dup_p = 1.0: every envelope is delivered twice. Message sequence
    // numbers must discard the replays, and the migration epoch guard must
    // discard the second MigratePacket instead of double-installing.
    let cfg = ChaosConfig {
        dup_p: 1.0,
        ..ChaosConfig::quiet(11)
    };
    let (mut nodes, _handle) = chaos_machine(2, cfg);
    let ptr = nodes[0].register(Counter { id: 3, value: 0 });

    // Two remote messages, each doubled on the wire: applied exactly once.
    for delta in [5i64, 7] {
        nodes[1].message(ptr, H_ADD, Bytes::copy_from_slice(&delta.to_le_bytes()));
    }
    let evs = pump(&mut nodes);
    assert_eq!(evs.len(), 2, "duplicates leaked through: {evs:?}");
    for (rank, p, _h, payload) in &evs {
        apply_add(&mut nodes[*rank], *p, payload);
    }
    assert_eq!(nodes[0].get(ptr).unwrap().value, 12);
    assert_eq!(nodes[0].stats().duplicates, 2);

    // Migrate under the same wire: the doubled MigratePacket must install
    // once and count the replay as stale, not clone the object.
    assert!(nodes[0].migrate(ptr, 1));
    let _ = pump(&mut nodes);
    assert!(nodes[1].is_local(ptr));
    assert_eq!(nodes[1].get(ptr).unwrap().value, 12);
    assert_eq!(nodes[1].stats().migrations_in, 1);
    assert_eq!(nodes[1].stats().stale_installs, 1);

    // Post-migration delivery still exactly-once.
    nodes[0].message(ptr, H_ADD, Bytes::copy_from_slice(&1i64.to_le_bytes()));
    let evs = pump(&mut nodes);
    assert_eq!(evs.len(), 1);
    assert_eq!(evs[0].0, 1);
    nodes[0].verify_conservation();
    nodes[1].verify_conservation();
}

#[test]
fn lost_location_update_degrades_to_forwarding() {
    // The lazy location update taught to a sender after a forward hop is an
    // optimization, not a correctness dependency: when the wire eats it, the
    // sender keeps routing via the home rank's forwarding pointer and every
    // message still arrives, in order. Pinned to the legacy home-forwarding
    // directory — the sharded equivalent is covered below.
    let (mut nodes, handle) = chaos_machine_with(
        3,
        ChaosConfig::quiet(13),
        MolConfig {
            sharded_directory: false,
            ..MolConfig::default()
        },
    );
    let ptr = nodes[0].register(Counter { id: 1, value: 0 });
    assert!(nodes[0].migrate(ptr, 2));
    let _ = pump(&mut nodes); // install on 2, home learns the new location

    // Rank 1 (which knows nothing) sends via home; rank 0 forwards to 2 and
    // mails rank 1 a location update — which we then eat with a partition
    // before rank 1 drains it.
    nodes[1].message(ptr, H_ADD, Bytes::copy_from_slice(&4i64.to_le_bytes()));
    let _ = nodes[0].poll(); // forward hop + LocUpdate now in rank 1's inbox
    handle.partition(0, 1);
    let _ = nodes[1].poll(); // admission drops the in-flight LocUpdate
    assert_eq!(
        handle.stats().partitioned,
        1,
        "expected exactly the LocUpdate to be eaten"
    );
    handle.heal_all();

    // The first message was already past the partition: it arrives.
    let evs = pump(&mut nodes);
    assert_eq!(evs.len(), 1);
    assert_eq!(evs[0].0, 2, "delivered at the object's actual rank");
    apply_add(&mut nodes[2], ptr, &evs[0].3);

    // Rank 1 never learned the location, so the next message takes the
    // forwarding chain again — and must still arrive.
    nodes[1].message(ptr, H_ADD, Bytes::copy_from_slice(&2i64.to_le_bytes()));
    let evs = pump(&mut nodes);
    assert_eq!(evs.len(), 1);
    assert_eq!(evs[0].0, 2);
    apply_add(&mut nodes[2], ptr, &evs[0].3);
    assert_eq!(nodes[2].get(ptr).unwrap().value, 6);
    assert_eq!(
        nodes[0].stats().forwarded,
        2,
        "second send should have ridden the forwarding chain"
    );
    for n in &nodes {
        n.verify_conservation();
    }
}

/// Register counters on rank 0 until one's home shard is a rank other than
/// any in `avoid` — lets a test place the shard where the scenario needs it.
fn register_with_shard_not_in(
    nodes: &mut [MolNode<Counter>],
    avoid: &[usize],
) -> (MobilePtr, usize) {
    let n = nodes.len();
    for id in 0..64 {
        let ptr = nodes[0].register(Counter { id, value: 0 });
        let shard = shard_of(ptr, n);
        if !avoid.contains(&shard) {
            return (ptr, shard);
        }
    }
    panic!("no pointer hashed to an acceptable shard in 64 tries");
}

#[test]
fn lost_publish_degrades_to_home_forwarding() {
    // A migration's DirPublish to the home shard is an optimization: when a
    // partition eats it, a cold sender's shard miss falls back to the
    // pointer's home rank, whose never-evicted forward pointer still reaches
    // the object. Chains stay within MAX_CHAIN, and nothing wedges.
    let (mut nodes, handle) = chaos_machine(4, ChaosConfig::quiet(17));
    // Shard must be remote from rank 0 (else the publish is a local fold
    // that chaos can't eat) and distinct from the migration target.
    let (ptr, shard) = register_with_shard_not_in(&mut nodes, &[0, 1]);
    let dst = 1;

    handle.partition(0, shard);
    assert!(nodes[0].migrate(ptr, dst));
    let _ = pump(&mut nodes); // install lands on dst; the publish is eaten
    assert!(nodes[dst].is_local(ptr));
    assert!(
        handle.stats().partitioned >= 1,
        "expected the DirPublish to be eaten"
    );
    handle.heal_all();

    // A cold sender (neither home, shard, nor owner) misses its cache, asks
    // the shard; the shard knows nothing and anchors the message to the
    // pointer's home, which forwards down its trail to the owner.
    let sender = (0..4).find(|r| ![0, dst, shard].contains(r)).unwrap();
    nodes[sender].message(ptr, H_ADD, Bytes::copy_from_slice(&4i64.to_le_bytes()));
    let evs = pump(&mut nodes);
    assert_eq!(evs.len(), 1, "message lost after eaten publish");
    assert_eq!(evs[0].0, dst, "delivered at the object's actual rank");
    apply_add(&mut nodes[dst], ptr, &evs[0].3);
    assert_eq!(nodes[dst].get(ptr).unwrap().value, 4);
    let max_chain = nodes.iter().map(|n| n.stats().max_chain).max().unwrap();
    assert!(
        max_chain <= MAX_CHAIN,
        "degraded chain {max_chain} exceeded MAX_CHAIN {MAX_CHAIN}"
    );
    for n in &nodes {
        n.verify_conservation();
    }
}

#[test]
fn lost_shard_answers_degrade_to_forwarding() {
    // The DirAnswers that forwarders and the shard mail back to teach a
    // sender are pure optimization: seeded loss of every reply leaves the
    // sender with only its self-cached epoch-0 home guess, so each send
    // rides home → shard redirect → owner — delivery stays exactly-once and
    // in order, and nothing wedges.
    let (mut nodes, handle) = chaos_machine(4, ChaosConfig::quiet(19));
    let (ptr, shard) = register_with_shard_not_in(&mut nodes, &[0, 1]);
    let dst = 1;
    assert!(nodes[0].migrate(ptr, dst));
    let _ = pump(&mut nodes); // publish reaches the shard

    let sender = (0..4).find(|r| ![0, dst, shard].contains(r)).unwrap();
    for delta in [3i64, 9] {
        // The cold miss caches "lives at home" and routes there; home
        // redirects through the shard, which anchors the message to the
        // owner. Both hops mail the sender a teaching DirAnswer — cut the
        // sender off from both teachers so every reply dies in flight.
        nodes[sender].message(ptr, H_ADD, Bytes::copy_from_slice(&delta.to_le_bytes()));
        let _ = nodes[0].poll(); // home: redirect to shard + DirAnswer to sender
        let _ = nodes[shard].poll(); // shard: anchor to owner + DirAnswer to sender
        handle.partition(sender, 0);
        handle.partition(sender, shard);
        let _ = nodes[sender].poll(); // admission drops the in-flight answers
        handle.heal_all();
        let evs = pump(&mut nodes);
        assert_eq!(evs.len(), 1, "message lost with answers eaten");
        assert_eq!(evs[0].0, dst);
        apply_add(&mut nodes[dst], ptr, &evs[0].3);
    }
    assert_eq!(nodes[dst].get(ptr).unwrap().value, 12);
    // The sender never learned the true location: one genuine cold miss,
    // then one stale hit on its own epoch-0 home guess.
    assert_eq!(nodes[sender].stats().loc_cache_misses, 1);
    assert_eq!(nodes[sender].stats().loc_cache_hits, 1);
    let max_chain = nodes.iter().map(|n| n.stats().max_chain).max().unwrap();
    assert!(max_chain <= MAX_CHAIN);
    for n in &nodes {
        n.verify_conservation();
    }
}
