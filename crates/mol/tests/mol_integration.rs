//! Integration tests for the Mobile Object Layer: naming, routing,
//! migration, forwarding chains, and delivery-order preservation.

use bytes::Bytes;
use prema_dcs::{Communicator, LocalFabric, Tag};
use prema_mol::{MobilePtr, MolEvent, MolNode};

/// A trivial mobile object: a counter with an id.
#[derive(Debug, PartialEq)]
struct Counter {
    id: u64,
    value: i64,
}

impl prema_mol::Migratable for Counter {
    fn pack(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.id.to_le_bytes());
        buf.extend_from_slice(&self.value.to_le_bytes());
    }
    fn unpack(buf: &[u8]) -> Self {
        Counter {
            id: u64::from_le_bytes(buf[..8].try_into().unwrap()),
            value: i64::from_le_bytes(buf[8..16].try_into().unwrap()),
        }
    }
}

/// Build an N-rank machine with all nodes owned by the test thread, so the
/// test can interleave polls deterministically.
fn machine(n: usize) -> Vec<MolNode<Counter>> {
    LocalFabric::new(n)
        .into_iter()
        .map(|ep| MolNode::new(Communicator::new(Box::new(ep))))
        .collect()
}

/// Like [`machine`] but with the legacy home-forwarding directory, for tests
/// that exercise forward-pointer chains and LocUpdate teaching specifically.
fn legacy_machine(n: usize) -> Vec<MolNode<Counter>> {
    use prema_mol::MolConfig;
    let cfg = MolConfig {
        sharded_directory: false,
        ..MolConfig::default()
    };
    LocalFabric::new(n)
        .into_iter()
        .map(|ep| MolNode::with_config(Communicator::new(Box::new(ep)), cfg))
        .collect()
}

/// Pump every node until no events flow for one full round. Returns all
/// object-message events seen, tagged with the rank that executed them.
fn pump(nodes: &mut [MolNode<Counter>]) -> Vec<(usize, MobilePtr, u32, Bytes)> {
    let mut out = Vec::new();
    loop {
        let mut quiet = true;
        for (rank, node) in nodes.iter_mut().enumerate() {
            for ev in node.poll() {
                quiet = false;
                if let MolEvent::Object {
                    ptr,
                    handler,
                    payload,
                    ..
                } = ev
                {
                    out.push((rank, ptr, handler, payload));
                }
            }
        }
        if quiet {
            break;
        }
    }
    out
}

const H_ADD: u32 = 1;

fn apply_add(node: &mut MolNode<Counter>, ptr: MobilePtr, payload: &Bytes) {
    let delta = i64::from_le_bytes(payload[..8].try_into().unwrap());
    node.with_object(ptr, |_, obj| obj.value += delta).unwrap();
}

#[test]
fn local_message_delivery() {
    let mut nodes = machine(1);
    let ptr = nodes[0].register(Counter { id: 7, value: 0 });
    nodes[0].message(ptr, H_ADD, Bytes::copy_from_slice(&5i64.to_le_bytes()));
    let evs = pump(&mut nodes);
    assert_eq!(evs.len(), 1);
    let (rank, p, h, payload) = &evs[0];
    assert_eq!((*rank, *p, *h), (0, ptr, H_ADD));
    apply_add(&mut nodes[0], ptr, payload);
    assert_eq!(nodes[0].get(ptr).unwrap().value, 5);
}

#[test]
fn remote_message_routes_to_home() {
    let mut nodes = machine(3);
    let ptr = nodes[2].register(Counter { id: 1, value: 0 });
    // Rank 0 has never heard of ptr; routing falls back to the home rank.
    nodes[0].message(ptr, H_ADD, Bytes::copy_from_slice(&3i64.to_le_bytes()));
    let evs = pump(&mut nodes);
    assert_eq!(evs.len(), 1);
    assert_eq!(evs[0].0, 2, "delivered at the home rank");
}

#[test]
fn migration_moves_state_and_name_follows() {
    let mut nodes = machine(2);
    let ptr = nodes[0].register(Counter { id: 9, value: 41 });
    assert!(nodes[0].migrate(ptr, 1));
    let _ = pump(&mut nodes);
    assert!(!nodes[0].is_local(ptr));
    assert!(nodes[1].is_local(ptr));
    assert_eq!(nodes[1].get(ptr).unwrap(), &Counter { id: 9, value: 41 });
    assert_eq!(nodes[1].stats().migrations_in, 1);
    assert_eq!(nodes[0].stats().migrations_out, 1);

    // Messages addressed via the old location still arrive (forwarding).
    nodes[0].message(ptr, H_ADD, Bytes::copy_from_slice(&1i64.to_le_bytes()));
    let evs = pump(&mut nodes);
    assert_eq!(evs.len(), 1);
    assert_eq!(evs[0].0, 1);
}

#[test]
fn forwarding_chain_and_lazy_location_update() {
    // Legacy directory: the sharded one can collapse the chain to zero
    // forwards (e.g. when the sender happens to be the home shard), which is
    // exactly what this test must not depend on.
    let mut nodes = legacy_machine(4);
    let ptr = nodes[0].register(Counter { id: 2, value: 0 });
    // Hop 0 → 1 → 2 → 3 without letting rank 0's knowledge catch up fully.
    assert!(nodes[0].migrate(ptr, 1));
    let _ = pump(&mut nodes);
    assert!(nodes[1].migrate(ptr, 2));
    let _ = pump(&mut nodes);
    assert!(nodes[2].migrate(ptr, 3));
    let _ = pump(&mut nodes);
    assert!(nodes[3].is_local(ptr));

    // A message from rank 1 (stale: thinks the object is at 2) must chase the
    // forward pointers to rank 3.
    nodes[1].message(ptr, H_ADD, Bytes::copy_from_slice(&7i64.to_le_bytes()));
    let evs = pump(&mut nodes);
    assert_eq!(evs.len(), 1);
    assert_eq!(evs[0].0, 3);
    // Somebody forwarded along the way.
    let total_forwards: u64 = nodes.iter().map(|n| n.stats().forwarded).sum();
    assert!(total_forwards >= 1);

    // After the lazy location update, the next send goes direct: no new
    // forwards should be needed.
    nodes[1].message(ptr, H_ADD, Bytes::copy_from_slice(&1i64.to_le_bytes()));
    let before: u64 = nodes.iter().map(|n| n.stats().forwarded).sum();
    let evs = pump(&mut nodes);
    assert_eq!(evs.len(), 1);
    assert_eq!(evs[0].0, 3);
    let after: u64 = nodes.iter().map(|n| n.stats().forwarded).sum();
    assert_eq!(
        before, after,
        "location update should have collapsed the chain"
    );
}

#[test]
fn per_sender_order_preserved_across_migration() {
    let mut nodes = machine(3);
    let ptr = nodes[0].register(Counter { id: 3, value: 0 });
    // Sender (rank 2) fires a stream of messages; the object migrates
    // mid-stream. Delivery order must match send order exactly.
    for i in 0..5i64 {
        nodes[2].message(ptr, H_ADD, Bytes::copy_from_slice(&i.to_le_bytes()));
    }
    // Migrate before the messages are polled anywhere.
    assert!(nodes[0].migrate(ptr, 1));
    for i in 5..10i64 {
        nodes[2].message(ptr, H_ADD, Bytes::copy_from_slice(&i.to_le_bytes()));
    }
    let evs = pump(&mut nodes);
    let seen: Vec<i64> = evs
        .iter()
        .map(|(_, _, _, p)| i64::from_le_bytes(p[..8].try_into().unwrap()))
        .collect();
    assert_eq!(seen, (0..10).collect::<Vec<_>>(), "order violated");
    // All delivered at the new owner or the old one, but each exactly once.
    assert_eq!(evs.len(), 10);
}

#[test]
fn pending_messages_travel_with_the_object() {
    let mut nodes = machine(2);
    let ptr = nodes[0].register(Counter { id: 4, value: 0 });
    // Deliver a message into rank 0's ready queue but do not execute it.
    nodes[0].message(ptr, H_ADD, Bytes::copy_from_slice(&11i64.to_le_bytes()));
    // (message + ready enqueue happen inside poll)
    let pre = nodes[0].ready_len();
    assert_eq!(pre, 1, "message should be queued locally");
    // Migrate: the queued message must go along.
    assert!(nodes[0].migrate(ptr, 1));
    assert_eq!(nodes[0].ready_len(), 0);
    let evs = pump(&mut nodes);
    assert_eq!(evs.len(), 1);
    assert_eq!(evs[0].0, 1, "pending message re-delivered at destination");
}

#[test]
fn with_object_self_sends_are_delivered_after() {
    let mut nodes = machine(1);
    let ptr = nodes[0].register(Counter { id: 5, value: 0 });
    nodes[0].message(ptr, H_ADD, Bytes::copy_from_slice(&1i64.to_le_bytes()));
    let evs = pump(&mut nodes);
    assert_eq!(evs.len(), 1);
    // Handler sends to its own object (the paper's tree-walk pattern).
    nodes[0].with_object(ptr, |node, obj| {
        obj.value += 1;
        node.message(ptr, H_ADD, Bytes::copy_from_slice(&2i64.to_le_bytes()));
    });
    let evs = pump(&mut nodes);
    assert_eq!(evs.len(), 1, "self-send must surface as a later event");
}

#[test]
fn system_poll_sees_migrations_but_not_app_messages() {
    let mut nodes = machine(2);
    let ptr = nodes[0].register(Counter { id: 6, value: 0 });
    // An app message and a migration race toward rank 1.
    nodes[0].message(ptr, H_ADD, Bytes::copy_from_slice(&1i64.to_le_bytes()));
    // ^ local: queued at rank 0. Now something for rank 1:
    nodes[0].node_message(1, 42, Tag::App, Bytes::from_static(b"app"));
    nodes[0].node_message(1, 43, Tag::System, Bytes::from_static(b"sys"));
    nodes[0].migrate(ptr, 1);

    // Rank 1 does a *system-only* poll, as the preemptive polling thread
    // would mid-work-unit.
    let evs = nodes[1].poll_system();
    let mut saw_install = false;
    let mut saw_sys_node = false;
    for ev in &evs {
        match ev {
            MolEvent::Installed { ptr: p, .. } => {
                assert_eq!(*p, ptr);
                saw_install = true;
            }
            MolEvent::Node {
                handler, system, ..
            } => {
                assert!(*system);
                assert_eq!(*handler, 43);
                saw_sys_node = true;
            }
            MolEvent::Object { .. } => panic!("app message processed by system poll"),
        }
    }
    assert!(saw_install && saw_sys_node);

    // The app message is still there for the application's own poll.
    let evs = nodes[1].poll();
    let app_node: Vec<_> = evs
        .iter()
        .filter_map(|e| match e {
            MolEvent::Node {
                handler,
                system: false,
                ..
            } => Some(*handler),
            _ => None,
        })
        .collect();
    assert_eq!(app_node, vec![42]);
}

#[test]
fn two_objects_same_rank_are_independent() {
    let mut nodes = machine(2);
    let a = nodes[0].register(Counter { id: 1, value: 0 });
    let b = nodes[0].register(Counter { id: 2, value: 0 });
    assert_ne!(a, b);
    nodes[1].message(a, H_ADD, Bytes::copy_from_slice(&10i64.to_le_bytes()));
    nodes[1].message(b, H_ADD, Bytes::copy_from_slice(&20i64.to_le_bytes()));
    let evs = pump(&mut nodes);
    assert_eq!(evs.len(), 2);
    for (_, ptr, _, payload) in evs {
        let v = i64::from_le_bytes(payload[..8].try_into().unwrap());
        if ptr == a {
            assert_eq!(v, 10);
        } else {
            assert_eq!(v, 20);
        }
    }
}

#[test]
fn object_returns_home_after_round_trip() {
    let mut nodes = machine(2);
    let ptr = nodes[0].register(Counter { id: 8, value: 1 });
    assert!(nodes[0].migrate(ptr, 1));
    let _ = pump(&mut nodes);
    assert!(nodes[1].migrate(ptr, 0));
    let _ = pump(&mut nodes);
    assert!(nodes[0].is_local(ptr), "object should be home again");
    // Messages from both ranks still arrive.
    nodes[1].message(ptr, H_ADD, Bytes::copy_from_slice(&1i64.to_le_bytes()));
    let evs = pump(&mut nodes);
    assert_eq!(evs.len(), 1);
    assert_eq!(evs[0].0, 0);
}

#[test]
fn migrate_nonlocal_returns_false() {
    let mut nodes = machine(2);
    let ptr = nodes[0].register(Counter { id: 1, value: 0 });
    assert!(!nodes[1].migrate(ptr, 0));
    assert!(nodes[0].migrate(ptr, 1));
    assert!(!nodes[0].migrate(ptr, 1), "second migrate of a gone object");
}

/// Multi-threaded smoke test: four ranks on four threads, objects bouncing
/// while senders stream messages — order must hold per sender.
#[test]
fn threaded_stress_ordering() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    const MSGS: i64 = 200;
    let eps = LocalFabric::new(2);
    let mut it = eps.into_iter();
    let ep0 = it.next().unwrap();
    let ep1 = it.next().unwrap();

    // Rank 0 registers the object and keeps migrating it 0→1→0…; rank 1
    // streams messages at it. We verify the deltas arrive in order by making
    // the handler assert monotonicity.
    let done = Arc::new(AtomicU64::new(0));
    let done2 = done.clone();

    let t0 = std::thread::spawn(move || {
        let mut node: MolNode<Counter> = MolNode::new(Communicator::new(Box::new(ep0)));
        let ptr = node.register(Counter { id: 1, value: -1 });
        // Tell rank 1 the pointer via a node message.
        node.node_message(1, 0, Tag::App, Bytes::copy_from_slice(&ptr.to_bytes()));
        let mut received = 0i64;
        while received < MSGS {
            for ev in node.poll() {
                if let MolEvent::Object { ptr, payload, .. } = ev {
                    let v = i64::from_le_bytes(payload[..8].try_into().unwrap());
                    node.with_object(ptr, |_, obj| {
                        assert_eq!(v, obj.value + 1, "out of order delivery");
                        obj.value = v;
                    });
                    received += 1;
                }
            }
            std::thread::yield_now();
        }
        done2.store(1, Ordering::SeqCst);
    });

    let t1 = std::thread::spawn(move || {
        let mut node: MolNode<Counter> = MolNode::new(Communicator::new(Box::new(ep1)));
        // Wait for the pointer.
        let ptr = loop {
            let mut got = None;
            for ev in node.poll() {
                if let MolEvent::Node { payload, .. } = ev {
                    got = Some(MobilePtr::from_bytes(payload[..16].try_into().unwrap()));
                }
            }
            if let Some(p) = got {
                break p;
            }
            std::thread::yield_now();
        };
        for i in 0..MSGS {
            node.message(ptr, H_ADD, Bytes::copy_from_slice(&i.to_le_bytes()));
            if i % 37 == 0 {
                let _ = node.poll();
            }
        }
        // Keep polling (to forward or answer) until rank 0 reports done.
        while done.load(Ordering::SeqCst) == 0 {
            let _ = node.poll();
            std::thread::yield_now();
        }
    });

    t0.join().unwrap();
    t1.join().unwrap();
}

#[test]
fn eager_broadcast_strategy_eliminates_forwarding() {
    use prema_mol::MolConfig;
    // Two machines, same migration churn: lazy (default) vs eager broadcast.
    let run = |cfg: MolConfig| {
        let mut nodes: Vec<MolNode<Counter>> = LocalFabric::new(4)
            .into_iter()
            .map(|ep| MolNode::with_config(Communicator::new(Box::new(ep)), cfg))
            .collect();
        let ptr = nodes[0].register(Counter { id: 1, value: 0 });
        // Walk the object around the machine; after each hop let everyone
        // learn whatever the strategy disseminates, then send from rank 3.
        for hop in [1usize, 2, 3, 1, 2] {
            if let Some(src) = nodes.iter().position(|nd| nd.is_local(ptr)) {
                if src != hop {
                    assert!(nodes[src].migrate(ptr, hop));
                }
            }
            // Propagate installs/updates.
            for _ in 0..3 {
                for n in nodes.iter_mut() {
                    let _ = n.poll();
                }
            }
            nodes[3].message(ptr, H_ADD, Bytes::copy_from_slice(&1i64.to_le_bytes()));
            let _ = pump(&mut nodes);
        }
        let forwards: u64 = nodes.iter().map(|n| n.stats().forwarded).sum();
        let updates: u64 = nodes.iter().map(|n| n.stats().locupd_sent).sum();
        (forwards, updates)
    };
    let (lazy_fwd, lazy_upd) = run(MolConfig::default());
    let (eager_fwd, eager_upd) = run(MolConfig {
        broadcast_on_install: true,
        ..MolConfig::default()
    });
    // Eager dissemination: senders always know the location → no forwarding,
    // at the price of more update traffic.
    assert_eq!(eager_fwd, 0, "eager broadcast still forwarded");
    assert!(eager_upd > lazy_upd, "eager should send more updates");
    // Lazy must still deliver (correctness was asserted by pump), possibly
    // with some forwarding.
    let _ = lazy_fwd;
}

#[test]
fn fully_lazy_strategy_still_delivers_via_chains() {
    use prema_mol::MolConfig;
    // Every dissemination knob off: the only routing knowledge is forward
    // pointers. Delivery must still work, with longer chains.
    let cfg = MolConfig {
        update_home_on_install: false,
        update_sender_on_forward: false,
        broadcast_on_install: false,
        sharded_directory: false,
        ..MolConfig::default()
    };
    let mut nodes: Vec<MolNode<Counter>> = LocalFabric::new(4)
        .into_iter()
        .map(|ep| MolNode::with_config(Communicator::new(Box::new(ep)), cfg))
        .collect();
    let ptr = nodes[0].register(Counter { id: 9, value: 0 });
    assert!(nodes[0].migrate(ptr, 1));
    let _ = pump(&mut nodes);
    assert!(nodes[1].migrate(ptr, 2));
    let _ = pump(&mut nodes);
    assert!(nodes[2].migrate(ptr, 3));
    let _ = pump(&mut nodes);
    for i in 0..4i64 {
        nodes[0].message(ptr, H_ADD, Bytes::copy_from_slice(&i.to_le_bytes()));
    }
    let evs = pump(&mut nodes);
    assert_eq!(evs.len(), 4);
    assert!(evs.iter().all(|(rank, ..)| *rank == 3));
    // Chains were actually exercised.
    let forwards: u64 = nodes.iter().map(|n| n.stats().forwarded).sum();
    assert!(forwards >= 4, "expected chain forwarding, got {forwards}");
}

/// Wide-area race: with injected latency, migrations and the messages
/// chasing them genuinely overlap in flight. Order and exactly-once delivery
/// must survive.
#[test]
fn threaded_ordering_survives_injected_latency() {
    use prema_dcs::DelayTransport;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    const MSGS: i64 = 60;
    let mut eps = prema_dcs::LocalFabric::new(3).into_iter();
    let ep0 = DelayTransport::new(eps.next().unwrap(), Duration::from_millis(2));
    let ep1 = DelayTransport::new(eps.next().unwrap(), Duration::from_millis(2));
    let ep2 = DelayTransport::new(eps.next().unwrap(), Duration::from_millis(2));

    // Global exactly-once counter: every delivery increments it, wherever
    // the object happens to live at that moment.
    let delivered = Arc::new(AtomicU64::new(0));
    let (d0, d1, d2) = (delivered.clone(), delivered.clone(), delivered.clone());

    // Rank 0: owns the object initially; occasionally pushes it to rank 1.
    let t0 = std::thread::spawn(move || {
        let mut node: MolNode<Counter> = MolNode::new(Communicator::new(Box::new(ep0)));
        let ptr = node.register(Counter { id: 1, value: -1 });
        node.node_message(2, 0, Tag::App, Bytes::copy_from_slice(&ptr.to_bytes()));
        let mut local = 0i64;
        let mut hops = 0;
        while d0.load(Ordering::SeqCst) < MSGS as u64 {
            for ev in node.poll() {
                if let MolEvent::Object { ptr, payload, .. } = ev {
                    let v = i64::from_le_bytes(payload[..8].try_into().unwrap());
                    node.with_object(ptr, |_, obj| {
                        assert_eq!(v, obj.value + 1, "out of order under latency");
                        obj.value = v;
                    });
                    local += 1;
                    d0.fetch_add(1, Ordering::SeqCst);
                }
            }
            if node.is_local(ptr) && hops < 20 && local % 3 == 1 && node.migrate(ptr, 1) {
                hops += 1;
            }
            std::thread::yield_now();
        }
        local
    });

    // Rank 1: bounces the object straight back whenever it lands here.
    let t1 = std::thread::spawn(move || {
        let mut node: MolNode<Counter> = MolNode::new(Communicator::new(Box::new(ep1)));
        let mut local = 0i64;
        while d1.load(Ordering::SeqCst) < MSGS as u64 {
            // NOTE: all delivered Object events must be executed before the
            // object may migrate again — otherwise the already-dequeued
            // deliveries would be lost (see MolNode::poll docs). So act on
            // Installed only after draining the batch.
            let mut bounce = None;
            for ev in node.poll() {
                match ev {
                    MolEvent::Object { ptr, payload, .. } => {
                        let v = i64::from_le_bytes(payload[..8].try_into().unwrap());
                        node.with_object(ptr, |_, obj| {
                            assert_eq!(v, obj.value + 1, "out of order under latency");
                            obj.value = v;
                        });
                        local += 1;
                        d1.fetch_add(1, Ordering::SeqCst);
                    }
                    MolEvent::Installed { ptr, .. } => bounce = Some(ptr),
                    _ => {}
                }
            }
            if let Some(ptr) = bounce {
                let _ = node.migrate(ptr, 0);
            }
            std::thread::yield_now();
        }
        local
    });

    // Rank 2: the sender.
    let t2 = std::thread::spawn(move || {
        let mut node: MolNode<Counter> = MolNode::new(Communicator::new(Box::new(ep2)));
        let ptr = loop {
            let mut got = None;
            for ev in node.poll() {
                if let MolEvent::Node { payload, .. } = ev {
                    got = Some(MobilePtr::from_bytes(payload[..16].try_into().unwrap()));
                }
            }
            if let Some(p) = got {
                break p;
            }
            std::thread::yield_now();
        };
        for i in 0..MSGS {
            node.message(ptr, H_ADD, Bytes::copy_from_slice(&i.to_le_bytes()));
            if i % 5 == 0 {
                std::thread::sleep(Duration::from_micros(300));
            }
            let _ = node.poll();
        }
        // Keep routing (forwarding duty) until everything is delivered.
        while d2.load(Ordering::SeqCst) < MSGS as u64 {
            let _ = node.poll();
            std::thread::yield_now();
        }
    });

    let r0 = t0.join().unwrap();
    let r1 = t1.join().unwrap();
    t2.join().unwrap();
    // Exactly-once: the two possible hosts together saw every message.
    assert_eq!(r0 + r1, MSGS);
    assert_eq!(
        delivered.load(std::sync::atomic::Ordering::SeqCst),
        MSGS as u64
    );
}
