//! Property-based tests for the Mobile Object Layer: wire-format roundtrips
//! and delivery-order preservation under arbitrary interleavings of sends,
//! polls, and migrations.

use bytes::Bytes;
use prema_dcs::{BatchConfig, Communicator, LocalFabric};
use prema_mol::proto::{DirAnswer, DirLookup, DirPublish, LocUpdate, MigratePacket, MolEnvelope};
use prema_mol::{Migratable, MobilePtr, MolEvent, MolNode};
use proptest::prelude::*;

#[derive(Debug, PartialEq, Clone)]
struct Log {
    seen: Vec<u32>,
}

impl Migratable for Log {
    fn pack(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&(self.seen.len() as u64).to_le_bytes());
        for &v in &self.seen {
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }
    fn unpack(b: &[u8]) -> Self {
        let n = u64::from_le_bytes(b[..8].try_into().unwrap()) as usize;
        Log {
            seen: (0..n)
                .map(|i| u32::from_le_bytes(b[8 + 4 * i..12 + 4 * i].try_into().unwrap()))
                .collect(),
        }
    }
}

fn arb_env() -> impl Strategy<Value = MolEnvelope> {
    (
        0usize..64,
        0u64..u64::MAX,
        0usize..64,
        any::<u64>(),
        any::<u32>(),
        0u32..100,
        any::<bool>(),
        any::<u64>(),
        any::<f64>().prop_filter("finite", |f| f.is_finite()),
        proptest::collection::vec(any::<u8>(), 0..64),
    )
        .prop_map(
            |(home, index, sender, seq, handler, hops, anchored, route_epoch, hint, payload)| {
                MolEnvelope {
                    target: MobilePtr { home, index },
                    sender,
                    seq,
                    handler,
                    hops,
                    anchored,
                    route_epoch,
                    hint,
                    payload: Bytes::from(payload),
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn envelope_wire_roundtrip(env in arb_env()) {
        let decoded = MolEnvelope::decode(env.encode());
        prop_assert_eq!(decoded, env);
    }

    #[test]
    fn migrate_packet_wire_roundtrip(
        envs in proptest::collection::vec(arb_env(), 0..8),
        expected in proptest::collection::vec((0usize..64, any::<u64>()), 0..8),
        epoch in any::<u64>(),
        object in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let p = MigratePacket {
            ptr: MobilePtr { home: 3, index: 7 },
            epoch,
            object: Bytes::from(object),
            expected,
            pending: envs.clone(),
            buffered: envs,
        };
        let d = MigratePacket::decode(p.encode());
        prop_assert_eq!(d, p);
    }

    #[test]
    fn locupdate_wire_roundtrip(home in 0usize..64, index in any::<u64>(), owner in 0usize..64, epoch in any::<u64>()) {
        let l = LocUpdate { ptr: MobilePtr { home, index }, owner, epoch };
        prop_assert_eq!(LocUpdate::decode(l.encode()), l);
    }

    #[test]
    fn directory_wire_roundtrips(
        home in 0usize..64,
        index in any::<u64>(),
        owner in 0usize..64,
        epoch in any::<u64>(),
        stale in any::<bool>(),
    ) {
        let ptr = MobilePtr { home, index };
        let p = DirPublish { ptr, owner, epoch };
        prop_assert_eq!(DirPublish::decode(p.encode()), p);
        let q = DirLookup { ptr, epoch };
        prop_assert_eq!(DirLookup::decode(q.encode()), q);
        let a = DirAnswer { ptr, owner, epoch, stale };
        prop_assert_eq!(DirAnswer::decode(a.encode()), a);
    }

    /// The MOL's headline guarantee: for any interleaving of migrations and
    /// polls, messages from one sender reach the object in send order and
    /// nothing is lost or duplicated.
    #[test]
    fn delivery_order_holds_under_random_migrations(
        script in proptest::collection::vec((0u8..4, 0usize..3), 1..60),
        msgs in 5usize..30,
    ) {
        let n = 3;
        let mut nodes: Vec<MolNode<Log>> = LocalFabric::new(n)
            .into_iter()
            .map(|ep| MolNode::new(Communicator::new(Box::new(ep))))
            .collect();
        let ptr = nodes[0].register(Log { seen: vec![] });
        let mut sent = 0u32;
        let mut script_iter = script.into_iter();

        // Interleave: sends from rank 2, random migrations, random polls.
        while (sent as usize) < msgs {
            match script_iter.next() {
                Some((0, _)) | None => {
                    nodes[2].message(ptr, 1, Bytes::copy_from_slice(&sent.to_le_bytes()));
                    sent += 1;
                }
                Some((1, dst)) => {
                    // Whoever holds the object tries to migrate it to dst.
                    if let Some(src) = nodes.iter().position(|nd| nd.is_local(ptr)) {
                        if src != dst % n {
                            let _ = nodes[src].migrate(ptr, dst % n);
                        }
                    }
                }
                Some((_, r)) => {
                    deliver(&mut nodes[r % n], ptr);
                }
            }
        }
        // Drain everything.
        let mut quiet = 0;
        while quiet < 3 {
            let mut any = false;
            for node in nodes.iter_mut() {
                if deliver(node, ptr) {
                    any = true;
                }
            }
            if any { quiet = 0 } else { quiet += 1 }
        }
        // Find the object and check the log.
        let holder = nodes.iter().find(|nd| nd.get(ptr).is_some()).expect("object lost");
        let seen = &holder.get(ptr).unwrap().seen;
        let want: Vec<u32> = (0..sent).collect();
        prop_assert_eq!(seen, &want);
    }

    /// With coalescing on, a message can sit in a staging buffer while its
    /// target object migrates away — the frame must still reach the old
    /// owner, get forwarded, and arrive exactly once. Interleaves sends,
    /// migrations, polls, and *explicit* `flush()` calls at proptest-drawn
    /// points, then checks at teardown that no envelope is stranded in any
    /// staging buffer and the object's log counts every send exactly once,
    /// in order.
    #[test]
    fn no_envelope_stranded_when_flush_interleaves_migration(
        script in proptest::collection::vec((0u8..5, 0usize..3), 1..60),
        msgs in 5usize..25,
        max_msgs in 2usize..9,
    ) {
        let n = 3;
        let mut nodes: Vec<MolNode<Log>> = LocalFabric::new(n)
            .into_iter()
            .map(|ep| {
                let mut comm = Communicator::new(Box::new(ep));
                comm.set_batch_config(BatchConfig::on(max_msgs, 1 << 20));
                MolNode::new(comm)
            })
            .collect();
        let ptr = nodes[0].register(Log { seen: vec![] });
        let mut sent = 0u32;
        let mut script_iter = script.into_iter();

        while (sent as usize) < msgs {
            match script_iter.next() {
                Some((0, _)) | None => {
                    nodes[2].message(ptr, 1, Bytes::copy_from_slice(&sent.to_le_bytes()));
                    sent += 1;
                }
                Some((1, dst)) => {
                    if let Some(src) = nodes.iter().position(|nd| nd.is_local(ptr)) {
                        if src != dst % n {
                            let _ = nodes[src].migrate(ptr, dst % n);
                        }
                    }
                }
                Some((2, r)) => {
                    // A flush with no poll: pushes any staged frame onto the
                    // wire mid-script.
                    nodes[r % n].comm().flush();
                }
                Some((_, r)) => {
                    deliver(&mut nodes[r % n], ptr);
                }
            }
        }
        // Teardown: drain until globally quiet. Polls flush on entry, so
        // anything still staged here must reach the wire and be delivered.
        let mut quiet = 0;
        while quiet < 3 {
            let mut any = false;
            for node in nodes.iter_mut() {
                if deliver(node, ptr) {
                    any = true;
                }
            }
            if any { quiet = 0 } else { quiet += 1 }
        }
        for node in nodes.iter() {
            // A non-zero count is an envelope stranded in staging at shutdown.
            prop_assert_eq!(node.comm().staged_len(), 0);
        }
        let holder = nodes.iter().find(|nd| nd.get(ptr).is_some()).expect("object lost");
        let seen = &holder.get(ptr).unwrap().seen;
        let want: Vec<u32> = (0..sent).collect();
        prop_assert_eq!(seen, &want);
    }
}

/// A log that records `(sender, per-sender seq)` pairs, so per-sender order
/// can be checked even when several ranks interleave sends to one object.
#[derive(Debug, PartialEq, Clone, Default)]
struct MultiLog {
    seen: Vec<(u32, u32)>,
}

impl Migratable for MultiLog {
    fn pack(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&(self.seen.len() as u64).to_le_bytes());
        for &(s, q) in &self.seen {
            buf.extend_from_slice(&s.to_le_bytes());
            buf.extend_from_slice(&q.to_le_bytes());
        }
    }
    fn unpack(b: &[u8]) -> Self {
        let n = u64::from_le_bytes(b[..8].try_into().unwrap()) as usize;
        MultiLog {
            seen: (0..n)
                .map(|i| {
                    let at = 8 + 8 * i;
                    (
                        u32::from_le_bytes(b[at..at + 4].try_into().unwrap()),
                        u32::from_le_bytes(b[at + 4..at + 8].try_into().unwrap()),
                    )
                })
                .collect(),
        }
    }
}

/// Pump every node until nothing moves for three full rounds: no events
/// delivered *and* no envelope received anywhere. A forwarding hop produces
/// no `MolEvent`, so tracking received-message counts keeps multi-hop chains
/// through lower-ranked nodes from stranding mid-drain.
fn drain(nodes: &mut [MolNode<MultiLog>]) {
    let mut quiet = 0;
    while quiet < 3 {
        let before: u64 = nodes.iter().map(|n| n.comm().stats().msgs_recvd).sum();
        let mut any = false;
        for node in nodes.iter_mut() {
            let events = node.poll();
            any |= apply_events(node, events);
        }
        let after: u64 = nodes.iter().map(|n| n.comm().stats().msgs_recvd).sum();
        if any || after != before {
            quiet = 0
        } else {
            quiet += 1
        }
    }
}

/// Apply every delivered message to its log object; panics (via the MOL's
/// contract) if a message is delivered somewhere its object is not.
fn apply_events(node: &mut MolNode<MultiLog>, events: Vec<MolEvent>) -> bool {
    let mut any = false;
    for ev in events {
        if let MolEvent::Object { ptr, payload, .. } = ev {
            let s = u32::from_le_bytes(payload[..4].try_into().unwrap());
            let q = u32::from_le_bytes(payload[4..8].try_into().unwrap());
            let applied = node
                .with_object(ptr, |_, log| log.seen.push((s, q)))
                .is_some();
            assert!(applied, "delivered message for a non-local object");
            any = true;
        }
    }
    any
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Drives the runtime invariant oracles (`check-invariants`, default-on)
    /// through randomized schedules: several senders, two objects migrating
    /// independently, and polls withheld from arbitrary ranks for arbitrary
    /// stretches — so messages sit queued in the fabric ("delayed") and chase
    /// objects through stale forwarding chains. Every step that trips an
    /// oracle — out-of-order delivery, an epoch that fails to advance, a
    /// lost or duplicated work unit — panics inside the runtime, failing the
    /// property with the offending schedule. The final assertions re-check
    /// end-to-end what the oracles checked incrementally.
    #[test]
    fn ordering_oracle_holds_under_random_schedules(
        script in proptest::collection::vec((0u8..5, 0usize..4, 0usize..4), 20..120),
    ) {
        let n = 4;
        let mut nodes: Vec<MolNode<MultiLog>> = LocalFabric::new(n)
            .into_iter()
            .map(|ep| MolNode::new(Communicator::new(Box::new(ep))))
            .collect();
        let ptrs = [
            nodes[0].register(MultiLog::default()),
            nodes[1].register(MultiLog::default()),
        ];
        // Per (sender rank, object) sequence counters for the final check.
        let mut sent: std::collections::HashMap<(usize, usize), u32> =
            std::collections::HashMap::new();

        for (op, a, b) in script {
            let (rank, obj) = (a % n, b % ptrs.len());
            match op {
                0 | 1 => {
                    let seq = sent.entry((rank, obj)).or_insert(0);
                    let mut payload = Vec::new();
                    payload.extend_from_slice(&(rank as u32).to_le_bytes());
                    payload.extend_from_slice(&seq.to_le_bytes());
                    nodes[rank].message(ptrs[obj], 1, Bytes::from(payload));
                    *seq += 1;
                }
                2 => {
                    // Whoever holds the object ships it to `rank`.
                    if let Some(src) = nodes.iter().position(|nd| nd.is_local(ptrs[obj])) {
                        if src != rank {
                            let _ = nodes[src].migrate(ptrs[obj], rank);
                        }
                    }
                }
                3 => {
                    let events = nodes[rank].poll();
                    apply_events(&mut nodes[rank], events);
                }
                _ => {
                    // System-only poll: migrations and location updates land,
                    // application messages stay sidelined (delayed).
                    nodes[rank].poll_system();
                }
            }
            #[cfg(feature = "check-invariants")]
            for node in nodes.iter() {
                node.verify_conservation();
            }
        }

        // Drain until globally quiet.
        let mut quiet = 0;
        while quiet < 3 {
            let mut any = false;
            for node in nodes.iter_mut() {
                let events = node.poll();
                any |= apply_events(node, events);
            }
            if any { quiet = 0 } else { quiet += 1 }
        }

        // End-to-end re-check of what the oracles asserted step by step.
        for (obj, ptr) in ptrs.iter().enumerate() {
            let holder = nodes.iter().find(|nd| nd.get(*ptr).is_some()).expect("object lost");
            let log = holder.get(*ptr).unwrap();
            for sender in 0..n {
                let got: Vec<u32> = log
                    .seen
                    .iter()
                    .filter(|&&(s, _)| s as usize == sender)
                    .map(|&(_, q)| q)
                    .collect();
                let want: Vec<u32> =
                    (0..sent.get(&(sender, obj)).copied().unwrap_or(0)).collect();
                prop_assert_eq!(got, want);
            }
            let total: u32 = (0..n).map(|s| sent.get(&(s, obj)).copied().unwrap_or(0)).sum();
            prop_assert_eq!(log.seen.len() as u32, total);
        }
    }

    /// The sharded directory's headline bound: under random interleavings of
    /// sends, migrations (publishes racing messages), explicit `resolve()`
    /// lookups, and withheld polls, every message is delivered exactly once
    /// and in order, and no message's forwarding chain exceeds `MAX_CHAIN` —
    /// provided at most two migrations overlap any message's flight
    /// (MAX_CHAIN's documented precondition), which the schedule enforces by
    /// draining in-flight traffic after every second migration. Within a
    /// window, sends still race up to two migrations and their publishes
    /// with polls withheld arbitrarily.
    #[test]
    fn directory_delivers_exactly_once_with_bounded_chains(
        script in proptest::collection::vec((0u8..6, 0usize..4, 0usize..4), 20..120),
    ) {
        use prema_mol::MAX_CHAIN;
        let n = 4;
        let mut nodes: Vec<MolNode<MultiLog>> = LocalFabric::new(n)
            .into_iter()
            .map(|ep| MolNode::new(Communicator::new(Box::new(ep))))
            .collect();
        let ptrs = [
            nodes[0].register(MultiLog::default()),
            nodes[1].register(MultiLog::default()),
        ];
        let mut sent: std::collections::HashMap<(usize, usize), u32> =
            std::collections::HashMap::new();
        let mut unsettled_migrations = 0u32;

        for (op, a, b) in script {
            let (rank, obj) = (a % n, b % ptrs.len());
            match op {
                0 | 1 => {
                    let seq = sent.entry((rank, obj)).or_insert(0);
                    let mut payload = Vec::new();
                    payload.extend_from_slice(&(rank as u32).to_le_bytes());
                    payload.extend_from_slice(&seq.to_le_bytes());
                    nodes[rank].message(ptrs[obj], 1, Bytes::from(payload));
                    *seq += 1;
                }
                2 => {
                    // Cap migrations overlapping any flight at two: beyond
                    // that the constant bound genuinely does not hold (an
                    // anchored message trail-walks without re-consulting the
                    // shard, so every migration committing mid-flight can
                    // add a hop). Drain to quiescence first.
                    if unsettled_migrations >= 2 {
                        drain(&mut nodes);
                        unsettled_migrations = 0;
                    }
                    if let Some(src) = nodes.iter().position(|nd| nd.is_local(ptrs[obj])) {
                        if src != rank && nodes[src].migrate(ptrs[obj], rank) {
                            unsettled_migrations += 1;
                        }
                    }
                }
                3 => {
                    // Explicit resolve: a miss issues a DirLookup to the
                    // home shard; the DirAnswer lands on a later poll.
                    let _ = nodes[rank].resolve(ptrs[obj]);
                }
                4 => {
                    let events = nodes[rank].poll();
                    apply_events(&mut nodes[rank], events);
                }
                _ => {
                    nodes[rank].poll_system();
                }
            }
        }

        drain(&mut nodes);

        // Exactly-once, in-order delivery of every send.
        for (obj, ptr) in ptrs.iter().enumerate() {
            let holder = nodes.iter().find(|nd| nd.get(*ptr).is_some()).expect("object lost");
            let log = holder.get(*ptr).unwrap();
            for sender in 0..n {
                let got: Vec<u32> = log
                    .seen
                    .iter()
                    .filter(|&&(s, _)| s as usize == sender)
                    .map(|&(_, q)| q)
                    .collect();
                let want: Vec<u32> =
                    (0..sent.get(&(sender, obj)).copied().unwrap_or(0)).collect();
                prop_assert_eq!(got, want);
            }
            let total: u32 = (0..n).map(|s| sent.get(&(s, obj)).copied().unwrap_or(0)).sum();
            prop_assert_eq!(log.seen.len() as u32, total);
        }
        // The documented constant chain bound.
        for (rank, node) in nodes.iter().enumerate() {
            let worst = node.stats().max_chain;
            prop_assert!(
                worst <= MAX_CHAIN,
                "rank {} delivered a message after {} hops (bound {})",
                rank, worst, MAX_CHAIN
            );
        }
    }
}

/// Poll one node and apply any delivered messages to the log object.
/// Returns true if anything happened.
fn deliver(node: &mut MolNode<Log>, _ptr: MobilePtr) -> bool {
    let events = node.poll();
    let mut any = !events.is_empty();
    for ev in events {
        if let MolEvent::Object { ptr, payload, .. } = ev {
            let v = u32::from_le_bytes(payload[..4].try_into().unwrap());
            let applied = node
                .with_object(ptr, |_, log| {
                    log.seen.push(v);
                })
                .is_some();
            assert!(applied, "delivered message for a non-local object");
            any = true;
        }
    }
    any
}
