//! Property-based tests for the Mobile Object Layer: wire-format roundtrips
//! and delivery-order preservation under arbitrary interleavings of sends,
//! polls, and migrations.

use bytes::Bytes;
use prema_dcs::{Communicator, LocalFabric};
use prema_mol::proto::{LocUpdate, MigratePacket, MolEnvelope};
use prema_mol::{Migratable, MobilePtr, MolEvent, MolNode};
use proptest::prelude::*;

#[derive(Debug, PartialEq, Clone)]
struct Log {
    seen: Vec<u32>,
}

impl Migratable for Log {
    fn pack(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&(self.seen.len() as u64).to_le_bytes());
        for &v in &self.seen {
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }
    fn unpack(b: &[u8]) -> Self {
        let n = u64::from_le_bytes(b[..8].try_into().unwrap()) as usize;
        Log {
            seen: (0..n)
                .map(|i| u32::from_le_bytes(b[8 + 4 * i..12 + 4 * i].try_into().unwrap()))
                .collect(),
        }
    }
}

fn arb_env() -> impl Strategy<Value = MolEnvelope> {
    (
        0usize..64,
        0u64..u64::MAX,
        0usize..64,
        any::<u64>(),
        any::<u32>(),
        0u32..100,
        any::<f64>().prop_filter("finite", |f| f.is_finite()),
        proptest::collection::vec(any::<u8>(), 0..64),
    )
        .prop_map(|(home, index, sender, seq, handler, hops, hint, payload)| MolEnvelope {
            target: MobilePtr { home, index },
            sender,
            seq,
            handler,
            hops,
            hint,
            payload: Bytes::from(payload),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn envelope_wire_roundtrip(env in arb_env()) {
        let decoded = MolEnvelope::decode(env.encode());
        prop_assert_eq!(decoded, env);
    }

    #[test]
    fn migrate_packet_wire_roundtrip(
        envs in proptest::collection::vec(arb_env(), 0..8),
        expected in proptest::collection::vec((0usize..64, any::<u64>()), 0..8),
        epoch in any::<u64>(),
        object in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let p = MigratePacket {
            ptr: MobilePtr { home: 3, index: 7 },
            epoch,
            object: Bytes::from(object),
            expected,
            pending: envs.clone(),
            buffered: envs,
        };
        let d = MigratePacket::decode(p.encode());
        prop_assert_eq!(d, p);
    }

    #[test]
    fn locupdate_wire_roundtrip(home in 0usize..64, index in any::<u64>(), owner in 0usize..64, epoch in any::<u64>()) {
        let l = LocUpdate { ptr: MobilePtr { home, index }, owner, epoch };
        prop_assert_eq!(LocUpdate::decode(l.encode()), l);
    }

    /// The MOL's headline guarantee: for any interleaving of migrations and
    /// polls, messages from one sender reach the object in send order and
    /// nothing is lost or duplicated.
    #[test]
    fn delivery_order_holds_under_random_migrations(
        script in proptest::collection::vec((0u8..4, 0usize..3), 1..60),
        msgs in 5usize..30,
    ) {
        let n = 3;
        let mut nodes: Vec<MolNode<Log>> = LocalFabric::new(n)
            .into_iter()
            .map(|ep| MolNode::new(Communicator::new(Box::new(ep))))
            .collect();
        let ptr = nodes[0].register(Log { seen: vec![] });
        let mut sent = 0u32;
        let mut script_iter = script.into_iter();

        // Interleave: sends from rank 2, random migrations, random polls.
        while (sent as usize) < msgs {
            match script_iter.next() {
                Some((0, _)) | None => {
                    nodes[2].message(ptr, 1, Bytes::copy_from_slice(&sent.to_le_bytes()));
                    sent += 1;
                }
                Some((1, dst)) => {
                    // Whoever holds the object tries to migrate it to dst.
                    for src in 0..n {
                        if nodes[src].is_local(ptr) && src != dst % n {
                            let _ = nodes[src].migrate(ptr, dst % n);
                            break;
                        }
                    }
                }
                Some((_, r)) => {
                    deliver(&mut nodes[r % n], ptr);
                }
            }
        }
        // Drain everything.
        let mut quiet = 0;
        while quiet < 3 {
            let mut any = false;
            for node in nodes.iter_mut() {
                if deliver(node, ptr) {
                    any = true;
                }
            }
            if any { quiet = 0 } else { quiet += 1 }
        }
        // Find the object and check the log.
        let holder = nodes.iter().find(|nd| nd.get(ptr).is_some()).expect("object lost");
        let seen = &holder.get(ptr).unwrap().seen;
        let want: Vec<u32> = (0..sent).collect();
        prop_assert_eq!(seen, &want);
    }
}

/// Poll one node and apply any delivered messages to the log object.
/// Returns true if anything happened.
fn deliver(node: &mut MolNode<Log>, _ptr: MobilePtr) -> bool {
    let events = node.poll();
    let mut any = !events.is_empty();
    for ev in events {
        if let MolEvent::Object { ptr, payload, .. } = ev {
            let v = u32::from_le_bytes(payload[..4].try_into().unwrap());
            let applied = node
                .with_object(ptr, |_, log| {
                    log.seen.push(v);
                })
                .is_some();
            assert!(applied, "delivered message for a non-local object");
            any = true;
        }
    }
    any
}
